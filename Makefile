# Developer entry points.  Everything runs from the repo root with no
# installation: src/ goes on PYTHONPATH.  See README.md.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-sanitize test-chaos chaos lint bench bench-engine bench-distributed bench-service bench-columnar bench-sparse bench-kernels docs-check check

# Tier-1 verification: the full unit/integration suite, fail-fast.
test:
	$(PYTHON) -m pytest -x -q

# The sketch/service suites with the runtime sanitizer armed: kernels
# assert canonical-range preconditions, snapshots assert clone
# independence (see src/repro/util/sanitize.py and docs/invariants.md).
test-sanitize:
	REPRO_SANITIZE=1 $(PYTHON) -m pytest tests/sketch tests/service -x -q

# The fault/recovery pins: crash-at-every-epoch checkpoint sweeps,
# corrupted-checkpoint fallback chains, worker retry bit-identity on
# both backends, degraded queries, and the adversarial scenario
# (docs/robustness.md).
test-chaos:
	$(PYTHON) -m pytest tests/faults -x -q

# The end-to-end chaos harness at a fixed seed: workload under worker
# crash/hang + checkpoint corruption faults, recovered state must be
# bit-identical to an unfaulted run (exit 1 otherwise).
chaos:
	$(PYTHON) -m repro chaos --seed 7

# Repo-native static analysis: the sketch contract, field-arithmetic,
# determinism, and wire-format invariants (docs/invariants.md catalogues
# every SLNNN code).
lint:
	$(PYTHON) -m tools.sketchlint src/

# Paper-claim experiments E1-E8 plus the batch-engine gate; tables are
# printed and written to benchmarks/results/.
bench:
	$(PYTHON) -m pytest benchmarks/ -q

# Just the batched-vs-scalar sketch engine gate (>=5x, bit-identical).
bench-engine:
	$(PYTHON) -m pytest benchmarks/bench_batch_engine.py -q

# The distributed engine gates: sharded output == single-stream output
# on every backend/discipline, and >=2x multi-process speedup at 4
# workers on a 10^6-update stream (speedup skips on <2-CPU hosts).
bench-distributed:
	$(PYTHON) -m pytest benchmarks/bench_distributed.py -q

# The live sketch-store gates: a 10^6-update session ingests above the
# throughput floor, answers queries mid-stream, kill/restore from a
# checkpoint is bit-identical, the epoch cache is >=10x, and disabled
# telemetry stays within 3% of the floor.  Then the regression check of
# the fresh phase-attributed BENCH_service_phases.json against the
# committed floors.  No parallel-speedup gate (host may expose 1 CPU).
bench-service:
	$(PYTHON) -m pytest benchmarks/bench_service.py -q
	$(PYTHON) tools/perf_regress.py service_phases

# The columnar-engine gates: >=3x algorithm-level columnar-vs-scalar
# speedup with bit-identical state on 10^5-update streams (single-core
# gates only), then the machine-readable regression check of the fresh
# BENCH_columnar.json against the committed baseline floors.
bench-columnar:
	$(PYTHON) -m pytest benchmarks/bench_columnar.py -q
	$(PYTHON) tools/perf_regress.py columnar

# The sparse vertex-universe gates: a 10^7-id session answers all four
# query kinds with resident sketch words proportional to touched
# vertices (not the universe), lazy wire state bit-identical to the
# dense engine, ingest above the throughput floor, then the regression
# check of the fresh BENCH_sparse.json against the committed floors.
# Single-core gates only (no parallel-speedup assumptions).
bench-sparse:
	$(PYTHON) -m pytest benchmarks/bench_sparse_universe.py -q
	$(PYTHON) tools/perf_regress.py sparse

# The kernel-backend gates: limb end-to-end speedup over the committed
# columnar floor, bit-identical state across reference/limb/native
# backends (dense + lazy + weighted + kill/restore), the adaptive
# ladder's grow-without-re-ingest identity past 10^6 touched vertices,
# then the regression check of the fresh BENCH_kernels.json against
# the committed floors.  Single-core gates only.
bench-kernels:
	$(PYTHON) -m pytest benchmarks/bench_kernels.py -q
	$(PYTHON) tools/perf_regress.py kernels

# Documentation gates: public-API docstring coverage, and the docs the
# README promises must exist.
docs-check:
	$(PYTHON) tools/check_docstrings.py
	@for f in README.md docs/paper_map.md docs/performance.md docs/invariants.md docs/observability.md docs/robustness.md; do \
		test -f $$f || { echo "missing $$f"; exit 1; }; \
	done
	@echo "docs OK: README.md, docs/paper_map.md, docs/performance.md, docs/invariants.md, docs/observability.md, docs/robustness.md present"

# Everything a PR should pass: the sketchlint invariants, docs gates
# (docstring coverage), the unit/integration suite (plus the
# sanitizer-armed sketch/service subset and the fault/recovery pins),
# the fixed-seed chaos harness, the distributed-engine gates, the live
# service gates, the columnar-engine speedup/regression gates, the
# sparse vertex-universe memory/identity gates, and the kernel-backend
# speedup/identity/ladder gates.
check: lint docs-check test test-sanitize test-chaos chaos bench-distributed bench-service bench-columnar bench-sparse bench-kernels
