"""Weighted spanners over a churning network-latency graph.

Scenario: a monitoring service keeps an approximate latency map of an
overlay network.  Links (edges weighted by latency) come and go; the
service sees only the add/remove feed, in one sequence, and may replay
it once more (two passes) — exactly the paper's weighted dynamic stream
model (weights are set at insertion and removed whole, Remark 14).

Run:  python examples/weighted_network_monitoring.py
"""

from repro.core import WeightedTwoPassSpanner
from repro.graph import connected_gnp, dijkstra_distances, with_random_weights
from repro.stream import stream_from_graph

W_MIN, W_MAX = 1.0, 16.0


def main() -> None:
    n, k = 72, 2
    graph = with_random_weights(
        connected_gnp(n, 0.15, seed=55), seed=55, w_min=W_MIN, w_max=W_MAX
    )
    stream = stream_from_graph(graph, seed=56, churn=0.6)
    print(f"network: n={n}, {graph.num_edges()} weighted links, "
          f"{len(stream)} feed events ({stream.num_deletions()} removals)")

    monitor = WeightedTwoPassSpanner(
        n, k, seed=57, w_min=W_MIN, w_max=W_MAX, gamma=0.5
    )
    latency_map = monitor.run(stream)
    print(f"latency map: {latency_map.num_edges()} links kept across "
          f"{monitor.num_classes} weight classes "
          f"(stretch guarantee {monitor.stretch_bound():.1f}x)")

    print(f"\n{'route':>10} {'true':>8} {'estimate':>9} {'ratio':>6}")
    worst = 0.0
    for source in (0, 17, 44):
        true = dijkstra_distances(graph, source)
        estimate = dijkstra_distances(latency_map, source)
        for target in (9, 31, 63):
            if target == source or target not in true:
                continue
            ratio = estimate[target] / true[target]
            worst = max(worst, ratio)
            print(f"({source:>3},{target:>3}) {true[target]:>8.2f} "
                  f"{estimate[target]:>9.2f} {ratio:>6.2f}")

    print(f"\nworst observed ratio {worst:.2f} <= guarantee "
          f"{monitor.stretch_bound():.1f}: "
          f"{'OK' if worst <= monitor.stretch_bound() + 1e-9 else 'VIOLATED'}")


if __name__ == "__main__":
    main()
