"""Distributed sketching: s servers, one spanner, zero raw-edge exchange.

The paper's introduction motivates linear sketches with exactly this
scenario: the edge stream is split across servers, each server sketches
only its own shard, and because sketches are *linear* the coordinator
can sum them — the sum is indistinguishable from having sketched the
whole stream on one machine.

The same trick is shown three times:
  1. AGM spanning-forest sketches (Theorem 10) — merge and extract;
  2. the full two-pass spanner (Theorem 1) — merge pass 1, build the
     forest once, broadcast it, merge pass 2, recover the spanner;
  3. the ShardedRunner engine — the same choreography automated, with
     real worker processes and byte-accounted communication.

Run:  python examples/distributed_servers.py
"""

from functools import partial

from repro.agm import AgmSketch
from repro.core import TwoPassSpannerBuilder
from repro.graph import connected_gnp, evaluate_multiplicative_stretch
from repro.stream import ShardedRunner, stream_from_graph

NUM_SERVERS = 4


def shard(stream, server: int):
    """Server `server`'s view: every NUM_SERVERS-th update."""
    return [u for i, u in enumerate(stream) if i % NUM_SERVERS == server]


def demo_agm(graph, stream) -> None:
    print("--- distributed spanning forest (AGM sketches) ---")
    servers = [AgmSketch(graph.num_vertices, seed=42) for _ in range(NUM_SERVERS)]
    for server_id, sketch in enumerate(servers):
        for update in shard(stream, server_id):
            sketch.update(update.u, update.v, update.sign)
    coordinator = servers[0]
    for sketch in servers[1:]:
        coordinator.combine(sketch)
    forest = coordinator.spanning_forest()
    print(f"servers: {NUM_SERVERS}, merged forest edges: {len(forest)} "
          f"(expected {graph.num_vertices - 1} for a connected graph)")
    assert len(forest) == graph.num_vertices - 1


def demo_spanner(graph, stream) -> None:
    print("--- distributed two-pass spanner ---")
    n, k = graph.num_vertices, 2
    make = lambda: TwoPassSpannerBuilder(n, k, seed=4242)

    # Pass 1, sharded: each server sketches its shard.
    servers = [make() for _ in range(NUM_SERVERS)]
    for server_id, builder in enumerate(servers):
        builder.begin_pass(0)
        for update in shard(stream, server_id):
            builder.process(update, 0)

    # Coordinator merges pass-1 sketches and builds the cluster forest.
    coordinator = servers[0]
    for builder in servers[1:]:
        coordinator.merge_first_pass(builder)
    coordinator.end_pass(0)

    # Pass 2, sharded: every server needs the (tiny) forest for routing.
    for builder in servers[1:]:
        builder.adopt_forest_from(coordinator)
    for server_id, builder in enumerate(servers):
        for update in shard(stream, server_id):
            builder.process(update, 1)
    for builder in servers[1:]:
        coordinator.merge_second_pass(builder)

    output = coordinator.finalize()
    report = evaluate_multiplicative_stretch(graph, output.spanner)
    print(f"merged spanner: {output.spanner.num_edges()} edges, "
          f"max stretch {report.max_stretch:.2f} (guarantee {2 ** k})")
    assert report.within(2 ** k)


def demo_runner(graph, stream) -> None:
    print("--- ShardedRunner: the same choreography, automated ---")
    n, k = graph.num_vertices, 2
    runner = ShardedRunner(NUM_SERVERS, backend="mp", batch_size=1024)
    result = runner.run(stream, partial(TwoPassSpannerBuilder, n, k, 4242))
    report = evaluate_multiplicative_stretch(graph, result.output.spanner)
    print(f"{result.num_servers} {result.backend} workers, "
          f"{result.discipline} sharding -> "
          f"{result.output.spanner.num_edges()} edges, "
          f"max stretch {report.max_stretch:.2f}")
    print(result.communication.summary())
    assert report.within(2 ** k)


def main() -> None:
    graph = connected_gnp(64, 0.12, seed=3)
    stream = stream_from_graph(graph, seed=3, churn=0.4)
    print(f"input: n={graph.num_vertices}, m={graph.num_edges()}, "
          f"{len(stream)} tokens split across {NUM_SERVERS} servers\n")
    demo_agm(graph, stream)
    print()
    demo_spanner(graph, stream)
    print()
    demo_runner(graph, stream)
    print("\nOK: merged sketches reproduce single-machine results.")


if __name__ == "__main__":
    main()
