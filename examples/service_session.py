"""The live sketch store: ingest -> query -> checkpoint -> restore -> query.

A linear sketch is a *mergeable, restartable* summary: this example runs
the full serving lifecycle on one graph session —

  1. continuous ingest of a mixed insert/delete stream (no final graph,
     no replays — the session is the long-lived server state);
  2. snapshot queries mid-stream (connectivity, spanner distances, cut
     weights), each finalized from a clone of the sketches while ingest
     keeps going, and memoized per epoch so repeats are ~free;
  3. a checkpoint written through the same varint wire protocol the
     distributed runner uses;
  4. a simulated crash: the session object is thrown away, restored from
     the checkpoint file, and fed the rest of the stream;
  5. proof of durability: the restored session's answers are
     bit-identical to the never-crashed session's.

Run:  python examples/service_session.py
"""

import tempfile
import time
from pathlib import Path

from repro.core import SparsifierParams
from repro.service import GraphSession
from repro.stream import mixed_workload_stream

NUM_VERTICES = 24
UPDATES = 3_000
SEED = 11

#: Slim pipeline constants: example-sized sessions answer cut queries in
#: milliseconds; see docs/performance.md for production-scale settings.
SPARSIFIER_PARAMS = SparsifierParams(
    estimate_levels=2, sampling_levels=2, sampling_rounds_factor=0.05
)


def main() -> None:
    tokens = list(mixed_workload_stream(NUM_VERTICES, UPDATES, SEED))
    half = len(tokens) // 2

    session = GraphSession(
        NUM_VERTICES, SEED, k=2, sparsifier_k=1, sparsifier_params=SPARSIFIER_PARAMS
    )

    print("--- ingest (first half of the stream) ---")
    for start in range(0, half, 512):
        session.ingest_batch(tokens[start : min(start + 512, half)])
    print(session)

    print("\n--- snapshot queries mid-stream ---")
    start_time = time.perf_counter()
    distance = session.spanner_distance(0, 1)
    cold_ms = (time.perf_counter() - start_time) * 1e3
    start_time = time.perf_counter()
    session.spanner_distance(0, 1)
    warm_ms = (time.perf_counter() - start_time) * 1e3
    print(f"connected(0, 1)      = {session.connected(0, 1)}")
    print(f"spanner_distance(0,1)= {distance}  "
          f"(cold {cold_ms:.1f} ms, epoch-cached repeat {warm_ms:.3f} ms)")
    print(f"cut_estimate(half)   = {session.cut_estimate(range(NUM_VERTICES // 2)):.1f}")

    with tempfile.TemporaryDirectory() as tempdir:
        checkpoint = Path(tempdir) / "session.bin"
        print("\n--- checkpoint, crash, restore ---")
        session.checkpoint(checkpoint)
        print(f"checkpointed {checkpoint.stat().st_size:,} bytes at "
              f"update {session.updates_ingested:,}")

        # The uninterrupted session finishes the stream...
        session.ingest_batch(tokens[half:])
        reference = session.snapshot_answers()

        # ...while a "crashed" replica restores from disk and catches up.
        restored = GraphSession.restore(checkpoint)
        print(f"restored {restored}")
        restored.ingest_batch(tokens[half:])
        recovered = restored.snapshot_answers()

    assert recovered == reference, "restore broke bit-identity"
    print("\n--- after the crash ---")
    print(f"spanner edges        = {len(reference['spanner'])} (both sessions)")
    print(f"components           = {len(reference['components'])} (both sessions)")
    print("OK: restored session's answers are bit-identical to the "
          "uninterrupted run.")


if __name__ == "__main__":
    main()
