"""A one-pass structural monitor over a churning graph feed.

Uses the AGM application layer ([AGM12a], the paper's Theorem 10
substrate) to answer, from a single pass over an insert/delete feed and
~O(n polylog) space:

* how many connected components does the graph have?
* is it bipartite (e.g. "does the interaction graph remain two-sided")?
* a sparse 3-edge-connectivity certificate (which links are critical?)

Run:  python examples/streaming_graph_monitor.py
"""

from repro.agm import BipartitenessChecker, ConnectivityChecker, KConnectivityCertificate
from repro.graph import Graph, grid_graph
from repro.stream import DynamicStream


def build_feed() -> tuple[DynamicStream, Graph]:
    """A 6x6 grid overlay that gains a diagonal shortcut (breaking
    bipartiteness), loses it again, and drops a corner link."""
    grid = grid_graph(6, 6)
    stream = DynamicStream(36)
    for u, v, w in grid.edges():
        stream.insert(u, v, w)
    stream.insert(0, 7)   # diagonal: odd cycle appears
    stream.delete(0, 7)   # ... and is rolled back
    stream.delete(0, 1)   # a corner link is decommissioned
    final = grid.copy()
    final.remove_edge(0, 1)
    return stream, final


def main() -> None:
    stream, final = build_feed()
    n = stream.num_vertices
    print(f"feed: {len(stream)} events over {n} nodes "
          f"({stream.num_deletions()} deletions)")

    connectivity = ConnectivityChecker(n, seed=61)
    bipartite = BipartitenessChecker(n, seed=62)
    certifier = KConnectivityCertificate(n, k=3, seed=63)

    # One shared pass: every monitor is a linear sketch of the same feed.
    for monitor in (connectivity, bipartite, certifier):
        monitor.begin_pass(0)
    for update in stream:
        for monitor in (connectivity, bipartite, certifier):
            monitor.process(update, 0)

    components = connectivity.finalize()
    is_bipartite = bipartite.finalize()
    certificate = certifier.finalize()

    print(f"components : {len(components)} "
          f"(truth: {len(final.connected_components())})")
    print(f"bipartite  : {is_bipartite} (truth: grid minus an edge -> True)")
    print(f"certificate: {certificate.num_edges()} of {final.num_edges()} edges "
          f"retained (preserves all cuts up to value 3)")

    words = sum(m.space_words() for m in (connectivity, bipartite, certifier))
    print(f"space      : {words} sketch words for all three monitors")
    assert len(components) == len(final.connected_components())
    assert is_bipartite
    print("\nOK: one pass, three structural answers.")


if __name__ == "__main__":
    main()
