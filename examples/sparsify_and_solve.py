"""Spectral sparsification end-to-end: sparsify a stream, then use the
sparsifier for cuts and effective resistances.

Corollary 2's promise: a two-pass dynamic-stream sketch whose output
preserves the whole Laplacian quadratic form — so cuts, resistances and
Laplacian solves computed on the (smaller) sparsifier approximate the
originals.

Run:  python examples/sparsify_and_solve.py
"""

from repro.core import SparsifierParams, SpectralSparsifier
from repro.graph import (
    complete_graph,
    cut_value,
    effective_resistance,
    sample_cuts,
    spectral_approximation,
)


def main() -> None:
    n = 48
    graph = complete_graph(n)
    print(f"input: K_{n} with {graph.num_edges()} edges")

    # Offline-oracle mode of the identical pipeline (identical filters/estimator/assembly);
    # sampling_rounds_factor scales the theory's Z down to laptop size.
    params = SparsifierParams(sampling_rounds_factor=0.15)
    pipeline = SpectralSparsifier(n, seed=31, k=2, params=params)
    sparsifier = pipeline.sparsify_graph(graph)
    print(f"sparsifier: {sparsifier.num_edges()} weighted edges "
          f"({sparsifier.num_edges() / graph.num_edges():.0%} of input), "
          f"Z={pipeline.core.rounds} sampling rounds")

    bounds = spectral_approximation(graph, sparsifier)
    print(f"spectral bounds: {bounds.low:.2f} <= x'L_H x / x'L_G x <= {bounds.high:.2f} "
          f"(eps = {bounds.epsilon():.2f})")

    print("\ncut preservation on sampled cuts:")
    print(f"{'cut size':>9} {'G value':>9} {'H value':>9} {'ratio':>7}")
    for side in list(sample_cuts(n, trials=5, seed=32)):
        g_val = cut_value(graph, side)
        h_val = cut_value(sparsifier, side)
        print(f"{len(side):>9} {g_val:>9.1f} {h_val:>9.1f} {h_val / g_val:>7.2f}")

    print("\neffective resistances across sample pairs:")
    print(f"{'pair':>10} {'R in G':>8} {'R in H':>8}")
    for u, v in [(0, 1), (5, 40), (12, 33)]:
        r_g = effective_resistance(graph, u, v)
        r_h = effective_resistance(sparsifier, u, v)
        print(f"({u:>3},{v:>3}) {r_g:>8.4f} {r_h:>8.4f}")

    print("\nOK: quadratic-form quantities survive sparsification.")


if __name__ == "__main__":
    main()
