"""Play Theorem 4's communication game: space buys decoding power.

Alice holds s random graphs G(d, 1/2) (her INDEX bits); Bob holds one
pair inside one block.  Alice's message is the state of a 1-pass
streaming spanner algorithm; Bob appends his path edges, reads the
spanner, and answers "my bit is 1 iff my pair is a spanner edge".

Theorem 4: any algorithm whose spanner has additive distortion n/d with
probability >= 6/7 lets Bob win with probability >= 2/3, so its state
must be Ω(nd) bits.  Below we watch the contrapositive: as the
algorithm's space budget is starved, Bob's success decays toward the
coin flip, and only space-rich messages clear the 2/3 bar with room.

Run:  python examples/lower_bound_game.py
"""

from repro.core import AdditiveParams, AdditiveSpannerBuilder
from repro.graph.graph import Graph
from repro.lowerbound import run_spanner_protocol
from repro.stream.pipeline import StreamingAlgorithm
from repro.util.rng import derive_seed

NUM_BLOCKS = 4
BLOCK_SIZE = 16  # d: block size / degree scale
TRIALS = 16


class EmptyMessage(StreamingAlgorithm):
    """Zero-bit protocol: Bob sees only his own edges."""

    def __init__(self, num_vertices):
        self.num_vertices = num_vertices

    @property
    def passes_required(self):
        return 1

    def process(self, update, pass_index):
        pass

    def finalize(self):
        return Graph(self.num_vertices)

    def space_words(self):
        return 0


def main() -> None:
    n = NUM_BLOCKS * BLOCK_SIZE
    r = NUM_BLOCKS * BLOCK_SIZE * (BLOCK_SIZE - 1) // 2
    print(f"hard instance: {NUM_BLOCKS} blocks of G({BLOCK_SIZE}, 1/2), n={n}")
    print(f"INDEX length r = {r} bits (the Ω(nd) information target)\n")

    configurations = [
        # (name, factory, trials) — the free protocol gets many trials so
        # its coin-flip rate is visible without noise.
        ("no message", lambda nv, t: EmptyMessage(nv), 400),
        (
            "starved additive spanner (d'=1, shrunk constants)",
            lambda nv, t: AdditiveSpannerBuilder(
                nv, 1, seed=derive_seed("game", t),
                params=AdditiveParams(
                    degree_threshold_factor=0.1, neighborhood_budget_factor=0.3
                ),
            ),
            TRIALS,
        ),
        (
            "matched additive spanner (d'=8)",
            lambda nv, t: AdditiveSpannerBuilder(nv, 8, seed=derive_seed("game", t)),
            TRIALS,
        ),
    ]

    print(f"{'protocol':<48} {'message words':>14} {'Bob success':>12}")
    for name, factory, trials in configurations:
        report = run_spanner_protocol(
            NUM_BLOCKS, BLOCK_SIZE, factory, trials=trials, seed=99
        )
        verdict = "clears 2/3" if report.success_rate >= 2 / 3 else "below 2/3"
        print(f"{name:<48} {report.mean_message_words:>14.0f} "
              f"{report.success_rate:>12.2f}  ({verdict})")

    print("\nReading: with no/starved state Bob hovers near the coin flip and")
    print("cannot clear the 2/3 bar reliably; the space-matched spanner decodes")
    print("every bit — its state carries the Ω(nd) information Theorem 4 demands.")


if __name__ == "__main__":
    main()
