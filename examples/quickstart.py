"""Quickstart: build a 2^k-spanner of a dynamic edge stream in two passes.

Run:  python examples/quickstart.py
"""

from repro.core import TwoPassSpannerBuilder
from repro.graph import connected_gnp, evaluate_multiplicative_stretch
from repro.stream import stream_from_graph


def main() -> None:
    n, k = 96, 2

    # A random graph, delivered as a dynamic stream: edges arrive in
    # random order and 50% extra transient edges are inserted and later
    # deleted (the algorithm cannot tell them apart until the deletions
    # arrive — that is the dynamic streaming model).
    graph = connected_gnp(n, 0.12, seed=7)
    stream = stream_from_graph(graph, seed=7, churn=0.5)
    print(f"input:  n={n}, m={graph.num_edges()} edges, "
          f"{len(stream)} stream tokens ({stream.num_deletions()} deletions)")

    # Theorem 1: two passes, stretch 2^k, ~O(n^{1+1/k}) space.
    builder = TwoPassSpannerBuilder(num_vertices=n, k=k, seed=11)
    output = builder.run(stream)
    spanner = output.spanner

    report = evaluate_multiplicative_stretch(graph, spanner)
    space = builder.space_report()
    print(f"output: {spanner.num_edges()} spanner edges "
          f"({spanner.num_edges() / graph.num_edges():.0%} of input)")
    print(f"stretch: max={report.max_stretch:.2f}, mean={report.mean_stretch:.2f} "
          f"(guarantee: {2 ** k})")
    print(f"passes:  {builder.passes_required}")
    print(f"space:   {space.total_words()} words\n{space.format_table()}")

    assert report.within(2 ** k), "stretch guarantee violated!"
    print("\nOK: the spanner meets the 2^k stretch guarantee.")


if __name__ == "__main__":
    main()
