"""Distance queries on a social-network-style graph, three ways.

The introduction's motivating application: a search/social service wants
approximate distance queries over a massive, constantly changing graph
without storing it.  We compare on a power-law (Chung–Lu) graph:

* the paper's two-pass streaming spanner (dynamic stream, 2^k stretch),
* the paper's one-pass additive spanner (dynamic stream, +O(n/d)),
* the offline Thorup–Zwick oracle (random access, 2k-1 stretch).

Run:  python examples/social_network_distances.py
"""

from repro.baselines import ThorupZwickOracle
from repro.core import AdditiveSpannerBuilder, TwoPassSpannerBuilder
from repro.graph import bfs_distances, power_law_graph
from repro.stream import stream_from_graph
from repro.util.rng import rng_from_seed


def sample_queries(n: int, count: int, seed: int):
    rng = rng_from_seed(seed, "queries")
    queries = []
    while len(queries) < count:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            queries.append((u, v))
    return queries


def spanner_distance(spanner, u, v):
    return bfs_distances(spanner, u).get(v)


def main() -> None:
    n = 128
    graph = power_law_graph(n, exponent=2.2, seed=21)
    stream = stream_from_graph(graph, seed=21, churn=0.5)
    queries = sample_queries(n, 30, seed=22)
    print(f"graph: n={n}, m={graph.num_edges()} (power-law degrees), "
          f"{len(stream)} stream tokens")

    two_pass = TwoPassSpannerBuilder(n, k=2, seed=23)
    multiplicative = two_pass.run(stream).spanner

    additive = AdditiveSpannerBuilder(n, d=4, seed=24).run(stream)

    oracle = ThorupZwickOracle(graph, k=2, seed=25)

    print(f"\n{'pair':>10} {'true':>5} {'2-pass 4x':>10} {'+n/d add.':>10} {'TZ oracle':>10}")
    worst = {"mult": 0.0, "add": 0.0, "tz": 0.0}
    for u, v in queries:
        true = bfs_distances(graph, u).get(v)
        if true is None or true == 0:
            continue
        d_mult = spanner_distance(multiplicative, u, v)
        d_add = spanner_distance(additive, u, v)
        d_tz = oracle.query(u, v)
        print(f"({u:>3},{v:>3}) {true:>5} {d_mult:>10} {d_add:>10} {d_tz:>10.0f}")
        worst["mult"] = max(worst["mult"], d_mult / true)
        worst["add"] = max(worst["add"], d_add - true)
        worst["tz"] = max(worst["tz"], d_tz / true)

    print(f"\nsummary on {len(queries)} random queries:")
    print(f"  two-pass spanner : worst stretch {worst['mult']:.2f} (guarantee 4), "
          f"{multiplicative.num_edges()} edges, dynamic stream")
    print(f"  additive spanner : worst additive error {worst['add']:.0f} "
          f"(guarantee O(n/d) = O({n // 4})), {additive.num_edges()} edges, one pass")
    print(f"  Thorup-Zwick     : worst stretch {worst['tz']:.2f} (guarantee 3), "
          f"{oracle.space_entries()} stored entries, needs random access")


if __name__ == "__main__":
    main()
