"""Setuptools shim.

Kept so ``pip install -e .`` works on machines without the ``wheel``
package (offline environments can't use PEP 517 build isolation); all
project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
