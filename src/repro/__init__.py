"""repro — reproduction of *Spanners and Sparsifiers in Dynamic Streams*
(Kapralov & Woodruff, PODC 2014).

Public API overview
-------------------
``repro.core``
    the paper's algorithms: the two-pass ``2^k``-stretch multiplicative
    spanner (Theorem 1), the one-pass ``O(n/d)``-additive spanner
    (Theorem 3) and the two-pass spectral sparsifier (Corollary 2).
``repro.sketch``
    linear-sketching substrate (sparse recovery, L0 estimate/sample,
    linear hash tables, limited-independence hashing).
``repro.agm``
    AGM spanning-forest / connectivity sketches (Theorem 10 substrate).
``repro.stream``
    the dynamic streaming model: update streams, pass control, space
    accounting, workload generators.
``repro.graph``
    offline graph substrate used for verification: distances, Laplacians,
    effective resistances, cuts, random graphs.
``repro.baselines``
    the algorithms the paper compares against: Baswana–Sen, greedy
    spanners, Thorup–Zwick oracles, Spielman–Srivastava sparsifiers.
``repro.lowerbound``
    the Theorem 4 INDEX-game lower-bound harness.
"""

__version__ = "1.0.0"
