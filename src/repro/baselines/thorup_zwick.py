"""Thorup–Zwick approximate distance oracles [TZ01].

The KP12 sparsification framework that Section 6 of the paper builds on
originally consumed TZ oracles (stretch ``2k-1``); the paper's
contribution is *replacing* them with the two-pass streaming spanner
(stretch ``2^k``).  This offline implementation provides the comparison
point: same oracle interface, classic guarantees, but random access to
the graph.

Preprocessing: vertex hierarchy ``A_0 = V ⊇ A_1 ⊇ ... ⊇ A_k = ∅`` with
``Pr[v in A_{i+1} | v in A_i] = n^{-1/k}``; for each vertex its pivots
``p_i(v)`` (nearest ``A_i`` member) and bunch
``B(v) = ∪_i {w in A_i \\ A_{i+1} : d(w, v) < d(A_{i+1}, v)}``.
Query walks the hierarchy swapping endpoints; stretch ``<= 2k - 1``.
"""

from __future__ import annotations

import heapq
import math

from repro.graph.graph import Graph
from repro.util.rng import rng_from_seed

__all__ = ["ThorupZwickOracle"]


class ThorupZwickOracle:
    """Approximate distance oracle with stretch ``2k - 1``."""

    def __init__(self, graph: Graph, k: int, seed: int | str):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.num_vertices = graph.num_vertices
        rng = rng_from_seed(seed, "thorup-zwick", graph.num_vertices, k)
        probability = graph.num_vertices ** (-1.0 / k)

        levels: list[set[int]] = [set(range(graph.num_vertices))]
        for _ in range(1, k):
            levels.append({v for v in levels[-1] if rng.random() < probability})
        levels.append(set())  # A_k = empty

        # pivot_distance[i][v] = d(A_i, v); pivot[i][v] = argmin witness.
        self._pivot_distance: list[dict[int, float]] = []
        self._pivot: list[dict[int, int]] = []
        for i in range(k + 1):
            distances, witnesses = _multi_source_dijkstra(graph, levels[i])
            self._pivot_distance.append(distances)
            self._pivot.append(witnesses)

        # Bunches: d(w, v) for w in B(v), via truncated Dijkstra from each
        # w in A_i \ A_{i+1} restricted to {v : d(w,v) < d(A_{i+1}, v)}.
        self._bunch: list[dict[int, float]] = [dict() for _ in range(graph.num_vertices)]
        for i in range(k):
            for w in levels[i] - levels[i + 1]:
                for v, dist in _cluster_dijkstra(graph, w, self._pivot_distance[i + 1]).items():
                    self._bunch[v][w] = dist

    def query(self, u: int, v: int) -> float:
        """An estimate ``d(u,v) <= est <= (2k-1) d(u,v)``."""
        if u == v:
            return 0.0
        w = u
        i = 0
        while w not in self._bunch[v]:
            i += 1
            if i >= self.k:
                return math.inf  # different components
            u, v = v, u
            w = self._pivot[i].get(u)
            if w is None:
                return math.inf
        return self._pivot_distance_for(w, u, i) + self._bunch[v][w]

    def _pivot_distance_for(self, w: int, u: int, i: int) -> float:
        if i == 0:
            return 0.0 if w == u else self._bunch[u].get(w, self._pivot_distance[i][u])
        return self._pivot_distance[i][u]

    def space_entries(self) -> int:
        """Number of stored (bunch + pivot) entries — the oracle's size."""
        bunch_entries = sum(len(bunch) for bunch in self._bunch)
        pivot_entries = sum(len(level) for level in self._pivot)
        return bunch_entries + pivot_entries


def _multi_source_dijkstra(graph: Graph, sources: set[int]) -> tuple[dict[int, float], dict[int, int]]:
    """Distances and nearest-source witnesses from a source set."""
    distances: dict[int, float] = {}
    witnesses: dict[int, int] = {}
    heap = [(0.0, s, s) for s in sources]
    heapq.heapify(heap)
    while heap:
        dist, node, witness = heapq.heappop(heap)
        if node in distances:
            continue
        distances[node] = dist
        witnesses[node] = witness
        for neighbor, weight in graph.neighbor_weights(node):
            if neighbor not in distances:
                heapq.heappush(heap, (dist + weight, neighbor, witness))
    return distances, witnesses


def _cluster_dijkstra(graph: Graph, source: int, next_level_distance: dict[int, float]) -> dict[int, float]:
    """Dijkstra from ``source`` restricted to vertices strictly closer to
    ``source`` than to the next level set (the TZ cluster of ``source``)."""
    distances: dict[int, float] = {}
    heap = [(0.0, source)]
    while heap:
        dist, node = heapq.heappop(heap)
        if node in distances:
            continue
        if dist >= next_level_distance.get(node, math.inf):
            continue
        distances[node] = dist
        for neighbor, weight in graph.neighbor_weights(node):
            if neighbor not in distances:
                heapq.heappush(heap, (dist + weight, neighbor))
    return distances
