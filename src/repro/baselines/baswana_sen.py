"""Baswana–Sen ``(2k-1)``-spanners [BS07] (offline baseline).

The paper positions its two-pass streaming construction against this
classic algorithm: Baswana–Sen achieves the conjectured-optimal
``2k - 1`` stretch with ``O(k n^{1+1/k})`` expected size, but needs
random access (or ``O(k)`` streaming passes in the AGM adaptation).  The
E5 experiment reports both on the same inputs.

Algorithm sketch: ``k-1`` rounds of cluster sampling at rate
``n^{-1/k}``.  A clustered vertex whose cluster is not re-sampled either
joins an adjacent sampled cluster through its lightest connecting edge,
or — if none is adjacent — adds its lightest edge to *every* adjacent
cluster and retires.  A final phase connects every vertex to each
surviving adjacent cluster.  Stretch ``2k-1`` is deterministic; the size
bound holds in expectation.
"""

from __future__ import annotations

from repro.graph.graph import Graph
from repro.util.rng import rng_from_seed

__all__ = ["baswana_sen_spanner"]


def baswana_sen_spanner(graph: Graph, k: int, seed: int | str) -> Graph:
    """Compute a ``(2k-1)``-spanner of ``graph`` (weighted supported).

    Parameters
    ----------
    graph:
        Input graph.
    k:
        Stretch parameter; the output is a ``(2k-1)``-spanner with
        ``O(k n^{1+1/k})`` edges in expectation.
    seed:
        Cluster-sampling randomness.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    n = graph.num_vertices
    rng = rng_from_seed(seed, "baswana-sen", n, k)
    sample_probability = n ** (-1.0 / k)

    # Working adjacency (edges are consumed as the algorithm commits).
    work: list[dict[int, float]] = [dict(graph.neighbor_weights(u)) for u in range(n)]
    spanner = Graph(n)

    def commit(u: int, v: int) -> None:
        if not spanner.has_edge(u, v):
            spanner.add_edge(u, v, graph.weight(u, v))

    def drop_edges_to_cluster(v: int, center_of: list[int | None], target: int) -> None:
        for w in [w for w in work[v] if center_of[w] == target]:
            del work[v][w]
            del work[w][v]

    # center[v]: the center of v's cluster, or None once v retires.
    center: list[int | None] = list(range(n))
    live_centers = set(range(n))

    for _ in range(k - 1):
        sampled = {c for c in live_centers if rng.random() < sample_probability}
        next_center: list[int | None] = [None] * n
        for v in range(n):
            if center[v] is None:
                continue
            if center[v] in sampled:
                next_center[v] = center[v]
        for v in range(n):
            if center[v] is None or center[v] in sampled:
                continue
            # Lightest edge from v to each adjacent cluster.
            lightest: dict[int, tuple[float, int]] = {}
            for w, weight in work[v].items():
                c = center[w]
                if c is None:
                    continue
                best = lightest.get(c)
                if best is None or weight < best[0]:
                    lightest[c] = (weight, w)
            sampled_adjacent = {c: e for c, e in lightest.items() if c in sampled}
            if not sampled_adjacent:
                # Retire: one lightest edge per adjacent cluster.
                for c, (_, w) in lightest.items():
                    commit(v, w)
                    drop_edges_to_cluster(v, center, c)
                next_center[v] = None
            else:
                best_center, (best_weight, best_neighbor) = min(
                    sampled_adjacent.items(), key=lambda item: (item[1][0], item[0])
                )
                commit(v, best_neighbor)
                next_center[v] = best_center
                drop_edges_to_cluster(v, center, best_center)
                # Also commit to clusters strictly closer than the joined one.
                for c, (weight, w) in lightest.items():
                    if c != best_center and weight < best_weight:
                        commit(v, w)
                        drop_edges_to_cluster(v, center, c)
        center = next_center
        live_centers = {c for c in center if c is not None}

    # Phase 2: vertex-cluster joining for the surviving clusters.
    for v in range(n):
        lightest: dict[int, tuple[float, int]] = {}
        for w, weight in work[v].items():
            c = center[w]
            if c is None or c == center[v]:
                continue
            best = lightest.get(c)
            if best is None or weight < best[0]:
                lightest[c] = (weight, w)
        for _, (_, w) in lightest.items():
            commit(v, w)

    # Intra-cluster tree edges: joining a cluster committed the connecting
    # edge already (in `commit` above), so the spanner is complete.
    return spanner
