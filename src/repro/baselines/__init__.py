"""Baselines the paper compares against (offline and streaming)."""

from repro.baselines.agm_sparsifier import AgmCutSparsifier
from repro.baselines.baswana_sen import baswana_sen_spanner
from repro.baselines.greedy_spanner import greedy_spanner
from repro.baselines.spielman_srivastava import spielman_srivastava_sparsifier
from repro.baselines.thorup_zwick import ThorupZwickOracle

__all__ = [
    "baswana_sen_spanner",
    "greedy_spanner",
    "ThorupZwickOracle",
    "spielman_srivastava_sparsifier",
    "AgmCutSparsifier",
]
