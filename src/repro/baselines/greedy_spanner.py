"""The classic greedy ``t``-spanner (quality reference).

Scan edges by nondecreasing weight; keep an edge iff the spanner built so
far cannot already connect its endpoints within ``t`` times its weight.
This is the Althöfer et al. construction: stretch exactly ``t`` by
construction and size ``O(n^{1 + 2/(t+1)})``, the best size bound known
for odd ``t = 2k - 1``.  Quadratic-ish time — used only as the quality
yardstick in E5.
"""

from __future__ import annotations

from repro.graph.distances import bfs_distances, dijkstra_distances
from repro.graph.graph import Graph

__all__ = ["greedy_spanner"]


def greedy_spanner(graph: Graph, stretch: float) -> Graph:
    """Compute a ``stretch``-spanner greedily (weighted supported)."""
    if stretch < 1:
        raise ValueError(f"stretch must be >= 1, got {stretch}")
    unweighted = all(weight == 1.0 for _, _, weight in graph.edges())
    spanner = Graph(graph.num_vertices)
    for u, v, weight in sorted(graph.edges(), key=lambda e: (e[2], e[0], e[1])):
        threshold = stretch * weight
        if unweighted:
            found = bfs_distances(spanner, u, cutoff=threshold)
        else:
            found = dijkstra_distances(spanner, u, cutoff=threshold)
        current = found.get(v)
        if current is None or current > threshold:
            spanner.add_edge(u, v, weight)
    return spanner
