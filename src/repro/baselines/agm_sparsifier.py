"""AGM-style single-pass cut sparsifier (simplified comparator).

The paper's Corollary 2 is positioned against the single-pass sparsifiers
of [AGM12b]/[AGM13], which pay either ``n^{1+c}`` space or many passes.
This module implements the *skeleton* of the AGM12b cut-sparsification
route as an honest single-pass baseline:

* geometric edge-sampling levels ``G_0 ⊇ G_1 ⊇ ...`` (rate ``2^-j``);
* at each level a sparse *k-edge-connectivity certificate* — the union of
  ``certificate_size`` successive spanning forests, extracted from
  independent AGM sketch stacks with previously found forests subtracted
  (exactly the linearity trick Theorem 10 enables);
* each surviving edge is assigned weight ``2^{j*(e)}`` for the deepest
  level ``j*`` whose certificate contains it — a strength-proxy in the
  Benczúr–Karger sense.

This reproduces the *shape* of the comparison (single pass, certificate
space ``~ levels * certificate_size * n * polylog``, approximate cuts)
without the full recursive machinery of [AGM13]; E2 measures its cut
quality next to the paper's two-pass spectral pipeline and reports both.
"""

from __future__ import annotations

import math

from repro.agm.spanning_forest import AgmSketch
from repro.graph.graph import Graph, edge_index
from repro.sketch.hashing import NestedSampler
from repro.stream.pipeline import StreamingAlgorithm
from repro.stream.updates import EdgeUpdate
from repro.util.rng import derive_seed

__all__ = ["AgmCutSparsifier"]


class AgmCutSparsifier(StreamingAlgorithm):
    """One-pass cut sparsifier from levelled connectivity certificates.

    Parameters
    ----------
    num_vertices:
        Graph size ``n``.
    seed:
        Randomness name.
    levels:
        Edge-strength levels (default ``ceil(log2 n) + 1``).
    certificate_size:
        Forests per certificate (``k`` in "k-edge-connectivity
        certificate"); larger preserves small cuts more accurately.
    """

    def __init__(
        self,
        num_vertices: int,
        seed: int | str,
        levels: int | None = None,
        certificate_size: int = 4,
        boruvka_rounds: int | None = None,
    ):
        self.num_vertices = num_vertices
        self.levels = levels if levels is not None else max(2, math.ceil(math.log2(max(num_vertices, 2)))) + 1
        self.certificate_size = certificate_size
        self._membership = NestedSampler(
            self.levels - 1, derive_seed(seed, "agm-sparsifier-levels")
        )
        self._stacks = [
            [
                AgmSketch(
                    num_vertices,
                    derive_seed(seed, "stack", level, forest),
                    rounds=boruvka_rounds,
                )
                for forest in range(certificate_size)
            ]
            for level in range(self.levels)
        ]

    @property
    def passes_required(self) -> int:
        return 1

    def process(self, update: EdgeUpdate, pass_index: int) -> None:
        pair = edge_index(update.u, update.v, self.num_vertices)
        deepest = self._membership.level(pair)
        for level in range(deepest + 1):
            for stack in self._stacks[level]:
                stack.update(update.u, update.v, update.sign)

    def finalize(self) -> Graph:
        """Extract certificates level by level and assign weights."""
        deepest_level: dict[tuple[int, int], int] = {}
        for level in range(self.levels):
            removed: dict[tuple[int, int], int] = {}
            for stack in self._stacks[level]:
                if removed:
                    stack.subtract_edges(removed)
                forest = stack.spanning_forest()
                for a, b in forest:
                    pair = (min(a, b), max(a, b))
                    removed[pair] = removed.get(pair, 0) + 1
                    current = deepest_level.get(pair)
                    if current is None or level > current:
                        deepest_level[pair] = level
        sparsifier = Graph(self.num_vertices)
        for (u, v), level in deepest_level.items():
            sparsifier.add_edge(u, v, float(2 ** level))
        return sparsifier

    def space_words(self) -> int:
        """Persistent sketch state in machine words."""
        total = self._membership.space_words()
        for per_level in self._stacks:
            for stack in per_level:
                total += stack.space_words()
        return total
