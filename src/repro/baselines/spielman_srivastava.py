"""Spielman–Srivastava effective-resistance sampling [SS08] (Theorem 7).

The gold-standard offline spectral sparsifier: sample each edge ``e``
independently with probability
``p_e = min(1, C * w_e * R_e * log(n) / eps^2)`` and give sampled edges
weight ``w_e / p_e``.  Requires exact effective resistances (dense
pseudoinverse here), i.e. full random access — the quality bar the
streaming pipeline of Corollary 2 is measured against in E2.
"""

from __future__ import annotations

import math

from repro.graph.graph import Graph
from repro.graph.resistance import edge_resistances
from repro.util.rng import rng_from_seed

__all__ = ["spielman_srivastava_sparsifier"]


def spielman_srivastava_sparsifier(
    graph: Graph,
    eps: float,
    seed: int | str,
    oversample: float = 4.0,
) -> Graph:
    """Sample an ``eps``-spectral sparsifier of ``graph``.

    Parameters
    ----------
    graph:
        Input (should be connected for resistances to be meaningful).
    eps:
        Target spectral approximation.
    seed:
        Sampling randomness.
    oversample:
        The constant ``C`` in the sampling probability; Theorem 7 needs a
        "sufficiently large" constant, 4 is comfortable at test scale.
    """
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    n = graph.num_vertices
    rng = rng_from_seed(seed, "spielman-srivastava")
    resistances = edge_resistances(graph)
    log_n = math.log(max(n, 2))
    sparsifier = Graph(n)
    for (u, v), resistance in resistances.items():
        weight = graph.weight(u, v)
        probability = min(1.0, oversample * weight * resistance * log_n / (eps * eps))
        if rng.random() < probability:
            sparsifier.add_edge(u, v, weight / probability)
    return sparsifier
