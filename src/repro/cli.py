"""Command-line interface: run the paper's algorithms on synthetic streams.

Usage examples::

    python -m repro spanner --n 96 --k 2 --p 0.12 --churn 0.5
    python -m repro additive --n 64 --d 4 --density 0.35
    python -m repro sparsify --n 36 --rounds-factor 0.15
    python -m repro connectivity --n 48 --p 0.1
    python -m repro game --blocks 4 --block-size 16 --budget 8
    python -m repro workload --scenario query-heavy --n 24 --updates 4000
    python -m repro trace --scenario mixed --out trace.jsonl
    python -m repro stats --scenario query-heavy --live
    python -m repro serve --n 24 --updates 8000 --checkpoint-every 2000
    python -m repro chaos --seed 7 --backend serial
    python -m repro info

Each subcommand generates a seeded workload, runs the corresponding
streaming algorithm, verifies the paper's guarantee and prints a short
report.  Everything is deterministic given ``--seed``.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    """argparse type for knobs that must be >= 1 (e.g. --batch-size)."""
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return value


def _non_negative_int(text: str) -> int:
    """argparse type for knobs where 0 means disabled (e.g. --checkpoint-every)."""
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _add_distributed_flags(subparser) -> None:
    """Attach the sharded-execution knobs (--servers/--backend/--discipline)."""
    subparser.add_argument(
        "--servers", type=_positive_int, default=1,
        help="shard the stream across this many sketching servers (1 = single machine)",
    )
    subparser.add_argument(
        "--backend", choices=["serial", "mp"], default="serial",
        help="with --servers > 1: in-process workers or real OS processes",
    )
    subparser.add_argument(
        "--discipline", choices=["round-robin", "by-edge"], default="round-robin",
        help="with --servers > 1: how stream tokens are routed to servers",
    )


def _run_distributed(args, stream, factory):
    """Sharded run + communication printout; returns the coordinator output."""
    from repro.stream import ShardedRunner

    runner = ShardedRunner(
        args.servers,
        backend=args.backend,
        discipline=args.discipline,
        batch_size=args.batch_size,
    )
    result = runner.run(stream, factory)
    print(f"sharded  : {args.servers} servers, {args.backend} backend, "
          f"{args.discipline} discipline")
    for line in result.communication.summary().splitlines():
        print(f"comm     : {line}")
    return result.output


def _add_workload_flags(subparser) -> None:
    """Attach the shared workload-scenario knobs (used by ``workload``,
    ``trace`` and ``stats``, so the three commands drive identical runs)."""
    subparser.add_argument(
        "--scenario",
        choices=["mixed", "query-heavy", "bursty-deletes", "sparse-universe"],
        default="mixed", help="workload shape (see repro.service.workload)",
    )
    subparser.add_argument("--n", type=_positive_int, default=24,
                           help="number of vertices")
    subparser.add_argument("--updates", type=_positive_int, default=4000,
                           help="stream length to generate")
    subparser.add_argument("--k", type=_positive_int, default=2,
                           help="spanner stretch parameter (stretch 2^k)")
    subparser.add_argument("--seed", type=int, default=7)
    subparser.add_argument("--weighted", action="store_true",
                           help="weighted stream (weights in [1, 8))")
    subparser.add_argument("--no-sparsifier", action="store_true",
                           help="disable the sparsifier slot (skips cut queries)")
    subparser.add_argument("--checkpoint-every", type=_non_negative_int, default=0,
                           metavar="N",
                           help="checkpoint the session every N ingested updates")
    subparser.add_argument("--state-dir", default=None,
                           help="directory for checkpoints (default: a temp dir)")
    subparser.add_argument("--universe", type=_positive_int, default=10_000_000,
                           help="sparse-universe scenario: logical vertex-id space size")
    subparser.add_argument("--touched", type=_positive_int, default=None,
                           help="sparse-universe scenario: distinct ids the stream "
                                "touches (default: updates/12)")


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (each subcommand carries a usage
    epilog — ``python -m repro <command> --help``)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Spanners and sparsifiers in dynamic streams (Kapralov-Woodruff PODC'14)",
        epilog=(
            "Each subcommand generates a seeded workload, runs the streaming "
            "algorithm, and verifies the paper's guarantee; exit code 0 means "
            "the guarantee held.  See README.md and docs/paper_map.md."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    fmt = argparse.RawDescriptionHelpFormatter

    spanner = subparsers.add_parser(
        "spanner",
        help="two-pass 2^k-spanner (Theorem 1)",
        formatter_class=fmt,
        epilog=(
            "Builds a G(n,p) graph, streams it with churn (transient edges\n"
            "inserted then deleted), runs Algorithm 1+2 in exactly two passes\n"
            "and checks max stretch <= 2^k.  Space is ~O(n^{1+1/k}) words and\n"
            "is printed from measured sketch sizes.  --batch-size routes the\n"
            "stream through the vectorized sketch engine (identical output;\n"
            "see docs/performance.md).  --servers N shards the stream across\n"
            "N sketching servers (--backend mp forks real processes), prints\n"
            "the per-round coordinator communication in bytes, and verifies\n"
            "the merged output equals the single-stream run.\n\n"
            "example: python -m repro spanner --n 96 --k 2 --p 0.12 --churn 0.5\n"
            "         python -m repro spanner --n 64 --servers 4 --backend mp"
        ),
    )
    spanner.add_argument("--n", type=int, default=64, help="number of vertices")
    spanner.add_argument("--k", type=int, default=2, help="stretch parameter (stretch 2^k)")
    spanner.add_argument("--p", type=float, default=0.15, help="G(n,p) density")
    spanner.add_argument("--churn", type=float, default=0.3, help="transient-edge ratio")
    spanner.add_argument("--seed", type=int, default=7)
    spanner.add_argument(
        "--batch-size", type=_positive_int, default=None,
        help="chunk the stream through the batched sketch engine",
    )
    _add_distributed_flags(spanner)

    additive = subparsers.add_parser(
        "additive",
        help="one-pass additive spanner (Theorem 3)",
        formatter_class=fmt,
        epilog=(
            "One pass of Algorithm 3: low-degree vertices contribute their\n"
            "whole sketched neighborhood, high-degree vertices attach to\n"
            "sampled centers; checks additive error <= 6n/d against the\n"
            "offline distances.  Space grows with d (the theory's ~O(nd)).\n\n"
            "example: python -m repro additive --n 64 --d 4 --density 0.35"
        ),
    )
    additive.add_argument("--n", type=int, default=64)
    additive.add_argument("--d", type=int, default=4, help="space knob (error O(n/d))")
    additive.add_argument("--density", type=float, default=0.35, help="G(n,p) density")
    additive.add_argument("--churn", type=float, default=0.3)
    additive.add_argument("--seed", type=int, default=7)

    sparsify = subparsers.add_parser(
        "sparsify",
        help="two-pass spectral sparsifier (Corollary 2)",
        formatter_class=fmt,
        epilog=(
            "Algorithm 6: robust connectivities from subsampled spanner\n"
            "oracles, Z sampling rounds of augmented spanners, averaged into\n"
            "a weighted sparsifier; reports the spectral approximation ratio\n"
            "and sampled cut discrepancies.  Default mode builds sub-spanners\n"
            "offline with identical semantics; --streaming runs the full\n"
            "sketch pipeline in exactly two passes (slow; keep n small, and\n"
            "use --batch-size to ride the batched sketch engine).\n"
            "--servers N runs the streaming pipeline sharded (implies\n"
            "--streaming), prints coordinator communication in bytes and\n"
            "verifies the merged output equals the single-stream run.\n\n"
            "example: python -m repro sparsify --n 36 --rounds-factor 0.15\n"
            "         python -m repro sparsify --n 16 --servers 2 --backend mp"
        ),
    )
    sparsify.add_argument("--n", type=int, default=36)
    sparsify.add_argument("--p", type=float, default=0.3)
    sparsify.add_argument("--k", type=int, default=2, help="oracle depth (stretch 2^k)")
    sparsify.add_argument(
        "--rounds-factor", type=float, default=0.15,
        help="scale on the theory's Z = Theta(lambda^2 log n / eps^3)",
    )
    sparsify.add_argument(
        "--streaming", action="store_true",
        help="use the full sketch-based pipeline (slow; keep n small)",
    )
    sparsify.add_argument("--seed", type=int, default=7)
    sparsify.add_argument(
        "--batch-size", type=_positive_int, default=None,
        help="with --streaming: chunk size for the batched sketch engine",
    )
    _add_distributed_flags(sparsify)

    connectivity = subparsers.add_parser(
        "connectivity",
        help="one-pass connectivity / bipartiteness (AGM sketches)",
        formatter_class=fmt,
        epilog=(
            "AGM spanning-forest sketches (Theorem 10): one pass, then\n"
            "Boruvka over summed per-vertex L0-samplers yields components;\n"
            "bipartiteness via the double-cover reduction.  Components are\n"
            "verified against the offline ground truth.  --batch-size feeds\n"
            "the sketches through their vectorized update paths.  --servers N\n"
            "shards the stream across N sketching servers, prints coordinator\n"
            "communication in bytes and verifies the merged components equal\n"
            "the single-stream run.\n\n"
            "example: python -m repro connectivity --n 48 --p 0.1 --churn 0.5\n"
            "         python -m repro connectivity --n 48 --servers 4 --backend mp"
        ),
    )
    connectivity.add_argument("--n", type=int, default=48)
    connectivity.add_argument("--p", type=float, default=0.1)
    connectivity.add_argument("--churn", type=float, default=0.5)
    connectivity.add_argument("--seed", type=int, default=7)
    connectivity.add_argument(
        "--batch-size", type=_positive_int, default=None,
        help="chunk the stream through the batched sketch engine",
    )
    _add_distributed_flags(connectivity)

    game = subparsers.add_parser(
        "game",
        help="Theorem 4's INDEX communication game",
        formatter_class=fmt,
        epilog=(
            "Runs the one-way protocol behind the Omega(nd) lower bound:\n"
            "Alice streams her blocks of G(d, 1/2) through the additive\n"
            "spanner, her serialized state is the message, Bob resumes on\n"
            "his path edges and answers the INDEX query.  Budgets matched to\n"
            "the instance clear the 2/3 bar; starved budgets approach a coin\n"
            "flip — the space/distortion tradeoff made visible.\n\n"
            "example: python -m repro game --blocks 4 --block-size 16 --budget 8"
        ),
    )
    game.add_argument("--blocks", type=int, default=4)
    game.add_argument("--block-size", type=int, default=16)
    game.add_argument("--budget", type=int, default=8, help="the algorithm's d' space knob")
    game.add_argument("--trials", type=int, default=12)
    game.add_argument("--seed", type=int, default=7)

    workload = subparsers.add_parser(
        "workload",
        help="run a mixed ingest/query scenario against a live session",
        formatter_class=fmt,
        epilog=(
            "Generates a seeded mixed insert/delete stream with interleaved\n"
            "queries, drives it into a live GraphSession (the sketch-store\n"
            "service of repro.service) and prints throughput plus per-kind\n"
            "query latencies.  Scenarios: mixed (steady churn), query-heavy\n"
            "(the epoch cache's regime), bursty-deletes (delete storms),\n"
            "sparse-universe (a huge --universe id space of which only\n"
            "--touched sampled ids ever appear; the session runs the lazy\n"
            "vertex-space engine and reports resident vs dense-universe\n"
            "sketch words).  The session's components are verified against\n"
            "the exact ledger at the end; exit code 0 means they matched.\n\n"
            "example: python -m repro workload --scenario query-heavy --n 24\n"
            "         python -m repro workload --scenario sparse-universe \\\n"
            "             --universe 10000000 --touched 256 --updates 3000"
        ),
    )
    _add_workload_flags(workload)

    trace = subparsers.add_parser(
        "trace",
        help="run a workload scenario with tracing armed; emit a JSONL trace",
        formatter_class=fmt,
        epilog=(
            "Same machinery as `repro workload`, but with the telemetry\n"
            "layer (repro.obs) armed for the run: every instrumented seam\n"
            "(session ingest/query/cache, sketch scatter/spill/decode,\n"
            "checkpoint bytes, workload phases) streams span records into\n"
            "a JSONL trace (--out), and the terminal gets the phase tree\n"
            "plus counter/histogram tables.  Schema: docs/observability.md.\n\n"
            "example: python -m repro trace --scenario mixed --updates 4000\n"
            "         python -m repro trace --scenario query-heavy --out q.jsonl"
        ),
    )
    _add_workload_flags(trace)
    trace.add_argument("--out", default="repro-trace.jsonl",
                       help="JSONL trace output path (default: repro-trace.jsonl)")

    stats = subparsers.add_parser(
        "stats",
        help="run a workload scenario and print the session's stats block",
        formatter_class=fmt,
        epilog=(
            "Drives a scenario into a live GraphSession and prints the\n"
            "resulting SessionStats (epoch, updates, cache hit/miss/prune/\n"
            "eviction traffic, resident sketch words).  --live additionally\n"
            "arms a telemetry tracer for the run and prints the live phase\n"
            "tree and counters gathered from the instrumented seams.\n\n"
            "example: python -m repro stats --scenario query-heavy --live"
        ),
    )
    _add_workload_flags(stats)
    stats.add_argument("--live", action="store_true",
                       help="collect and print live telemetry (spans + counters)")

    serve = subparsers.add_parser(
        "serve",
        help="long-lived session loop: ingest, query, checkpoint, recover",
        formatter_class=fmt,
        epilog=(
            "Runs the full serving lifecycle on one process: a GraphSession\n"
            "ingests a generated unbounded-style stream chunk by chunk,\n"
            "answers periodic queries, checkpoints every N updates, then a\n"
            "crash is simulated — the session object is discarded, restored\n"
            "from the latest checkpoint, and replays the tail of the stream.\n"
            "Exit code 0 certifies the restored session's final answers are\n"
            "bit-identical to the uninterrupted session's.\n\n"
            "example: python -m repro serve --n 24 --updates 8000 --checkpoint-every 2000"
        ),
    )
    serve.add_argument("--n", type=_positive_int, default=24, help="number of vertices")
    serve.add_argument("--updates", type=_positive_int, default=8000,
                       help="stream length to generate")
    serve.add_argument("--k", type=_positive_int, default=2,
                       help="spanner stretch parameter (stretch 2^k)")
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument("--checkpoint-every", type=_positive_int, default=2000,
                       metavar="N", help="checkpoint cadence in updates")
    serve.add_argument("--query-every", type=_positive_int, default=1000, metavar="N",
                       help="answer a query burst every N updates")
    serve.add_argument("--no-sparsifier", action="store_true",
                       help="disable the sparsifier slot (skips cut queries)")
    serve.add_argument("--state-dir", default=None,
                       help="directory for checkpoints (default: a temp dir)")

    chaos = subparsers.add_parser(
        "chaos",
        help="fault-injected workload: prove recovery is bit-identical",
        formatter_class=fmt,
        epilog=(
            "Runs the same seeded workload twice — clean, and under a fault\n"
            "plan (torn checkpoint write, corrupted checkpoint files, a\n"
            "mid-run crash+restore, a forced decode failure, crashed and\n"
            "hung shard workers) — and verifies the recovered run's final\n"
            "answers are bit-identical to the unfaulted run.  Fault plans\n"
            "are compact clauses: kind@key=value:key=value,kind@...\n"
            "(kinds: worker-crash, worker-hang, checkpoint-truncate,\n"
            "checkpoint-bitflip, io-error, decode-fail; see\n"
            "docs/robustness.md).  Exit code 0 certifies bit-identity.\n\n"
            "example: python -m repro chaos --seed 7\n"
            "         python -m repro chaos --backend mp --faults \\\n"
            "             'worker-crash@round=0:worker=1,checkpoint-bitflip@write=1'"
        ),
    )
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument("--n", type=_positive_int, default=32,
                       help="number of vertices")
    chaos.add_argument("--updates", type=_positive_int, default=600,
                       help="stream length to generate")
    chaos.add_argument("--servers", type=_positive_int, default=3,
                       help="shard workers in the distributed phase")
    chaos.add_argument("--backend", choices=["serial", "mp"], default="serial",
                       help="shard-worker backend for the distributed phase")
    chaos.add_argument("--keep-last", type=_positive_int, default=3,
                       help="checkpoint rotation depth")
    chaos.add_argument("--faults", default=None, metavar="PLAN",
                       help="fault plan clauses (default: the full built-in plan)")
    chaos.add_argument("--state-dir", default=None,
                       help="directory for the faulted run's checkpoints "
                            "(default: a temp dir)")
    chaos.add_argument("--adversarial-rounds", type=_non_negative_int, default=0,
                       metavar="R",
                       help="additionally run the adaptive-deletion scenario for "
                            "R rounds, mitigation off then on (sketch rotation)")

    subparsers.add_parser("info", help="package overview and experiment list")
    return parser


def _cmd_spanner(args) -> int:
    from functools import partial

    from repro.core import TwoPassSpannerBuilder
    from repro.graph import connected_gnp, evaluate_multiplicative_stretch
    from repro.stream import stream_from_graph

    graph = connected_gnp(args.n, args.p, seed=args.seed)
    stream = stream_from_graph(graph, seed=args.seed, churn=args.churn)
    builder = TwoPassSpannerBuilder(args.n, args.k, seed=args.seed + 1)
    output = builder.run(stream, batch_size=args.batch_size)
    print(f"input    : G({args.n}, {args.p}) m={graph.num_edges()}, "
          f"{len(stream)} tokens ({stream.num_deletions()} deletions)")
    identical = True
    if args.servers > 1:
        distributed = _run_distributed(
            args, stream, partial(TwoPassSpannerBuilder, args.n, args.k, args.seed + 1)
        )
        identical = distributed.spanner.edge_set() == output.spanner.edge_set()
        print(f"identical: {'OK' if identical else 'MISMATCH'} "
              f"(sharded output vs single-stream run)")
        output = distributed
    report = evaluate_multiplicative_stretch(graph, output.spanner)
    print(f"spanner  : {output.spanner.num_edges()} edges in {builder.passes_required} passes")
    print(f"stretch  : max {report.max_stretch:.2f} / guarantee {2 ** args.k}")
    print(f"space    : {builder.space_words()} words")
    ok = report.within(2 ** args.k) and identical
    print(f"guarantee: {'OK' if ok else 'VIOLATED'}")
    return 0 if ok else 1


def _cmd_additive(args) -> int:
    from repro.core import AdditiveSpannerBuilder
    from repro.graph import connected_gnp, evaluate_additive_error
    from repro.stream import stream_from_graph

    graph = connected_gnp(args.n, args.density, seed=args.seed)
    stream = stream_from_graph(graph, seed=args.seed, churn=args.churn)
    builder = AdditiveSpannerBuilder(args.n, args.d, seed=args.seed + 1)
    spanner = builder.run(stream)
    error, _ = evaluate_additive_error(graph, spanner)
    budget = 6 * args.n / args.d
    print(f"input    : G({args.n}, {args.density}) m={graph.num_edges()}")
    print(f"spanner  : {spanner.num_edges()} edges in {builder.passes_required} pass")
    print(f"distortion: +{error:.0f} / budget +{budget:.0f}")
    print(f"space    : {builder.space_words()} words "
          f"(low degree: {builder.diagnostics['low_degree']}, "
          f"high: {builder.diagnostics['high_degree']})")
    ok = error <= budget
    print(f"guarantee: {'OK' if ok else 'VIOLATED'}")
    return 0 if ok else 1


def _cmd_sparsify(args) -> int:
    from repro.core import SparsifierParams, SpectralSparsifier, sparsify_stream
    from repro.graph import connected_gnp, max_cut_discrepancy, spectral_approximation
    from repro.stream import stream_from_graph

    graph = connected_gnp(args.n, args.p, seed=args.seed)
    params = SparsifierParams(sampling_rounds_factor=args.rounds_factor)
    identical = True
    if args.streaming or args.servers > 1:
        from functools import partial

        from repro.core import StreamingSparsifier

        stream = stream_from_graph(graph, seed=args.seed, churn=0.3)
        sparsifier = sparsify_stream(
            stream, seed=args.seed + 1, k=args.k, params=params,
            batch_size=args.batch_size,
        )
        mode = "full streaming (2 passes)"
        if args.servers > 1:
            distributed = _run_distributed(
                args, stream,
                partial(StreamingSparsifier, args.n, args.seed + 1, args.k, params),
            )
            identical = (
                {(u, v, w) for u, v, w in distributed.edges()}
                == {(u, v, w) for u, v, w in sparsifier.edges()}
            )
            print(f"identical: {'OK' if identical else 'MISMATCH'} "
                  f"(sharded output vs single-stream run)")
            sparsifier = distributed
            mode = f"distributed streaming ({args.servers} servers)"
    else:
        pipeline = SpectralSparsifier(args.n, seed=args.seed + 1, k=args.k, params=params)
        sparsifier = pipeline.sparsify_graph(graph)
        mode = "offline-oracle pipeline (identical semantics)"
    bounds = spectral_approximation(graph, sparsifier)
    cut = max_cut_discrepancy(graph, sparsifier, trials=60, seed=args.seed + 2)
    print(f"input    : G({args.n}, {args.p}) m={graph.num_edges()}")
    print(f"mode     : {mode}")
    print(f"output   : {sparsifier.num_edges()} weighted edges")
    print(f"spectral : {bounds.low:.2f} <= ratio <= {bounds.high:.2f} (eps {bounds.epsilon():.2f})")
    print(f"cuts     : max sampled discrepancy {cut:.2f}")
    return 0 if identical else 1


def _cmd_connectivity(args) -> int:
    from functools import partial

    from repro.agm import BipartitenessChecker, ConnectivityChecker
    from repro.graph import connected_gnp
    from repro.stream import stream_from_graph

    graph = connected_gnp(args.n, args.p, seed=args.seed)
    stream = stream_from_graph(graph, seed=args.seed, churn=args.churn)
    components = ConnectivityChecker(args.n, seed=args.seed + 1).run(
        stream, batch_size=args.batch_size
    )
    bipartite = BipartitenessChecker(args.n, seed=args.seed + 2).run(
        stream, batch_size=args.batch_size
    )
    print(f"input     : G({args.n}, {args.p}) m={graph.num_edges()}, "
          f"{len(stream)} tokens")
    identical = True
    if args.servers > 1:
        distributed = _run_distributed(
            args, stream, partial(ConnectivityChecker, args.n, args.seed + 1)
        )
        identical = sorted(map(sorted, distributed)) == sorted(map(sorted, components))
        print(f"identical : {'OK' if identical else 'MISMATCH'} "
              f"(sharded components vs single-stream run)")
    print(f"components: {len(components)} (single pass)")
    print(f"bipartite : {bipartite}")
    truth = sorted(map(sorted, graph.connected_components()))
    mine = sorted(map(sorted, components))
    ok = mine == truth and identical
    print(f"verified  : {'OK' if ok else 'MISMATCH'}")
    return 0 if ok else 1


def _cmd_game(args) -> int:
    from repro.core import AdditiveSpannerBuilder
    from repro.lowerbound import run_spanner_protocol
    from repro.util.rng import derive_seed

    def factory(num_vertices, trial):
        return AdditiveSpannerBuilder(
            num_vertices, args.budget, seed=derive_seed(args.seed, "cli-game", trial)
        )

    report = run_spanner_protocol(
        args.blocks, args.block_size, factory, trials=args.trials, seed=args.seed
    )
    print(f"instance : {args.blocks} x G({args.block_size}, 1/2), "
          f"INDEX length r = {report.index_bits} bits")
    print(f"message  : {report.mean_message_bytes:.0f} bytes (serialized state)")
    print(f"success  : {report.success_rate:.2f} over {report.trials} trials "
          f"({'clears' if report.success_rate >= 2 / 3 else 'below'} the 2/3 bar)")
    return 0


def _service_session(args):
    """A GraphSession sized for interactive CLI runs (slim sparsifier)."""
    from repro.core import SparsifierParams
    from repro.service import GraphSession

    params = SparsifierParams(
        estimate_levels=2, sampling_levels=2, sampling_rounds_factor=0.05
    )
    return GraphSession(
        args.n,
        args.seed,
        k=args.k,
        enable_sparsifier=not args.no_sparsifier,
        sparsifier_k=1,
        sparsifier_params=params,
        weight_bounds=(1.0, 8.0) if getattr(args, "weighted", False) else None,
    )


def _sparse_service_session(args, touched: int):
    """A lazy-universe GraphSession sized for the sparse CLI scenario."""
    from repro.core import SparsifierParams, SpannerParams
    from repro.graph import VertexSpace
    from repro.service import GraphSession, SketchLadder

    params = SparsifierParams(
        estimate_reps_factor=0.01, estimate_levels=1, sampling_levels=1,
        sampling_rounds_factor=0.001,
    )
    # The sizing ladder replaces the old manual agm_rounds guess: the
    # session starts at a small rung and promotes itself as the stream's
    # touched set grows (visible as session.ladder.promote in --live).
    return GraphSession(
        VertexSpace.sparse(args.universe),
        args.seed,
        k=args.k,
        enable_sparsifier=not args.no_sparsifier,
        sparsifier_k=1,
        sparsifier_params=params,
        spanner_params=SpannerParams(table_stacks=1, table_capacity_factor=0.75),
        weight_bounds=(1.0, 8.0) if getattr(args, "weighted", False) else None,
        ladder=SketchLadder(start_capacity=min(1024, max(touched, 2))),
    )


def _run_workload(args, tracer=None):
    """Build the scenario's session + ops, run the driver; shared by the
    ``workload``, ``trace`` and ``stats`` commands.  Returns
    ``(report, session, sparse)``."""
    import tempfile

    from repro.service import SCENARIOS, WorkloadDriver, scenario_ops

    sparse = args.scenario == "sparse-universe"
    if sparse:
        divisor = SCENARIOS["sparse-universe"]["touched_divisor"]
        touched = args.touched or min(
            args.universe, max(2, args.updates // divisor)
        )
        session = _sparse_service_session(args, touched)
        num_vertices = args.universe
    else:
        touched = None
        session = _service_session(args)
        num_vertices = args.n
    ops = scenario_ops(
        args.scenario,
        num_vertices,
        args.updates,
        args.seed,
        weights=(1.0, 8.0) if args.weighted else None,
        touched=touched,
    )
    with tempfile.TemporaryDirectory() as tempdir:
        driver = WorkloadDriver(
            session,
            checkpoint_every=args.checkpoint_every,
            checkpoint_dir=args.state_dir or tempdir,
            tracer=tracer,
        )
        report = driver.run(ops, scenario=args.scenario)
    return report, session, sparse


def _print_workload_outcome(args, report, session, sparse) -> bool:
    """Shared tail of the workload-family commands: report table, sparse
    residency lines, ledger verification.  Returns the verification bit."""
    from repro.service import components_match_ledger

    print(report.table())
    if sparse:
        stats = session.stats()
        print(f"universe  : {args.universe:,} ids, {stats.touched_vertices:,} touched")
        print(f"resident  : {stats.space_words:,} sketch words "
              f"(dense universe would hold {stats.universe_space_words:,})")
    ok = components_match_ledger(session)
    print(f"verified  : components {'OK' if ok else 'MISMATCH'} vs exact ledger graph")
    return ok


def _cmd_workload(args) -> int:
    from repro import obs

    report, session, sparse = _run_workload(args)
    ok = _print_workload_outcome(args, report, session, sparse)
    if obs.TRACER.enabled:
        # REPRO_TRACE armed the process-wide tracer: the run above fed
        # it, so surface the phase tree alongside the report.
        print()
        print(obs.phase_tree(obs.TRACER))
        print(f"trace     : {obs.trace_path_from_env()}")
    return 0 if ok else 1


def _cmd_trace(args) -> int:
    from repro import obs

    tracer = obs.Tracer(sink=obs.JsonlSink(args.out))
    previous = obs.set_tracer(tracer)
    try:
        report, session, sparse = _run_workload(args, tracer=tracer)
    finally:
        obs.set_tracer(previous)
    ok = _print_workload_outcome(args, report, session, sparse)
    print()
    print(obs.render_summary(tracer))
    tracer.close()
    print(f"trace     : {args.out}")
    return 0 if ok else 1


def _cmd_stats(args) -> int:
    import dataclasses

    from repro import obs

    tracer = None
    previous = None
    if args.live:
        tracer = obs.Tracer()
        previous = obs.set_tracer(tracer)
    try:
        report, session, sparse = _run_workload(args, tracer=tracer)
    finally:
        if previous is not None:
            obs.set_tracer(previous)
    stats = session.stats()
    print(f"scenario  : {args.scenario} ({report.updates:,} updates, "
          f"{report.queries} queries)")
    for name, value in dataclasses.asdict(stats).items():
        rendered = f"{value:,}" if isinstance(value, int) else value
        print(f"{name:<22}: {rendered}")
    if args.live:
        print()
        print(obs.render_summary(tracer))
    return 0


def _cmd_serve(args) -> int:
    import tempfile
    from pathlib import Path

    from repro.service import GraphSession
    from repro.stream import mixed_workload_stream

    tokens = list(mixed_workload_stream(args.n, args.updates, args.seed))
    session = _service_session(args)
    with tempfile.TemporaryDirectory() as tempdir:
        state_dir = Path(args.state_dir or tempdir)
        chunk = max(1, min(args.query_every, args.checkpoint_every))
        last_checkpoint = None
        checkpointed_at = 0
        since_query = 0
        since_checkpoint = 0
        queries = 0
        for start in range(0, len(tokens), chunk):
            batch = tokens[start : start + chunk]
            session.ingest_batch(batch)
            since_query += len(batch)
            since_checkpoint += len(batch)
            if since_query >= args.query_every:
                since_query = 0
                session.connected(0, 1 % args.n)
                session.spanner_distance(0, 1 % args.n)
                if not args.no_sparsifier:
                    session.cut_estimate(range(args.n // 2 + 1))
                queries += 3 if not args.no_sparsifier else 2
            if since_checkpoint >= args.checkpoint_every and start + chunk < len(tokens):
                # Strictly mid-stream: recovery below must replay a real
                # tail, not restore an already-finished session.
                since_checkpoint = 0
                last_checkpoint = state_dir / f"ckpt-{session.epoch}.bin"
                session.checkpoint(last_checkpoint)
                checkpointed_at = session.updates_ingested
        stats = session.stats()
        print(f"served   : {stats.updates_ingested:,} updates in "
              f"{stats.epoch} epochs, {queries} queries "
              f"({stats.cache_hits} cache hits), "
              f"{stats.live_edges} live edges, {stats.space_words:,} sketch words")
        if last_checkpoint is None:
            print("recovery : skipped (stream shorter than --checkpoint-every)")
            return 0
        reference = session.snapshot_answers()
        print(f"crash    : discarding session; restoring {last_checkpoint.name} "
              f"(update {checkpointed_at:,}) and replaying the tail")
        del session
        restored = GraphSession.restore(last_checkpoint)
        restored.ingest_batch(tokens[restored.updates_ingested:])
        recovered = restored.snapshot_answers()
    ok = recovered == reference
    print(f"recovery : final answers {'bit-identical' if ok else 'MISMATCH'} "
          f"after kill/restore")
    return 0 if ok else 1


def _cmd_chaos(args) -> int:
    from repro.faults.chaos import run_chaos
    from repro.faults.plan import FaultPlan

    plan = None if args.faults is None else FaultPlan.parse(args.faults)
    if plan is not None:
        print("fault plan:")
        for line in plan.describe().splitlines():
            print(f"  {line}")
    report = run_chaos(
        args.seed,
        num_vertices=args.n,
        updates=args.updates,
        servers=args.servers,
        backend=args.backend,
        keep_last=args.keep_last,
        plan=plan,
        workdir=args.state_dir,
    )
    print(report.summary())
    ok = report.identical
    if args.adversarial_rounds:
        from repro.service import GraphSession, WorkloadDriver

        print()
        for rotate_every in (0, 2):
            session = GraphSession(
                args.n, args.seed, enable_spanner=False, enable_sparsifier=False
            )
            adversarial = WorkloadDriver(session).run_adversarial(
                args.adversarial_rounds, max(4, args.n // 3), args.seed,
                rotate_every=rotate_every,
            )
            label = "mitigated" if rotate_every else "unmitigated"
            print(f"{label:<11}: {adversarial.summary()}")
    print(f"chaos     : {'OK' if ok else 'DIVERGED'}")
    return 0 if ok else 1


def _cmd_info(_args) -> int:
    from repro import __version__

    print(f"repro {__version__} — Kapralov & Woodruff, PODC 2014 reproduction")
    print("results: Thm 1 (2-pass 2^k-spanner), Cor 2 (2-pass sparsifier),")
    print("         Thm 3 (1-pass additive spanner), Thm 4 (Omega(nd) bound)")
    print("serving: repro serve / repro workload — live sketch-store sessions")
    print("experiments: pytest benchmarks/ --benchmark-only  (E1-E8 + batch engine)")
    print("docs: README.md, docs/paper_map.md, docs/performance.md")
    return 0


_COMMANDS = {
    "spanner": _cmd_spanner,
    "additive": _cmd_additive,
    "sparsify": _cmd_sparsify,
    "connectivity": _cmd_connectivity,
    "game": _cmd_game,
    "workload": _cmd_workload,
    "trace": _cmd_trace,
    "stats": _cmd_stats,
    "serve": _cmd_serve,
    "chaos": _cmd_chaos,
    "info": _cmd_info,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
