"""Checkpoint/restore for live sessions — crash durability in one file.

A checkpoint is everything a :class:`~repro.service.session.GraphSession`
cannot re-derive from its seed:

* a JSON header with the session *configuration* (vertex space, seed,
  enabled slots, parameter dataclasses, weight bounds, AGM rounds,
  sketch-rotation counter) and counters (epoch, updates ingested) —
  configuration re-derives every hash family, so no randomness is ever
  written.  Interned spaces also persist their external-id table in
  logical order, so a restored session re-derives the identical id
  assignment;
* the *ledger* (live-edge multiplicities and exact float64 weight bits);
* every enabled algorithm's pass-0 dynamic state through the same
  ``shard_state_ints`` / varint protocol the distributed runner ships
  over the wire (:mod:`repro.sketch.serialize`) — a checkpoint is
  literally a coordinator message written to disk.

Restoring builds a fresh same-config session (identical derived
randomness), overwrites the dynamic state in place, and resumes: because
every later ingest and decode is deterministic given the state, a
killed-and-restored session finishes with answers bit-identical to an
uninterrupted run — the property ``tests/service/test_checkpoint_restore.py``
pins down for all three algorithms on weighted and unweighted streams.

Durability posture (v3):

* **Atomic writes** — temp file + ``os.replace``; a crash *during*
  checkpointing leaves the previous checkpoint intact, and a failed
  write (e.g. disk full) cleans up its temp file and surfaces as
  :class:`CheckpointError`.
* **CRC32-framed sections** — header and payload are each wrapped in a
  ``(length, crc32)`` frame, so truncation and bit-rot are *detected*
  (pointed :class:`CheckpointError`) instead of decoding into silently
  wrong sketch state.
* **Keep-last-N rotation + fallback** — :class:`CheckpointStore` keeps
  the newest N checkpoints of a session and its :meth:`~CheckpointStore.load_latest`
  walks newest→oldest past corrupt files (counting
  ``checkpoint.corrupt_detected`` / ``checkpoint.fallback``), so one
  torn file costs re-ingesting one checkpoint interval, not the session.

Fault injection (:mod:`repro.faults`) hooks the writer: a plan can
force an ``OSError`` mid-write or corrupt the just-renamed file, which
is how the chaos suite proves the recovery paths above actually run.
"""

from __future__ import annotations

import dataclasses
import json
import os
import struct
import zlib
from pathlib import Path

from repro import faults, obs
from repro.core.parameters import SpannerParams, SparsifierParams
from repro.graph.vertex_space import VertexSpace
from repro.service.ladder import SketchLadder
from repro.service.session import GraphSession
from repro.sketch.serialize import pack_ints, unpack_ints

__all__ = [
    "CheckpointError",
    "CheckpointStore",
    "save_session",
    "load_session",
]

#: File magic; bump the suffix on incompatible layout changes.
#: v3: CRC32-framed sections — header and payload each carry a
#: ``(length, crc32)`` frame so corruption is detected at load time.
MAGIC = b"repro-sketchstore-v3\n"

#: Previous layouts, recognized only to fail with a pointed message.
_STALE_MAGICS = (b"repro-sketchstore-v1\n", b"repro-sketchstore-v2\n")

#: Per-section frame: big-endian (byte length, CRC32 of the bytes).
_FRAME = struct.Struct(">II")


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, truncated, or inconsistent."""


def _float_bits(value: float) -> int:
    """Exact float64 -> int encoding (weights must round-trip bit-for-bit)."""
    return struct.unpack(">Q", struct.pack(">d", value))[0]


def _bits_float(bits: int) -> float:
    """Inverse of :func:`_float_bits`."""
    return struct.unpack(">d", struct.pack(">Q", bits))[0]


def _params_dict(params) -> dict | None:
    return None if params is None else dataclasses.asdict(params)


def _header(session: GraphSession) -> dict:
    return {
        "num_vertices": session.num_vertices,
        "space": session.space.config(),
        "externals": session.space.externals(),
        "agm_rounds": session.agm_rounds,
        "seed": session.seed,
        "k": session.k,
        "enable_spanner": session.enable_spanner,
        "enable_sparsifier": session.enable_sparsifier,
        "sparsifier_k": session.sparsifier_k,
        "sparsifier_params": _params_dict(session.sparsifier_params),
        "spanner_params": _params_dict(session.spanner_params),
        "weight_bounds": (
            None
            if session.weight_bounds is None
            else [_float_bits(session.weight_bounds[0]), _float_bits(session.weight_bounds[1])]
        ),
        "rotation": session.rotation,
        "ladder": None if session.ladder is None else session.ladder.config(),
        "epoch": session.epoch,
        "updates_ingested": session.updates_ingested,
    }


def _frame(section: bytes) -> tuple[bytes, bytes]:
    """A section's ``(length, crc32)`` frame header plus the section."""
    return _FRAME.pack(len(section), zlib.crc32(section) & 0xFFFFFFFF), section


def _write_atomic(path: Path, chunks: list[bytes], fail_at_byte: int | None) -> int:
    """Write ``chunks`` to ``path`` via temp + rename; returns bytes written.

    ``fail_at_byte`` is the fault-injection budget: when set, an
    :class:`OSError` fires once that many bytes are out, modelling a
    full disk / yanked volume.  Any :class:`OSError` (injected or real)
    removes the temp file and re-raises as :class:`CheckpointError`, so
    a failed save leaves the previous checkpoint intact and no temp
    litter behind.
    """
    temp = path.with_name(path.name + ".tmp")
    written = 0
    try:
        with open(temp, "wb") as handle:
            for chunk in chunks:
                if fail_at_byte is not None and written + len(chunk) > fail_at_byte:
                    handle.write(chunk[: fail_at_byte - written])
                    raise OSError(
                        f"injected I/O error after {fail_at_byte} bytes"
                    )
                handle.write(chunk)
                written += len(chunk)
        os.replace(temp, path)
    except OSError as error:
        temp.unlink(missing_ok=True)
        obs.TRACER.count("checkpoint.write_failures")
        raise CheckpointError(f"cannot write checkpoint {path}: {error}") from error
    return written


def save_session(session: GraphSession, path) -> None:
    """Write ``session``'s full state to ``path`` atomically.

    Layout: magic line, then two CRC32-framed sections — the JSON
    header and a varint-packed int sequence holding the ledger followed
    by one length-prefixed ``shard_state_ints(0)`` block per enabled
    algorithm.  Raises :class:`CheckpointError` if the write fails (the
    temp file is cleaned up and any previous checkpoint is untouched).
    """
    with obs.TRACER.span("checkpoint.save"):
        flat: list[int] = [len(session._multiplicity)]
        for pair in sorted(session._multiplicity):
            flat.extend(
                (
                    pair[0],
                    pair[1],
                    session._multiplicity[pair],
                    _float_bits(session._weight[pair]),
                )
            )
        for algorithm in session._algorithms():
            block = algorithm.shard_state_ints(0)
            flat.append(len(block))
            flat.extend(block)
        payload = pack_ints(flat)
        header = json.dumps(_header(session), sort_keys=True).encode("utf-8")

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        injected = faults.ACTIVE.checkpoint_faults() if faults.ACTIVE is not None else None
        chunks = [MAGIC, *_frame(header), *_frame(payload)]
        total = _write_atomic(
            path, chunks, None if injected is None else injected.fail_at_byte
        )
        if injected is not None:
            for spec in injected.corrupt:
                faults.apply_corruption(path, spec)
                faults.ACTIVE.record(f"{spec.describe()} path={path.name}")
    obs.TRACER.count("checkpoint.writes")
    obs.TRACER.count("checkpoint.bytes_written", total)
    obs.TRACER.observe("checkpoint.bytes", total)


def load_session(path) -> GraphSession:
    """Rebuild the checkpointed session from ``path``, bit-identically.

    Raises :class:`CheckpointError` on a missing/corrupt file.  The
    returned session continues exactly where the saved one stopped: same
    epoch, same counters, same sketch cells — so its future answers
    match an uninterrupted run's.
    """
    with obs.TRACER.span("checkpoint.load"):
        return _load_session(path)


def _read_section(path: Path, data: bytes, start: int, what: str) -> tuple[bytes, int]:
    """Decode one CRC32-framed section; returns (section, next offset)."""
    if start + _FRAME.size > len(data):
        raise CheckpointError(f"{path}: truncated {what} frame")
    length, stored_crc = _FRAME.unpack_from(data, start)
    end = start + _FRAME.size + length
    if end > len(data):
        raise CheckpointError(
            f"{path}: truncated {what} section ({end - len(data)} bytes missing)"
        )
    section = data[start + _FRAME.size : end]
    actual_crc = zlib.crc32(section) & 0xFFFFFFFF
    if actual_crc != stored_crc:
        raise CheckpointError(
            f"{path}: {what} CRC mismatch "
            f"(stored 0x{stored_crc:08x}, computed 0x{actual_crc:08x})"
        )
    return section, end


def _load_session(path) -> GraphSession:
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as error:
        raise CheckpointError(f"cannot read checkpoint {path}: {error}") from error
    obs.TRACER.count("checkpoint.restores")
    obs.TRACER.count("checkpoint.bytes_read", len(data))
    if not data.startswith(MAGIC):
        for stale in _STALE_MAGICS:
            if data.startswith(stale):
                raise CheckpointError(
                    f"{path} is a {stale[:-1].decode()} checkpoint; the CRC-framed "
                    "v3 layout changed the file format — re-create the session "
                    "and take a fresh checkpoint"
                )
        raise CheckpointError(f"{path} is not a sketch-store checkpoint")

    header_bytes, cursor_bytes = _read_section(path, data, len(MAGIC), "header")
    payload, cursor_bytes = _read_section(path, data, cursor_bytes, "payload")
    if cursor_bytes != len(data):
        raise CheckpointError(
            f"{path}: {len(data) - cursor_bytes} trailing bytes after payload"
        )
    try:
        header = json.loads(header_bytes.decode("utf-8"))
        values = unpack_ints(payload)
    except ValueError as error:
        raise CheckpointError(f"{path}: corrupt checkpoint: {error}") from error

    weight_bounds = header["weight_bounds"]
    if weight_bounds is not None:
        weight_bounds = (_bits_float(weight_bounds[0]), _bits_float(weight_bounds[1]))
    sparsifier_params = header["sparsifier_params"]
    spanner_params = header["spanner_params"]
    space = VertexSpace.from_config(header["space"])
    if space.is_interned:
        space.load_externals(header["externals"])
    # Pre-ladder checkpoints (<= PR 9) have no "ladder" key: .get keeps
    # them restorable, with the round depth coming from agm_rounds.
    ladder_config = header.get("ladder")
    ladder = None if ladder_config is None else SketchLadder.from_config(ladder_config)
    session = GraphSession(
        space,
        header["seed"],
        k=header["k"],
        enable_spanner=header["enable_spanner"],
        enable_sparsifier=header["enable_sparsifier"],
        sparsifier_k=header["sparsifier_k"],
        sparsifier_params=(
            None if sparsifier_params is None else SparsifierParams(**sparsifier_params)
        ),
        spanner_params=(
            None if spanner_params is None else SpannerParams(**spanner_params)
        ),
        weight_bounds=weight_bounds,
        agm_rounds=None if ladder is not None else header["agm_rounds"],
        rotation=int(header["rotation"]),
        ladder=ladder,
    )

    cursor = 0
    try:
        ledger_len = values[cursor]
        cursor += 1
        for _ in range(ledger_len):
            u, v, multiplicity, weight_bits = values[cursor : cursor + 4]
            cursor += 4
            session._multiplicity[(int(u), int(v))] = int(multiplicity)
            session._weight[(int(u), int(v))] = _bits_float(int(weight_bits))
        for algorithm in session._algorithms():
            length = int(values[cursor])
            cursor += 1
            algorithm.load_shard_state_ints(0, values[cursor : cursor + length])
            cursor += length
    except (IndexError, ValueError) as error:
        raise CheckpointError(f"{path}: inconsistent payload: {error}") from error
    if cursor != len(values):
        raise CheckpointError(
            f"{path}: {len(values) - cursor} unconsumed payload ints"
        )
    session.epoch = int(header["epoch"])
    session.updates_ingested = int(header["updates_ingested"])
    return session


class CheckpointStore:
    """Keep-last-N rotating checkpoints with newest-intact fallback.

    A store owns one directory of ``ckpt-<epoch>.bin`` files for one
    session.  :meth:`save` writes the session at its current epoch and
    prunes beyond ``keep_last``; :meth:`load_latest` restores from the
    newest checkpoint that passes the CRC frames, walking past corrupt
    or torn files (each counted as ``checkpoint.corrupt_detected``)
    and recording how many were skipped on the restored session's
    ``checkpoint_fallbacks`` counter.  Only when *every* candidate is
    bad does it raise, with a :class:`CheckpointError` naming each
    file's failure.
    """

    def __init__(self, root, keep_last: int = 3):
        if keep_last < 1:
            raise ValueError(f"keep_last must be >= 1, got {keep_last}")
        self.root = Path(root)
        self.keep_last = keep_last

    def path_for(self, epoch: int) -> Path:
        """The checkpoint file path for ``epoch``."""
        # Zero-padded so lexicographic directory order == epoch order.
        return self.root / f"ckpt-{epoch:012d}.bin"

    def checkpoints(self) -> list[Path]:
        """All checkpoint files, oldest first."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("ckpt-*.bin"))

    def save(self, session: GraphSession) -> Path:
        """Checkpoint ``session`` at its current epoch and prune old files."""
        path = self.path_for(session.epoch)
        save_session(session, path)
        for stale in self.checkpoints()[: -self.keep_last]:
            stale.unlink(missing_ok=True)
        return path

    def load_latest(self) -> GraphSession:
        """Restore from the newest intact checkpoint, newest→oldest."""
        candidates = self.checkpoints()
        if not candidates:
            raise CheckpointError(f"no checkpoints under {self.root}")
        failures: list[str] = []
        last_error: CheckpointError | None = None
        for candidate in reversed(candidates):
            try:
                session = load_session(candidate)
            except CheckpointError as error:
                obs.TRACER.count("checkpoint.corrupt_detected")
                failures.append(str(error))
                last_error = error
                continue
            if failures:
                obs.TRACER.count("checkpoint.fallback", len(failures))
                session.checkpoint_fallbacks = len(failures)
            return session
        summary = "; ".join(failures)
        raise CheckpointError(
            f"all {len(candidates)} checkpoints under {self.root} are corrupt: "
            f"{summary}"
        ) from last_error
