"""Checkpoint/restore for live sessions — crash durability in one file.

A checkpoint is everything a :class:`~repro.service.session.GraphSession`
cannot re-derive from its seed:

* a JSON header with the session *configuration* (vertex space, seed,
  enabled slots, parameter dataclasses, weight bounds, AGM rounds) and
  counters (epoch, updates ingested) — configuration re-derives every
  hash family, so no randomness is ever written.  Interned spaces also
  persist their external-id table in logical order, so a restored
  session re-derives the identical id assignment;
* the *ledger* (live-edge multiplicities and exact float64 weight bits);
* every enabled algorithm's pass-0 dynamic state through the same
  ``shard_state_ints`` / varint protocol the distributed runner ships
  over the wire (:mod:`repro.sketch.serialize`) — a checkpoint is
  literally a coordinator message written to disk.

Restoring builds a fresh same-config session (identical derived
randomness), overwrites the dynamic state in place, and resumes: because
every later ingest and decode is deterministic given the state, a
killed-and-restored session finishes with answers bit-identical to an
uninterrupted run — the property ``tests/service/test_checkpoint_restore.py``
pins down for all three algorithms on weighted and unweighted streams.

Writes are atomic (temp file + ``os.replace``), so a crash *during*
checkpointing leaves the previous checkpoint intact.
"""

from __future__ import annotations

import dataclasses
import json
import os
import struct
from pathlib import Path

from repro import obs
from repro.core.parameters import SpannerParams, SparsifierParams
from repro.graph.vertex_space import VertexSpace
from repro.service.session import GraphSession
from repro.sketch.serialize import pack_ints, unpack_ints

__all__ = ["CheckpointError", "save_session", "load_session"]

#: File magic; bump the suffix on incompatible layout changes.
#: v2: sparse vertex-universe engine — algorithm blocks carry logical
#: row ids (nonzero/live rows only) and the header carries the vertex
#: space configuration plus any interned external-id table.
MAGIC = b"repro-sketchstore-v2\n"

#: Previous layouts, recognized only to fail with a pointed message.
_STALE_MAGICS = (b"repro-sketchstore-v1\n",)


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, truncated, or inconsistent."""


def _float_bits(value: float) -> int:
    """Exact float64 -> int encoding (weights must round-trip bit-for-bit)."""
    return struct.unpack(">Q", struct.pack(">d", value))[0]


def _bits_float(bits: int) -> float:
    """Inverse of :func:`_float_bits`."""
    return struct.unpack(">d", struct.pack(">Q", bits))[0]


def _params_dict(params) -> dict | None:
    return None if params is None else dataclasses.asdict(params)


def _header(session: GraphSession) -> dict:
    return {
        "num_vertices": session.num_vertices,
        "space": session.space.config(),
        "externals": session.space.externals(),
        "agm_rounds": session.agm_rounds,
        "seed": session.seed,
        "k": session.k,
        "enable_spanner": session.enable_spanner,
        "enable_sparsifier": session.enable_sparsifier,
        "sparsifier_k": session.sparsifier_k,
        "sparsifier_params": _params_dict(session.sparsifier_params),
        "spanner_params": _params_dict(session.spanner_params),
        "weight_bounds": (
            None
            if session.weight_bounds is None
            else [_float_bits(session.weight_bounds[0]), _float_bits(session.weight_bounds[1])]
        ),
        "epoch": session.epoch,
        "updates_ingested": session.updates_ingested,
    }


def save_session(session: GraphSession, path) -> None:
    """Write ``session``'s full state to ``path`` atomically.

    Layout: magic line, one JSON header line, then a varint-packed int
    sequence holding the ledger followed by one length-prefixed
    ``shard_state_ints(0)`` block per enabled algorithm.
    """
    with obs.TRACER.span("checkpoint.save"):
        flat: list[int] = [len(session._multiplicity)]
        for pair in sorted(session._multiplicity):
            flat.extend(
                (
                    pair[0],
                    pair[1],
                    session._multiplicity[pair],
                    _float_bits(session._weight[pair]),
                )
            )
        for algorithm in session._algorithms():
            block = algorithm.shard_state_ints(0)
            flat.append(len(block))
            flat.extend(block)
        payload = pack_ints(flat)
        header = json.dumps(_header(session), sort_keys=True).encode("utf-8")

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        temp = path.with_name(path.name + ".tmp")
        with open(temp, "wb") as handle:
            handle.write(MAGIC)
            handle.write(header)
            handle.write(b"\n")
            handle.write(payload)
        os.replace(temp, path)
        total = len(MAGIC) + len(header) + 1 + len(payload)
    obs.TRACER.count("checkpoint.writes")
    obs.TRACER.count("checkpoint.bytes_written", total)
    obs.TRACER.observe("checkpoint.bytes", total)


def load_session(path) -> GraphSession:
    """Rebuild the checkpointed session from ``path``, bit-identically.

    Raises :class:`CheckpointError` on a missing/corrupt file.  The
    returned session continues exactly where the saved one stopped: same
    epoch, same counters, same sketch cells — so its future answers
    match an uninterrupted run's.
    """
    with obs.TRACER.span("checkpoint.load"):
        return _load_session(path)


def _load_session(path) -> GraphSession:
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as error:
        raise CheckpointError(f"cannot read checkpoint {path}: {error}") from error
    obs.TRACER.count("checkpoint.restores")
    obs.TRACER.count("checkpoint.bytes_read", len(data))
    if not data.startswith(MAGIC):
        for stale in _STALE_MAGICS:
            if data.startswith(stale):
                raise CheckpointError(
                    f"{path} is a {stale[:-1].decode()} checkpoint; the sparse "
                    "vertex-universe engine changed the state layout — "
                    "re-create the session and take a fresh checkpoint"
                )
        raise CheckpointError(f"{path} is not a sketch-store checkpoint")
    body = data[len(MAGIC):]
    newline = body.find(b"\n")
    if newline < 0:
        raise CheckpointError(f"{path}: truncated header")
    try:
        header = json.loads(body[:newline].decode("utf-8"))
        values = unpack_ints(body[newline + 1 :])
    except ValueError as error:
        raise CheckpointError(f"{path}: corrupt checkpoint: {error}") from error

    weight_bounds = header["weight_bounds"]
    if weight_bounds is not None:
        weight_bounds = (_bits_float(weight_bounds[0]), _bits_float(weight_bounds[1]))
    sparsifier_params = header["sparsifier_params"]
    spanner_params = header["spanner_params"]
    space = VertexSpace.from_config(header["space"])
    if space.is_interned:
        space.load_externals(header["externals"])
    session = GraphSession(
        space,
        header["seed"],
        k=header["k"],
        enable_spanner=header["enable_spanner"],
        enable_sparsifier=header["enable_sparsifier"],
        sparsifier_k=header["sparsifier_k"],
        sparsifier_params=(
            None if sparsifier_params is None else SparsifierParams(**sparsifier_params)
        ),
        spanner_params=(
            None if spanner_params is None else SpannerParams(**spanner_params)
        ),
        weight_bounds=weight_bounds,
        agm_rounds=header["agm_rounds"],
    )

    cursor = 0
    try:
        ledger_len = values[cursor]
        cursor += 1
        for _ in range(ledger_len):
            u, v, multiplicity, weight_bits = values[cursor : cursor + 4]
            cursor += 4
            session._multiplicity[(int(u), int(v))] = int(multiplicity)
            session._weight[(int(u), int(v))] = _bits_float(int(weight_bits))
        for algorithm in session._algorithms():
            length = int(values[cursor])
            cursor += 1
            algorithm.load_shard_state_ints(0, values[cursor : cursor + length])
            cursor += length
    except (IndexError, ValueError) as error:
        raise CheckpointError(f"{path}: inconsistent payload: {error}") from error
    if cursor != len(values):
        raise CheckpointError(
            f"{path}: {len(values) - cursor} unconsumed payload ints"
        )
    session.epoch = int(header["epoch"])
    session.updates_ingested = int(header["updates_ingested"])
    return session
