"""The live sketch-store service layer.

Everything below :mod:`repro.core` answers questions about a *finished*
stream; this package serves questions about a stream that never
finishes.  It is the serving layer the ROADMAP's production north star
builds on:

* :class:`GraphSession` — continuous :class:`~repro.stream.updates.EdgeUpdate`
  ingest into live linear-sketch state, snapshot queries
  (``connected``, ``spanning_forest``, ``spanner_distance``,
  ``cut_estimate``) answered mid-stream from finalized *clones*, with an
  epoch-tagged result cache invalidated by ingest;
* :mod:`repro.service.checkpoint` — crash-durable save/restore of a
  session through the same varint wire protocol the distributed runner
  uses, recovering bit-identical state;
* :class:`WorkloadDriver` — mixed ingest/query scenario execution with
  throughput and latency accounting (``python -m repro workload`` /
  ``python -m repro serve`` drive it from the command line).

Quick tour::

    from repro.service import GraphSession
    from repro.stream import mixed_workload_stream

    session = GraphSession(num_vertices=64, seed=7)
    for chunk in mixed_workload_stream(64, 10_000, seed=7).iter_batches(1024):
        session.ingest_batch(chunk)
        if session.connected(0, 1):
            print(session.spanner_distance(0, 1))

    session.checkpoint("state.bin")            # survive a crash ...
    session = GraphSession.restore("state.bin")  # ... resume bit-identically
"""

from repro.service.checkpoint import (
    CheckpointError,
    CheckpointStore,
    load_session,
    save_session,
)
from repro.service.ladder import SketchLadder, rounds_for_capacity
from repro.service.session import GraphSession, QueryOutcome, SessionStats
from repro.service.workload import (
    components_match_ledger,
    SCENARIOS,
    AdversarialReport,
    LatencySummary,
    WorkloadDriver,
    WorkloadReport,
    scenario_ops,
)

__all__ = [
    "GraphSession",
    "SessionStats",
    "QueryOutcome",
    "SketchLadder",
    "rounds_for_capacity",
    "CheckpointError",
    "CheckpointStore",
    "save_session",
    "load_session",
    "WorkloadDriver",
    "WorkloadReport",
    "AdversarialReport",
    "LatencySummary",
    "SCENARIOS",
    "components_match_ledger",
    "scenario_ops",
]
