"""The live sketch store: one long-lived, queryable session per graph.

PRs 1-2 made the paper's algorithms fast (batched kernels) and
distributed (sharded execution), but every answer still required
replaying a finite stream end to end.  :class:`GraphSession` turns the
same linear sketches into a *service*: it owns one mergeable sketch
state per graph, accepts continuous :class:`~repro.stream.updates.EdgeUpdate`
ingest forever, and answers connectivity / spanner / cut queries at any
point of the unbounded stream — the serving model the paper's
``S x = S x^1 + ... + S x^s`` identity was built for.

How queries work mid-stream
---------------------------
Every query *finalizes a clone* of the sketch state (the ``clone()``
contract of :mod:`repro.sketch`), so decoding never perturbs — and is
never perturbed by — continued ingest.  The two-pass algorithms pose an
extra puzzle: their second pass re-reads the stream, which a live
session cannot do.  Linearity dissolves it: pass-2 state is a linear
function of the update tokens, so tokens that canceled (an insert and
its later delete) contribute exactly zero to every cell — replaying only
the *net* live-edge multiset lands in bit-identical pass-2 state.  The
session keeps that multiset (the *ledger*: multiplicity and weight per
live pair, exactly what :class:`~repro.stream.stream.DynamicStream`
tracks to enforce the model) and synthesizes pass 2 from it at query
time.

Epoch-tagged caching
--------------------
Finalizing a snapshot costs a full decode (Borůvka, forest build, table
peeling), which would be wasteful for a query-heavy workload where the
graph changes rarely.  Every successful ingest bumps the session
``epoch``; every query result is memoized under its epoch, so repeated
queries between updates are a dictionary hit (the service benchmark
gates this at >= 10x cheaper than the first finalize).

Durability
----------
:meth:`GraphSession.checkpoint` persists the full session state through
the same ``state_ints()``/``from_state_ints()`` varint protocol the
distributed runner ships over the wire;
:meth:`GraphSession.restore` recovers it bit-identically after a crash
(see :mod:`repro.service.checkpoint`).
"""

from __future__ import annotations

import math
import operator
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.agm.connectivity import ConnectivityChecker
from repro.agm.spanning_forest import DisjointSets, SparseDisjointSets
from repro.core.parameters import SpannerParams, SparsifierParams
from repro.core.sparsify import StreamingSparsifier, StreamingWeightedSparsifier
from repro.core.two_pass_spanner import TwoPassSpannerBuilder
from repro.graph.cuts import cut_value
from repro.graph.distances import bfs_distances
from repro.graph.graph import Graph
from repro.graph.vertex_space import VertexSpace, as_vertex_space
from repro import faults, obs
from repro.service.ladder import SketchLadder
from repro.sketch import kernels as _kernels
from repro.stream.space import SpaceReport
from repro.stream.updates import EdgeUpdate
from repro.util import sanitize as _sanitize
from repro.util.rng import derive_seed

__all__ = ["GraphSession", "SessionStats", "QueryOutcome"]

#: Chunk length used when feeding ingest batches and pass-2 replays
#: through the batched sketch engine.
_REPLAY_CHUNK = 65_536


@dataclass(frozen=True)
class SessionStats:
    """A point-in-time summary of a :class:`GraphSession`."""

    epoch: int
    updates_ingested: int
    live_edges: int
    cache_hits: int
    cache_misses: int
    #: Entries dropped because their epoch went stale (ingest pruning).
    cache_prunes: int
    #: Entries dropped to hold the same-epoch entry bound (per-source
    #: BFS keys would otherwise grow without limit within an epoch).
    cache_evictions: int
    #: Memoized query results currently resident.
    cache_entries: int
    space_words: int
    #: What a dense allocation over the full vertex universe would hold;
    #: equals ``space_words`` for dense sessions, and dwarfs it for lazy
    #: sparse-universe sessions (resident state tracks touched vertices).
    universe_space_words: int
    #: Vertices holding resident sketch rows (dense: the universe size).
    touched_vertices: int
    #: Corrupt checkpoints skipped by the last ``CheckpointStore``
    #: fallback that restored this session (0 = newest was intact).
    checkpoint_fallbacks: int = 0
    #: Shard worker retries absorbed on this session's behalf (bumped
    #: by harnesses that run sharded verification for the session).
    shard_retries: int = 0
    #: Queries answered degraded (decode failure -> low-confidence
    #: :class:`QueryOutcome` instead of an exception).
    degraded_queries: int = 0
    #: Sizing-ladder promotions absorbed so far (0: no ladder attached).
    ladder_promotions: int = 0
    #: Current ladder capacity rung (0: no ladder attached).
    ladder_rung: int = 0


@dataclass(frozen=True)
class QueryOutcome:
    """A structured query answer that survives decode failures.

    :meth:`GraphSession.query` returns one of these instead of raising
    when a sketch decode fails: ``ok`` is ``False``, ``value`` is
    ``None``, ``confidence`` is ``"degraded"`` and ``detail`` names the
    failure.  Healthy answers carry ``confidence="whp"`` — the paper's
    with-high-probability guarantee — so callers can branch on
    confidence instead of wrapping every query in try/except.  Degraded
    outcomes are never cached: the next query at the same epoch retries
    the decode.
    """

    kind: str
    value: object
    ok: bool
    confidence: str
    detail: str = ""


class _EpochCache:
    """Memoized query results, invalidated by epoch mismatch.

    Bounded two ways: :meth:`prune` drops stale-epoch entries on every
    ingest, and inserts evict the oldest entry once ``max_entries``
    same-epoch results are resident — a query-heavy session issuing
    ``("spanner-bfs", u)`` for many sources between updates stays
    bounded within an epoch too.  Hit/miss/prune/eviction traffic is
    counted here and mirrored to the tracer (``session.cache.*``).
    """

    __slots__ = ("_entries", "hits", "misses", "prunes", "evictions", "max_entries")

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._entries: dict = {}
        self.hits = 0
        self.misses = 0
        self.prunes = 0
        self.evictions = 0
        self.max_entries = max_entries

    def __len__(self) -> int:
        return len(self._entries)

    def get_or_compute(self, key, epoch: int, compute):
        entry = self._entries.get(key)
        if entry is not None and entry[0] == epoch:
            self.hits += 1
            obs.TRACER.count("session.cache.hit")
            return entry[1]
        self.misses += 1
        obs.TRACER.count("session.cache.miss")
        value = compute()
        if entry is None and len(self._entries) >= self.max_entries:
            # FIFO eviction: dict preserves insertion order, so the
            # first key is the oldest resident result.
            self._entries.pop(next(iter(self._entries)))
            self.evictions += 1
            obs.TRACER.count("session.cache.evict")
        self._entries[key] = (epoch, value)
        return value

    def prune(self, epoch: int) -> None:
        """Drop entries from earlier epochs (ingest calls this so stale
        per-source BFS maps don't accumulate without bound)."""
        before = len(self._entries)
        self._entries = {
            key: entry for key, entry in self._entries.items() if entry[0] == epoch
        }
        dropped = before - len(self._entries)
        if dropped:
            self.prunes += dropped
            obs.TRACER.count("session.cache.prune", dropped)


class GraphSession:
    """Continuous-ingest sketch state for one graph, with snapshot queries.

    Parameters
    ----------
    num_vertices:
        The vertex universe (fixed for the session's lifetime): a plain
        int for the historical dense engine, or a
        :class:`~repro.graph.vertex_space.VertexSpace` — sparse spaces
        (``VertexSpace.sparse(10**7)``) keep resident sketch rows
        proportional to *touched* vertices, and interned spaces
        (``VertexSpace.interned(capacity, ids="strings")``) let ingest
        and queries speak external ids (strings, or arbitrary 32-bit
        ints) that are interned to stable logical ids on first sight.
    seed:
        Master randomness name; sessions built from equal
        ``(num_vertices, seed, config)`` hold summable sketches — and a
        restored checkpoint re-derives the identical randomness.
    k:
        Spanner depth (stretch ``2^k``) of the spanner slot.
    enable_spanner / enable_sparsifier:
        Which query families the session serves beyond connectivity
        (always on).  Disabling a slot removes its ingest cost; its
        queries then raise ``RuntimeError``.
    sparsifier_k / sparsifier_params / spanner_params:
        Constant calibration forwarded to the underlying pipelines.
    weight_bounds:
        ``None`` serves unweighted streams; ``(w_min, w_max)`` switches
        the sparsifier slot to the weighted weight-class pipeline
        (Section 6's reduction) and lets ingest carry arbitrary weights
        in the declared range.
    agm_rounds:
        Optional explicit Borůvka round count for the connectivity
        sketch.  Sparse-universe sessions whose touched count is far
        below the universe size can pass ``~log2(expected touched) + 2``
        instead of paying the universe-derived default.
    ladder:
        Optional :class:`~repro.service.ladder.SketchLadder`: the
        session starts provisioned for the ladder's first capacity rung
        and *promotes itself* (connectivity rebuild + net-ledger replay,
        answers unchanged by linearity) whenever ingest pushes the
        touched-vertex count past the current rung — no up-front size
        guess, no manual ``agm_rounds`` tuning (mutually exclusive with
        ``agm_rounds``).
    """

    def __init__(
        self,
        num_vertices: int | VertexSpace,
        seed: int | str,
        k: int = 2,
        enable_spanner: bool = True,
        enable_sparsifier: bool = True,
        sparsifier_k: int = 1,
        sparsifier_params: SparsifierParams | None = None,
        spanner_params: SpannerParams | None = None,
        weight_bounds: tuple[float, float] | None = None,
        agm_rounds: int | None = None,
        rotation: int = 0,
        ladder: SketchLadder | None = None,
    ):
        if not isinstance(seed, (int, str)):
            raise TypeError(
                "seed must be an int or str — checkpoint headers JSON-round-trip "
                f"it to re-derive identical randomness; got {type(seed).__name__}"
            )
        if weight_bounds is not None and not 0 < weight_bounds[0] <= weight_bounds[1]:
            raise ValueError(f"need 0 < w_min <= w_max, got {weight_bounds}")
        self.space = as_vertex_space(num_vertices)
        self.num_vertices = self.space.universe_size
        self.seed = seed
        self.k = k
        self.enable_spanner = enable_spanner
        self.enable_sparsifier = enable_sparsifier
        self.sparsifier_k = sparsifier_k
        self.sparsifier_params = sparsifier_params
        self.spanner_params = spanner_params
        self.weight_bounds = weight_bounds
        self.ladder = ladder
        if ladder is not None:
            if agm_rounds is not None:
                raise ValueError(
                    "pass ladder OR agm_rounds, not both — an attached ladder "
                    "owns the connectivity round depth"
                )
            if ladder.max_capacity is None:
                # Capacity beyond the universe is meaningless; cap the
                # ladder there so promotion terminates.
                ladder.max_capacity = max(
                    self.space.universe_size, ladder.start_capacity
                )
            agm_rounds = ladder.rounds()
        self.agm_rounds = agm_rounds
        if rotation < 0:
            raise ValueError(f"rotation must be >= 0, got {rotation}")
        self.rotation = rotation
        self.checkpoint_fallbacks = 0
        self.shard_retries = 0
        self.degraded_queries = 0

        self._build_algorithms()

        # The ledger: live-edge multiplicities and weights — the same
        # bookkeeping DynamicStream keeps to enforce the model, promoted
        # to service state because it is exactly the net multiset pass-2
        # replays are synthesized from.
        self._multiplicity: dict[tuple[int, int], int] = {}
        self._weight: dict[tuple[int, int], float] = {}
        self.epoch = 0
        self.updates_ingested = 0
        self._cache = _EpochCache()

    # ------------------------------------------------------------------
    # External ids (interned spaces)
    # ------------------------------------------------------------------

    def _lookup_vertex(self, vertex) -> int | None:
        """Logical id of a query-side vertex (no interning on queries).

        Identity spaces accept anything integer-like (``operator.index``
        covers numpy ids taken straight from edge arrays); interned
        spaces resolve external ids, unseen ones to ``None``.
        """
        if self.space.is_interned:
            return self.space.lookup(vertex)
        try:
            logical = operator.index(vertex)
        # sketchlint: disable=SL602 type probe, not a recovery path: "not an int" IS the answer (None)
        except TypeError:
            return None
        return logical if 0 <= logical < self.num_vertices else None

    def external_update(self, u, v, sign: int = 1, weight: float = 1.0) -> EdgeUpdate:
        """Build a logical :class:`EdgeUpdate` from external vertex ids.

        Interned spaces assign logical ids on first sight here; identity
        spaces validate the ints.  The returned token feeds
        :meth:`ingest` / :meth:`ingest_batch` unchanged.
        """
        return EdgeUpdate(self.space.intern(u), self.space.intern(v), sign, weight)

    def ingest_external(self, tokens) -> None:
        """Ingest ``(u, v, sign)`` / ``(u, v, sign, weight)`` tuples of
        external ids (convenience wrapper over :meth:`external_update`)."""
        self.ingest_batch([self.external_update(*token) for token in tokens])

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def _slot_seed(self, name: str) -> int:
        """Derived seed for one algorithm slot under the current rotation.

        Rotation 0 keeps the historical ``(seed, "session", name)`` path
        bit-exactly (every pre-rotation checkpoint and test depends on
        it); rotation ``r > 0`` extends the path, giving an independent
        hash family per rotation.
        """
        if self.rotation == 0:
            return derive_seed(self.seed, "session", name)
        return derive_seed(self.seed, "session", name, "rotation", self.rotation)

    def _build_algorithms(self) -> None:
        """(Re)build every enabled slot from config + rotation, at pass 0."""
        self._connectivity = ConnectivityChecker(
            self.space,
            self._slot_seed("connectivity"),
            rounds=self.agm_rounds,
        )
        self._spanner: TwoPassSpannerBuilder | None = None
        if self.enable_spanner:
            self._spanner = TwoPassSpannerBuilder(
                self.space,
                self.k,
                self._slot_seed("spanner"),
                params=self.spanner_params,
            )
        self._sparsifier: StreamingSparsifier | StreamingWeightedSparsifier | None = None
        if self.enable_sparsifier:
            if self.weight_bounds is None:
                self._sparsifier = StreamingSparsifier(
                    self.space,
                    self._slot_seed("sparsifier"),
                    k=self.sparsifier_k,
                    params=self.sparsifier_params,
                )
            else:
                self._sparsifier = StreamingWeightedSparsifier(
                    self.space,
                    self._slot_seed("sparsifier"),
                    self.weight_bounds[0],
                    self.weight_bounds[1],
                    k=self.sparsifier_k,
                    params=self.sparsifier_params,
                )
        for algorithm in self._algorithms():
            algorithm.begin_pass(0)

    def rotate_sketches(self) -> int:
        """Re-derive every hash family and rebuild sketch state exactly.

        The adaptive-adversary mitigation: an adversary that has learned
        this session's randomness from query answers (the regime where
        oblivious sketch guarantees crack — see ``docs/robustness.md``)
        is reset, because every sampler hash family is re-derived under
        the bumped rotation counter while the *graph* is preserved
        exactly — the ledger is the net update multiset, and by
        linearity replaying it lands the fresh sketches in the same
        state the full history would have.  Costs one ledger replay;
        bumps the epoch (cached snapshots describe retired sketches).
        Returns the new rotation number; checkpoints persist it, so a
        restored session keeps the rotated randomness.
        """
        with obs.TRACER.span("session.rotate"):
            self.rotation += 1
            self._build_algorithms()
            tokens = self._net_updates()
            for algorithm in self._algorithms():
                for start in range(0, len(tokens), _REPLAY_CHUNK):
                    algorithm.process_batch(tokens[start : start + _REPLAY_CHUNK], 0)
            self.epoch += 1
            self._cache.prune(self.epoch)
        obs.TRACER.count("session.rotations")
        return self.rotation

    def _algorithms(self):
        yield self._connectivity
        if self._spanner is not None:
            yield self._spanner
        if self._sparsifier is not None:
            yield self._sparsifier

    def _validate(self, updates: Sequence[EdgeUpdate]) -> None:
        """Check a whole batch against the model *before* any commit.

        A batch either lands atomically or raises with the session
        untouched — a service cannot afford half-applied batches.
        """
        touched_mult: dict[tuple[int, int], int] = {}
        touched_weight: dict[tuple[int, int], float | None] = {}
        bounds = self.weight_bounds
        for update in updates:
            if not 0 <= update.u < self.num_vertices or not 0 <= update.v < self.num_vertices:
                raise ValueError(
                    f"update touches vertices {update.pair} outside "
                    f"[0, {self.num_vertices})"
                )
            if bounds is None:
                if update.weight != 1.0:
                    raise ValueError(
                        f"unweighted session got weight {update.weight}; construct "
                        "the session with weight_bounds to serve weighted streams"
                    )
            elif not bounds[0] <= update.weight <= bounds[1]:
                raise ValueError(
                    f"weight {update.weight} outside the declared bounds {bounds}"
                )
            pair = update.pair
            if pair in touched_mult:
                current = touched_mult[pair]
                weight = touched_weight[pair]
            else:
                current = self._multiplicity.get(pair, 0)
                weight = self._weight.get(pair)
            if current > 0 and weight != update.weight:
                raise ValueError(
                    f"edge {pair} is live with weight {weight}; the model forbids "
                    f"turnstile weight changes (got {update.weight})"
                )
            updated = current + update.sign
            if updated < 0:
                raise ValueError(f"edge {pair} multiplicity would become negative")
            touched_mult[pair] = updated
            touched_weight[pair] = update.weight if updated > 0 else None

    def ingest(self, update: EdgeUpdate) -> None:
        """Ingest a single stream token (see :meth:`ingest_batch`)."""
        self.ingest_batch([update])

    def ingest_batch(self, updates: Sequence[EdgeUpdate]) -> None:
        """Ingest a contiguous chunk of the unbounded update stream.

        The chunk is validated against the model invariants first (bad
        chunks raise and leave the session untouched), then the ledger
        and every enabled sketch absorb it through the batched engine.
        Amortized O(1) sketch work per token; each successful call bumps
        the session epoch, invalidating memoized query results.
        """
        if not updates:
            return
        with obs.TRACER.span("session.ingest", kernel=_kernels.active_backend()):
            self._validate(updates)
            for update in updates:
                pair = update.pair
                updated = self._multiplicity.get(pair, 0) + update.sign
                if updated == 0:
                    del self._multiplicity[pair]
                    del self._weight[pair]
                else:
                    self._multiplicity[pair] = updated
                    self._weight[pair] = update.weight
            for algorithm in self._algorithms():
                for start in range(0, len(updates), _REPLAY_CHUNK):
                    algorithm.process_batch(updates[start : start + _REPLAY_CHUNK], 0)
            self.updates_ingested += len(updates)
            if self.ladder is not None and self.ladder.should_promote(
                self._connectivity._sketch.num_touched_vertices()
            ):
                self._promote()
            self.epoch += 1
            self._cache.prune(self.epoch)
        obs.TRACER.observe("session.ingest.batch", len(updates))
        obs.TRACER.count("session.epoch.advance")

    def _promote(self) -> None:
        """Grow the connectivity sketch to the ladder's next rung.

        Rebuilds *only* the connectivity slot at the new round depth and
        replays the net live-edge ledger into it — by linearity the
        result is bit-identical to the sketch a session provisioned at
        the new rung from the start would hold after the same stream
        (the same argument behind :meth:`rotate_sketches` and the
        synthesized second passes).  The spanner and sparsifier slots
        are sized by their own parameters and keep their full-history
        state untouched.  One promotion jumps straight to the smallest
        rung holding the current touched count, so a huge batch costs
        one rebuild, not one per rung crossed.
        """
        touched = self._connectivity._sketch.num_touched_vertices()
        target = self.ladder.rung_for(touched)
        with obs.TRACER.span("session.ladder.promote", rung=target, touched=touched):
            self.agm_rounds = self.ladder.promote_to(target)
            self._connectivity = ConnectivityChecker(
                self.space,
                self._slot_seed("connectivity"),
                rounds=self.agm_rounds,
            )
            self._connectivity.begin_pass(0)
            tokens = self._net_updates()
            for start in range(0, len(tokens), _REPLAY_CHUNK):
                self._connectivity.process_batch(
                    tokens[start : start + _REPLAY_CHUNK], 0
                )
        obs.TRACER.count("session.ladder.promote")

    # ------------------------------------------------------------------
    # The ledger (exact service-plane state)
    # ------------------------------------------------------------------

    def num_live_edges(self) -> int:
        """Distinct live edges (multiplicity collapsed)."""
        return len(self._multiplicity)

    def live_graph(self) -> Graph:
        """The exact current graph implied by the ledger.

        This is service-plane bookkeeping (the stream model's own
        multiset), exposed for verification and workload drivers; the
        sketch-decoded queries below never read it except to synthesize
        pass-2 replays.
        """
        graph = Graph(self.num_vertices)
        for (u, v), multiplicity in self._multiplicity.items():
            if multiplicity > 0:
                graph.add_edge(u, v, self._weight[(u, v)])
        return graph

    def _net_updates(self) -> list[EdgeUpdate]:
        """The net live-edge multiset as insert tokens, sorted by pair.

        By linearity, feeding these as a second pass lands in state
        bit-identical to replaying the entire history (canceled tokens
        contribute zero to every integer and mod-p cell), which is what
        makes two-pass queries answerable mid-stream.
        """
        tokens: list[EdgeUpdate] = []
        for pair in sorted(self._multiplicity):
            update = EdgeUpdate(pair[0], pair[1], +1, self._weight[pair])
            tokens.extend([update] * self._multiplicity[pair])
        return tokens

    # ------------------------------------------------------------------
    # Snapshot queries
    # ------------------------------------------------------------------

    def _forest_snapshot(self):
        """(forest edges, vertex -> component label), one decode per epoch.

        Dense sessions label every universe vertex (a list); lazy
        sessions label touched vertices only (a dict) — any untouched
        vertex of a huge universe is implicitly its own singleton.
        """

        def compute():
            # No clone here: AGM forest extraction is read-only by
            # construction (Boruvka copies samplers before combining), so
            # the snapshot discipline costs nothing on this hot path.
            with obs.TRACER.span("session.snapshot.forest"):
                if faults.ACTIVE is not None:
                    faults.ACTIVE.maybe_fail_decode("forest")
                return compute_forest()

        def compute_forest():
            forest = self._connectivity.spanning_forest()
            if self.space.lazy:
                sparse_dsu = SparseDisjointSets(
                    self._connectivity._sketch.touched_vertices()
                )
                for a, b in forest:
                    sparse_dsu.union(a, b)
                labels: dict[int, int] | list[int] = {
                    vertex: sparse_dsu.find(vertex) for vertex in sparse_dsu.parent
                }
            else:
                dsu = DisjointSets(self.num_vertices)
                for a, b in forest:
                    dsu.union(a, b)
                labels = [dsu.find(v) for v in range(self.num_vertices)]
            return (forest, labels)

        return self._cache.get_or_compute("forest", self.epoch, compute)

    def spanning_forest(self) -> list[tuple[int, int]]:
        """A spanning forest of the current graph (whp), snapshot-decoded
        (logical vertex ids; see :meth:`spanning_forest_external`)."""
        with obs.TRACER.span("session.query.forest"):
            return self._forest_snapshot()[0]

    def spanning_forest_external(self) -> list[tuple]:
        """The forest with external vertex labels (interned spaces)."""
        return [
            (self.space.label(a), self.space.label(b))
            for a, b in self.spanning_forest()
        ]

    def components(self) -> list[set[int]]:
        """Connected components of the current graph (whp).

        Dense sessions enumerate every vertex (isolated universe
        vertices are singletons, the historical behavior); lazy sessions
        return components of *touched* vertices only.
        """
        _, labels = self._forest_snapshot()
        groups: dict[int, set[int]] = {}
        items = labels.items() if isinstance(labels, dict) else enumerate(labels)
        for vertex, label in items:
            groups.setdefault(label, set()).add(vertex)
        return list(groups.values())

    def connected(self, u, v) -> bool:
        """Whether ``u`` and ``v`` are connected in the current graph (whp).

        Accepts logical ids (identity spaces) or external ids (interned
        spaces; an id the session never saw is trivially isolated).
        First call per epoch pays one forest decode; subsequent calls
        are cache hits (O(1))."""
        with obs.TRACER.span("session.query.connected"):
            lu, lv = self._lookup_vertex(u), self._lookup_vertex(v)
            if not self.space.is_interned and (lu is None or lv is None):
                raise ValueError(
                    f"vertices ({u}, {v}) outside [0, {self.num_vertices})"
                )
            if lu is None or lv is None:
                return u == v
            if lu == lv:
                return True
            _, labels = self._forest_snapshot()
            if isinstance(labels, dict):
                return labels.get(lu, ("isolated", lu)) == labels.get(
                    lv, ("isolated", lv)
                )
            return labels[lu] == labels[lv]

    def _require(self, slot, name: str):
        if slot is None:
            raise RuntimeError(
                f"this session was built with {name} disabled; construct "
                f"GraphSession(..., enable_{name}=True) to serve these queries"
            )
        return slot

    def _replay_second_pass(self, clone) -> None:
        """Drive a cloned two-pass algorithm through its synthesized
        second pass over the net live-edge multiset."""
        clone.end_pass(0)
        clone.begin_pass(1)
        tokens = self._net_updates()
        for start in range(0, len(tokens), _REPLAY_CHUNK):
            clone.process_batch(tokens[start : start + _REPLAY_CHUNK], 1)
        clone.end_pass(1)

    def spanner_snapshot(self):
        """Finalize a ``2^k``-spanner of the current graph.

        Clones the continuously-ingested pass-1 sketches, builds the
        cluster forest on the clone, synthesizes pass 2 from the net
        multiset, and decodes — the live state is never touched.  Cached
        per epoch; returns the builder's
        :class:`~repro.core.offline_spanner.SpannerOutput`.
        """
        spanner = self._require(self._spanner, "spanner")

        def compute():
            with obs.TRACER.span("session.snapshot.spanner"):
                if faults.ACTIVE is not None:
                    faults.ACTIVE.maybe_fail_decode("spanner")
                clone = spanner.clone()
                if _sanitize.ENABLED:
                    _sanitize.check_clone_independent(spanner, clone)
                self._replay_second_pass(clone)
                return clone.finalize()

        return self._cache.get_or_compute("spanner", self.epoch, compute)

    def spanner_distance(self, u: int, v: int) -> float:
        """Estimate ``d(u, v)``: exact lower bound, ``2^k`` upper stretch.

        BFS runs on the epoch's spanner snapshot and is memoized per
        source vertex, so query bursts against a quiet graph are cheap.
        Returns ``inf`` for pairs the spanner does not connect.
        """
        with obs.TRACER.span("session.query.spanner_distance"):
            lu, lv = self._lookup_vertex(u), self._lookup_vertex(v)
            if not self.space.is_interned and (lu is None or lv is None):
                raise ValueError(
                    f"vertices ({u}, {v}) outside [0, {self.num_vertices})"
                )
            if u == v or (lu is not None and lu == lv):
                return 0.0
            if lu is None or lv is None:
                return math.inf
            u, v = lu, lv
            output = self.spanner_snapshot()

            def compute():
                return bfs_distances(output.spanner, u)

            distances = self._cache.get_or_compute(
                ("spanner-bfs", u), self.epoch, compute
            )
            return float(distances.get(v, math.inf))

    def sparsifier_snapshot(self) -> Graph:
        """Finalize a weighted spectral sparsifier of the current graph.

        Same snapshot discipline as :meth:`spanner_snapshot`, over the
        streaming sparsification pipeline (weight-class reduction when
        the session is weighted).  Cached per epoch.
        """
        sparsifier = self._require(self._sparsifier, "sparsifier")

        def compute():
            with obs.TRACER.span("session.snapshot.sparsifier"):
                if faults.ACTIVE is not None:
                    faults.ACTIVE.maybe_fail_decode("sparsifier")
                clone = sparsifier.clone()
                if _sanitize.ENABLED:
                    _sanitize.check_clone_independent(sparsifier, clone)
                self._replay_second_pass(clone)
                return clone.finalize()

        return self._cache.get_or_compute("sparsifier", self.epoch, compute)

    def cut_estimate(self, side: Iterable[int]) -> float:
        """Estimated weight of the cut ``(side, V - side)``.

        Evaluated on the epoch's sparsifier snapshot — the sparsifier
        preserves all cuts to ``(1 ± eps)``, so this answers arbitrary
        cut queries from sketch-sized state.
        """
        with obs.TRACER.span("session.query.cut"):
            side_set = frozenset(side)
            if not side_set:
                raise ValueError("cut side must be nonempty")
            if self.space.is_interned:
                logical = {self._lookup_vertex(v) for v in side_set}
                side_set = frozenset(v for v in logical if v is not None)
                if not side_set:
                    return 0.0  # only never-seen ids: an isolated side cuts nothing
            else:
                logical = {self._lookup_vertex(v) for v in side_set}
                if None in logical:
                    raise ValueError(f"cut side leaves [0, {self.num_vertices})")
                side_set = frozenset(logical)
            return cut_value(self.sparsifier_snapshot(), side_set)

    # ------------------------------------------------------------------
    # Structured queries (graceful degradation)
    # ------------------------------------------------------------------

    #: Query kinds :meth:`query` serves, mapped to the raising methods.
    _QUERY_KINDS = {
        "components": "components",
        "forest": "spanning_forest",
        "connected": "connected",
        "spanner-distance": "spanner_distance",
        "cut": "cut_estimate",
    }

    #: Decode failures that degrade a query instead of raising.  Config
    #: errors (disabled slot, out-of-range vertex) still raise: they
    #: are caller bugs, not sketch-state trouble.
    _DEGRADABLE = (faults.InjectedDecodeFailure,)

    def query(self, kind: str, *args) -> QueryOutcome:
        """Answer a query as a :class:`QueryOutcome`, never decode-raising.

        ``kind`` is one of ``components`` / ``forest`` / ``connected`` /
        ``spanner-distance`` / ``cut``, with the same arguments as the
        corresponding method.  A sketch decode failure is absorbed into
        a degraded outcome (``ok=False``, ``confidence="degraded"``,
        counted as ``session.degraded_query``); because the epoch cache
        never stores failed computes, the very next query at this epoch
        retries the decode from scratch.  Everything else — unknown
        kinds, disabled slots, invalid vertices — raises as the direct
        methods do.
        """
        try:
            method = getattr(self, self._QUERY_KINDS[kind])
        except KeyError:
            raise ValueError(
                f"unknown query kind {kind!r}; choose from "
                f"{sorted(self._QUERY_KINDS)}"
            ) from None
        try:
            value = method(*args)
        except self._DEGRADABLE as error:
            self.degraded_queries += 1
            obs.TRACER.count("session.degraded_query")
            return QueryOutcome(
                kind=kind,
                value=None,
                ok=False,
                confidence="degraded",
                detail=str(error),
            )
        return QueryOutcome(kind=kind, value=value, ok=True, confidence="whp")

    # ------------------------------------------------------------------
    # Introspection / durability
    # ------------------------------------------------------------------

    def stats(self) -> SessionStats:
        """Current counters: epoch, ingest volume, cache traffic, space."""
        report = self.space_report()
        return SessionStats(
            epoch=self.epoch,
            updates_ingested=self.updates_ingested,
            live_edges=self.num_live_edges(),
            cache_hits=self._cache.hits,
            cache_misses=self._cache.misses,
            cache_prunes=self._cache.prunes,
            cache_evictions=self._cache.evictions,
            cache_entries=len(self._cache),
            space_words=report.total_words(),
            universe_space_words=report.universe_words(),
            touched_vertices=self.touched_vertices(),
            checkpoint_fallbacks=self.checkpoint_fallbacks,
            shard_retries=self.shard_retries,
            degraded_queries=self.degraded_queries,
            ladder_promotions=0 if self.ladder is None else self.ladder.promotions,
            ladder_rung=0 if self.ladder is None else self.ladder.rung,
        )

    def touched_vertices(self) -> int:
        """Vertices holding resident sketch rows (dense: the universe)."""
        return len(self._connectivity._sketch.touched_vertices())

    def space_report(self) -> "SpaceReport":
        """Resident vs dense-universe words for every enabled slot.

        This is the audit behind the sparse-universe claim: resident
        words track touched vertices while the universe column shows
        what eager allocation over the full id range would cost.
        """
        report = self._connectivity.space_report()
        if self._spanner is not None:
            report = report.merged(self._spanner.space_report())
        if self._sparsifier is not None:
            sparsifier = SpaceReport()
            sparsifier.add("sparsifier pipeline", self._sparsifier.space_words())
            report = report.merged(sparsifier)
        return report

    def space_words(self) -> int:
        """Persistent sketch state in machine words (ledger excluded —
        its exact size is ``4 * live_edges`` words: endpoints,
        multiplicity and weight per edge, as the checkpoint serializes
        them; see :meth:`num_live_edges`)."""
        return sum(algorithm.space_words() for algorithm in self._algorithms())

    def snapshot_answers(self) -> dict:
        """Every enabled slot's full current answer, as one dict.

        Keys: ``components``, ``forest``, and — when the slots are
        enabled — ``spanner`` (edge list) and ``sparsifier`` (weighted
        edge list), all in sorted, directly comparable form.  This is
        the bit-identity probe the kill/restore verification (CLI
        ``serve``, the service bench, the examples) compares across
        sessions.
        """
        answers: dict = {
            "components": sorted(map(sorted, self.components())),
            "forest": sorted(self.spanning_forest()),
        }
        if self._spanner is not None:
            answers["spanner"] = sorted(self.spanner_snapshot().spanner.edge_set())
        if self._sparsifier is not None:
            answers["sparsifier"] = sorted(self.sparsifier_snapshot().edges())
        return answers

    def checkpoint(self, path) -> None:
        """Persist the full session state to ``path`` (varint protocol);
        see :func:`repro.service.checkpoint.save_session`."""
        from repro.service.checkpoint import save_session

        save_session(self, path)

    @classmethod
    def restore(cls, path) -> "GraphSession":
        """Rebuild a session bit-identically from a checkpoint file;
        see :func:`repro.service.checkpoint.load_session`."""
        from repro.service.checkpoint import load_session

        return load_session(path)

    def __repr__(self) -> str:
        return (
            f"GraphSession(n={self.num_vertices}, epoch={self.epoch}, "
            f"updates={self.updates_ingested}, live_edges={self.num_live_edges()})"
        )
