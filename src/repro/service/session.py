"""The live sketch store: one long-lived, queryable session per graph.

PRs 1-2 made the paper's algorithms fast (batched kernels) and
distributed (sharded execution), but every answer still required
replaying a finite stream end to end.  :class:`GraphSession` turns the
same linear sketches into a *service*: it owns one mergeable sketch
state per graph, accepts continuous :class:`~repro.stream.updates.EdgeUpdate`
ingest forever, and answers connectivity / spanner / cut queries at any
point of the unbounded stream — the serving model the paper's
``S x = S x^1 + ... + S x^s`` identity was built for.

How queries work mid-stream
---------------------------
Every query *finalizes a clone* of the sketch state (the ``clone()``
contract of :mod:`repro.sketch`), so decoding never perturbs — and is
never perturbed by — continued ingest.  The two-pass algorithms pose an
extra puzzle: their second pass re-reads the stream, which a live
session cannot do.  Linearity dissolves it: pass-2 state is a linear
function of the update tokens, so tokens that canceled (an insert and
its later delete) contribute exactly zero to every cell — replaying only
the *net* live-edge multiset lands in bit-identical pass-2 state.  The
session keeps that multiset (the *ledger*: multiplicity and weight per
live pair, exactly what :class:`~repro.stream.stream.DynamicStream`
tracks to enforce the model) and synthesizes pass 2 from it at query
time.

Epoch-tagged caching
--------------------
Finalizing a snapshot costs a full decode (Borůvka, forest build, table
peeling), which would be wasteful for a query-heavy workload where the
graph changes rarely.  Every successful ingest bumps the session
``epoch``; every query result is memoized under its epoch, so repeated
queries between updates are a dictionary hit (the service benchmark
gates this at >= 10x cheaper than the first finalize).

Durability
----------
:meth:`GraphSession.checkpoint` persists the full session state through
the same ``state_ints()``/``from_state_ints()`` varint protocol the
distributed runner ships over the wire;
:meth:`GraphSession.restore` recovers it bit-identically after a crash
(see :mod:`repro.service.checkpoint`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.agm.connectivity import ConnectivityChecker
from repro.agm.spanning_forest import DisjointSets
from repro.core.parameters import SpannerParams, SparsifierParams
from repro.core.sparsify import StreamingSparsifier, StreamingWeightedSparsifier
from repro.core.two_pass_spanner import TwoPassSpannerBuilder
from repro.graph.cuts import cut_value
from repro.graph.distances import bfs_distances
from repro.graph.graph import Graph
from repro.stream.updates import EdgeUpdate
from repro.util.rng import derive_seed

__all__ = ["GraphSession", "SessionStats"]

#: Chunk length used when feeding ingest batches and pass-2 replays
#: through the batched sketch engine.
_REPLAY_CHUNK = 65_536


@dataclass(frozen=True)
class SessionStats:
    """A point-in-time summary of a :class:`GraphSession`."""

    epoch: int
    updates_ingested: int
    live_edges: int
    cache_hits: int
    cache_misses: int
    space_words: int


class _EpochCache:
    """Memoized query results, invalidated by epoch mismatch."""

    __slots__ = ("_entries", "hits", "misses")

    def __init__(self) -> None:
        self._entries: dict = {}
        self.hits = 0
        self.misses = 0

    def get_or_compute(self, key, epoch: int, compute):
        entry = self._entries.get(key)
        if entry is not None and entry[0] == epoch:
            self.hits += 1
            return entry[1]
        self.misses += 1
        value = compute()
        self._entries[key] = (epoch, value)
        return value

    def prune(self, epoch: int) -> None:
        """Drop entries from earlier epochs (ingest calls this so stale
        per-source BFS maps don't accumulate without bound)."""
        self._entries = {
            key: entry for key, entry in self._entries.items() if entry[0] == epoch
        }


class GraphSession:
    """Continuous-ingest sketch state for one graph, with snapshot queries.

    Parameters
    ----------
    num_vertices:
        Graph size ``n`` (fixed for the session's lifetime).
    seed:
        Master randomness name; sessions built from equal
        ``(num_vertices, seed, config)`` hold summable sketches — and a
        restored checkpoint re-derives the identical randomness.
    k:
        Spanner depth (stretch ``2^k``) of the spanner slot.
    enable_spanner / enable_sparsifier:
        Which query families the session serves beyond connectivity
        (always on).  Disabling a slot removes its ingest cost; its
        queries then raise ``RuntimeError``.
    sparsifier_k / sparsifier_params / spanner_params:
        Constant calibration forwarded to the underlying pipelines.
    weight_bounds:
        ``None`` serves unweighted streams; ``(w_min, w_max)`` switches
        the sparsifier slot to the weighted weight-class pipeline
        (Section 6's reduction) and lets ingest carry arbitrary weights
        in the declared range.
    """

    def __init__(
        self,
        num_vertices: int,
        seed: int | str,
        k: int = 2,
        enable_spanner: bool = True,
        enable_sparsifier: bool = True,
        sparsifier_k: int = 1,
        sparsifier_params: SparsifierParams | None = None,
        spanner_params: SpannerParams | None = None,
        weight_bounds: tuple[float, float] | None = None,
    ):
        if num_vertices <= 0:
            raise ValueError(f"num_vertices must be positive, got {num_vertices}")
        if not isinstance(seed, (int, str)):
            raise TypeError(
                "seed must be an int or str — checkpoint headers JSON-round-trip "
                f"it to re-derive identical randomness; got {type(seed).__name__}"
            )
        if weight_bounds is not None and not 0 < weight_bounds[0] <= weight_bounds[1]:
            raise ValueError(f"need 0 < w_min <= w_max, got {weight_bounds}")
        self.num_vertices = num_vertices
        self.seed = seed
        self.k = k
        self.enable_spanner = enable_spanner
        self.enable_sparsifier = enable_sparsifier
        self.sparsifier_k = sparsifier_k
        self.sparsifier_params = sparsifier_params
        self.spanner_params = spanner_params
        self.weight_bounds = weight_bounds

        self._connectivity = ConnectivityChecker(
            num_vertices, derive_seed(seed, "session", "connectivity")
        )
        self._spanner: TwoPassSpannerBuilder | None = None
        if enable_spanner:
            self._spanner = TwoPassSpannerBuilder(
                num_vertices,
                k,
                derive_seed(seed, "session", "spanner"),
                params=spanner_params,
            )
        self._sparsifier: StreamingSparsifier | StreamingWeightedSparsifier | None = None
        if enable_sparsifier:
            if weight_bounds is None:
                self._sparsifier = StreamingSparsifier(
                    num_vertices,
                    derive_seed(seed, "session", "sparsifier"),
                    k=sparsifier_k,
                    params=sparsifier_params,
                )
            else:
                self._sparsifier = StreamingWeightedSparsifier(
                    num_vertices,
                    derive_seed(seed, "session", "sparsifier"),
                    weight_bounds[0],
                    weight_bounds[1],
                    k=sparsifier_k,
                    params=sparsifier_params,
                )
        for algorithm in self._algorithms():
            algorithm.begin_pass(0)

        # The ledger: live-edge multiplicities and weights — the same
        # bookkeeping DynamicStream keeps to enforce the model, promoted
        # to service state because it is exactly the net multiset pass-2
        # replays are synthesized from.
        self._multiplicity: dict[tuple[int, int], int] = {}
        self._weight: dict[tuple[int, int], float] = {}
        self.epoch = 0
        self.updates_ingested = 0
        self._cache = _EpochCache()

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def _algorithms(self):
        yield self._connectivity
        if self._spanner is not None:
            yield self._spanner
        if self._sparsifier is not None:
            yield self._sparsifier

    def _validate(self, updates: Sequence[EdgeUpdate]) -> None:
        """Check a whole batch against the model *before* any commit.

        A batch either lands atomically or raises with the session
        untouched — a service cannot afford half-applied batches.
        """
        touched_mult: dict[tuple[int, int], int] = {}
        touched_weight: dict[tuple[int, int], float | None] = {}
        bounds = self.weight_bounds
        for update in updates:
            if not 0 <= update.u < self.num_vertices or not 0 <= update.v < self.num_vertices:
                raise ValueError(
                    f"update touches vertices {update.pair} outside "
                    f"[0, {self.num_vertices})"
                )
            if bounds is None:
                if update.weight != 1.0:
                    raise ValueError(
                        f"unweighted session got weight {update.weight}; construct "
                        "the session with weight_bounds to serve weighted streams"
                    )
            elif not bounds[0] <= update.weight <= bounds[1]:
                raise ValueError(
                    f"weight {update.weight} outside the declared bounds {bounds}"
                )
            pair = update.pair
            if pair in touched_mult:
                current = touched_mult[pair]
                weight = touched_weight[pair]
            else:
                current = self._multiplicity.get(pair, 0)
                weight = self._weight.get(pair)
            if current > 0 and weight != update.weight:
                raise ValueError(
                    f"edge {pair} is live with weight {weight}; the model forbids "
                    f"turnstile weight changes (got {update.weight})"
                )
            updated = current + update.sign
            if updated < 0:
                raise ValueError(f"edge {pair} multiplicity would become negative")
            touched_mult[pair] = updated
            touched_weight[pair] = update.weight if updated > 0 else None

    def ingest(self, update: EdgeUpdate) -> None:
        """Ingest a single stream token (see :meth:`ingest_batch`)."""
        self.ingest_batch([update])

    def ingest_batch(self, updates: Sequence[EdgeUpdate]) -> None:
        """Ingest a contiguous chunk of the unbounded update stream.

        The chunk is validated against the model invariants first (bad
        chunks raise and leave the session untouched), then the ledger
        and every enabled sketch absorb it through the batched engine.
        Amortized O(1) sketch work per token; each successful call bumps
        the session epoch, invalidating memoized query results.
        """
        if not updates:
            return
        self._validate(updates)
        for update in updates:
            pair = update.pair
            updated = self._multiplicity.get(pair, 0) + update.sign
            if updated == 0:
                del self._multiplicity[pair]
                del self._weight[pair]
            else:
                self._multiplicity[pair] = updated
                self._weight[pair] = update.weight
        for algorithm in self._algorithms():
            for start in range(0, len(updates), _REPLAY_CHUNK):
                algorithm.process_batch(updates[start : start + _REPLAY_CHUNK], 0)
        self.updates_ingested += len(updates)
        self.epoch += 1
        self._cache.prune(self.epoch)

    # ------------------------------------------------------------------
    # The ledger (exact service-plane state)
    # ------------------------------------------------------------------

    def num_live_edges(self) -> int:
        """Distinct live edges (multiplicity collapsed)."""
        return len(self._multiplicity)

    def live_graph(self) -> Graph:
        """The exact current graph implied by the ledger.

        This is service-plane bookkeeping (the stream model's own
        multiset), exposed for verification and workload drivers; the
        sketch-decoded queries below never read it except to synthesize
        pass-2 replays.
        """
        graph = Graph(self.num_vertices)
        for (u, v), multiplicity in self._multiplicity.items():
            if multiplicity > 0:
                graph.add_edge(u, v, self._weight[(u, v)])
        return graph

    def _net_updates(self) -> list[EdgeUpdate]:
        """The net live-edge multiset as insert tokens, sorted by pair.

        By linearity, feeding these as a second pass lands in state
        bit-identical to replaying the entire history (canceled tokens
        contribute zero to every integer and mod-p cell), which is what
        makes two-pass queries answerable mid-stream.
        """
        tokens: list[EdgeUpdate] = []
        for pair in sorted(self._multiplicity):
            update = EdgeUpdate(pair[0], pair[1], +1, self._weight[pair])
            tokens.extend([update] * self._multiplicity[pair])
        return tokens

    # ------------------------------------------------------------------
    # Snapshot queries
    # ------------------------------------------------------------------

    def _forest_snapshot(self) -> tuple[list[tuple[int, int]], list[int]]:
        """(forest edges, vertex -> component id), one decode per epoch."""

        def compute():
            # No clone here: AGM forest extraction is read-only by
            # construction (Boruvka copies samplers before combining), so
            # the snapshot discipline costs nothing on this hot path.
            forest = self._connectivity.spanning_forest()
            dsu = DisjointSets(self.num_vertices)
            for a, b in forest:
                dsu.union(a, b)
            labels = [dsu.find(v) for v in range(self.num_vertices)]
            return (forest, labels)

        return self._cache.get_or_compute("forest", self.epoch, compute)

    def spanning_forest(self) -> list[tuple[int, int]]:
        """A spanning forest of the current graph (whp), snapshot-decoded."""
        return self._forest_snapshot()[0]

    def components(self) -> list[set[int]]:
        """Connected components of the current graph (whp)."""
        _, labels = self._forest_snapshot()
        groups: dict[int, set[int]] = {}
        for vertex, label in enumerate(labels):
            groups.setdefault(label, set()).add(vertex)
        return list(groups.values())

    def connected(self, u: int, v: int) -> bool:
        """Whether ``u`` and ``v`` are connected in the current graph (whp).

        First call per epoch pays one forest decode; subsequent calls are
        cache hits (O(1))."""
        if not 0 <= u < self.num_vertices or not 0 <= v < self.num_vertices:
            raise ValueError(f"vertices ({u}, {v}) outside [0, {self.num_vertices})")
        _, labels = self._forest_snapshot()
        return labels[u] == labels[v]

    def _require(self, slot, name: str):
        if slot is None:
            raise RuntimeError(
                f"this session was built with {name} disabled; construct "
                f"GraphSession(..., enable_{name}=True) to serve these queries"
            )
        return slot

    def _replay_second_pass(self, clone) -> None:
        """Drive a cloned two-pass algorithm through its synthesized
        second pass over the net live-edge multiset."""
        clone.end_pass(0)
        clone.begin_pass(1)
        tokens = self._net_updates()
        for start in range(0, len(tokens), _REPLAY_CHUNK):
            clone.process_batch(tokens[start : start + _REPLAY_CHUNK], 1)
        clone.end_pass(1)

    def spanner_snapshot(self):
        """Finalize a ``2^k``-spanner of the current graph.

        Clones the continuously-ingested pass-1 sketches, builds the
        cluster forest on the clone, synthesizes pass 2 from the net
        multiset, and decodes — the live state is never touched.  Cached
        per epoch; returns the builder's
        :class:`~repro.core.offline_spanner.SpannerOutput`.
        """
        spanner = self._require(self._spanner, "spanner")

        def compute():
            clone = spanner.clone()
            self._replay_second_pass(clone)
            return clone.finalize()

        return self._cache.get_or_compute("spanner", self.epoch, compute)

    def spanner_distance(self, u: int, v: int) -> float:
        """Estimate ``d(u, v)``: exact lower bound, ``2^k`` upper stretch.

        BFS runs on the epoch's spanner snapshot and is memoized per
        source vertex, so query bursts against a quiet graph are cheap.
        Returns ``inf`` for pairs the spanner does not connect.
        """
        if not 0 <= u < self.num_vertices or not 0 <= v < self.num_vertices:
            raise ValueError(f"vertices ({u}, {v}) outside [0, {self.num_vertices})")
        if u == v:
            return 0.0
        output = self.spanner_snapshot()

        def compute():
            return bfs_distances(output.spanner, u)

        distances = self._cache.get_or_compute(("spanner-bfs", u), self.epoch, compute)
        return float(distances.get(v, math.inf))

    def sparsifier_snapshot(self) -> Graph:
        """Finalize a weighted spectral sparsifier of the current graph.

        Same snapshot discipline as :meth:`spanner_snapshot`, over the
        streaming sparsification pipeline (weight-class reduction when
        the session is weighted).  Cached per epoch.
        """
        sparsifier = self._require(self._sparsifier, "sparsifier")

        def compute():
            clone = sparsifier.clone()
            self._replay_second_pass(clone)
            return clone.finalize()

        return self._cache.get_or_compute("sparsifier", self.epoch, compute)

    def cut_estimate(self, side: Iterable[int]) -> float:
        """Estimated weight of the cut ``(side, V - side)``.

        Evaluated on the epoch's sparsifier snapshot — the sparsifier
        preserves all cuts to ``(1 ± eps)``, so this answers arbitrary
        cut queries from sketch-sized state.
        """
        side_set = frozenset(side)
        if not side_set:
            raise ValueError("cut side must be nonempty")
        if not all(0 <= v < self.num_vertices for v in side_set):
            raise ValueError(f"cut side leaves [0, {self.num_vertices})")
        return cut_value(self.sparsifier_snapshot(), side_set)

    # ------------------------------------------------------------------
    # Introspection / durability
    # ------------------------------------------------------------------

    def stats(self) -> SessionStats:
        """Current counters: epoch, ingest volume, cache traffic, space."""
        return SessionStats(
            epoch=self.epoch,
            updates_ingested=self.updates_ingested,
            live_edges=self.num_live_edges(),
            cache_hits=self._cache.hits,
            cache_misses=self._cache.misses,
            space_words=self.space_words(),
        )

    def space_words(self) -> int:
        """Persistent sketch state in machine words (ledger excluded —
        its exact size is ``4 * live_edges`` words: endpoints,
        multiplicity and weight per edge, as the checkpoint serializes
        them; see :meth:`num_live_edges`)."""
        return sum(algorithm.space_words() for algorithm in self._algorithms())

    def snapshot_answers(self) -> dict:
        """Every enabled slot's full current answer, as one dict.

        Keys: ``components``, ``forest``, and — when the slots are
        enabled — ``spanner`` (edge list) and ``sparsifier`` (weighted
        edge list), all in sorted, directly comparable form.  This is
        the bit-identity probe the kill/restore verification (CLI
        ``serve``, the service bench, the examples) compares across
        sessions.
        """
        answers: dict = {
            "components": sorted(map(sorted, self.components())),
            "forest": sorted(self.spanning_forest()),
        }
        if self._spanner is not None:
            answers["spanner"] = sorted(self.spanner_snapshot().spanner.edge_set())
        if self._sparsifier is not None:
            answers["sparsifier"] = sorted(self.sparsifier_snapshot().edges())
        return answers

    def checkpoint(self, path) -> None:
        """Persist the full session state to ``path`` (varint protocol);
        see :func:`repro.service.checkpoint.save_session`."""
        from repro.service.checkpoint import save_session

        save_session(self, path)

    @classmethod
    def restore(cls, path) -> "GraphSession":
        """Rebuild a session bit-identically from a checkpoint file;
        see :func:`repro.service.checkpoint.load_session`."""
        from repro.service.checkpoint import load_session

        return load_session(path)

    def __repr__(self) -> str:
        return (
            f"GraphSession(n={self.num_vertices}, epoch={self.epoch}, "
            f"updates={self.updates_ingested}, live_edges={self.num_live_edges()})"
        )
