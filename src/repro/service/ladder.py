"""Adaptive sketch-stack sizing: grow AGM round depth with the graph.

The connectivity sketch's Borůvka round count is a function of the
vertex count the session expects to serve (``~log2(n) + 2`` rounds —
Theorem 10's ``O(log n)`` independent forest extractions).  A session
over a sparse universe (``VertexSpace.sparse(10**9)``) would pay the
universe-derived depth for a graph that may only ever touch a few
thousand vertices, so PR 5 added the manual ``agm_rounds`` override —
and with it a new failure mode: a session *sized* for ``10**3`` touched
vertices silently under-provisions once the stream grows past it, and
the operator has to guess the final size up front.

:class:`SketchLadder` removes the guess.  It tracks a current capacity
*rung* (a power of two); after every ingest batch the session polls its
O(1) touched-vertex count, and when the count crosses the rung the
ladder *promotes*: the session re-derives a connectivity sketch sized
for the next rung and replays the net live-edge ledger into it — the
same linearity argument behind ``rotate_sketches()`` and the mid-stream
pass-2 synthesis.  By linearity the rebuilt sketch is bit-identical to
the one a correctly-sized-up-front session would hold, so answers are
unchanged and no re-ingest is ever needed.  Only the connectivity slot
rebuilds: the spanner and sparsifier pipelines are sized by their own
parameters, not by ``agm_rounds``, and their full-history state already
equals a net-replay rebuild.

Promotion cost is one ledger replay (~the cost of one spanner snapshot)
per rung crossed, and rungs are powers of two, so a stream that grows
to ``n`` touched vertices pays ``O(log n)`` promotions total —
amortized O(1) work per ingested update, the classic doubling argument.
"""

from __future__ import annotations

import math

__all__ = ["SketchLadder", "rounds_for_capacity"]


def rounds_for_capacity(capacity: int) -> int:
    """Borůvka rounds for a graph of up to ``capacity`` touched vertices.

    ``max(2, ceil(log2 capacity)) + 2``: the ``log2`` term covers
    Borůvka's halving, the ``+2`` the slack the sparse-universe sessions
    already use (see ``agm_rounds`` in :class:`~repro.service.session.GraphSession`).
    """
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    return max(2, math.ceil(math.log2(max(capacity, 2)))) + 2


class SketchLadder:
    """Power-of-two capacity rungs for a session's connectivity sketch.

    Parameters
    ----------
    start_capacity:
        The first rung (rounded up to a power of two): the touched
        vertex count the session is initially provisioned for.
    max_capacity:
        Optional ceiling; promotion never provisions beyond it (the
        attaching session caps it at its universe size, past which
        more capacity is meaningless).

    The ladder is plain bookkeeping — the session owns the rebuild; the
    ladder answers :meth:`should_promote` and records the rung history.
    One ladder instance belongs to one session (checkpoints persist its
    state and restore re-attaches an equal ladder).
    """

    __slots__ = ("start_capacity", "max_capacity", "rung", "promotions")

    def __init__(
        self,
        start_capacity: int = 1024,
        max_capacity: int | None = None,
        *,
        rung: int | None = None,
        promotions: int = 0,
    ):
        if start_capacity < 1:
            raise ValueError(f"start_capacity must be >= 1, got {start_capacity}")
        if max_capacity is not None and max_capacity < start_capacity:
            raise ValueError(
                f"max_capacity {max_capacity} below start_capacity {start_capacity}"
            )
        if promotions < 0:
            raise ValueError(f"promotions must be >= 0, got {promotions}")
        self.start_capacity = 1 << (start_capacity - 1).bit_length()
        self.max_capacity = max_capacity
        self.rung = self.start_capacity if rung is None else rung
        if self.rung < self.start_capacity:
            raise ValueError(
                f"rung {self.rung} below start_capacity {self.start_capacity}"
            )
        self.promotions = promotions

    def rounds(self) -> int:
        """AGM round depth for the current rung."""
        return rounds_for_capacity(self.rung)

    def should_promote(self, touched: int) -> bool:
        """Whether ``touched`` vertices have outgrown the current rung."""
        if touched <= self.rung:
            return False
        return self.max_capacity is None or self.rung < self.max_capacity

    def rung_for(self, touched: int) -> int:
        """Smallest power-of-two rung holding ``touched`` vertices,
        clamped to ``[rung, max_capacity]`` (a single promotion jumps
        straight here — crossing several rungs in one batch costs one
        rebuild, not one per rung)."""
        target = 1 << (max(touched, 1) - 1).bit_length()
        if self.max_capacity is not None:
            target = min(target, self.max_capacity)
        return max(target, self.rung)

    def promote_to(self, target: int) -> int:
        """Record a promotion to ``target``; returns the new round depth."""
        if target <= self.rung:
            raise ValueError(f"target rung {target} not above current {self.rung}")
        if self.max_capacity is not None and target > self.max_capacity:
            raise ValueError(
                f"target rung {target} above max_capacity {self.max_capacity}"
            )
        self.rung = target
        self.promotions += 1
        return self.rounds()

    def config(self) -> dict:
        """JSON-shaped state for checkpoint headers (see
        :func:`from_config`)."""
        return {
            "start_capacity": self.start_capacity,
            "max_capacity": self.max_capacity,
            "rung": self.rung,
            "promotions": self.promotions,
        }

    @classmethod
    def from_config(cls, config: dict) -> "SketchLadder":
        """Rebuild a ladder from :meth:`config` output."""
        return cls(
            start_capacity=int(config["start_capacity"]),
            max_capacity=(
                None if config["max_capacity"] is None else int(config["max_capacity"])
            ),
            rung=int(config["rung"]),
            promotions=int(config["promotions"]),
        )

    def __repr__(self) -> str:
        return (
            f"SketchLadder(rung={self.rung}, start={self.start_capacity}, "
            f"max={self.max_capacity}, promotions={self.promotions})"
        )
