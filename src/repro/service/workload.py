"""Workload driving: replay mixed ingest/query scenarios, measure them.

The service story needs numbers: how fast does a session ingest, what
does a cold snapshot cost, what does the epoch cache buy, what does a
checkpoint cost.  :class:`WorkloadDriver` executes the op streams
produced by :func:`repro.stream.generators.mixed_session_ops` (or any
compatible list) against a :class:`~repro.service.session.GraphSession`,
timing every query and optionally checkpointing every N ingested
updates, and renders a :class:`WorkloadReport` with throughput and
per-kind latency tables.

Three named scenarios cover the regimes the paper's serving model cares
about (:func:`scenario_ops`):

* ``mixed`` — steady interleaved inserts/deletes with periodic queries;
* ``query-heavy`` — few updates between queries, the regime the epoch
  cache exists for;
* ``bursty-deletes`` — delete storms between queries, the dynamic-stream
  regime where insertion-only state would be garbage;
* ``sparse-universe`` — a huge id space (``--universe``, default
  ``10^7``) of which only a sampled sliver is ever touched: the lazy
  vertex-space engine's regime, where resident sketch rows must track
  touched vertices, not the universe.

``python -m repro workload`` and ``benchmarks/bench_sparse_universe.py``
/ ``benchmarks/bench_service.py`` are thin wrappers over this module.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.agm.spanning_forest import SparseDisjointSets
from repro.service.session import GraphSession
from repro.stream.generators import mixed_session_ops, sparse_session_ops
from repro.stream.updates import EdgeUpdate
from repro.util.rng import rng_from_seed

__all__ = [
    "SCENARIOS",
    "LatencySummary",
    "WorkloadReport",
    "AdversarialReport",
    "WorkloadDriver",
    "scenario_ops",
    "components_match_ledger",
]

#: Scenario name -> knobs for :func:`repro.stream.generators.mixed_session_ops`.
SCENARIOS = {
    "mixed": {"delete_fraction": 0.35, "query_divisor": 24, "query_repeats": 2},
    "query-heavy": {
        "delete_fraction": 0.25,
        "query_divisor": 200,
        "query_repeats": 3,
    },
    "bursty-deletes": {
        "delete_fraction": 0.15,
        "query_divisor": 24,
        "query_repeats": 2,
        "burst_divisor": 10,
    },
    "sparse-universe": {
        "delete_fraction": 0.3,
        "query_divisor": 8,
        "query_repeats": 2,
        "touched_divisor": 12,
    },
}


def scenario_ops(
    name: str,
    num_vertices: int,
    updates: int,
    seed: int | str,
    weights: tuple[float, float] | None = None,
    query_kinds: tuple[str, ...] = ("connected", "forest", "spanner_distance", "cut"),
    touched: int | None = None,
) -> list[tuple]:
    """Seeded op stream for a named scenario (see module docstring).

    For ``sparse-universe``, ``num_vertices`` is the (huge) universe and
    ``touched`` caps how many distinct ids the stream visits (default
    ``updates // touched_divisor``); other scenarios ignore ``touched``.
    """
    if name not in SCENARIOS:
        raise ValueError(f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}")
    knobs = SCENARIOS[name]
    kwargs: dict = {
        "delete_fraction": knobs["delete_fraction"],
        "weights": weights,
        "query_every": max(32, updates // knobs["query_divisor"]),
        "query_kinds": query_kinds,
        "query_repeats": knobs["query_repeats"],
    }
    if name == "sparse-universe":
        if touched is None:
            touched = max(2, updates // knobs["touched_divisor"])
        touched = min(touched, num_vertices)
        return sparse_session_ops(num_vertices, touched, updates, seed, **kwargs)
    if "burst_divisor" in knobs:
        kwargs["burst_every"] = max(64, updates // knobs["burst_divisor"])
        kwargs["burst_length"] = max(32, updates // (2 * knobs["burst_divisor"]))
    return mixed_session_ops(num_vertices, updates, seed, **kwargs)


def components_match_ledger(session: GraphSession) -> bool:
    """Whether the session's decoded components match its exact ledger.

    Dense sessions compare the full partition against the ledger
    graph's.  Lazy (sparse-universe) sessions compare the non-singleton
    partition of touched vertices against a union-find over the live
    ledger edges — enumerating a ``10^7``-id universe to list trivial
    singletons would defeat the engine being verified.
    """
    if not session.space.lazy:
        truth = sorted(
            map(sorted, session.live_graph().connected_components())
        )
        return sorted(map(sorted, session.components())) == truth
    dsu = SparseDisjointSets()
    for u, v, _ in session.live_graph().edges():
        dsu.union(u, v)
    truth_groups: dict[int, set[int]] = {}
    for vertex in dsu.parent:
        truth_groups.setdefault(dsu.find(vertex), set()).add(vertex)
    truth_sets = sorted(
        map(sorted, (group for group in truth_groups.values() if len(group) > 1))
    )
    mine = sorted(
        map(sorted, (group for group in session.components() if len(group) > 1))
    )
    return mine == truth_sets


@dataclass
class LatencySummary:
    """Latency aggregate for one query kind."""

    count: int = 0
    cache_hits: int = 0
    _samples_ms: list[float] = field(default_factory=list)

    def record(self, seconds: float, cache_hit: bool) -> None:
        """Add one observation."""
        self.count += 1
        if cache_hit:
            self.cache_hits += 1
        self._samples_ms.append(seconds * 1e3)

    @property
    def mean_ms(self) -> float:
        """Mean latency in milliseconds (0 when empty)."""
        return statistics.fmean(self._samples_ms) if self._samples_ms else 0.0

    @property
    def p50_ms(self) -> float:
        """Median latency in milliseconds (0 when empty)."""
        return statistics.median(self._samples_ms) if self._samples_ms else 0.0

    @property
    def max_ms(self) -> float:
        """Worst latency in milliseconds (0 when empty)."""
        return max(self._samples_ms) if self._samples_ms else 0.0


@dataclass
class WorkloadReport:
    """Outcome of one :meth:`WorkloadDriver.run`."""

    scenario: str
    num_vertices: int
    updates: int
    queries: int
    skipped_queries: int
    checkpoints: int
    ingest_seconds: float
    query_seconds: float
    checkpoint_seconds: float
    cache_hits: int
    cache_misses: int
    latencies: dict[str, LatencySummary]
    last_checkpoint: Path | None = None

    @property
    def ingest_rate(self) -> float:
        """Ingested updates per second of ingest wall-clock."""
        return self.updates / self.ingest_seconds if self.ingest_seconds > 0 else 0.0

    def table(self) -> str:
        """Human-readable summary (what the CLI and the bench print)."""
        lines = [
            f"scenario  : {self.scenario} (n={self.num_vertices}, "
            f"{self.updates:,} updates, {self.queries} queries)",
            f"ingest    : {self.ingest_seconds:8.2f} s  "
            f"({self.ingest_rate:,.0f} updates/s)",
            f"queries   : {self.query_seconds:8.2f} s  "
            f"(cache {self.cache_hits} hits / {self.cache_misses} misses)",
        ]
        if self.checkpoints:
            lines.append(
                f"checkpoint: {self.checkpoint_seconds:8.2f} s over "
                f"{self.checkpoints} snapshots -> {self.last_checkpoint}"
            )
        if self.skipped_queries:
            lines.append(
                f"skipped   : {self.skipped_queries} queries for disabled slots"
            )
        for kind in sorted(self.latencies):
            summary = self.latencies[kind]
            lines.append(
                f"  {kind:<16} x{summary.count:<4} "
                f"mean {summary.mean_ms:8.2f} ms  p50 {summary.p50_ms:8.2f} ms  "
                f"max {summary.max_ms:8.2f} ms  ({summary.cache_hits} cached)"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class AdversarialReport:
    """Outcome of one :meth:`WorkloadDriver.run_adversarial` run.

    ``anomaly_rounds`` are the rounds whose decoded component partition
    diverged from the exact ledger — the observable signature of the
    adaptive-deletion regime the sketches' oblivious-adversary analysis
    does not cover (see ``docs/robustness.md``).
    """

    rounds: int
    edges_inserted: int
    deletions: int
    anomaly_rounds: tuple[int, ...]
    rotations: int

    @property
    def anomalies(self) -> int:
        """How many rounds diverged from the exact ledger."""
        return len(self.anomaly_rounds)

    def summary(self) -> str:
        """One-line report (what ``repro chaos --adversarial-rounds`` prints)."""
        return (
            f"adversarial: {self.rounds} rounds, "
            f"{self.edges_inserted} inserts / {self.deletions} adaptive deletes, "
            f"{self.anomalies} anomalous rounds"
            + (f" {list(self.anomaly_rounds)}" if self.anomaly_rounds else "")
            + f", {self.rotations} sketch rotations"
        )


class WorkloadDriver:
    """Execute an op stream against a session, measuring as it goes.

    Parameters
    ----------
    session:
        The live :class:`~repro.service.session.GraphSession`.
    checkpoint_every:
        Checkpoint after every ``checkpoint_every`` ingested updates
        (0 disables) into ``checkpoint_dir``.
    checkpoint_dir:
        Directory for ``ckpt-<epoch>.bin`` files (required when
        ``checkpoint_every`` is positive).
    tracer:
        Telemetry collector for the run's spans.  Defaults to the
        process-wide ``obs.TRACER`` when tracing is armed; otherwise a
        private enabled :class:`~repro.obs.tracer.Tracer` (no sink) so
        :class:`WorkloadReport` timings are real even without
        ``REPRO_TRACE`` — the report and the trace read the *same*
        spans, so they can never disagree.
    """

    def __init__(
        self,
        session: GraphSession,
        checkpoint_every: int = 0,
        checkpoint_dir=None,
        tracer=None,
    ):
        if checkpoint_every < 0:
            raise ValueError(f"checkpoint_every must be >= 0, got {checkpoint_every}")
        if checkpoint_every > 0 and checkpoint_dir is None:
            raise ValueError("checkpoint_every needs a checkpoint_dir")
        self.session = session
        self.checkpoint_every = checkpoint_every
        self.checkpoint_dir = None if checkpoint_dir is None else Path(checkpoint_dir)
        if tracer is None:
            tracer = obs.TRACER if obs.TRACER.enabled else obs.Tracer()
        self.tracer = tracer

    def _dispatch(self, kind: str, args: tuple):
        session = self.session
        if kind == "connected":
            return session.connected(*args)
        if kind == "forest":
            return session.spanning_forest()
        if kind == "spanner_distance":
            if session._spanner is None:
                return None
            return session.spanner_distance(*args)
        if kind == "cut":
            if session._sparsifier is None:
                return None
            return session.cut_estimate(*args)
        raise ValueError(f"unknown query kind {kind!r}")

    def run_adversarial(
        self,
        rounds: int,
        edges_per_round: int,
        seed: int | str,
        rotate_every: int = 0,
    ) -> AdversarialReport:
        """Drive the adaptive-deletion scenario: deletions depend on answers.

        Every sketch guarantee in this repo is an *oblivious*-adversary
        guarantee: the randomness is drawn after the stream is fixed.
        This scenario breaks that assumption the canonical way (cf.
        Bernstein et al., arXiv:2004.08432): each round inserts
        ``edges_per_round`` seeded-random edges, *queries* the session
        for its decoded spanning forest, then deletes exactly the live
        edges the forest revealed — so the deletion stream is a
        function of the session's private randomness as leaked through
        its answers.  After each round the decoded component partition
        is checked against the exact ledger; divergent rounds are
        recorded as anomalies.

        ``rotate_every > 0`` arms the mitigation: every that-many
        rounds the session re-derives all hash families from its
        rotation counter and rebuilds state from the exact ledger
        (:meth:`~repro.service.session.GraphSession.rotate_sketches`),
        invalidating whatever the adversary has learned so far.

        Fully deterministic given ``seed`` — the "adversary" replays
        identically, which is what lets tests compare mitigation
        on/off runs.
        """
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        if edges_per_round < 1:
            raise ValueError(f"edges_per_round must be >= 1, got {edges_per_round}")
        session = self.session
        n = session.num_vertices
        if n < 2:
            raise ValueError("adversarial scenario needs at least 2 vertices")
        inserted = 0
        deletions = 0
        rotations = 0
        anomaly_rounds: list[int] = []
        with self.tracer.span("workload.adversarial", rounds=rounds):
            for round_index in range(rounds):
                rng = rng_from_seed(seed, "adversarial", round_index)
                batch = []
                for _ in range(edges_per_round):
                    u = rng.randrange(n)
                    v = rng.randrange(n - 1)
                    if v >= u:
                        v += 1
                    batch.append(EdgeUpdate(u, v, +1))
                session.ingest_batch(batch)
                inserted += len(batch)
                # The query whose answer the adversary conditions on.
                forest = session.spanning_forest()
                obs.TRACER.count("workload.adversarial.round")
                revealed = [
                    EdgeUpdate(u, v, -1)
                    for u, v in forest
                    if session._multiplicity.get(EdgeUpdate(u, v, -1).pair, 0) > 0
                ]
                if revealed:
                    session.ingest_batch(revealed)
                    deletions += len(revealed)
                if not components_match_ledger(session):
                    anomaly_rounds.append(round_index)
                    obs.TRACER.count("workload.adversarial.anomaly")
                if rotate_every and (round_index + 1) % rotate_every == 0:
                    session.rotate_sketches()
                    rotations += 1
        return AdversarialReport(
            rounds=rounds,
            edges_inserted=inserted,
            deletions=deletions,
            anomaly_rounds=tuple(anomaly_rounds),
            rotations=rotations,
        )

    def run(self, ops: list[tuple], scenario: str = "custom") -> WorkloadReport:
        """Execute ``ops`` (``("ingest", updates)`` / ``("query", kind,
        args)`` tuples) and return the measured report.

        Queries for disabled session slots are counted as skipped rather
        than failing, so one op stream drives any session configuration.
        """
        session = self.session
        tracer = self.tracer
        hits_at_start = session._cache.hits
        misses_at_start = session._cache.misses
        ingest_seconds = 0.0
        query_seconds = 0.0
        checkpoint_seconds = 0.0
        updates = 0
        queries = 0
        skipped = 0
        checkpoints = 0
        last_checkpoint: Path | None = None
        since_checkpoint = 0
        latencies: dict[str, LatencySummary] = {}
        with tracer.span("workload.run", scenario=scenario):
            for op in ops:
                if op[0] == "ingest":
                    chunk = op[1]
                    with tracer.span("workload.ingest") as span:
                        session.ingest_batch(chunk)
                    ingest_seconds += span.elapsed
                    updates += len(chunk)
                    since_checkpoint += len(chunk)
                    if (
                        self.checkpoint_every
                        and since_checkpoint >= self.checkpoint_every
                    ):
                        since_checkpoint = 0
                        target = self.checkpoint_dir / f"ckpt-{session.epoch}.bin"
                        with tracer.span("workload.checkpoint") as span:
                            session.checkpoint(target)
                        checkpoint_seconds += span.elapsed
                        checkpoints += 1
                        last_checkpoint = target
                elif op[0] == "query":
                    kind, args = op[1], op[2]
                    hits_before = session._cache.hits
                    with tracer.span("workload.query", kind=kind) as span:
                        result = self._dispatch(kind, args)
                    query_seconds += span.elapsed
                    if result is None and kind in ("spanner_distance", "cut"):
                        skipped += 1
                        continue
                    queries += 1
                    latencies.setdefault(kind, LatencySummary()).record(
                        span.elapsed, session._cache.hits > hits_before
                    )
                else:
                    raise ValueError(f"unknown op {op[0]!r}")
        return WorkloadReport(
            scenario=scenario,
            num_vertices=session.num_vertices,
            updates=updates,
            queries=queries,
            skipped_queries=skipped,
            checkpoints=checkpoints,
            ingest_seconds=ingest_seconds,
            query_seconds=query_seconds,
            checkpoint_seconds=checkpoint_seconds,
            # Deltas, not lifetime totals: a warmed-up or re-run session
            # must not leak earlier traffic into this run's table.
            cache_hits=session._cache.hits - hits_at_start,
            cache_misses=session._cache.misses - misses_at_start,
            latencies=latencies,
            last_checkpoint=last_checkpoint,
        )
