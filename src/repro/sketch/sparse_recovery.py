"""Exact ``B``-sparse recovery: the paper's ``SKETCH_B`` / ``DECODE`` pair.

Theorem 8 (quoting [CM06]) promises a randomized linear map ``T`` with
``O(B log^3 n)`` rows such that any ``B``-sparse integer vector ``x`` can
be recovered exactly from ``Tx`` with probability ``1 - n^{-c}``.  We
implement the standard practical construction with the same interface and
guarantees:

* ``d`` hash rows, each with ``m = ceil(c * B)`` buckets;
* every bucket is a Ganguly 1-sparse detector (see
  :mod:`repro.sketch.onesparse`);
* decoding peels: find a bucket that currently summarizes a 1-sparse
  sub-vector, extract its coordinate, subtract it from every row, repeat.

Decoding *self-verifies*: it succeeds only if all buckets are driven to
zero, so a sketch "knows" whether it decoded (the property the paper gets
by attaching a distinct-elements guard; our residual check is strictly
stronger, and :mod:`repro.sketch.distinct` is still provided and used
where the paper calls for degree estimates).

The sketch is linear: two sketches built from the same seed can be added
or subtracted, and a sketch of ``x`` plus a sketch of ``y`` decodes to
``x + y``.
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np

from repro.sketch.batched import (
    SMALL_BATCH,
    as_field_array,
    fits_int64_products,
    prepare_batch,
)
from repro.sketch.kernels import mulmod61, powmod61, scatter_sum_mod61
from repro import obs
from repro.sketch.hashing import MERSENNE_61, KWiseHash
from repro.util.rng import derive_seed

__all__ = ["SparseRecoverySketch"]

#: Independence of the bucket-choice hash functions.  Theorem 8 only needs
#: O(1)-wise independence; 6-wise keeps peeling well-behaved in practice.
_BUCKET_HASH_INDEPENDENCE = 6


class SparseRecoverySketch:
    """Linear sketch with exact decode of ``<= budget``-sparse vectors.

    Parameters
    ----------
    domain_size:
        Coordinates live in ``[0, domain_size)``.
    budget:
        Target sparsity ``B``; decoding is guaranteed (whp) whenever the
        summarized vector has at most ``budget`` nonzero coordinates.
    seed:
        Randomness name.  Sketches are summable iff seeds (and shapes)
        match.
    rows:
        Number of independent hash rows ``d`` (peeling redundancy).
    bucket_factor:
        Buckets per row are ``max(4, ceil(bucket_factor * budget))``.
    """

    __slots__ = (
        "domain_size",
        "budget",
        "rows",
        "buckets",
        "_seed_key",
        "_z",
        "_row_hashes",
        "_totals",
        "_index_sums",
        "_fingerprints",
    )

    def __init__(
        self,
        domain_size: int,
        budget: int,
        seed: int | str,
        rows: int = 4,
        bucket_factor: float = 2.0,
    ):
        if domain_size <= 0:
            raise ValueError(f"domain_size must be positive, got {domain_size}")
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        if rows < 2:
            raise ValueError(f"rows must be >= 2 for peeling, got {rows}")
        self.domain_size = domain_size
        self.budget = budget
        self.rows = rows
        self.buckets = max(4, math.ceil(bucket_factor * budget))
        self._seed_key = derive_seed(seed, "sparse-recovery", domain_size, budget, rows)
        self._z = 1 + self._seed_key % (MERSENNE_61 - 1)
        self._row_hashes = [
            KWiseHash.shared(_BUCKET_HASH_INDEPENDENCE, derive_seed(self._seed_key, "row", r))
            for r in range(rows)
        ]
        size = rows * self.buckets
        self._totals = [0] * size
        self._index_sums = [0] * size
        self._fingerprints = [0] * size

    # ------------------------------------------------------------------
    # Streaming updates
    # ------------------------------------------------------------------

    def update(self, index: int, delta: int) -> None:
        """Apply ``x[index] += delta`` (the batch-of-one case of
        :meth:`update_batch`; both paths land in identical state)."""
        if not 0 <= index < self.domain_size:
            raise IndexError(f"index {index} out of domain [0, {self.domain_size})")
        if delta == 0:
            return
        power = pow(self._z, index, MERSENNE_61)
        fingerprint_delta = delta * power
        index_delta = delta * index
        for row, row_hash in enumerate(self._row_hashes):
            cell = row * self.buckets + row_hash.bucket(index, self.buckets)
            self._totals[cell] += delta
            self._index_sums[cell] += index_delta
            self._fingerprints[cell] = (self._fingerprints[cell] + fingerprint_delta) % MERSENNE_61

    def update_batch(self, indices, deltas) -> None:
        """Apply ``x[indices[t]] += deltas[t]`` for a whole batch at once.

        Bit-identical to the equivalent sequence of scalar
        :meth:`update` calls (additions into every cell commute), but
        the expensive per-update work — bucket hashing per row, the
        fingerprint power ``z^index mod p``, and the scatter into cells
        — runs vectorized over the whole batch.

        Counter exactness is preserved in all regimes:

        * small deltas (the graph algorithms' ``±1`` signs) ride the
          pure ``int64`` scatter fast path, guarded so no accumulator
          can overflow;
        * arbitrary-precision deltas (serialized payloads of the linear
          hash tables are ~``2^61``-sized) keep exact Python-integer
          counter sums while the hashing and field arithmetic stay
          vectorized.
        """
        route, idx, values, fits, max_abs = prepare_batch(
            indices, deltas, domain_size=self.domain_size, small_batch=SMALL_BATCH
        )
        if route == "empty":
            return
        if route == "scalar":
            for index, delta in zip(idx, values):
                self.update(int(index), int(delta))
            return
        residues = as_field_array(values)
        fast = (
            fits_int64_products(idx.size, max_abs, int(idx.max())) if fits else False
        )
        terms = mulmod61(residues, powmod61(self._z, idx))
        if fast:
            products = idx * values
        for row, row_hash in enumerate(self._row_hashes):
            positions = row_hash.bucket_array(idx, self.buckets)
            base = row * self.buckets
            fingerprint_agg = scatter_sum_mod61(self.buckets, positions, terms)
            for bucket in np.flatnonzero(fingerprint_agg):
                cell = base + bucket
                self._fingerprints[cell] = (
                    self._fingerprints[cell] + int(fingerprint_agg[bucket])
                ) % MERSENNE_61
            if fast:
                total_agg = np.zeros(self.buckets, dtype=np.int64)
                index_agg = np.zeros(self.buckets, dtype=np.int64)
                np.add.at(total_agg, positions, values)
                np.add.at(index_agg, positions, products)
                for bucket in np.flatnonzero(total_agg | index_agg):
                    cell = base + bucket
                    self._totals[cell] += int(total_agg[bucket])
                    self._index_sums[cell] += int(index_agg[bucket])
            else:
                for t, bucket in enumerate(positions):
                    cell = base + bucket
                    delta = int(values[t])
                    self._totals[cell] += delta
                    self._index_sums[cell] += delta * int(idx[t])

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------

    def decode(self) -> dict[int, int] | None:
        """Recover the summarized vector as ``{index: value}``.

        Returns ``None`` when the vector is not decodable (more than
        ``budget`` nonzeros, up to peeling slack) — never a wrong answer,
        up to the ``~1/2^61`` fingerprint failure probability.  An empty
        dict means the vector is (whp) zero.
        """
        obs.TRACER.count("sketch.decode.attempt")
        if (
            not any(self._totals)
            and not any(self._index_sums)
            and not any(self._fingerprints)
        ):
            return {}  # zero state peels to nothing with a clean residual
        totals = list(self._totals)
        index_sums = list(self._index_sums)
        fingerprints = list(self._fingerprints)
        recovered: dict[int, int] = {}
        power_cache: dict[int, int] = {}

        def cell_one_sparse(cell: int) -> tuple[int, int] | None:
            total = totals[cell]
            if total == 0:
                return None
            if index_sums[cell] % total != 0:
                return None
            index = index_sums[cell] // total
            if not 0 <= index < self.domain_size:
                return None
            power = power_cache.get(index)
            if power is None:
                power = pow(self._z, index, MERSENNE_61)
                power_cache[index] = power
            if (total % MERSENNE_61) * power % MERSENNE_61 != fingerprints[cell]:
                return None
            return (index, total)

        # Queue-based peeling: after an extraction only the d cells of the
        # extracted index can change state, so re-examine exactly those.
        # Only cells with a nonzero running total can ever extract, so
        # the initial scan seeds just those — the big win for barely
        # loaded tables (the spanner's lazy pass-2 tables hold a handful
        # of keys in thousands of cells).  Extraction order changes
        # nothing: every verified extraction removes its coordinate
        # completely, so peeling is confluent.
        size = self.rows * self.buckets
        queued = [False] * size
        seeds = [cell for cell, total in enumerate(totals) if total]
        for cell in seeds:
            queued[cell] = True
        queue = deque(seeds)
        peel_iterations = 0
        while queue:
            peel_iterations += 1
            cell = queue.popleft()
            queued[cell] = False
            extracted = cell_one_sparse(cell)
            if extracted is None:
                continue
            index, value = extracted
            recovered[index] = recovered.get(index, 0) + value
            power = power_cache[index]
            fingerprint_delta = value * power
            index_delta = value * index
            for row, row_hash in enumerate(self._row_hashes):
                target = row * self.buckets + row_hash.bucket(index, self.buckets)
                totals[target] -= value
                index_sums[target] -= index_delta
                fingerprints[target] = (fingerprints[target] - fingerprint_delta) % MERSENNE_61
                if not queued[target]:
                    queued[target] = True
                    queue.append(target)

        # C-speed residual check (any() over the plain int lists).
        obs.TRACER.count("sketch.decode.peel_iterations", peel_iterations)
        if any(totals) or any(index_sums) or any(fingerprints):
            obs.TRACER.count("sketch.decode.fail")
            return None
        return {index: value for index, value in recovered.items() if value != 0}

    def decode_support(self) -> list[int] | None:
        """Sorted nonzero coordinates, or ``None`` if undecodable."""
        decoded = self.decode()
        if decoded is None:
            return None
        return sorted(decoded)

    def is_zero(self) -> bool:
        """Whether the summarized vector is (whp) identically zero."""
        return (
            all(value == 0 for value in self._totals)
            and all(value == 0 for value in self._index_sums)
            and all(value == 0 for value in self._fingerprints)
        )

    # ------------------------------------------------------------------
    # Linearity
    # ------------------------------------------------------------------

    def combine(self, other: "SparseRecoverySketch", sign: int = 1) -> None:
        """In-place ``self += sign * other``; seeds/shapes must match."""
        if self._seed_key != other._seed_key:
            raise ValueError("cannot combine sketches with different seeds")
        if sign not in (1, -1):
            raise ValueError(f"sign must be +1 or -1, got {sign}")
        for cell in range(self.rows * self.buckets):
            self._totals[cell] += sign * other._totals[cell]
            self._index_sums[cell] += sign * other._index_sums[cell]
            self._fingerprints[cell] = (
                self._fingerprints[cell] + sign * other._fingerprints[cell]
            ) % MERSENNE_61

    def copy(self) -> "SparseRecoverySketch":
        """Return an independent copy with the same state and seed."""
        clone = object.__new__(SparseRecoverySketch)
        clone.domain_size = self.domain_size
        clone.budget = self.budget
        clone.rows = self.rows
        clone.buckets = self.buckets
        clone._seed_key = self._seed_key
        clone._z = self._z
        clone._row_hashes = self._row_hashes  # hashes are immutable, share
        clone._totals = list(self._totals)
        clone._index_sums = list(self._index_sums)
        clone._fingerprints = list(self._fingerprints)
        return clone

    def clone(self) -> "SparseRecoverySketch":
        """Uniform deep-copy entry point (see the sketch-wide ``clone()``
        contract in :mod:`repro.sketch`): alias of :meth:`copy`."""
        return self.copy()

    def state_ints(self) -> list[int]:
        """Dynamic state as a flat int sequence (for serialization).

        Hash functions and the fingerprint base are seed-derived shared
        knowledge and are not part of the shipped state.
        """
        return list(self._totals) + list(self._index_sums) + list(self._fingerprints)

    def state_len(self) -> int:
        """Length of :meth:`state_ints`, without materializing it."""
        return 3 * self.rows * self.buckets

    def from_state_ints(self, values: list[int]) -> "SparseRecoverySketch":
        """Overwrite the dynamic state from a :meth:`state_ints` sequence.

        Exact inverse of :meth:`state_ints` on a same-seed/same-shape
        sketch (arbitrary-precision cells included); returns ``self``.
        """
        cells = self.rows * self.buckets
        if len(values) != 3 * cells:
            raise ValueError(f"expected {3 * cells} state ints, got {len(values)}")
        self._totals = [int(v) for v in values[:cells]]
        self._index_sums = [int(v) for v in values[cells : 2 * cells]]
        self._fingerprints = [int(v) % MERSENNE_61 for v in values[2 * cells :]]
        return self

    def space_words(self) -> int:
        """Persistent state, in machine words."""
        cells = self.rows * self.buckets
        hash_words = sum(h.space_words() for h in self._row_hashes)
        return 3 * cells + hash_words + 1  # +1 for the fingerprint base

    def __repr__(self) -> str:
        return (
            f"SparseRecoverySketch(domain_size={self.domain_size}, budget={self.budget}, "
            f"rows={self.rows}, buckets={self.buckets})"
        )
