"""Columnar sketch stacks: many sketches, one contiguous state array.

The batch engine (:mod:`repro.sketch.batched`) vectorizes *within* one
sketch, but the graph algorithms fan a stream chunk out across ``n x
O(log n)`` AGM vertex sketches or ``(endpoint, r, j)`` spanner stacks
before any single sketch sees a vectorizable sub-batch — so the
per-sketch engine mostly falls back to its scalar loops.  The structural
fact that rescues vectorization is that those sketches are *same-seeded
stacks*: every vertex row of an AGM round hashes the same edge
coordinates with the same hash family.  This module stores such a stack
as one 2-D array (rows = sketches, columns = counter cells), evaluates
each chunk's polynomial hashes and fingerprint powers **once per
(coordinate, stack)**, and lands every row's contribution with a single
flattened ``(row, cell)`` scatter — bit-identical to updating each row's
standalone sketch (the property ``tests/sketch/test_columnar.py`` pins).

Two stack flavors:

:class:`SketchStack`
    ``num_rows`` same-shaped :class:`~repro.sketch.sparse_recovery.SparseRecoverySketch`
    states.  Rows may share one seed (AGM rounds, the spanner's
    ``(r, j)`` cluster stacks) — hashes are then evaluated once per
    coordinate and broadcast — or carry per-row seeds (the spanner's
    per-root cut sketches), in which case the gathered-coefficient
    kernels :func:`~repro.sketch.batched.polyhash61_rows` /
    :func:`~repro.sketch.batched.powmod61_bases` still evaluate the
    whole incidence list in one vectorized pass.

:class:`L0SamplerStack`
    ``num_rows`` same-seeded :class:`~repro.sketch.l0sampler.L0Sampler`
    states: one shared membership evaluation per coordinate routes every
    row's contribution to the right geometric levels, each level being a
    :class:`SketchStack`.

Exactness and interop
---------------------
Counter cells live in ``int64`` arrays guarded by a conservative running
bound (:attr:`SketchStack.cell_bound`); before any batch could overflow,
the stack *spills* to the per-row scalar sketch objects and keeps exact
Python-integer arithmetic from then on (state identical, just slower).
Rows materialize back into the existing sketch classes via
:meth:`SketchStack.row_sketch` / :meth:`L0SamplerStack.row_sampler`
(shared immutable hash families, copied cells), so every decode,
``clone()``, ``combine`` and ``state_ints`` contract is preserved on top
of the new storage — mixed scalar/columnar state stays summable.
"""

from __future__ import annotations

import numpy as np

from repro.sketch.batched import (
    addmod61,
    mulmod61,
    polyhash61_rows,
    powmod61,
    powmod61_bases,
    scatter_sum_mod61,
    submod61,
    MASK32,
)
from repro.sketch.hashing import MERSENNE_61, KWiseHash, NestedSampler
from repro.sketch.l0sampler import L0Sampler
from repro.sketch.sparse_recovery import (
    _BUCKET_HASH_INDEPENDENCE,
    SparseRecoverySketch,
)
from repro.util.rng import derive_seed

__all__ = ["SketchStack", "L0SamplerStack"]

#: Spill threshold for the running per-cell magnitude bound: while the
#: bound stays below this, every ``int64`` accumulation (including a
#: whole-stack column sum) is provably exact.
_INT64_SAFE_BOUND = 1 << 61


def _colsum_mod61(selected: np.ndarray) -> np.ndarray:
    """Exact per-column ``sum mod p`` over a gathered row subset.

    ``selected`` is a ``uint64`` field-element matrix (the caller's
    already-gathered rows); the straight sum of even a handful of 61-bit
    values overflows ``uint64``, so the 32-bit limbs are accumulated
    separately (exact for up to ``2^31`` rows) and recombined mod ``p``
    — the column form of
    :func:`repro.sketch.batched.scatter_sum_mod61`.
    """
    lo = np.sum(selected & MASK32, axis=0, dtype=np.uint64)
    hi = np.sum(selected >> np.uint64(32), axis=0, dtype=np.uint64)
    lo_red = np.remainder(lo, np.uint64(MERSENNE_61))
    hi_red = np.remainder(hi, np.uint64(MERSENNE_61))
    return addmod61(lo_red, mulmod61(hi_red, np.uint64((1 << 32) % MERSENNE_61)))


class SketchStack:
    """Columnar state of ``num_rows`` sparse-recovery sketches.

    Parameters
    ----------
    num_rows:
        Number of stacked sketches (AGM: vertices; spanner cluster
        stacks: vertices; cut stacks: terminal roots).
    domain_size, budget, rows, bucket_factor:
        Per-row sketch shape, exactly as
        :class:`~repro.sketch.sparse_recovery.SparseRecoverySketch`.
    seed:
        One shared randomness name (all rows identically seeded, hence
        summable across rows — the AGM requirement), **or** a list of
        ``num_rows`` per-row seeds for heterogeneous stacks.
    """

    __slots__ = (
        "num_rows",
        "domain_size",
        "budget",
        "rows",
        "buckets",
        "cells",
        "shared_seed",
        "_seed_keys",
        "_zs",
        "_hash_objs",
        "_coeff_mats",
        "_totals",
        "_index_sums",
        "_fingerprints",
        "_bound",
        "_spilled",
    )

    def __init__(
        self,
        num_rows: int,
        domain_size: int,
        budget: int,
        seed,
        rows: int = 4,
        bucket_factor: float = 2.0,
    ):
        if num_rows <= 0:
            raise ValueError(f"num_rows must be positive, got {num_rows}")
        template = SparseRecoverySketch(
            domain_size,
            budget,
            seed if not isinstance(seed, (list, tuple)) else seed[0],
            rows=rows,
            bucket_factor=bucket_factor,
        )
        self.num_rows = num_rows
        self.domain_size = domain_size
        self.budget = budget
        self.rows = rows
        self.buckets = template.buckets
        self.cells = rows * self.buckets
        if isinstance(seed, (list, tuple)):
            if len(seed) != num_rows:
                raise ValueError(
                    f"need one seed per row: {num_rows} rows, {len(seed)} seeds"
                )
            self.shared_seed = False
            self._seed_keys = [
                derive_seed(s, "sparse-recovery", domain_size, budget, rows)
                for s in seed
            ]
            self._hash_objs = [
                [
                    KWiseHash.shared(
                        _BUCKET_HASH_INDEPENDENCE, derive_seed(key, "row", r)
                    )
                    for r in range(rows)
                ]
                for key in self._seed_keys
            ]
            self._zs = np.array(
                [1 + key % (MERSENNE_61 - 1) for key in self._seed_keys],
                dtype=np.uint64,
            )
            # One (num_rows, k) coefficient matrix per hash row, for the
            # gathered-coefficient vectorized evaluation.
            self._coeff_mats = [
                np.array(
                    [self._hash_objs[row][r].coefficients for row in range(num_rows)],
                    dtype=np.uint64,
                )
                for r in range(rows)
            ]
        else:
            self.shared_seed = True
            self._seed_keys = [template._seed_key] * num_rows
            self._hash_objs = template._row_hashes  # d shared hashes
            self._zs = np.full(num_rows, np.uint64(template._z), dtype=np.uint64)
            self._coeff_mats = None
        self._totals = np.zeros((num_rows, self.cells), dtype=np.int64)
        self._index_sums = np.zeros((num_rows, self.cells), dtype=np.int64)
        self._fingerprints = np.zeros((num_rows, self.cells), dtype=np.uint64)
        self._bound = 0
        self._spilled: list[SparseRecoverySketch] | None = None

    # ------------------------------------------------------------------
    # Exactness bookkeeping
    # ------------------------------------------------------------------

    @property
    def cell_bound(self) -> int:
        """Conservative bound on any cell's ``|total|`` / ``|index sum|``."""
        return self._bound

    def is_spilled(self) -> bool:
        """Whether the stack fell back to per-row exact sketches."""
        return self._spilled is not None

    def _spill(self) -> None:
        """Convert to per-row scalar sketches (exact big-int fallback).

        Reached only when the running bound says a future ``int64``
        accumulation might not be provably exact — unreachable for
        ``±1``-delta graph streams at any realistic length, but the
        contract must hold for arbitrary linear payloads.
        """
        if self._spilled is not None:
            return
        self._spilled = [self._materialize_row(row) for row in range(self.num_rows)]
        self._totals = self._index_sums = self._fingerprints = None

    def _grow_bound(self, amount: int) -> None:
        self._bound += amount
        if self._spilled is None and self._bound >= _INT64_SAFE_BOUND:
            self._spill()

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def update_row(self, row: int, index: int, delta: int) -> None:
        """Scalar ``x_row[index] += delta`` — bit-identical to
        :meth:`SparseRecoverySketch.update` on the row's sketch."""
        if delta == 0:
            return
        if not 0 <= row < self.num_rows:
            raise IndexError(f"row {row} out of [0, {self.num_rows})")
        if not 0 <= index < self.domain_size:
            raise IndexError(f"index {index} out of domain [0, {self.domain_size})")
        self._grow_bound(abs(delta) * max(index, 1))
        if self._spilled is not None:
            self._spilled[row].update(index, delta)
            return
        z = int(self._zs[row])
        power = pow(z, index, MERSENNE_61)
        fingerprint_delta = delta * power
        index_delta = delta * index
        hashes = self._hash_objs if self.shared_seed else self._hash_objs[row]
        for r, row_hash in enumerate(hashes):
            cell = r * self.buckets + row_hash.bucket(index, self.buckets)
            self._totals[row, cell] += delta
            self._index_sums[row, cell] += index_delta
            self._fingerprints[row, cell] = np.uint64(
                (int(self._fingerprints[row, cell]) + fingerprint_delta) % MERSENNE_61
            )

    def scatter(self, row_ids: np.ndarray, indices: np.ndarray, deltas: np.ndarray) -> None:
        """Apply a whole incidence batch: ``x_{row_ids[t]}[indices[t]] +=
        deltas[t]`` for every ``t``, in one vectorized pass.

        The polynomial bucket hashes and the fingerprint powers are
        evaluated once per incidence (once per *coordinate* when the
        caller deduplicates, which the graph layers do), shared across
        all affected rows; contributions land via one flattened
        ``(row, cell)`` scatter per counter plane.  Bit-identical to the
        equivalent sequence of per-row scalar updates.
        """
        row_ids = np.ascontiguousarray(row_ids, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        deltas = np.ascontiguousarray(deltas, dtype=np.int64)
        if not (row_ids.shape == indices.shape == deltas.shape) or row_ids.ndim != 1:
            raise ValueError("row_ids, indices, deltas must be 1-D of equal length")
        if row_ids.size == 0:
            return
        nonzero = deltas != 0
        if not nonzero.all():
            row_ids, indices, deltas = row_ids[nonzero], indices[nonzero], deltas[nonzero]
            if row_ids.size == 0:
                return
        if int(indices.min()) < 0 or int(indices.max()) >= self.domain_size:
            raise IndexError(f"index batch leaves domain [0, {self.domain_size})")
        if int(row_ids.min()) < 0 or int(row_ids.max()) >= self.num_rows:
            raise IndexError(f"row batch leaves [0, {self.num_rows})")
        volume = int(np.sum(np.abs(deltas)))
        self._grow_bound(volume * max(self.domain_size - 1, 1))
        if self._spilled is not None:
            order = np.argsort(row_ids, kind="stable")
            sorted_rows = row_ids[order]
            boundaries = np.flatnonzero(np.diff(sorted_rows)) + 1
            for chunk in np.split(order, boundaries):
                row = int(row_ids[chunk[0]])
                self._spilled[row].update_batch(indices[chunk], deltas[chunk])
            return

        residues = np.remainder(deltas, MERSENNE_61).astype(np.uint64)
        if self.shared_seed:
            powers = powmod61(int(self._zs[0]), indices)
            positions = [
                row_hash.bucket_array(indices, self.buckets)
                for row_hash in self._hash_objs
            ]
        else:
            powers = powmod61_bases(self._zs[row_ids], indices)
            positions = [
                (polyhash61_rows(self._coeff_mats[r], row_ids, indices)
                 % np.uint64(self.buckets)).astype(np.int64)
                for r in range(self.rows)
            ]
        terms = mulmod61(residues, powers)

        flat_base = row_ids * np.int64(self.cells)
        flat = np.concatenate(
            [flat_base + np.int64(r * self.buckets) + positions[r] for r in range(self.rows)]
        )
        tiled_deltas = np.tile(deltas, self.rows)
        np.add.at(self._totals.reshape(-1), flat, tiled_deltas)
        np.add.at(self._index_sums.reshape(-1), flat, np.tile(deltas * indices, self.rows))
        agg = scatter_sum_mod61(self.num_rows * self.cells, flat, np.tile(terms, self.rows))
        self._fingerprints = addmod61(
            self._fingerprints.reshape(-1), agg
        ).reshape(self.num_rows, self.cells)

    # ------------------------------------------------------------------
    # Row materialization / decode support
    # ------------------------------------------------------------------

    def _row_hashes_of(self, row: int) -> list[KWiseHash]:
        return self._hash_objs if self.shared_seed else self._hash_objs[row]

    def _materialize_row(self, row: int) -> SparseRecoverySketch:
        sketch = object.__new__(SparseRecoverySketch)
        sketch.domain_size = self.domain_size
        sketch.budget = self.budget
        sketch.rows = self.rows
        sketch.buckets = self.buckets
        sketch._seed_key = self._seed_keys[row]
        sketch._z = int(self._zs[row])
        sketch._row_hashes = list(self._row_hashes_of(row))
        sketch._totals = self._totals[row].tolist()
        sketch._index_sums = self._index_sums[row].tolist()
        sketch._fingerprints = self._fingerprints[row].tolist()
        return sketch

    def row_sketch(self, row: int) -> SparseRecoverySketch:
        """A standalone sketch holding row ``row``'s exact current state.

        Cheap view: hash families are shared (immutable), cells copied;
        mutating the returned sketch never touches the stack.
        """
        if self._spilled is not None:
            return self._spilled[row].copy()
        return self._materialize_row(row)

    def rows_sum_sketch(self, row_ids) -> SparseRecoverySketch:
        """One sketch holding the exact cell-wise sum of the selected rows.

        Linearity makes this the sketch of the summed vectors — the
        Borůvka component sum and the spanner's ``Q`` sums, computed as
        vectorized column reductions instead of pairwise ``combine``
        loops (identical resulting state).
        """
        rows = np.asarray(list(row_ids), dtype=np.int64)
        if rows.size == 0:
            raise ValueError("rows_sum_sketch needs at least one row")
        if self._spilled is not None:
            combined = self._spilled[int(rows[0])].copy()
            for row in rows[1:]:
                combined.combine(self._spilled[int(row)])
            return combined
        sketch = object.__new__(SparseRecoverySketch)
        sketch.domain_size = self.domain_size
        sketch.budget = self.budget
        sketch.rows = self.rows
        sketch.buckets = self.buckets
        sketch._seed_key = self._seed_keys[int(rows[0])]
        sketch._z = int(self._zs[int(rows[0])])
        sketch._row_hashes = list(self._row_hashes_of(int(rows[0])))
        sketch._totals = self._totals[rows].sum(axis=0).tolist()
        sketch._index_sums = self._index_sums[rows].sum(axis=0).tolist()
        selected = self._fingerprints[rows]
        # Borůvka sums many components whose high sample levels hold no
        # contributions at all — skip the modular column sum for those.
        if selected.any():
            sketch._fingerprints = _colsum_mod61(selected).tolist()
        else:
            sketch._fingerprints = [0] * self.cells
        return sketch

    def is_row_zero(self, row: int) -> bool:
        """Whether row ``row``'s summarized vector is (whp) zero."""
        if self._spilled is not None:
            return self._spilled[row].is_zero()
        return (
            not self._totals[row].any()
            and not self._index_sums[row].any()
            and not self._fingerprints[row].any()
        )

    # ------------------------------------------------------------------
    # Serialization (per-row, matching SparseRecoverySketch layout)
    # ------------------------------------------------------------------

    def row_state_len(self) -> int:
        """Length of one row's :meth:`row_state_ints`."""
        return 3 * self.cells

    def row_state_ints(self, row: int) -> list[int]:
        """Row ``row``'s dynamic state, exactly as the standalone
        sketch's ``state_ints()`` would serialize it."""
        if self._spilled is not None:
            return self._spilled[row].state_ints()
        return (
            self._totals[row].tolist()
            + self._index_sums[row].tolist()
            + self._fingerprints[row].tolist()
        )

    def load_row_state(self, row: int, values: list[int]) -> None:
        """Inverse of :meth:`row_state_ints` for row ``row``."""
        if len(values) != 3 * self.cells:
            raise ValueError(f"expected {3 * self.cells} state ints, got {len(values)}")
        magnitude = max((abs(int(v)) for v in values), default=0)
        self._grow_bound(magnitude)
        if self._spilled is not None:
            self._spilled[row].from_state_ints(values)
            return
        cells = self.cells
        self._totals[row] = np.array(values[:cells], dtype=np.int64)
        self._index_sums[row] = np.array(values[cells : 2 * cells], dtype=np.int64)
        self._fingerprints[row] = np.array(
            [int(v) % MERSENNE_61 for v in values[2 * cells :]], dtype=np.uint64
        )

    # ------------------------------------------------------------------
    # Linearity / copying
    # ------------------------------------------------------------------

    def combine(self, other: "SketchStack", sign: int = 1) -> None:
        """In-place ``self += sign * other`` row-wise; seeds/shapes must
        match (mixed spilled/columnar operands are handled)."""
        if sign not in (1, -1):
            raise ValueError(f"sign must be +1 or -1, got {sign}")
        if self._seed_keys != other._seed_keys:
            raise ValueError("cannot combine stacks with different seeds")
        if self.num_rows != other.num_rows or self.cells != other.cells:
            raise ValueError("cannot combine stacks with different shapes")
        self._grow_bound(other._bound)
        if self._spilled is None and other._spilled is None:
            self._totals += sign * other._totals
            self._index_sums += sign * other._index_sums
            if sign == 1:
                self._fingerprints = addmod61(self._fingerprints, other._fingerprints)
            else:
                self._fingerprints = submod61(self._fingerprints, other._fingerprints)
            return
        self._spill()
        for row in range(self.num_rows):
            self._spilled[row].combine(other.row_sketch(row), sign)

    def clone(self) -> "SketchStack":
        """Independent copy with the same state and seeds."""
        clone = object.__new__(SketchStack)
        clone.num_rows = self.num_rows
        clone.domain_size = self.domain_size
        clone.budget = self.budget
        clone.rows = self.rows
        clone.buckets = self.buckets
        clone.cells = self.cells
        clone.shared_seed = self.shared_seed
        clone._seed_keys = self._seed_keys
        clone._zs = self._zs
        clone._hash_objs = self._hash_objs
        clone._coeff_mats = self._coeff_mats
        clone._bound = self._bound
        if self._spilled is not None:
            clone._totals = clone._index_sums = clone._fingerprints = None
            clone._spilled = [sketch.copy() for sketch in self._spilled]
        else:
            clone._totals = self._totals.copy()
            clone._index_sums = self._index_sums.copy()
            clone._fingerprints = self._fingerprints.copy()
            clone._spilled = None
        return clone

    def row_space_words(self) -> int:
        """Per-row persistent state in machine words — same accounting as
        the standalone sketch's ``space_words()``."""
        hashes = self._hash_objs if self.shared_seed else self._hash_objs[0]
        return 3 * self.cells + sum(h.space_words() for h in hashes) + 1

    def __repr__(self) -> str:
        return (
            f"SketchStack(num_rows={self.num_rows}, domain_size={self.domain_size}, "
            f"budget={self.budget}, rows={self.rows}, buckets={self.buckets}, "
            f"shared_seed={self.shared_seed}, spilled={self.is_spilled()})"
        )


class L0SamplerStack:
    """Columnar state of ``num_rows`` same-seeded L0-samplers.

    One shared :class:`~repro.sketch.hashing.NestedSampler` membership
    evaluation per coordinate routes each incidence to its geometric
    levels; every level is a shared-seed :class:`SketchStack`.  This is
    the storage behind :class:`~repro.agm.spanning_forest.AgmSketch`:
    rows are vertices, and all rows of one AGM round hash the same edge
    coordinates — the structure the columnar layout exploits.
    """

    __slots__ = ("num_rows", "domain_size", "levels", "_seed_key", "_membership", "_level_stacks", "_tiebreak")

    def __init__(self, num_rows: int, domain_size: int, seed, budget: int = 4):
        template = L0Sampler(domain_size, seed, budget=budget)
        self.num_rows = num_rows
        self.domain_size = domain_size
        self.levels = template.levels
        self._seed_key = template._seed_key
        self._membership = template._membership
        self._tiebreak = template._tiebreak
        self._level_stacks = [
            SketchStack(
                num_rows,
                domain_size,
                budget,
                derive_seed(self._seed_key, "level", j),
                rows=3,
            )
            for j in range(self.levels)
        ]

    def update_row(self, row: int, index: int, delta: int) -> None:
        """Scalar ``x_row[index] += delta`` — bit-identical to
        :meth:`L0Sampler.update` on the row's sampler."""
        if delta == 0:
            return
        deepest = self._membership.level(index)
        for j in range(deepest + 1):
            self._level_stacks[j].update_row(row, index, delta)

    def scatter(self, row_ids: np.ndarray, indices: np.ndarray, deltas: np.ndarray) -> None:
        """Vectorized incidence batch: one membership evaluation per
        coordinate, then one :meth:`SketchStack.scatter` per level."""
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        if indices.size == 0:
            return
        levels = self._membership.level_array(indices)
        row_ids = np.ascontiguousarray(row_ids, dtype=np.int64)
        deltas = np.ascontiguousarray(deltas, dtype=np.int64)
        for j in range(int(levels.max()) + 1):
            surviving = levels >= j
            self._level_stacks[j].scatter(
                row_ids[surviving], indices[surviving], deltas[surviving]
            )

    # ------------------------------------------------------------------
    # Row materialization / decode support
    # ------------------------------------------------------------------

    def _sampler_from_sketches(self, sketches: list[SparseRecoverySketch]) -> L0Sampler:
        sampler = object.__new__(L0Sampler)
        sampler.domain_size = self.domain_size
        sampler.levels = self.levels
        sampler._seed_key = self._seed_key
        sampler._membership = self._membership
        sampler._level_sketches = sketches
        sampler._tiebreak = self._tiebreak
        return sampler

    def row_sampler(self, row: int) -> L0Sampler:
        """A standalone sampler holding row ``row``'s exact state."""
        return self._sampler_from_sketches(
            [stack.row_sketch(row) for stack in self._level_stacks]
        )

    def rows_sum_sampler(self, row_ids) -> L0Sampler:
        """One sampler summarizing the exact sum of the selected rows —
        the Borůvka component sum, as column reductions."""
        rows = list(row_ids)
        return self._sampler_from_sketches(
            [stack.rows_sum_sketch(rows) for stack in self._level_stacks]
        )

    def is_row_zero(self, row: int) -> bool:
        """Whether row ``row``'s vector is (whp) identically zero."""
        return self._level_stacks[0].is_row_zero(row)

    # ------------------------------------------------------------------
    # Serialization (per-row, matching L0Sampler layout)
    # ------------------------------------------------------------------

    def row_state_len(self) -> int:
        """Length of one row's :meth:`row_state_ints`."""
        return sum(stack.row_state_len() for stack in self._level_stacks)

    def row_state_ints(self, row: int) -> list[int]:
        """Row ``row``'s state, exactly as ``L0Sampler.state_ints()``."""
        flat: list[int] = []
        for stack in self._level_stacks:
            flat.extend(stack.row_state_ints(row))
        return flat

    def load_row_state(self, row: int, values: list[int]) -> None:
        """Inverse of :meth:`row_state_ints` for row ``row``."""
        cursor = 0
        for stack in self._level_stacks:
            need = stack.row_state_len()
            stack.load_row_state(row, values[cursor : cursor + need])
            cursor += need
        if cursor != len(values):
            raise ValueError(f"expected {cursor} state ints, got {len(values)}")

    # ------------------------------------------------------------------
    # Linearity / copying
    # ------------------------------------------------------------------

    def combine(self, other: "L0SamplerStack", sign: int = 1) -> None:
        """In-place ``self += sign * other``; seeds must match."""
        if self._seed_key != other._seed_key:
            raise ValueError("cannot combine stacks with different seeds")
        for mine, theirs in zip(self._level_stacks, other._level_stacks):
            mine.combine(theirs, sign)

    def clone(self) -> "L0SamplerStack":
        """Independent copy with the same state and seed."""
        clone = object.__new__(L0SamplerStack)
        clone.num_rows = self.num_rows
        clone.domain_size = self.domain_size
        clone.levels = self.levels
        clone._seed_key = self._seed_key
        clone._membership = self._membership
        clone._tiebreak = self._tiebreak
        clone._level_stacks = [stack.clone() for stack in self._level_stacks]
        return clone

    def row_space_words(self) -> int:
        """Per-row persistent state in machine words — same accounting as
        the standalone sampler's ``space_words()``."""
        return (
            self._membership.space_words()
            + self._tiebreak.space_words()
            + sum(stack.row_space_words() for stack in self._level_stacks)
        )

    def __repr__(self) -> str:
        return (
            f"L0SamplerStack(num_rows={self.num_rows}, "
            f"domain_size={self.domain_size}, levels={self.levels})"
        )
