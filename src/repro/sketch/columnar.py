"""Columnar sketch stacks: many sketches, one contiguous state array.

The batch engine (:mod:`repro.sketch.batched`) vectorizes *within* one
sketch, but the graph algorithms fan a stream chunk out across ``n x
O(log n)`` AGM vertex sketches or ``(endpoint, r, j)`` spanner stacks
before any single sketch sees a vectorizable sub-batch — so the
per-sketch engine mostly falls back to its scalar loops.  The structural
fact that rescues vectorization is that those sketches are *same-seeded
stacks*: every vertex row of an AGM round hashes the same edge
coordinates with the same hash family.  This module stores such a stack
as one 2-D array (rows = sketches, columns = counter cells), evaluates
each chunk's polynomial hashes and fingerprint powers **once per
(coordinate, stack)**, and lands every row's contribution with a single
flattened ``(row, cell)`` scatter — bit-identical to updating each row's
standalone sketch (the property ``tests/sketch/test_columnar.py`` pins).

Two stack flavors:

:class:`SketchStack`
    ``num_rows`` same-shaped :class:`~repro.sketch.sparse_recovery.SparseRecoverySketch`
    states.  Rows may share one seed (AGM rounds, the spanner's
    ``(r, j)`` cluster stacks) — hashes are then evaluated once per
    coordinate and broadcast — or carry per-row seeds (the spanner's
    per-root cut sketches), in which case the gathered-coefficient
    kernels :func:`~repro.sketch.kernels.polyhash61_rows` /
    :func:`~repro.sketch.kernels.powmod61_bases` still evaluate the
    whole incidence list in one vectorized pass.

:class:`L0SamplerStack`
    ``num_rows`` same-seeded :class:`~repro.sketch.l0sampler.L0Sampler`
    states: one shared membership evaluation per coordinate routes every
    row's contribution to the right geometric levels, each level being a
    :class:`SketchStack`.

Lazy row materialization
------------------------
``lazy=True`` (what a sparse :class:`~repro.graph.vertex_space.VertexSpace`
selects) keeps ``num_rows`` purely *logical*: no per-row cell is
allocated until a row is first touched, so a stack over a ``10^7``-vertex
universe holds memory proportional to the vertices that actually appear
in the stream.  Hashes, seeds and the fingerprint base are functions of
the shared seed and the *logical* row index — never of materialization
order — so a lazy stack's touched rows are bit-identical to the same
rows of an eager stack fed the same updates, and the two storages are
freely combinable (``combine``/``merge_shard`` across mixed dense/lazy
operands).  Untouched rows read as exact zero states.

Exactness and interop
---------------------
Counter cells live in ``int64`` arrays guarded by a conservative running
bound (:attr:`SketchStack.cell_bound`) on any single cell's magnitude.
Before a batch could overflow, the bound is first *tightened* to the
actual maximum cell magnitude (huge-coordinate domains make the running
bound very conservative); only if the tightened bound still cannot admit
the batch does the stack *spill* to per-row scalar sketches and keep
exact Python-integer arithmetic from then on (state identical, just
slower).  Cross-row column sums (the Borůvka component reduction) are
computed with 32-bit limb splitting, so they are exact for any row count
even when per-cell magnitudes approach the ``int64`` guard — no sum can
silently wrap.

Rows materialize back into the existing sketch classes via
:meth:`SketchStack.row_sketch` / :meth:`L0SamplerStack.row_sampler`
(shared immutable hash families, copied cells), so every decode,
``clone()``, ``combine`` and ``state_ints`` contract is preserved on top
of the new storage — mixed scalar/columnar state stays summable.  The
sparse serialization helpers (:meth:`SketchStack.sparse_state_ints`)
ship ``(logical row id, cells)`` pairs for nonzero rows only, which is
what lets checkpoints and shard messages of dense and lazy engines
round-trip interchangeably.
"""

from __future__ import annotations

import numpy as np

from repro.sketch.batched import max_abs_int64
from repro.sketch.kernels import (
    MASK32,
    addmod61,
    build_pow_table,
    mulmod61,
    polyhash61_rows,
    powmod61_bases,
    scatter_sum_mod61,
    stack_positions_terms,
    submod61,
)
from repro import obs
from repro.sketch.hashing import MERSENNE_61, KWiseHash, NestedSampler
from repro.sketch.l0sampler import L0Sampler
from repro.sketch.sparse_recovery import (
    _BUCKET_HASH_INDEPENDENCE,
    SparseRecoverySketch,
)
from repro.util.rng import derive_seed

__all__ = ["SketchStack", "L0SamplerStack"]

#: Spill threshold for the running per-cell magnitude bound: while the
#: bound stays below this, every ``int64`` accumulation of one more
#: batch is provably exact (intermediates stay under ``2^62``).
_INT64_SAFE_BOUND = 1 << 61

#: Signed-int64 low-limb mask for the exact cross-row column sums.
_MASK32_I64 = np.int64((1 << 32) - 1)


def _colsum_mod61(selected: np.ndarray) -> np.ndarray:
    """Exact per-column ``sum mod p`` over a gathered row subset.

    ``selected`` is a ``uint64`` field-element matrix (the caller's
    already-gathered rows); the straight sum of even a handful of 61-bit
    values overflows ``uint64``, so the 32-bit limbs are accumulated
    separately (exact for up to ``2^31`` rows) and recombined mod ``p``
    — the column form of
    :func:`repro.sketch.kernels.scatter_sum_mod61`.
    """
    lo = np.sum(selected & MASK32, axis=0, dtype=np.uint64)
    hi = np.sum(selected >> np.uint64(32), axis=0, dtype=np.uint64)
    lo_red = np.remainder(lo, np.uint64(MERSENNE_61))
    hi_red = np.remainder(hi, np.uint64(MERSENNE_61))
    return addmod61(lo_red, mulmod61(hi_red, np.uint64((1 << 32) % MERSENNE_61)))


def _colsum_exact(selected: np.ndarray) -> list[int]:
    """Exact per-column signed sum of an ``int64`` matrix, as Python ints.

    A straight ``sum(axis=0)`` can wrap once per-cell magnitudes (up to
    the ``2^61`` guard) meet large row counts — the Borůvka component
    sums over huge-coordinate domains hit exactly that regime.  Summing
    the 32-bit limbs separately keeps every accumulator far inside
    ``int64`` (rows < ``2^31``), and the recombination in Python integers
    is exact for any magnitudes.
    """
    if selected.shape[0] == 0:
        return [0] * selected.shape[1]
    lo = np.sum(selected & _MASK32_I64, axis=0, dtype=np.int64)
    hi = np.sum(selected >> np.int64(32), axis=0, dtype=np.int64)
    return [(int(h) << 32) + int(l) for h, l in zip(hi, lo)]


class SketchStack:
    """Columnar state of ``num_rows`` sparse-recovery sketches.

    Parameters
    ----------
    num_rows:
        Number of stacked sketches (AGM: vertices; spanner cluster
        stacks: vertices; cut stacks: terminal roots).  With
        ``lazy=True`` this is a purely logical universe size.
    domain_size, budget, rows, bucket_factor:
        Per-row sketch shape, exactly as
        :class:`~repro.sketch.sparse_recovery.SparseRecoverySketch`.
    seed:
        One shared randomness name (all rows identically seeded, hence
        summable across rows — the AGM requirement), **or** a list of
        ``num_rows`` per-row seeds for heterogeneous stacks.
    lazy:
        Materialize row storage on first touch instead of allocating
        ``num_rows x cells`` eagerly.  Requires a shared seed (per-row
        seed lists are inherently O(num_rows) state).  Touched rows are
        bit-identical to the same rows of an eager stack.
    """

    __slots__ = (
        "num_rows",
        "domain_size",
        "budget",
        "rows",
        "buckets",
        "cells",
        "shared_seed",
        "lazy",
        "_seed_key",
        "_seed_keys",
        "_z",
        "_zs",
        "_hash_objs",
        "_coeff_mats",
        "_totals",
        "_index_sums",
        "_fingerprints",
        "_slot_of",
        "_slot_rows",
        "_sorted_rows",
        "_sorted_slots",
        "_pow_table",
        "_bucket_coeffs",
        "_bound",
        "_spilled",
    )

    def __init__(
        self,
        num_rows: int,
        domain_size: int,
        budget: int,
        seed,
        rows: int = 4,
        bucket_factor: float = 2.0,
        lazy: bool = False,
    ):
        if num_rows <= 0:
            raise ValueError(f"num_rows must be positive, got {num_rows}")
        template = SparseRecoverySketch(
            domain_size,
            budget,
            seed if not isinstance(seed, (list, tuple)) else seed[0],
            rows=rows,
            bucket_factor=bucket_factor,
        )
        self.num_rows = num_rows
        self.domain_size = domain_size
        self.budget = budget
        self.rows = rows
        self.buckets = template.buckets
        self.cells = rows * self.buckets
        self.lazy = bool(lazy)
        if isinstance(seed, (list, tuple)):
            if len(seed) != num_rows:
                raise ValueError(
                    f"need one seed per row: {num_rows} rows, {len(seed)} seeds"
                )
            if self.lazy:
                raise ValueError("lazy stacks require a shared seed")
            self.shared_seed = False
            self._seed_key = None
            self._z = None
            self._seed_keys = [
                derive_seed(s, "sparse-recovery", domain_size, budget, rows)
                for s in seed
            ]
            self._hash_objs = [
                [
                    KWiseHash.shared(
                        _BUCKET_HASH_INDEPENDENCE, derive_seed(key, "row", r)
                    )
                    for r in range(rows)
                ]
                for key in self._seed_keys
            ]
            self._zs = np.array(
                [1 + key % (MERSENNE_61 - 1) for key in self._seed_keys],
                dtype=np.uint64,
            )
            # One (num_rows, k) coefficient matrix per hash row, for the
            # gathered-coefficient vectorized evaluation.
            self._coeff_mats = [
                np.array(
                    [self._hash_objs[row][r].coefficients for row in range(num_rows)],
                    dtype=np.uint64,
                )
                for r in range(rows)
            ]
        else:
            self.shared_seed = True
            self._seed_key = template._seed_key
            self._seed_keys = None
            self._z = int(template._z)
            self._zs = None
            self._hash_objs = template._row_hashes  # d shared hashes
            self._coeff_mats = None
        stored = 0 if self.lazy else num_rows
        self._totals = np.zeros((stored, self.cells), dtype=np.int64)
        self._index_sums = np.zeros((stored, self.cells), dtype=np.int64)
        self._fingerprints = np.zeros((stored, self.cells), dtype=np.uint64)
        self._slot_of: dict[int, int] | None = {} if self.lazy else None
        self._slot_rows: list[int] | None = [] if self.lazy else None
        # Sorted snapshot of the intern map for vectorized batch lookup
        # (rebuilt lazily whenever rows were added since the last batch).
        self._sorted_rows: np.ndarray | None = None
        self._sorted_slots: np.ndarray | None = None
        # Derived, immutable batch-kernel caches (shared across clones):
        # the byte-windowed fingerprint power table and the stacked
        # bucket-hash coefficient matrix (shared-seed stacks only).
        self._pow_table: np.ndarray | None = None
        self._bucket_coeffs: np.ndarray | None = None
        self._bound = 0
        self._spilled: dict[int, SparseRecoverySketch] | None = None

    # ------------------------------------------------------------------
    # Seed / randomness plumbing (pure functions of the logical row)
    # ------------------------------------------------------------------

    def _seed_key_of(self, row: int) -> int:
        return self._seed_key if self.shared_seed else self._seed_keys[row]

    def _z_of(self, row: int) -> int:
        return self._z if self.shared_seed else int(self._zs[row])

    def _seed_signature(self):
        if self.shared_seed:
            return ("shared", self._seed_key, self.num_rows)
        return ("per-row", tuple(self._seed_keys))

    def _row_hashes_of(self, row: int) -> list[KWiseHash]:
        return self._hash_objs if self.shared_seed else self._hash_objs[row]

    # ------------------------------------------------------------------
    # Lazy slot management
    # ------------------------------------------------------------------

    def _grow_storage(self, needed: int) -> None:
        capacity = self._totals.shape[0]
        if needed <= capacity:
            return
        new_capacity = max(8, 2 * capacity, needed)
        for name in ("_totals", "_index_sums", "_fingerprints"):
            old = getattr(self, name)
            grown = np.zeros((new_capacity, self.cells), dtype=old.dtype)
            grown[:capacity] = old
            setattr(self, name, grown)

    def _slot(self, row: int, create: bool) -> int | None:
        """Storage row of logical ``row`` (dense: identity; lazy: interned)."""
        if not self.lazy:
            return row
        slot = self._slot_of.get(row)
        if slot is None and create:
            slot = len(self._slot_rows)
            self._grow_storage(slot + 1)
            self._slot_of[row] = slot
            self._slot_rows.append(row)
            self._sorted_rows = None  # lookup snapshot is stale
        return slot

    def _slots_for_batch(self, unique_rows: np.ndarray) -> np.ndarray:
        """Vectorized intern of a batch's distinct logical rows.

        Known rows resolve through a sorted snapshot of the intern map
        with one ``searchsorted`` (the touched set saturates quickly, so
        steady-state chunks pay no per-row Python); only genuinely new
        rows take the scalar intern path.
        """
        if self._sorted_rows is None:
            self._sorted_rows = np.array(
                sorted(self._slot_of), dtype=np.int64
            )
            self._sorted_slots = np.array(
                [self._slot_of[row] for row in self._sorted_rows.tolist()],
                dtype=np.int64,
            )
        known_rows = self._sorted_rows
        positions = np.searchsorted(known_rows, unique_rows)
        positions = np.minimum(positions, max(known_rows.size - 1, 0))
        if known_rows.size:
            hit = known_rows[positions] == unique_rows
        else:
            hit = np.zeros(unique_rows.shape, dtype=bool)
        slots = np.empty(unique_rows.shape, dtype=np.int64)
        slots[hit] = self._sorted_slots[positions[hit]]
        missing = np.flatnonzero(~hit)
        if missing.size:
            # Bulk-intern the new rows: one storage grow, one dict update,
            # and a sorted merge into the lookup snapshot.  ``unique_rows``
            # is sorted, so slot order matches the scalar intern path
            # bit-for-bit while growth-heavy streams (every batch touching
            # fresh rows) stay vectorized instead of paying a per-row
            # Python intern plus a full snapshot rebuild each chunk.
            new_rows = unique_rows[missing]
            base = len(self._slot_rows)
            new_slots = np.arange(base, base + missing.size, dtype=np.int64)
            self._grow_storage(base + missing.size)
            self._slot_of.update(
                zip(new_rows.tolist(), range(base, base + missing.size))
            )
            self._slot_rows.extend(new_rows.tolist())
            slots[missing] = new_slots
            insert_at = np.searchsorted(known_rows, new_rows)
            self._sorted_rows = np.insert(known_rows, insert_at, new_rows)
            self._sorted_slots = np.insert(self._sorted_slots, insert_at, new_slots)
        return slots

    def resident_rows(self) -> int:
        """Rows holding allocated state (lazy: touched; dense: all)."""
        if self._spilled is not None:
            return len(self._spilled)
        if self.lazy:
            return len(self._slot_rows)
        return self.num_rows

    def touched_row_ids(self) -> list[int]:
        """Sorted logical ids of resident rows (dense: every row)."""
        if self._spilled is not None:
            return sorted(self._spilled)
        if self.lazy:
            return sorted(self._slot_of)
        return list(range(self.num_rows))

    def state_digest(self, hasher) -> None:
        """Feed the stack's resident state into ``hasher`` canonically.

        Rows are visited in sorted logical order regardless of intern
        order, so two same-engine stacks holding the same cell values
        digest identically even when their streams materialized rows in
        different sequences.  At memory bandwidth (a sorted gather plus
        ``tobytes``), this is the cheap way to compare million-row
        states where :meth:`row_state_ints` per row would take minutes.
        Digests are only comparable between like engines: a dense stack
        hashes every row while a lazy one hashes the touched set, so an
        absent row and a resident all-zero row differ by design.
        """
        if self._spilled is not None:
            for row in sorted(self._spilled):
                sketch = self._spilled[row]
                hasher.update(np.int64(row).tobytes())
                hasher.update(np.asarray(sketch._totals, dtype=np.int64).tobytes())
                hasher.update(np.asarray(sketch._index_sums, dtype=np.int64).tobytes())
                hasher.update(
                    np.asarray(sketch._fingerprints, dtype=np.uint64).tobytes()
                )
            return
        if self.lazy:
            rows = np.asarray(self._slot_rows, dtype=np.int64)
            used = rows.size
            if used and np.any(rows[1:] < rows[:-1]):
                order = np.argsort(rows)
                hasher.update(rows[order].tobytes())
                for array in (self._totals, self._index_sums, self._fingerprints):
                    hasher.update(np.ascontiguousarray(array[:used][order]).tobytes())
                return
            # Intern order was already ascending (append-ordered streams):
            # hash the storage slices in place, no gather copy.
            hasher.update(rows.tobytes())
            for array in (self._totals, self._index_sums, self._fingerprints):
                hasher.update(np.ascontiguousarray(array[:used]).tobytes())
            return
        for array in (self._totals, self._index_sums, self._fingerprints):
            hasher.update(np.ascontiguousarray(array[: self.num_rows]).tobytes())

    # ------------------------------------------------------------------
    # Exactness bookkeeping
    # ------------------------------------------------------------------

    @property
    def cell_bound(self) -> int:
        """Conservative bound on any cell's ``|total|`` / ``|index sum|``."""
        return self._bound

    def is_spilled(self) -> bool:
        """Whether the stack fell back to per-row exact sketches."""
        return self._spilled is not None

    def _zero_row_sketch(self, row: int) -> SparseRecoverySketch:
        sketch = object.__new__(SparseRecoverySketch)
        sketch.domain_size = self.domain_size
        sketch.budget = self.budget
        sketch.rows = self.rows
        sketch.buckets = self.buckets
        sketch._seed_key = self._seed_key_of(row)
        sketch._z = self._z_of(row)
        sketch._row_hashes = list(self._row_hashes_of(row))
        sketch._totals = [0] * self.cells
        sketch._index_sums = [0] * self.cells
        sketch._fingerprints = [0] * self.cells
        return sketch

    def _spilled_sketch(self, row: int, create: bool) -> SparseRecoverySketch:
        sketch = self._spilled.get(row)
        if sketch is None:
            sketch = self._zero_row_sketch(row)
            if create:
                self._spilled[row] = sketch
        return sketch

    def _spill(self) -> None:
        """Convert to per-row scalar sketches (exact big-int fallback).

        Reached only when even the tightened bound says a future
        ``int64`` accumulation might not be provably exact — unreachable
        for ``±1``-delta graph streams at any realistic length, but the
        contract must hold for arbitrary linear payloads.  Lazy stacks
        spill only their materialized rows; untouched rows stay
        implicit zero states.
        """
        if self._spilled is not None:
            return
        obs.TRACER.count("sketch.spill")
        self._spilled = {
            row: self._materialize_row(row) for row in self.touched_row_ids()
        }
        self._totals = self._index_sums = self._fingerprints = None
        self._slot_of = self._slot_rows = None
        self._sorted_rows = self._sorted_slots = None

    def _tighten_bound(self) -> None:
        """Replace the running conservative bound by the actual maximum
        cell magnitude (cheap relative to how rarely it is needed)."""
        if self._spilled is not None:
            return
        used = len(self._slot_rows) if self.lazy else self.num_rows
        totals = self._totals[:used]
        index_sums = self._index_sums[:used]
        if totals.size == 0:
            self._bound = 0
            return
        self._bound = max(
            abs(int(totals.min())), abs(int(totals.max())),
            abs(int(index_sums.min())), abs(int(index_sums.max())),
        )

    def _admit(self, amount: int) -> bool:
        """Reserve headroom for a batch adding at most ``amount`` to any
        single cell.  Returns ``False`` after spilling (the caller must
        take the exact scalar route)."""
        if self._spilled is not None:
            return False
        if self._bound + amount < _INT64_SAFE_BOUND:
            self._bound += amount
            return True
        self._tighten_bound()
        if self._bound + amount < _INT64_SAFE_BOUND:
            self._bound += amount
            return True
        self._spill()
        return False

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def update_row(self, row: int, index: int, delta: int) -> None:
        """Scalar ``x_row[index] += delta`` — bit-identical to
        :meth:`SparseRecoverySketch.update` on the row's sketch."""
        if delta == 0:
            return
        if not 0 <= row < self.num_rows:
            raise IndexError(f"row {row} out of [0, {self.num_rows})")
        if not 0 <= index < self.domain_size:
            raise IndexError(f"index {index} out of domain [0, {self.domain_size})")
        if not self._admit(abs(delta) * max(index, 1)):
            self._spilled_sketch(row, create=True).update(index, delta)
            return
        slot = self._slot(row, create=True)
        z = self._z_of(row)
        power = pow(z, index, MERSENNE_61)
        fingerprint_delta = delta * power
        index_delta = delta * index
        hashes = self._row_hashes_of(row)
        for r, row_hash in enumerate(hashes):
            cell = r * self.buckets + row_hash.bucket(index, self.buckets)
            self._totals[slot, cell] += delta
            self._index_sums[slot, cell] += index_delta
            self._fingerprints[slot, cell] = np.uint64(
                (int(self._fingerprints[slot, cell]) + fingerprint_delta) % MERSENNE_61
            )

    def scatter(self, row_ids: np.ndarray, indices: np.ndarray, deltas: np.ndarray) -> None:
        """Apply a whole incidence batch: ``x_{row_ids[t]}[indices[t]] +=
        deltas[t]`` for every ``t``, in one vectorized pass.

        The polynomial bucket hashes and the fingerprint powers are
        evaluated once per incidence (once per *coordinate* when the
        caller deduplicates, which the graph layers do), shared across
        all affected rows; contributions land via one flattened
        ``(row, cell)`` scatter per counter plane.  Bit-identical to the
        equivalent sequence of per-row scalar updates — including under
        lazy storage, where only the touched rows materialize.
        """
        row_ids = np.ascontiguousarray(row_ids, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        deltas = np.ascontiguousarray(deltas, dtype=np.int64)
        if not (row_ids.shape == indices.shape == deltas.shape) or row_ids.ndim != 1:
            raise ValueError("row_ids, indices, deltas must be 1-D of equal length")
        if row_ids.size == 0:
            return
        nonzero = deltas != 0
        if not nonzero.all():
            row_ids, indices, deltas = row_ids[nonzero], indices[nonzero], deltas[nonzero]
            if row_ids.size == 0:
                return
        if int(indices.min()) < 0 or int(indices.max()) >= self.domain_size:
            raise IndexError(f"index batch leaves domain [0, {self.domain_size})")
        if int(row_ids.min()) < 0 or int(row_ids.max()) >= self.num_rows:
            raise IndexError(f"row batch leaves [0, {self.num_rows})")
        obs.TRACER.observe("sketch.scatter.batch", row_ids.size)
        # Conservative single-cell headroom for this batch: every update
        # could land in one cell, each contributing at most |delta|*index
        # to the index-sum plane (and less to the totals plane).  The
        # volume itself must be computed without int64 wraparound: only
        # when length * max|delta| provably fits is the vectorized
        # |delta| sum exact; otherwise that product (a Python int) is
        # itself a valid conservative volume.
        max_abs_delta = max_abs_int64(deltas)
        if deltas.size * max_abs_delta < _INT64_SAFE_BOUND:
            volume = int(np.sum(np.abs(deltas), dtype=np.int64))
        else:
            volume = deltas.size * max_abs_delta
        batch_bound = volume * max(int(indices.max()), 1)
        if not self._admit(batch_bound):
            order = np.argsort(row_ids, kind="stable")
            sorted_rows = row_ids[order]
            boundaries = np.flatnonzero(np.diff(sorted_rows)) + 1
            for chunk in np.split(order, boundaries):
                row = int(row_ids[chunk[0]])
                self._spilled_sketch(row, create=True).update_batch(
                    indices[chunk], deltas[chunk]
                )
            return

        if self.lazy:
            unique_rows, inverse = np.unique(row_ids, return_inverse=True)
            slots = self._slots_for_batch(unique_rows)[inverse]
        else:
            slots = row_ids

        residues = np.remainder(deltas, MERSENNE_61).astype(np.uint64)
        if self.shared_seed:
            if self._pow_table is None:
                self._pow_table = build_pow_table(self._z, self.domain_size - 1)
                self._bucket_coeffs = np.array(
                    [row_hash.coefficients for row_hash in self._hash_objs],
                    dtype=np.uint64,
                )
            # The fused dispatch entry: polyhash → fold → fingerprint
            # weighting in one backend call (the hot per-chunk path).
            stacked, terms = stack_positions_terms(
                self._bucket_coeffs, self._pow_table, indices, residues, self.buckets
            )
            positions = [stacked[r] for r in range(self.rows)]
        else:
            powers = powmod61_bases(self._zs[row_ids], indices)
            positions = [
                (polyhash61_rows(self._coeff_mats[r], row_ids, indices)
                 % np.uint64(self.buckets)).astype(np.int64)
                for r in range(self.rows)
            ]
            terms = mulmod61(residues, powers)

        flat_base = slots * np.int64(self.cells)
        flat = np.concatenate(
            [flat_base + np.int64(r * self.buckets) + positions[r] for r in range(self.rows)]
        )
        tiled_deltas = np.tile(deltas, self.rows)
        totals_flat = self._totals.reshape(-1)
        index_flat = self._index_sums.reshape(-1)
        np.add.at(totals_flat, flat, tiled_deltas)
        np.add.at(index_flat, flat, np.tile(deltas * indices, self.rows))
        tiled_terms = np.tile(terms, self.rows)
        stored_cells = self._totals.shape[0] * self.cells
        if self.lazy or stored_cells > 4 * flat.size:
            # Aggregate over the batch's *distinct* cells only: lazy
            # stacks (and wide eager stacks fed small batches, e.g. the
            # spanner's per-root cut stacks) hold far more resident cells
            # than a chunk touches, and a full-width modular pass per
            # chunk would dwarf the batch.  Cells outside the batch
            # receive an exact +0, so this is bit-identical to the
            # full-array form.
            unique_flat, inverse_flat = np.unique(flat, return_inverse=True)
            agg = scatter_sum_mod61(unique_flat.size, inverse_flat, tiled_terms)
            fingerprints_flat = self._fingerprints.reshape(-1)
            fingerprints_flat[unique_flat] = addmod61(
                fingerprints_flat[unique_flat], agg
            )
        else:
            agg = scatter_sum_mod61(stored_cells, flat, tiled_terms)
            self._fingerprints = addmod61(
                self._fingerprints.reshape(-1), agg
            ).reshape(self._totals.shape[0], self.cells)

    # ------------------------------------------------------------------
    # Row materialization / decode support
    # ------------------------------------------------------------------

    def _materialize_row(self, row: int) -> SparseRecoverySketch:
        slot = self._slot(row, create=False)
        sketch = self._zero_row_sketch(row)
        if slot is not None:
            sketch._totals = self._totals[slot].tolist()
            sketch._index_sums = self._index_sums[slot].tolist()
            sketch._fingerprints = self._fingerprints[slot].tolist()
        return sketch

    def row_sketch(self, row: int) -> SparseRecoverySketch:
        """A standalone sketch holding row ``row``'s exact current state.

        Cheap view: hash families are shared (immutable), cells copied;
        mutating the returned sketch never touches the stack.  Reading a
        never-touched lazy row yields an exact zero state without
        materializing it.
        """
        if self._spilled is not None:
            return self._spilled_sketch(row, create=False).copy()
        return self._materialize_row(row)

    def rows_sum_sketch(self, row_ids) -> SparseRecoverySketch:
        """One sketch holding the exact cell-wise sum of the selected rows.

        Linearity makes this the sketch of the summed vectors — the
        Borůvka component sum and the spanner's ``Q`` sums, computed as
        vectorized column reductions instead of pairwise ``combine``
        loops (identical resulting state).  The integer planes are summed
        with limb splitting, so the reduction is exact for any row count
        even near the per-cell ``int64`` guard.
        """
        rows = np.asarray(list(row_ids), dtype=np.int64)
        if rows.size == 0:
            raise ValueError("rows_sum_sketch needs at least one row")
        if self._spilled is not None:
            combined = self._spilled_sketch(int(rows[0]), create=False).copy()
            for row in rows[1:]:
                combined.combine(self._spilled_sketch(int(row), create=False))
            return combined
        sketch = self._zero_row_sketch(int(rows[0]))
        if self.lazy:
            slots = [self._slot_of.get(int(row)) for row in rows]
            present = np.array(
                [slot for slot in slots if slot is not None], dtype=np.int64
            )
            if present.size == 0:
                return sketch
            totals = self._totals[present]
            index_sums = self._index_sums[present]
            selected = self._fingerprints[present]
        else:
            totals = self._totals[rows]
            index_sums = self._index_sums[rows]
            selected = self._fingerprints[rows]
        sketch._totals = _colsum_exact(totals)
        sketch._index_sums = _colsum_exact(index_sums)
        # Borůvka sums many components whose high sample levels hold no
        # contributions at all — skip the modular column sum for those.
        if selected.any():
            sketch._fingerprints = _colsum_mod61(selected).tolist()
        return sketch

    def is_row_zero(self, row: int) -> bool:
        """Whether row ``row``'s summarized vector is (whp) zero."""
        if self._spilled is not None:
            return self._spilled_sketch(row, create=False).is_zero()
        slot = self._slot(row, create=False)
        if slot is None:
            return True
        return (
            not self._totals[slot].any()
            and not self._index_sums[slot].any()
            and not self._fingerprints[slot].any()
        )

    def nonzero_row_ids(self) -> list[int]:
        """Sorted logical ids of rows with any nonzero cell.

        A pure function of the summarized vectors (independent of
        materialization and batch chunking), which is why the sparse
        wire format below is deterministic across engines.
        """
        if self._spilled is not None:
            return sorted(
                row for row, sketch in self._spilled.items() if not sketch.is_zero()
            )
        used = len(self._slot_rows) if self.lazy else self.num_rows
        if used == 0:
            return []
        alive = (
            self._totals[:used].any(axis=1)
            | self._index_sums[:used].any(axis=1)
            | self._fingerprints[:used].any(axis=1)
        )
        if self.lazy:
            return sorted(
                self._slot_rows[slot] for slot in np.flatnonzero(alive)
            )
        return [int(row) for row in np.flatnonzero(alive)]

    # ------------------------------------------------------------------
    # Serialization (per-row, matching SparseRecoverySketch layout)
    # ------------------------------------------------------------------

    def row_state_len(self) -> int:
        """Length of one row's :meth:`row_state_ints`."""
        return 3 * self.cells

    def row_state_ints(self, row: int) -> list[int]:
        """Row ``row``'s dynamic state, exactly as the standalone
        sketch's ``state_ints()`` would serialize it."""
        if self._spilled is not None:
            return self._spilled_sketch(row, create=False).state_ints()
        slot = self._slot(row, create=False)
        if slot is None:
            return [0] * (3 * self.cells)
        return (
            self._totals[slot].tolist()
            + self._index_sums[slot].tolist()
            + self._fingerprints[slot].tolist()
        )

    def load_row_state(self, row: int, values: list[int]) -> None:
        """Inverse of :meth:`row_state_ints` for row ``row``.

        Loading an all-zero state into a never-touched lazy row is a
        no-op, so restoring a sparse checkpoint materializes exactly the
        rows it ships.
        """
        if len(values) != 3 * self.cells:
            raise ValueError(f"expected {3 * self.cells} state ints, got {len(values)}")
        magnitude = max((abs(int(v)) for v in values), default=0)
        if (
            magnitude == 0
            and self.lazy
            and self._spilled is None
            and self._slot(row, create=False) is None
        ):
            return
        if not self._admit(magnitude):
            self._spilled_sketch(row, create=True).from_state_ints(values)
            return
        slot = self._slot(row, create=True)
        cells = self.cells
        self._totals[slot] = np.array(values[:cells], dtype=np.int64)
        self._index_sums[slot] = np.array(values[cells : 2 * cells], dtype=np.int64)
        self._fingerprints[slot] = np.array(
            [int(v) % MERSENNE_61 for v in values[2 * cells :]], dtype=np.uint64
        )

    def reset_state(self) -> None:
        """Drop every cell back to the all-zero state (seeds kept).

        The sparse wire ships nonzero rows only, so *overwriting* a
        possibly non-fresh stack from a wire block must clear resident
        state first — rows absent from the message are zero by contract.
        """
        stored = 0 if self.lazy else self.num_rows
        self._totals = np.zeros((stored, self.cells), dtype=np.int64)
        self._index_sums = np.zeros((stored, self.cells), dtype=np.int64)
        self._fingerprints = np.zeros((stored, self.cells), dtype=np.uint64)
        self._slot_of = {} if self.lazy else None
        self._slot_rows = [] if self.lazy else None
        self._sorted_rows = self._sorted_slots = None
        self._bound = 0
        self._spilled = None

    def sparse_state_ints(self) -> list[int]:
        """Self-delimiting nonzero-rows block: ``[count, (row id, row
        state) ...]`` in ascending logical row order.

        Dense and lazy stacks fed the same updates emit identical
        blocks — the storage-independent wire format that checkpoints
        and shard messages use to carry logical row ids.
        """
        rows = self.nonzero_row_ids()
        flat: list[int] = [len(rows)]
        for row in rows:
            flat.append(row)
            flat.extend(self.row_state_ints(row))
        return flat

    def load_sparse_state(self, values: list[int], cursor: int = 0) -> int:
        """Inverse of :meth:`sparse_state_ints`; returns the new cursor."""
        count = int(values[cursor])
        cursor += 1
        per_row = self.row_state_len()
        for _ in range(count):
            row = int(values[cursor])
            cursor += 1
            self.load_row_state(row, values[cursor : cursor + per_row])
            cursor += per_row
        return cursor

    # ------------------------------------------------------------------
    # Linearity / copying
    # ------------------------------------------------------------------

    def combine(self, other: "SketchStack", sign: int = 1) -> None:
        """In-place ``self += sign * other`` row-wise; seeds/shapes must
        match.  Mixed dense/lazy and spilled/columnar operands are all
        handled — touched rows land bit-identically regardless of either
        operand's storage."""
        if sign not in (1, -1):
            raise ValueError(f"sign must be +1 or -1, got {sign}")
        if self._seed_signature() != other._seed_signature():
            raise ValueError("cannot combine stacks with different seeds")
        if self.num_rows != other.num_rows or self.cells != other.cells:
            raise ValueError("cannot combine stacks with different shapes")
        if self._spilled is None and other._spilled is None:
            if not self.lazy and not other.lazy:
                if self._admit(other._bound):
                    self._totals += sign * other._totals
                    self._index_sums += sign * other._index_sums
                    if sign == 1:
                        self._fingerprints = addmod61(self._fingerprints, other._fingerprints)
                    else:
                        self._fingerprints = submod61(self._fingerprints, other._fingerprints)
                    return
            else:
                rows = other.nonzero_row_ids()
                if not rows:
                    return
                if self._admit(other._bound):
                    other_slots = np.array(
                        [other._slot(row, create=False) for row in rows], dtype=np.int64
                    )
                    my_slots = np.array(
                        [self._slot(row, create=True) for row in rows], dtype=np.int64
                    )
                    self._totals[my_slots] += sign * other._totals[other_slots]
                    self._index_sums[my_slots] += sign * other._index_sums[other_slots]
                    theirs = other._fingerprints[other_slots]
                    if sign == 1:
                        self._fingerprints[my_slots] = addmod61(
                            self._fingerprints[my_slots], theirs
                        )
                    else:
                        self._fingerprints[my_slots] = submod61(
                            self._fingerprints[my_slots], theirs
                        )
                    return
        self._spill()
        for row in other.touched_row_ids():
            self._spilled_sketch(row, create=True).combine(other.row_sketch(row), sign)

    def clone(self) -> "SketchStack":
        """Independent copy with the same state and seeds."""
        clone = object.__new__(SketchStack)
        clone.num_rows = self.num_rows
        clone.domain_size = self.domain_size
        clone.budget = self.budget
        clone.rows = self.rows
        clone.buckets = self.buckets
        clone.cells = self.cells
        clone.shared_seed = self.shared_seed
        clone.lazy = self.lazy
        clone._seed_key = self._seed_key
        clone._seed_keys = self._seed_keys
        clone._z = self._z
        clone._zs = self._zs
        clone._hash_objs = self._hash_objs
        clone._coeff_mats = self._coeff_mats
        clone._pow_table = self._pow_table
        clone._bucket_coeffs = self._bucket_coeffs
        clone._bound = self._bound
        clone._sorted_rows = clone._sorted_slots = None
        if self._spilled is not None:
            clone._totals = clone._index_sums = clone._fingerprints = None
            clone._slot_of = clone._slot_rows = None
            clone._spilled = {row: sketch.copy() for row, sketch in self._spilled.items()}
        else:
            clone._totals = self._totals.copy()
            clone._index_sums = self._index_sums.copy()
            clone._fingerprints = self._fingerprints.copy()
            clone._slot_of = None if self._slot_of is None else dict(self._slot_of)
            clone._slot_rows = None if self._slot_rows is None else list(self._slot_rows)
            clone._spilled = None
        return clone

    def row_space_words(self) -> int:
        """Per-row persistent state in machine words — same accounting as
        the standalone sketch's ``space_words()``."""
        hashes = self._hash_objs if self.shared_seed else self._hash_objs[0]
        return 3 * self.cells + sum(h.space_words() for h in hashes) + 1

    def resident_space_words(self) -> int:
        """Words actually held: resident rows only (dense: all rows)."""
        return self.resident_rows() * self.row_space_words()

    def universe_space_words(self) -> int:
        """Words a fully dense allocation over the universe would hold."""
        return self.num_rows * self.row_space_words()

    def __repr__(self) -> str:
        return (
            f"SketchStack(num_rows={self.num_rows}, domain_size={self.domain_size}, "
            f"budget={self.budget}, rows={self.rows}, buckets={self.buckets}, "
            f"shared_seed={self.shared_seed}, lazy={self.lazy}, "
            f"resident={self.resident_rows()}, spilled={self.is_spilled()})"
        )


class L0SamplerStack:
    """Columnar state of ``num_rows`` same-seeded L0-samplers.

    One shared :class:`~repro.sketch.hashing.NestedSampler` membership
    evaluation per coordinate routes each incidence to its geometric
    levels; every level is a shared-seed :class:`SketchStack`.  This is
    the storage behind :class:`~repro.agm.spanning_forest.AgmSketch`:
    rows are vertices, and all rows of one AGM round hash the same edge
    coordinates — the structure the columnar layout exploits.  With
    ``lazy=True`` every level materializes rows on first touch, so a
    huge-universe round stack holds state for touched vertices only.
    """

    __slots__ = ("num_rows", "domain_size", "levels", "lazy", "_seed_key", "_membership", "_level_stacks", "_tiebreak")

    def __init__(self, num_rows: int, domain_size: int, seed, budget: int = 4, lazy: bool = False):
        template = L0Sampler(domain_size, seed, budget=budget)
        self.num_rows = num_rows
        self.domain_size = domain_size
        self.levels = template.levels
        self.lazy = bool(lazy)
        self._seed_key = template._seed_key
        self._membership = template._membership
        self._tiebreak = template._tiebreak
        self._level_stacks = [
            SketchStack(
                num_rows,
                domain_size,
                budget,
                derive_seed(self._seed_key, "level", j),
                rows=3,
                lazy=self.lazy,
            )
            for j in range(self.levels)
        ]

    def update_row(self, row: int, index: int, delta: int) -> None:
        """Scalar ``x_row[index] += delta`` — bit-identical to
        :meth:`L0Sampler.update` on the row's sampler."""
        if delta == 0:
            return
        deepest = self._membership.level(index)
        for j in range(deepest + 1):
            self._level_stacks[j].update_row(row, index, delta)

    def scatter(self, row_ids: np.ndarray, indices: np.ndarray, deltas: np.ndarray) -> None:
        """Vectorized incidence batch: one membership evaluation per
        coordinate, then one :meth:`SketchStack.scatter` per level."""
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        if indices.size == 0:
            return
        levels = self._membership.level_array(indices)
        row_ids = np.ascontiguousarray(row_ids, dtype=np.int64)
        deltas = np.ascontiguousarray(deltas, dtype=np.int64)
        for j in range(int(levels.max()) + 1):
            surviving = levels >= j
            self._level_stacks[j].scatter(
                row_ids[surviving], indices[surviving], deltas[surviving]
            )

    # ------------------------------------------------------------------
    # Row materialization / decode support
    # ------------------------------------------------------------------

    def _sampler_from_sketches(self, sketches: list[SparseRecoverySketch]) -> L0Sampler:
        sampler = object.__new__(L0Sampler)
        sampler.domain_size = self.domain_size
        sampler.levels = self.levels
        sampler._seed_key = self._seed_key
        sampler._membership = self._membership
        sampler._level_sketches = sketches
        sampler._tiebreak = self._tiebreak
        return sampler

    def row_sampler(self, row: int) -> L0Sampler:
        """A standalone sampler holding row ``row``'s exact state."""
        return self._sampler_from_sketches(
            [stack.row_sketch(row) for stack in self._level_stacks]
        )

    def rows_sum_sampler(self, row_ids) -> L0Sampler:
        """One sampler summarizing the exact sum of the selected rows —
        the Borůvka component sum, as column reductions."""
        rows = list(row_ids)
        return self._sampler_from_sketches(
            [stack.rows_sum_sketch(rows) for stack in self._level_stacks]
        )

    def is_row_zero(self, row: int) -> bool:
        """Whether row ``row``'s vector is (whp) identically zero."""
        return self._level_stacks[0].is_row_zero(row)

    def touched_row_ids(self) -> list[int]:
        """Sorted logical ids of rows ever updated (every update reaches
        level 0, so the level-0 stack carries the full touched set)."""
        return self._level_stacks[0].touched_row_ids()

    def resident_rows(self) -> int:
        """Materialized ``(level, row)`` slots across all level stacks."""
        return sum(stack.resident_rows() for stack in self._level_stacks)

    def num_touched_rows(self) -> int:
        """Number of rows ever updated, in O(1) (the level-0 stack's
        resident count — every update reaches level 0).  The cheap
        cardinality twin of :meth:`touched_row_ids`, which sorts."""
        return self._level_stacks[0].resident_rows()

    def state_digest(self, hasher) -> None:
        """Feed every level stack's resident state into ``hasher``
        (see :meth:`SketchStack.state_digest` for the canonical order
        and the like-engine comparability caveat)."""
        for level, stack in enumerate(self._level_stacks):
            hasher.update(np.int64(level).tobytes())
            stack.state_digest(hasher)

    # ------------------------------------------------------------------
    # Serialization (per-row, matching L0Sampler layout)
    # ------------------------------------------------------------------

    def row_state_len(self) -> int:
        """Length of one row's :meth:`row_state_ints`."""
        return sum(stack.row_state_len() for stack in self._level_stacks)

    def row_state_ints(self, row: int) -> list[int]:
        """Row ``row``'s state, exactly as ``L0Sampler.state_ints()``."""
        flat: list[int] = []
        for stack in self._level_stacks:
            flat.extend(stack.row_state_ints(row))
        return flat

    def load_row_state(self, row: int, values: list[int]) -> None:
        """Inverse of :meth:`row_state_ints` for row ``row``."""
        cursor = 0
        for stack in self._level_stacks:
            need = stack.row_state_len()
            stack.load_row_state(row, values[cursor : cursor + need])
            cursor += need
        if cursor != len(values):
            raise ValueError(f"expected {cursor} state ints, got {len(values)}")

    def reset_state(self) -> None:
        """Drop every level stack back to the all-zero state."""
        for stack in self._level_stacks:
            stack.reset_state()

    def sparse_state_ints(self) -> list[int]:
        """Concatenated per-level nonzero-row blocks (see
        :meth:`SketchStack.sparse_state_ints`) — storage-independent."""
        flat: list[int] = []
        for stack in self._level_stacks:
            flat.extend(stack.sparse_state_ints())
        return flat

    def load_sparse_state(self, values: list[int], cursor: int = 0) -> int:
        """Inverse of :meth:`sparse_state_ints`; returns the new cursor."""
        for stack in self._level_stacks:
            cursor = stack.load_sparse_state(values, cursor)
        return cursor

    # ------------------------------------------------------------------
    # Linearity / copying
    # ------------------------------------------------------------------

    def combine(self, other: "L0SamplerStack", sign: int = 1) -> None:
        """In-place ``self += sign * other``; seeds must match (mixed
        dense/lazy storage is handled level-wise)."""
        if self._seed_key != other._seed_key:
            raise ValueError("cannot combine stacks with different seeds")
        for mine, theirs in zip(self._level_stacks, other._level_stacks):
            mine.combine(theirs, sign)

    def clone(self) -> "L0SamplerStack":
        """Independent copy with the same state and seed."""
        clone = object.__new__(L0SamplerStack)
        clone.num_rows = self.num_rows
        clone.domain_size = self.domain_size
        clone.levels = self.levels
        clone.lazy = self.lazy
        clone._seed_key = self._seed_key
        clone._membership = self._membership
        clone._tiebreak = self._tiebreak
        clone._level_stacks = [stack.clone() for stack in self._level_stacks]
        return clone

    def row_space_words(self) -> int:
        """Per-row persistent state in machine words — same accounting as
        the standalone sampler's ``space_words()``."""
        return (
            self._membership.space_words()
            + self._tiebreak.space_words()
            + sum(stack.row_space_words() for stack in self._level_stacks)
        )

    def resident_space_words(self) -> int:
        """Words actually held by materialized rows.

        Mirrors the historical per-sampler accounting (each row charges
        its own membership/tiebreak seeds), so a dense stack reports
        exactly ``num_rows * row_space_words()`` while a lazy stack
        charges touched rows only.
        """
        seed_words = self._membership.space_words() + self._tiebreak.space_words()
        return (
            self._level_stacks[0].resident_rows() * seed_words
            + sum(stack.resident_space_words() for stack in self._level_stacks)
        )

    def universe_space_words(self) -> int:
        """Words a fully dense universe allocation would hold."""
        return self.num_rows * self.row_space_words()

    def __repr__(self) -> str:
        return (
            f"L0SamplerStack(num_rows={self.num_rows}, "
            f"domain_size={self.domain_size}, levels={self.levels}, "
            f"lazy={self.lazy})"
        )
