"""Compact serialization of sketch state.

Two places genuinely need bytes rather than word counts:

* the Theorem 4 communication game — Alice's *message* is the
  algorithm's state, and its length in bits is the quantity the lower
  bound speaks about;
* the distributed setting — servers ship sketch states to a coordinator.

Every sketch in the repository exposes ``state_ints()``, a flat integer
sequence that fully determines its dynamic state (hash seeds are
excluded: they are shared knowledge derived from the public seed, just
as the paper's protocols assume shared randomness).  This module packs
such sequences with ZigZag + varint encoding — small magnitudes
(the common case: empty cells are 0) cost one byte.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["pack_ints", "unpack_ints", "serialized_size_bytes"]


def _wide_zigzag(value: int) -> int:
    # Arbitrary-precision zigzag: non-negative -> even, negative -> odd.
    return value << 1 if value >= 0 else ((-value) << 1) - 1


def _zigzag_decode(encoded: int) -> int:
    if encoded & 1:
        return -((encoded + 1) >> 1)
    return encoded >> 1


def pack_ints(values: Iterable[int]) -> bytes:
    """Encode a sequence of (possibly huge, possibly negative) ints."""
    chunks = bytearray()
    for value in values:
        encoded = _wide_zigzag(value)
        while True:
            byte = encoded & 0x7F
            encoded >>= 7
            if encoded:
                chunks.append(byte | 0x80)
            else:
                chunks.append(byte)
                break
    return bytes(chunks)


def unpack_ints(data: bytes) -> list[int]:
    """Inverse of :func:`pack_ints`."""
    values = []
    current = 0
    shift = 0
    for byte in data:
        current |= (byte & 0x7F) << shift
        if byte & 0x80:
            shift += 7
        else:
            values.append(_zigzag_decode(current))
            current = 0
            shift = 0
    if shift != 0:
        raise ValueError("truncated varint stream")
    return values


def serialized_size_bytes(sketch) -> int:
    """Bytes needed to ship ``sketch``'s dynamic state.

    ``sketch`` must expose ``state_ints()``.
    """
    return len(pack_ints(sketch.state_ints()))
