"""Compact serialization of sketch state — the wire protocol.

Two places genuinely need bytes rather than word counts:

* the Theorem 4 communication game — Alice's *message* is the
  algorithm's state, and its length in bits is the quantity the lower
  bound speaks about;
* the distributed setting — servers ship sketch states to a coordinator
  (:mod:`repro.stream.distributed`), and the per-round message lengths
  are exactly what the paper's simultaneous-communication framing
  (``S x = S x^1 + ... + S x^s``) charges for.

Every sketch in the repository — including the linear hash tables of
Algorithm 2 — exposes the same two-sided protocol:

* ``state_ints()`` returns a flat integer sequence that fully determines
  the sketch's *dynamic* state (hash seeds are excluded: they are shared
  knowledge derived from the public seed, just as the paper's protocols
  assume shared randomness);
* ``from_state_ints(values)`` is its exact inverse — called on a
  freshly built same-seed/same-shape instance it overwrites the dynamic
  state in place, so ``fresh.from_state_ints(old.state_ints())``
  round-trips bit-for-bit, arbitrary-precision cells included.

This module packs such sequences with ZigZag + varint encoding — small
magnitudes (the common case: empty cells are 0) cost one byte, and
arbitrarily large magnitudes (the ``~2^61``-sized payload cells of the
linear hash tables) are encoded exactly.  :func:`serialize_sketch` /
:func:`deserialize_sketch` bundle the two halves into the byte-level
round trip the distributed runner ships over process boundaries.
"""

from __future__ import annotations

from typing import Iterable

__all__ = [
    "pack_ints",
    "unpack_ints",
    "serialized_size_bytes",
    "serialize_sketch",
    "deserialize_sketch",
]


def _wide_zigzag(value: int) -> int:
    # Arbitrary-precision zigzag: non-negative -> even, negative -> odd.
    return value << 1 if value >= 0 else ((-value) << 1) - 1


def _zigzag_decode(encoded: int) -> int:
    if encoded & 1:
        return -((encoded + 1) >> 1)
    return encoded >> 1


def pack_ints(values: Iterable[int]) -> bytes:
    """Encode a sequence of (possibly huge, possibly negative) ints."""
    chunks = bytearray()
    for value in values:
        encoded = _wide_zigzag(value)
        while True:
            byte = encoded & 0x7F
            encoded >>= 7
            if encoded:
                chunks.append(byte | 0x80)
            else:
                chunks.append(byte)
                break
    return bytes(chunks)


def unpack_ints(data: bytes) -> list[int]:
    """Inverse of :func:`pack_ints`."""
    values = []
    current = 0
    shift = 0
    for byte in data:
        current |= (byte & 0x7F) << shift
        if byte & 0x80:
            shift += 7
        else:
            values.append(_zigzag_decode(current))
            current = 0
            shift = 0
    if shift != 0:
        raise ValueError("truncated varint stream")
    return values


def serialized_size_bytes(sketch) -> int:
    """Bytes needed to ship ``sketch``'s dynamic state.

    ``sketch`` must expose ``state_ints()``.
    """
    return len(serialize_sketch(sketch))


def serialize_sketch(sketch) -> bytes:
    """The sketch's dynamic state as a wire message.

    ``sketch`` must expose ``state_ints()``.  This is what a server in
    the distributed setting sends the coordinator — the message length
    is the communication the model charges for.
    """
    return pack_ints(sketch.state_ints())


def deserialize_sketch(sketch, data: bytes):
    """Load a :func:`serialize_sketch` message into ``sketch``.

    ``sketch`` must be a freshly built instance with the same seed and
    shape as the serialized one and must expose ``from_state_ints()``.
    Returns ``sketch`` (with its dynamic state overwritten) so the call
    composes: ``deserialize_sketch(factory(), blob).decode()``.
    """
    sketch.from_state_ints(unpack_ints(data))
    return sketch
