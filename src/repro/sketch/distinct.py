"""Linear distinct-elements (``L_0``) estimation.

Theorem 9 (quoting [KNW10]) gives a linear sketch estimating the number
of nonzero coordinates of a dynamic integer vector to within ``(1 ± eps)``
with probability ``1 - delta`` in ``O(eps^-2 log^2 n log 1/delta)`` bits.
The paper uses such sketches in two places:

* as a *decodability guard* — declare a ``SKETCH_B`` undecodable when the
  estimated support exceeds ``2B`` (our sparse recovery self-verifies, so
  the guard is optional there, but we keep the primitive faithful), and
* as the degree estimator ``d_u`` of Algorithm 3 (the additive spanner
  decides "low degree" from a sketched degree).

The construction: ``reps`` independent repetitions; each repetition
assigns every coordinate a geometric level (nested samples at rates
``2^-j``) and maintains one field fingerprint per level over the
surviving coordinates.  A level's fingerprint is zero iff (whp) no
nonzero coordinate survives at that level, so the per-level "occupancy"
frequencies follow ``1 - (1 - 2^-j)^{L0}`` and can be inverted.
"""

from __future__ import annotations

import math
import statistics

import numpy as np

from repro.sketch.batched import SMALL_BATCH, as_field_array, prepare_batch
from repro.sketch.kernels import mulmod61, powmod61, scatter_sum_mod61
from repro.sketch.hashing import MERSENNE_61, NestedSampler
from repro.util.rng import derive_seed

__all__ = ["DistinctElementsSketch"]


class DistinctElementsSketch:
    """Estimate ``L0(x) = |{i : x[i] != 0}|`` of a dynamic vector.

    Parameters
    ----------
    domain_size:
        Coordinates live in ``[0, domain_size)``.
    seed:
        Randomness name; sketches with equal seeds are summable.
    reps:
        Independent repetitions; the estimate uses occupancy frequencies
        across them.  Default 32 gives a comfortably sub-2x estimate,
        which is all the guard/degree use cases require.
    """

    __slots__ = ("domain_size", "reps", "levels", "_seed_key", "_samplers", "_bases", "_fingerprints")

    def __init__(self, domain_size: int, seed: int | str, reps: int = 32):
        if domain_size <= 0:
            raise ValueError(f"domain_size must be positive, got {domain_size}")
        if reps < 4:
            raise ValueError(f"reps must be >= 4, got {reps}")
        self.domain_size = domain_size
        self.reps = reps
        self.levels = max(1, math.ceil(math.log2(domain_size))) + 1
        self._seed_key = derive_seed(seed, "distinct", domain_size, reps)
        self._samplers = [
            NestedSampler(self.levels - 1, derive_seed(self._seed_key, "lvl", rep))
            for rep in range(reps)
        ]
        self._bases = [
            1 + derive_seed(self._seed_key, "base", rep) % (MERSENNE_61 - 1)
            for rep in range(reps)
        ]
        self._fingerprints = [[0] * self.levels for _ in range(reps)]

    def update(self, index: int, delta: int) -> None:
        """Apply ``x[index] += delta``."""
        if not 0 <= index < self.domain_size:
            raise IndexError(f"index {index} out of domain [0, {self.domain_size})")
        if delta == 0:
            return
        for rep in range(self.reps):
            level = self._samplers[rep].level(index)
            contribution = delta * pow(self._bases[rep], index, MERSENNE_61)
            row = self._fingerprints[rep]
            for j in range(level + 1):
                row[j] = (row[j] + contribution) % MERSENNE_61

    def update_batch(self, indices, deltas) -> None:
        """Apply ``x[indices[t]] += deltas[t]`` for a whole batch at once.

        Per repetition, the geometric levels and fingerprint powers are
        computed vectorized; each level's fingerprint then absorbs the
        suffix-sum of the per-level contributions (a coordinate at level
        ``l`` feeds every row ``j <= l``, exactly as the scalar loop
        does).  Bit-identical to the scalar :meth:`update` sequence.
        """
        route, idx, values, _, _ = prepare_batch(
            indices, deltas, domain_size=self.domain_size, small_batch=SMALL_BATCH
        )
        if route == "empty":
            return
        if route == "scalar":
            for index, delta in zip(idx, values):
                self.update(int(index), int(delta))
            return
        residues = as_field_array(values)
        for rep in range(self.reps):
            levels = self._samplers[rep].level_array(idx)
            terms = mulmod61(residues, powmod61(self._bases[rep], idx))
            per_level = scatter_sum_mod61(self.levels, levels, terms)
            row = self._fingerprints[rep]
            suffix = 0
            for j in range(self.levels - 1, -1, -1):
                suffix = (suffix + int(per_level[j])) % MERSENNE_61
                if suffix:
                    row[j] = (row[j] + suffix) % MERSENNE_61

    def estimate(self) -> float:
        """Return an estimate of the number of nonzero coordinates."""
        occupancy = [
            sum(1 for rep in range(self.reps) if self._fingerprints[rep][j] != 0)
            for j in range(self.levels)
        ]
        if occupancy[0] == 0:
            return 0.0
        estimates = []
        for j in range(self.levels):
            fraction = occupancy[j] / self.reps
            if 0.05 <= fraction <= 0.95:
                rate = 2.0 ** (-j)
                # fraction ~= 1 - (1 - rate)^L0  =>  invert for L0.
                estimates.append(math.log(1.0 - fraction) / math.log(1.0 - rate + 1e-18))
        if estimates:
            return max(1.0, statistics.median(estimates))
        # All levels saturated or empty: fall back to the deepest
        # saturated level, which pins the estimate to within a factor ~2.
        deepest = max(j for j in range(self.levels) if occupancy[j] > self.reps // 2)
        return float(2 ** (deepest + 1))

    def combine(self, other: "DistinctElementsSketch", sign: int = 1) -> None:
        """In-place ``self += sign * other``; seeds must match."""
        if self._seed_key != other._seed_key:
            raise ValueError("cannot combine sketches with different seeds")
        if sign not in (1, -1):
            raise ValueError(f"sign must be +1 or -1, got {sign}")
        for rep in range(self.reps):
            mine = self._fingerprints[rep]
            theirs = other._fingerprints[rep]
            for j in range(self.levels):
                mine[j] = (mine[j] + sign * theirs[j]) % MERSENNE_61

    def clone(self) -> "DistinctElementsSketch":
        """Independent copy with the same state and seed.

        The samplers and fingerprint bases are immutable shared
        randomness; only the per-repetition fingerprint rows are copied.
        """
        clone = object.__new__(DistinctElementsSketch)
        clone.domain_size = self.domain_size
        clone.reps = self.reps
        clone.levels = self.levels
        clone._seed_key = self._seed_key
        clone._samplers = self._samplers
        clone._bases = self._bases
        clone._fingerprints = [list(row) for row in self._fingerprints]
        return clone

    def state_ints(self) -> list[int]:
        """Dynamic state as a flat int sequence (for serialization)."""
        flat: list[int] = []
        for row in self._fingerprints:
            flat.extend(row)
        return flat

    def state_len(self) -> int:
        """Length of :meth:`state_ints`, without materializing it."""
        return self.reps * self.levels

    def from_state_ints(self, values: list[int]) -> "DistinctElementsSketch":
        """Overwrite the dynamic state from a :meth:`state_ints` sequence.

        Exact inverse of :meth:`state_ints` on a same-seed/same-shape
        sketch; returns ``self``.
        """
        if len(values) != self.reps * self.levels:
            raise ValueError(
                f"expected {self.reps * self.levels} state ints, got {len(values)}"
            )
        self._fingerprints = [
            [int(v) % MERSENNE_61 for v in values[rep * self.levels : (rep + 1) * self.levels]]
            for rep in range(self.reps)
        ]
        return self

    def space_words(self) -> int:
        """Persistent state, in machine words."""
        sampler_words = sum(s.space_words() for s in self._samplers)
        return self.reps * self.levels + self.reps + sampler_words
