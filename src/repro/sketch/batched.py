"""Batch prologue helpers + the field-kernel facade for the sketches.

The scalar sketches do three expensive things per stream update, all in
pure Python: evaluate ``k``-wise polynomial hashes (Horner over 61-bit
field elements), raise the fingerprint base to the coordinate's power
(``pow(z, i, p)``), and scatter the resulting contributions into counter
cells.  The vectorized counterparts live in
:mod:`repro.sketch.kernels` — a pluggable backend package (``reference``
oracle, ``limb`` fast path, optional ``native`` C) selected once at
import via ``REPRO_KERNEL`` — and are re-exported here so historical
imports (``from repro.sketch.batched import mulmod61``) keep working.
New call sites should import the kernels from
:mod:`repro.sketch.kernels` directly; sketchlint ``SL205`` enforces
that for ``src/``.

What this module *owns* is the shared ``update_batch`` prologue every
sketch runs before touching a kernel:

:func:`prepare_batch`
    coercion, validation, routing (scalar/vector/bigint), zero
    filtering, and the hoisted ``max(|delta|)`` bound;
:func:`fits_int64_products`
    the guard the sketches use to decide whether a batch can ride the
    ``int64`` scatter fast path or must fall back to exact Python loops
    (arbitrary-precision payloads, e.g. serialized inner sketches);
:func:`as_field_array`
    the one blessed coercion from signed (or arbitrary-precision) delta
    batches to canonical field residues in ``[0, p)`` — sketchlint's
    ``SL202`` bans hand-rolled copies of it outside the kernel modules.

Every kernel is **exact**: a batched sketch update lands in
*bit-identical* state to the equivalent sequence of scalar updates — the
property ``tests/sketch/test_batched.py`` asserts and the graph
algorithms rely on (same-seeded sketches must stay summable across code
paths and backends).

With ``REPRO_SANITIZE=1`` (see :mod:`repro.util.sanitize`) the kernels
additionally assert their canonical-range preconditions at runtime.
"""

from __future__ import annotations

import numpy as np

from repro.sketch.hashing import MERSENNE_61
from repro.sketch.kernels import (
    MASK32,
    addmod61,
    build_pow_table,
    mulmod61,
    polyhash61,
    polyhash61_multi,
    polyhash61_rows,
    powmod61,
    powmod61_bases,
    powmod61_windowed,
    scatter_sum_mod61,
    submod61,
    sum_mod61,
)

__all__ = [
    "MASK32",
    "SMALL_BATCH",
    "addmod61",
    "as_index_array",
    "as_delta_array",
    "as_field_array",
    "fits_int64_products",
    "max_abs_int64",
    "build_pow_table",
    "mulmod61",
    "polyhash61",
    "polyhash61_multi",
    "polyhash61_rows",
    "powmod61",
    "powmod61_bases",
    "powmod61_windowed",
    "prepare_batch",
    "scatter_sum_mod61",
    "submod61",
    "sum_mod61",
]

#: Below this batch length the numpy fast path's fixed per-call cost
#: exceeds the scalar loop's; sketches route such batches to their
#: scalar ``update`` (identical state either way).  192 is the measured
#: crossover for the sparse-recovery shapes used across the repo;
#: sketches with a different scalar/vector cost balance override it
#: (CountSketch 128, L0Sampler 384 — see ``docs/performance.md``).
SMALL_BATCH = 192


def as_index_array(indices) -> np.ndarray:
    """Coerce a coordinate batch to a contiguous ``int64`` array."""
    array = np.ascontiguousarray(indices, dtype=np.int64)
    if array.ndim != 1:
        raise ValueError(f"index batch must be 1-D, got shape {array.shape}")
    return array


def as_delta_array(deltas, length: int):
    """Coerce a delta batch to ``int64`` if every value fits, else a list.

    Returns ``(array_or_list, fits_int64)``.  Arbitrary-precision deltas
    (the linear hash tables push ~``2^61``-sized serialized payloads
    through their sketches) keep exact Python integers and route the
    caller onto the mixed fallback path.
    """
    try:
        array = np.ascontiguousarray(deltas, dtype=np.int64)
    except OverflowError:
        values = [int(d) for d in deltas]
        if len(values) != length:
            raise ValueError("indices and deltas must have equal length")
        return values, False
    if array.ndim != 1 or array.shape[0] != length:
        raise ValueError("indices and deltas must be 1-D of equal length")
    return array, True


def prepare_batch(
    indices,
    deltas,
    *,
    domain_size: int | None = None,
    small_batch: int = 0,
    scalar_bigints: bool = False,
):
    """The shared ``update_batch`` prologue of every sketch.

    Coerces and validates a batch, decides its route, strips zero deltas
    from the vectorized routes, and hoists the ``max(|delta|)`` bound so
    downstream overflow guards (:func:`fits_int64_products`) are O(1) on
    the hot path instead of rescanning the deltas per chunk.  Returns
    ``(route, idx, values, fits, max_abs)`` where ``route`` is one of

    * ``"empty"``  — nothing to do (``idx``/``values`` are ``None``);
    * ``"scalar"`` — the caller should loop its scalar ``update`` over
      ``zip(idx, values)`` (batch under ``small_batch``, or
      arbitrary-precision deltas with ``scalar_bigints=True`` for
      sketches without a vectorized bigint path);
    * ``"vector"`` — ``idx`` (``int64`` array) and ``values`` (``int64``
      array when ``fits``, else a list of exact Python ints) are
      zero-filtered and ready for the numpy path.

    ``max_abs`` is the exact ``max(|values|)`` whenever ``fits`` holds
    (scalar or vector route) and ``0`` otherwise (empty batches,
    arbitrary-precision payloads — their guards cannot ride int64
    anyway).

    ``domain_size=None`` skips domain validation (for sketches whose
    scalar ``update`` delegates validation to an inner sketch).
    """
    idx = as_index_array(indices)
    if idx.size == 0:
        return "empty", None, None, True, 0
    if domain_size is not None and (
        int(idx.min()) < 0 or int(idx.max()) >= domain_size
    ):
        raise IndexError(f"index batch leaves domain [0, {domain_size})")
    values, fits = as_delta_array(deltas, idx.size)
    if (fits and idx.size <= small_batch) or (not fits and scalar_bigints):
        return "scalar", idx, values, fits, max_abs_int64(values) if fits else 0
    if fits:
        nonzero = values != 0
        if not nonzero.all():
            idx, values = idx[nonzero], values[nonzero]
            if idx.size == 0:
                return "empty", None, None, True, 0
        return "vector", idx, values, True, max_abs_int64(values)
    keep = [t for t, delta in enumerate(values) if delta != 0]
    if not keep:
        return "empty", None, None, False, 0
    idx = idx[keep]
    values = [values[t] for t in keep]
    return "vector", idx, values, False, 0


def as_field_array(values) -> np.ndarray:
    """Canonical field residues of a delta batch: ``uint64`` in ``[0, p)``.

    The one blessed coercion from signed/arbitrary-precision deltas to
    field elements.  ``int64``-representable batches reduce vectorized;
    arbitrary-precision payloads (lists of exact Python ints, e.g. the
    linear hash tables' ~``2^61``-sized serialized values) reduce
    element-wise in exact Python integers — both land on identical
    canonical residues.
    """
    if isinstance(values, np.ndarray) and values.dtype != object:
        return np.remainder(values, MERSENNE_61).astype(np.uint64)
    return np.array([int(delta) % MERSENNE_61 for delta in values], dtype=np.uint64)


def max_abs_int64(values: np.ndarray) -> int:
    """Exact ``max(|values|)`` of a nonempty ``int64`` array.

    Computed from the extrema in Python integers: ``np.abs`` wraps on
    ``-2^63`` (its magnitude is not representable in ``int64``), which
    would let that delta slip past :func:`fits_int64_products`.
    """
    return max(abs(int(values.min())), abs(int(values.max())))


def fits_int64_products(length: int, max_abs_delta: int, max_index: int) -> bool:
    """Whether ``sum_t |delta_t * index_t|`` stays safely below ``2^62``.

    The int64 scatter fast path accumulates ``delta`` and
    ``delta * index`` per cell with ``np.add.at``; this bound guarantees
    no intermediate (even if every update hits the same cell) can
    overflow a signed 64-bit accumulator.
    """
    if length == 0:
        return True
    return length * max_abs_delta * max(max_index, 1) < (1 << 62)
