"""Exact 1-sparse recovery over a turnstile stream (Ganguly's detector).

This is the atomic building block of every sketch in the repository.  A
detector summarizes a dynamic integer vector ``x`` (updates
``x[i] += delta``) with three counters:

* ``total``       = sum_i x[i]                     (plain integer),
* ``index_sum``   = sum_i i * x[i]                 (plain integer),
* ``fingerprint`` = sum_i x[i] * z^i  mod p        (field element),

where ``z`` is a seeded random field element and ``p = 2^61 - 1``.  If
``x`` has exactly one nonzero coordinate ``x[i] = v`` then
``index_sum / total == i`` and the fingerprint equals ``v * z^i``; any
other vector passes this test with probability at most ``~||x||_0 / p``.

The structure is linear: detectors with the same seed can be added and
subtracted coordinate-wise, which is what lets Algorithm 1 sum the
per-vertex sketches of a cluster into a cluster sketch.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.sketch.batched import (
    SMALL_BATCH,
    as_field_array,
    fits_int64_products,
    prepare_batch,
)
from repro.sketch.kernels import mulmod61, powmod61, sum_mod61
from repro.sketch.hashing import MERSENNE_61
from repro.util.rng import derive_seed

__all__ = ["DecodeStatus", "OneSparseResult", "OneSparseDetector"]


class DecodeStatus(Enum):
    """Outcome of attempting to decode a detector."""

    ZERO = "zero"  # the summarized vector is (whp) identically zero
    ONE_SPARSE = "one_sparse"  # exactly one nonzero coordinate recovered
    NOT_ONE_SPARSE = "not_one_sparse"  # more than one nonzero coordinate


@dataclass(frozen=True)
class OneSparseResult:
    """Decode result: ``status`` plus the recovered coordinate if 1-sparse."""

    status: DecodeStatus
    index: int | None = None
    value: int | None = None


class OneSparseDetector:
    """Detects whether a dynamic vector is 0-sparse or 1-sparse, exactly.

    Parameters
    ----------
    domain_size:
        Coordinates are integers in ``[0, domain_size)``.
    seed:
        Seed for the fingerprint base ``z``.  Detectors are summable iff
        they share a seed (enforced in :meth:`combine`).
    """

    __slots__ = ("domain_size", "_seed_key", "_z", "total", "index_sum", "fingerprint")

    def __init__(self, domain_size: int, seed: int | str):
        if domain_size <= 0:
            raise ValueError(f"domain_size must be positive, got {domain_size}")
        self.domain_size = domain_size
        self._seed_key = derive_seed(seed, "onesparse-z")
        # z must be nonzero so that z^i is invertible and distinct powers
        # separate indices.
        self._z = 1 + self._seed_key % (MERSENNE_61 - 1)
        self.total = 0
        self.index_sum = 0
        self.fingerprint = 0

    def update(self, index: int, delta: int) -> None:
        """Apply ``x[index] += delta``."""
        if not 0 <= index < self.domain_size:
            raise IndexError(f"index {index} out of domain [0, {self.domain_size})")
        if delta == 0:
            return
        self.total += delta
        self.index_sum += index * delta
        self.fingerprint = (self.fingerprint + delta * pow(self._z, index, MERSENNE_61)) % MERSENNE_61

    def update_batch(self, indices, deltas) -> None:
        """Apply ``x[indices[t]] += deltas[t]`` for a whole batch at once.

        Bit-identical to the equivalent scalar :meth:`update` sequence:
        the counter sums are exact (guarded against int64 overflow, with
        a scalar fallback for arbitrary-precision deltas) and the
        fingerprint accumulates via exact vectorized field arithmetic.
        """
        route, idx, values, _, max_abs = prepare_batch(
            indices,
            deltas,
            domain_size=self.domain_size,
            small_batch=SMALL_BATCH,
            scalar_bigints=True,  # bigint counter sums need exact Python ints
        )
        if route == "empty":
            return
        if route == "scalar" or not fits_int64_products(
            idx.size, max_abs, int(idx.max())
        ):
            for index, delta in zip(idx, values):
                self.update(int(index), int(delta))
            return
        self.total += int(values.sum())
        self.index_sum += int((idx * values).sum())
        residues = as_field_array(values)
        terms = mulmod61(residues, powmod61(self._z, idx))
        self.fingerprint = (self.fingerprint + sum_mod61(terms)) % MERSENNE_61

    def decode(self) -> OneSparseResult:
        """Classify the summarized vector (correct whp over the seed)."""
        if self.total == 0 and self.index_sum == 0 and self.fingerprint == 0:
            return OneSparseResult(DecodeStatus.ZERO)
        if self.total != 0 and self.index_sum % self.total == 0:
            index = self.index_sum // self.total
            if 0 <= index < self.domain_size:
                expected = (self.total % MERSENNE_61) * pow(self._z, index, MERSENNE_61) % MERSENNE_61
                if expected == self.fingerprint:
                    return OneSparseResult(DecodeStatus.ONE_SPARSE, index, self.total)
        return OneSparseResult(DecodeStatus.NOT_ONE_SPARSE)

    def is_zero(self) -> bool:
        """Whether the summarized vector is (whp) identically zero."""
        return self.decode().status is DecodeStatus.ZERO

    def combine(self, other: "OneSparseDetector", sign: int = 1) -> None:
        """In-place ``self += sign * other`` (linearity).

        Raises ``ValueError`` if the detectors were built from different
        seeds or domains, since then their fingerprints are incompatible.
        """
        if self._seed_key != other._seed_key or self.domain_size != other.domain_size:
            raise ValueError("cannot combine detectors with different seeds/domains")
        if sign not in (1, -1):
            raise ValueError(f"sign must be +1 or -1, got {sign}")
        self.total += sign * other.total
        self.index_sum += sign * other.index_sum
        self.fingerprint = (self.fingerprint + sign * other.fingerprint) % MERSENNE_61

    def copy(self) -> "OneSparseDetector":
        """Return an independent copy with the same state and seed."""
        clone = object.__new__(OneSparseDetector)
        clone.domain_size = self.domain_size
        clone._seed_key = self._seed_key
        clone._z = self._z
        clone.total = self.total
        clone.index_sum = self.index_sum
        clone.fingerprint = self.fingerprint
        return clone

    def clone(self) -> "OneSparseDetector":
        """Uniform deep-copy entry point (see the sketch-wide ``clone()``
        contract in :mod:`repro.sketch`): alias of :meth:`copy`."""
        return self.copy()

    @property
    def fingerprint_base(self) -> int:
        """The fingerprint base ``z`` (needed to *encode* raw state
        deltas externally, e.g. by the linear hash tables)."""
        return self._z

    def state_vector(self) -> tuple[int, int, int]:
        """The raw counters ``(total, index_sum, fingerprint)``.

        Used when a detector itself becomes the *payload* of an outer
        linear structure (the hash tables of Algorithm 2 serialize inner
        sketches this way).
        """
        return (self.total, self.index_sum, self.fingerprint)

    def load_state_vector(self, state: tuple[int, int, int]) -> None:
        """Overwrite counters from :meth:`state_vector` output.

        The fingerprint component is reduced mod p: an outer linear
        structure accumulates it over the plain integers, and reduction is
        a ring homomorphism, so the reduced value is the true fingerprint.
        """
        total, index_sum, fingerprint = state
        self.total = total
        self.index_sum = index_sum
        self.fingerprint = fingerprint % MERSENNE_61

    def state_ints(self) -> list[int]:
        """Dynamic state as a flat int sequence (for serialization)."""
        return [self.total, self.index_sum, self.fingerprint]

    def state_len(self) -> int:
        """Length of :meth:`state_ints`, without materializing it."""
        return 3

    def from_state_ints(self, values: list[int]) -> "OneSparseDetector":
        """Overwrite the dynamic state from a :meth:`state_ints` sequence.

        Exact inverse of :meth:`state_ints` on a same-seed detector;
        returns ``self``.  The fingerprint is reduced mod p so unreduced
        linear accumulations (see :meth:`load_state_vector`) also load.
        """
        if len(values) != 3:
            raise ValueError(f"expected 3 state ints, got {len(values)}")
        self.total = values[0]
        self.index_sum = values[1]
        self.fingerprint = values[2] % MERSENNE_61
        return self

    def space_words(self) -> int:
        """Persistent state, in machine words (three counters + base)."""
        return 4

    def __repr__(self) -> str:
        return (
            f"OneSparseDetector(domain_size={self.domain_size}, total={self.total}, "
            f"index_sum={self.index_sum})"
        )
