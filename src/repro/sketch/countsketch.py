"""CountSketch: the paper's noted alternative to exact sparse recovery.

After Theorem 8 the paper remarks: "we could also use other sketches,
such as CountSketch instead of Theorem 8, improving upon the logarithmic
factors in the space, though the reconstruction time will be larger."
This module implements that alternative with the tradeoff it advertises:

* space: ``depth x width`` plain counters — no 3-counter cells, no
  fingerprints, so roughly a third of the peeling sketch's words at
  equal budget;
* reconstruction: point queries are exact for ``B``-sparse vectors whp
  (median over rows), but *decoding* requires enumerating candidates —
  ``O(domain)`` when nothing is known, versus the peeling decoder's
  output-sensitive time — and is not self-verifying.

It is interface-compatible with
:class:`~repro.sketch.sparse_recovery.SparseRecoverySketch` for the
linearity operations, and E6-style tests compare both.
"""

from __future__ import annotations

import math
import statistics
from typing import Iterable

import numpy as np

from repro.sketch.batched import fits_int64_products, prepare_batch
from repro.sketch.hashing import KWiseHash
from repro.util.rng import derive_seed

__all__ = ["CountSketch"]

#: Independence for bucket/sign hashes; pairwise suffices for the
#: variance bound, 4-wise tightens concentration.
_HASH_INDEPENDENCE = 4

#: Measured scalar/vector crossover for this sketch's shapes (the
#: 4-wise hashes are cheap enough that numpy wins early).
_SMALL_BATCH = 128


class CountSketch:
    """Charikar–Chen–Farach-Colton frequency sketch.

    Parameters
    ----------
    domain_size:
        Coordinates live in ``[0, domain_size)``.
    budget:
        Target sparsity ``B``; point queries on ``<= budget``-sparse
        vectors are exact whp.
    seed:
        Randomness name; equal-seed sketches are summable.
    depth:
        Number of independent rows (median width).
    width_factor:
        Buckets per row are ``max(4, ceil(width_factor * budget))``.
    """

    __slots__ = ("domain_size", "budget", "depth", "width", "_seed_key", "_bucket_hashes", "_sign_hashes", "_cells")

    def __init__(
        self,
        domain_size: int,
        budget: int,
        seed: int | str,
        depth: int = 5,
        width_factor: float = 4.0,
    ):
        if domain_size <= 0:
            raise ValueError(f"domain_size must be positive, got {domain_size}")
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        if depth < 1 or depth % 2 == 0:
            raise ValueError(f"depth must be odd and >= 1, got {depth}")
        self.domain_size = domain_size
        self.budget = budget
        self.depth = depth
        self.width = max(4, math.ceil(width_factor * budget))
        self._seed_key = derive_seed(seed, "countsketch", domain_size, budget, depth)
        self._bucket_hashes = [
            KWiseHash.shared(_HASH_INDEPENDENCE, derive_seed(self._seed_key, "bucket", r))
            for r in range(depth)
        ]
        self._sign_hashes = [
            KWiseHash.shared(_HASH_INDEPENDENCE, derive_seed(self._seed_key, "sign", r))
            for r in range(depth)
        ]
        self._cells = [[0] * self.width for _ in range(depth)]

    def _sign(self, row: int, index: int) -> int:
        return 1 if self._sign_hashes[row](index) % 2 == 0 else -1

    def update(self, index: int, delta: int) -> None:
        """Apply ``x[index] += delta`` (the batch-of-one case of
        :meth:`update_batch`; both paths land in identical state)."""
        if not 0 <= index < self.domain_size:
            raise IndexError(f"index {index} out of domain [0, {self.domain_size})")
        if delta == 0:
            return
        for row in range(self.depth):
            bucket = self._bucket_hashes[row].bucket(index, self.width)
            self._cells[row][bucket] += self._sign(row, index) * delta

    def update_batch(self, indices, deltas) -> None:
        """Apply ``x[indices[t]] += deltas[t]`` for a whole batch at once.

        Bit-identical to the equivalent sequence of scalar
        :meth:`update` calls, but the bucket/sign hashing and the
        scatter-adds run vectorized over the batch — the per-update
        Python interpreter cost is replaced by a handful of numpy passes.
        Arbitrary-precision deltas fall back to the scalar loop.
        """
        route, idx, values, _, max_abs = prepare_batch(
            indices,
            deltas,
            domain_size=self.domain_size,
            small_batch=_SMALL_BATCH,
            scalar_bigints=True,  # no vectorized bigint path: plain counters
        )
        if route == "empty":
            return
        if route == "scalar" or not fits_int64_products(idx.size, max_abs, 1):
            for index, delta in zip(idx, values):
                self.update(int(index), int(delta))
            return
        for row in range(self.depth):
            buckets = self._bucket_hashes[row].bucket_array(idx, self.width)
            parity = self._sign_hashes[row].values_array(idx) & np.uint64(1)
            signed = np.where(parity == 0, values, -values)
            aggregate = np.zeros(self.width, dtype=np.int64)
            np.add.at(aggregate, buckets, signed)
            cells = self._cells[row]
            for bucket in np.flatnonzero(aggregate):
                cells[bucket] += int(aggregate[bucket])

    def estimate(self, index: int) -> int:
        """Point query: the median-of-rows estimate of ``x[index]``."""
        if not 0 <= index < self.domain_size:
            raise IndexError(f"index {index} out of domain [0, {self.domain_size})")
        estimates = []
        for row in range(self.depth):
            bucket = self._bucket_hashes[row].bucket(index, self.width)
            estimates.append(self._sign(row, index) * self._cells[row][bucket])
        return int(statistics.median(estimates))

    def decode(self, candidates: Iterable[int] | None = None) -> dict[int, int]:
        """Recover nonzero coordinates among ``candidates``.

        With ``candidates=None`` the whole domain is scanned — the
        "larger reconstruction time" the paper's remark warns about.
        Unlike the peeling decoder this is *not* self-verifying: an
        overfull sketch yields noisy estimates rather than ``None``.
        """
        if candidates is None:
            candidates = range(self.domain_size)
        recovered: dict[int, int] = {}
        for index in candidates:
            value = self.estimate(index)
            if value != 0:
                recovered[index] = value
        return recovered

    def combine(self, other: "CountSketch", sign: int = 1) -> None:
        """In-place ``self += sign * other``; seeds/shapes must match."""
        if self._seed_key != other._seed_key:
            raise ValueError("cannot combine sketches with different seeds")
        if sign not in (1, -1):
            raise ValueError(f"sign must be +1 or -1, got {sign}")
        for row in range(self.depth):
            mine = self._cells[row]
            theirs = other._cells[row]
            for bucket in range(self.width):
                mine[bucket] += sign * theirs[bucket]

    def copy(self) -> "CountSketch":
        """Independent copy with the same state and seed."""
        clone = object.__new__(CountSketch)
        clone.domain_size = self.domain_size
        clone.budget = self.budget
        clone.depth = self.depth
        clone.width = self.width
        clone._seed_key = self._seed_key
        clone._bucket_hashes = self._bucket_hashes
        clone._sign_hashes = self._sign_hashes
        clone._cells = [list(row) for row in self._cells]
        return clone

    def clone(self) -> "CountSketch":
        """Uniform deep-copy entry point (see the sketch-wide ``clone()``
        contract in :mod:`repro.sketch`): alias of :meth:`copy`."""
        return self.copy()

    def state_ints(self) -> list[int]:
        """Dynamic state as a flat int sequence (for serialization)."""
        flat: list[int] = []
        for row in self._cells:
            flat.extend(row)
        return flat

    def state_len(self) -> int:
        """Length of :meth:`state_ints`, without materializing it."""
        return self.depth * self.width

    def from_state_ints(self, values: list[int]) -> "CountSketch":
        """Overwrite the dynamic state from a :meth:`state_ints` sequence.

        Exact inverse of :meth:`state_ints` on a same-seed/same-shape
        sketch; returns ``self``.
        """
        if len(values) != self.depth * self.width:
            raise ValueError(
                f"expected {self.depth * self.width} state ints, got {len(values)}"
            )
        self._cells = [
            [int(v) for v in values[row * self.width : (row + 1) * self.width]]
            for row in range(self.depth)
        ]
        return self

    def space_words(self) -> int:
        """Persistent state, in machine words."""
        hash_words = sum(h.space_words() for h in self._bucket_hashes)
        hash_words += sum(h.space_words() for h in self._sign_hashes)
        return self.depth * self.width + hash_words
