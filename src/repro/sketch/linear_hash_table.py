"""The linear hash tables ``H^u_j`` of Algorithm 2 (second pass).

Section 3.2 outlines the structure: a table that supports recovering up
to ``K`` values indexed by vertices, "by treating the sketches associated
with nodes v in V as poly(log n)-length bit numbers and sketching this
vector x in R^V using SKETCH_{~O(n^{(i+1)/k})}(x)".

We implement exactly that idea as a reusable substrate:

* :class:`LinearHashTable` — a linear map from ``(key, payload slot)``
  pairs to a sparse-recovery sketch over the product domain.  Decoding
  recovers the full ``key -> payload vector`` map whenever at most
  ``capacity`` keys are live.  Payload components are plain integers, so
  any linear sketch can be serialized into a payload (linearity of the
  table then sums inner sketches component-wise, which is what Algorithm 2
  needs when many stream updates touch the same key).

* :class:`NeighborhoodHashTable` — the specialization used by the spanner:
  the payload for key ``v`` is a 1-sparse detector of ``N(v) ∩ T_u ∩ Y_j``
  over the vertex domain.  (The paper stores an ``O(log n)``-budget sketch
  per key; since the ``Y_j`` levels already reduce each surviving
  neighborhood to near-singletons, a 1-sparse detector per level carries
  the same guarantee — the standard L0-sampler argument — at a third of
  the payload width — a deliberate constant-factor substitution;
  ``SpannerParams.table_stacks`` restores the per-key success
  probability.)
"""

from __future__ import annotations

import numpy as np

from repro.sketch.batched import as_index_array
from repro.sketch.kernels import powmod61
from repro.sketch.hashing import MERSENNE_61
from repro.sketch.onesparse import DecodeStatus, OneSparseDetector, OneSparseResult
from repro.sketch.sparse_recovery import SparseRecoverySketch
from repro.util.rng import derive_seed

__all__ = ["LinearHashTable", "NeighborhoodHashTable"]


class LinearHashTable:
    """Linear ``key -> payload vector`` table with sketch-space recovery.

    Parameters
    ----------
    key_domain:
        Keys are integers in ``[0, key_domain)``.
    payload_len:
        Number of integer components per payload.
    capacity:
        Decoding is guaranteed (whp) while at most ``capacity`` keys have
        a nonzero payload.
    seed:
        Randomness name; tables with equal seeds are summable.
    """

    __slots__ = ("key_domain", "payload_len", "capacity", "_sketch")

    def __init__(
        self,
        key_domain: int,
        payload_len: int,
        capacity: int,
        seed: int | str,
        rows: int = 3,
        bucket_factor: float = 2.0,
    ):
        if key_domain <= 0:
            raise ValueError(f"key_domain must be positive, got {key_domain}")
        if payload_len <= 0:
            raise ValueError(f"payload_len must be positive, got {payload_len}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.key_domain = key_domain
        self.payload_len = payload_len
        self.capacity = capacity
        self._sketch = SparseRecoverySketch(
            domain_size=key_domain * payload_len,
            budget=capacity * payload_len,
            seed=derive_seed(seed, "linear-hash-table"),
            rows=rows,
            bucket_factor=bucket_factor,
        )

    def add_to_payload(self, key: int, component: int, delta: int) -> None:
        """Apply ``payload[key][component] += delta``."""
        if not 0 <= key < self.key_domain:
            raise IndexError(f"key {key} out of domain [0, {self.key_domain})")
        if not 0 <= component < self.payload_len:
            raise IndexError(f"component {component} out of [0, {self.payload_len})")
        self._sketch.update(key * self.payload_len + component, delta)

    def add_payload(self, key: int, payload: list[int], sign: int = 1) -> None:
        """Apply ``payload[key] += sign * payload`` component-wise."""
        if len(payload) != self.payload_len:
            raise ValueError(f"payload must have {self.payload_len} components")
        for component, value in enumerate(payload):
            if value != 0:
                self.add_to_payload(key, component, sign * value)

    def add_to_payload_batch(self, keys, component: int, deltas) -> None:
        """Batched :meth:`add_to_payload` for one payload component.

        ``payload[keys[t]][component] += deltas[t]`` for the whole
        batch, via the underlying sketch's vectorized
        :meth:`~repro.sketch.sparse_recovery.SparseRecoverySketch.update_batch`.
        Bit-identical to the scalar call sequence; ``deltas`` may hold
        arbitrary-precision integers (serialized inner-sketch state).
        """
        if not 0 <= component < self.payload_len:
            raise IndexError(f"component {component} out of [0, {self.payload_len})")
        keys = as_index_array(keys)
        if keys.size == 0:
            return
        if int(keys.min()) < 0 or int(keys.max()) >= self.key_domain:
            raise IndexError(f"key batch leaves domain [0, {self.key_domain})")
        self._sketch.update_batch(
            keys * np.int64(self.payload_len) + np.int64(component), deltas
        )

    def decode(self) -> dict[int, list[int]] | None:
        """Recover ``{key: payload vector}`` or ``None`` if undecodable."""
        decoded = self._sketch.decode()
        if decoded is None:
            return None
        table: dict[int, list[int]] = {}
        for index, value in decoded.items():
            key, component = divmod(index, self.payload_len)
            payload = table.get(key)
            if payload is None:
                payload = [0] * self.payload_len
                table[key] = payload
            payload[component] = value
        return table

    def combine(self, other: "LinearHashTable", sign: int = 1) -> None:
        """In-place ``self += sign * other``; seeds/shapes must match."""
        self._sketch.combine(other._sketch, sign)

    def clone(self) -> "LinearHashTable":
        """Independent copy with the same state and seed (the addressing
        layer is stateless; only the inner sketch cells are copied)."""
        clone = object.__new__(LinearHashTable)
        clone.key_domain = self.key_domain
        clone.payload_len = self.payload_len
        clone.capacity = self.capacity
        clone._sketch = self._sketch.copy()
        return clone

    def is_zero(self) -> bool:
        """Whether the table summarizes the all-zero map (whp)."""
        return self._sketch.is_zero()

    def state_ints(self) -> list[int]:
        """Dynamic state as a flat int sequence (for serialization).

        The table is a thin addressing layer over one sparse-recovery
        sketch, so its shippable state is exactly that sketch's state —
        including the ``~2^61``-sized payload cells, which the varint
        codec of :mod:`repro.sketch.serialize` encodes exactly.
        """
        return self._sketch.state_ints()

    def state_len(self) -> int:
        """Length of :meth:`state_ints`, without materializing it."""
        return self._sketch.state_len()

    def from_state_ints(self, values: list[int]) -> "LinearHashTable":
        """Overwrite the dynamic state from a :meth:`state_ints` sequence.

        Exact inverse of :meth:`state_ints` on a same-seed/same-shape
        table; returns ``self``.
        """
        self._sketch.from_state_ints(values)
        return self

    def space_words(self) -> int:
        """Persistent state, in machine words."""
        return self._sketch.space_words()


class NeighborhoodHashTable:
    """``H^u_j``: per outside-vertex key, a 1-sparse detector of its
    neighbors inside the cluster ``T_u`` (restricted to the level sample).

    ``add_neighbor(key=v, neighbor=a, delta)`` is the streaming translation
    of Algorithm 2's "add SKETCH(delta * a) to the v-th entry of H^u_j".
    """

    __slots__ = ("num_vertices", "_payload_template", "_table")

    def __init__(
        self,
        num_vertices: int,
        capacity: int,
        seed: int | str,
        rows: int = 3,
        bucket_factor: float = 2.0,
    ):
        self.num_vertices = num_vertices
        # All payload detectors share one fingerprint base via this
        # template, so contributions from different updates are summable.
        self._payload_template = OneSparseDetector(
            num_vertices, derive_seed(seed, "payload-template")
        )
        self._table = LinearHashTable(
            key_domain=num_vertices,
            payload_len=3,
            capacity=capacity,
            seed=derive_seed(seed, "table"),
            rows=rows,
            bucket_factor=bucket_factor,
        )

    def add_neighbor(self, key: int, neighbor: int, delta: int) -> None:
        """Record that edge ``(neighbor, key)`` changed by ``delta``.

        The payload delta is encoded *unreduced* (plain integers, the
        fingerprint term may be negative) so that an insert/delete pair
        cancels exactly in the outer table and frees its key capacity;
        reduction mod p happens once at decode time.
        """
        if not 0 <= neighbor < self.num_vertices:
            raise IndexError(f"neighbor {neighbor} out of [0, {self.num_vertices})")
        power = pow(self._payload_template.fingerprint_base, neighbor, MERSENNE_61)
        self._table.add_payload(key, [delta, delta * neighbor, delta * power])

    def add_neighbors_batch(self, keys, neighbors, deltas) -> None:
        """Batched :meth:`add_neighbor`: record a whole batch of edge
        changes ``(neighbors[t], keys[t]) += deltas[t]`` at once.

        The per-neighbor fingerprint powers are computed by one
        vectorized exponentiation and each payload component is pushed
        through the table's batched update; state is bit-identical to
        the equivalent scalar call sequence.
        """
        keys = as_index_array(keys)
        neighbors = as_index_array(neighbors)
        if keys.size != neighbors.size:
            raise ValueError("keys and neighbors must have equal length")
        if keys.size == 0:
            return
        if int(neighbors.min()) < 0 or int(neighbors.max()) >= self.num_vertices:
            raise IndexError(f"neighbor batch leaves [0, {self.num_vertices})")
        values = np.ascontiguousarray(deltas, dtype=np.int64)
        powers = powmod61(self._payload_template.fingerprint_base, neighbors)
        self._table.add_to_payload_batch(keys, 0, values)
        self._table.add_to_payload_batch(keys, 1, values * neighbors)
        self._table.add_to_payload_batch(
            keys, 2, [int(d) * int(p) for d, p in zip(values, powers)]
        )

    def decode_neighbors(self) -> dict[int, OneSparseResult] | None:
        """For every recovered key, decode its neighbor detector.

        Returns ``None`` when the table itself is undecodable (too many
        keys).  Otherwise maps each key to a
        :class:`~repro.sketch.onesparse.OneSparseResult`, whose status says
        whether exactly one in-cluster neighbor survived the level sample.
        """
        decoded = self._table.decode()
        if decoded is None:
            return None
        results: dict[int, OneSparseResult] = {}
        for key, payload in decoded.items():
            detector = self._payload_template.copy()
            detector.load_state_vector((payload[0], payload[1], payload[2]))
            result = detector.decode()
            if result.status is DecodeStatus.ZERO:
                continue
            results[key] = result
        return results

    def combine(self, other: "NeighborhoodHashTable", sign: int = 1) -> None:
        """In-place ``self += sign * other``; seeds must match."""
        self._table.combine(other._table, sign)

    def clone(self) -> "NeighborhoodHashTable":
        """Independent copy with the same state and seed.

        The payload-template detector is never mutated (decoding copies
        it before loading payloads), so it is shared; the outer table is
        copied cell-for-cell.
        """
        clone = object.__new__(NeighborhoodHashTable)
        clone.num_vertices = self.num_vertices
        clone._payload_template = self._payload_template
        clone._table = self._table.clone()
        return clone

    def is_zero(self) -> bool:
        """Whether the table summarizes the all-zero map (whp)."""
        return self._table.is_zero()

    def state_ints(self) -> list[int]:
        """Dynamic state as a flat int sequence (for serialization).

        The payload-template detector carries no dynamic state (it is a
        seed-derived fingerprint base, shared knowledge), so the
        shippable state is exactly the outer table's.
        """
        return self._table.state_ints()

    def state_len(self) -> int:
        """Length of :meth:`state_ints`, without materializing it."""
        return self._table.state_len()

    def from_state_ints(self, values: list[int]) -> "NeighborhoodHashTable":
        """Overwrite the dynamic state from a :meth:`state_ints` sequence.

        Exact inverse of :meth:`state_ints` on a same-seed table;
        returns ``self``.
        """
        self._table.from_state_ints(values)
        return self

    def space_words(self) -> int:
        """Persistent state, in machine words."""
        return self._table.space_words() + self._payload_template.space_words()
