"""The optional ``native`` kernel backend: C via ctypes, built at first use.

A single translation unit of ``unsigned __int128`` Mersenne-61 kernels
is written to a temp directory, compiled with whatever C compiler is on
``PATH`` (``cc``/``gcc``/``clang``), and loaded with :mod:`ctypes` — no
build system, no installed package.  When no compiler is present (or the
build fails) :func:`load` returns ``(None, reason)`` and the dispatch
layer silently falls back to the ``limb`` backend; the reason is
queryable via :func:`repro.sketch.kernels.native_fallback_reason`.

The C kernels reduce with the same algebra as the numpy backends
(``2^61 ≡ 1 mod p``) and land the same canonical residues in ``[0, p)``,
so sketch state stays bit-identical across backends — the contract
``tests/sketch/test_kernel_backends.py`` enforces.
"""

from __future__ import annotations

import ctypes
import shutil
import subprocess
import tempfile
from pathlib import Path
from types import SimpleNamespace

import numpy as np

from repro.sketch.hashing import MERSENNE_61
from repro.sketch.kernels import limb as _limb
from repro.util import sanitize as _sanitize

__all__ = ["load"]

_M61 = np.uint64(MERSENNE_61)

_COMPILERS = ("cc", "gcc", "clang")

_SOURCE = r"""
#include <stdint.h>

static const uint64_t P = 2305843009213693951ULL; /* 2^61 - 1 */

static inline uint64_t mulmod(uint64_t a, uint64_t b) {
    unsigned __int128 v = (unsigned __int128)a * b;
    uint64_t r = (uint64_t)(v & P) + (uint64_t)(v >> 61);
    r = (r & P) + (r >> 61);
    if (r >= P) r -= P;
    return r;
}

void repro_mulmod61(const uint64_t *a, const uint64_t *b, uint64_t *out,
                    int64_t n) {
    for (int64_t i = 0; i < n; i++) out[i] = mulmod(a[i], b[i]);
}

void repro_polyhash(const uint64_t *coeffs, int64_t k, const uint64_t *xs,
                    int64_t n, uint64_t *out) {
    for (int64_t i = 0; i < n; i++) {
        uint64_t x = xs[i];
        uint64_t acc = coeffs[0];
        for (int64_t t = 1; t < k; t++) {
            acc = mulmod(acc, x) + coeffs[t];
            acc = (acc & P) + (acc >> 61);
            if (acc >= P) acc -= P;
        }
        out[i] = acc;
    }
}

void repro_polyhash_multi(const uint64_t *coeffs, int64_t d, int64_t k,
                          const uint64_t *xs, int64_t n, uint64_t *out) {
    for (int64_t r = 0; r < d; r++)
        repro_polyhash(coeffs + r * k, k, xs, n, out + r * n);
}

void repro_pow_windowed(const uint64_t *table, int64_t windows,
                        const uint64_t *exps, int64_t n, uint64_t *out) {
    for (int64_t i = 0; i < n; i++) {
        uint64_t e = exps[i];
        uint64_t r = table[e & 0xFF];
        for (int64_t w = 1; w < windows; w++) {
            uint64_t idx = (e >> (8 * w)) & 0xFF;
            if (idx) r = mulmod(r, table[w * 256 + idx]);
        }
        out[i] = r;
    }
}
"""

_U64P = ctypes.POINTER(ctypes.c_uint64)

#: Memoized build result: {"table": SimpleNamespace|None, "reason": str|None}.
_CACHE: dict = {}


def _find_compiler() -> str | None:
    for name in _COMPILERS:
        path = shutil.which(name)
        if path:
            return path
    return None


def _ptr(array: np.ndarray):
    return array.ctypes.data_as(_U64P)


def _build_library():
    """Compile the kernel source; return ``(CDLL, None)`` or ``(None, reason)``."""
    compiler = _find_compiler()
    if compiler is None:
        return None, "no C compiler (cc/gcc/clang) on PATH"
    workdir = Path(tempfile.mkdtemp(prefix="repro-kernels-"))
    src = workdir / "kernels61.c"
    lib = workdir / "kernels61.so"
    src.write_text(_SOURCE, encoding="utf-8")
    try:
        proc = subprocess.run(
            [compiler, "-O2", "-shared", "-fPIC", "-o", str(lib), str(src)],
            capture_output=True,
            text=True,
            timeout=120,
        )
    except (OSError, subprocess.SubprocessError) as error:
        return None, f"compiler invocation failed: {error}"
    if proc.returncode != 0:
        tail = (proc.stderr or proc.stdout or "").strip().splitlines()
        detail = tail[-1] if tail else "no diagnostic output"
        return None, f"kernel build failed ({compiler}): {detail}"
    try:
        handle = ctypes.CDLL(str(lib))
    except OSError as error:
        return None, f"built kernel library failed to load: {error}"
    handle.repro_mulmod61.argtypes = [_U64P, _U64P, _U64P, ctypes.c_int64]
    handle.repro_polyhash.argtypes = [_U64P, ctypes.c_int64, _U64P, ctypes.c_int64, _U64P]
    handle.repro_polyhash_multi.argtypes = [
        _U64P, ctypes.c_int64, ctypes.c_int64, _U64P, ctypes.c_int64, _U64P,
    ]
    handle.repro_pow_windowed.argtypes = [
        _U64P, ctypes.c_int64, _U64P, ctypes.c_int64, _U64P,
    ]
    return handle, None


def _canonical_keys(xs: np.ndarray) -> np.ndarray:
    """Contiguous canonical key batch, matching the reference prologue."""
    if xs.dtype != np.uint64:
        return np.ascontiguousarray(np.remainder(xs, MERSENNE_61), dtype=np.uint64)
    xs = np.ascontiguousarray(xs)
    return np.where(xs >= _M61, xs - _M61, xs)


def _make_table(lib) -> SimpleNamespace:
    """Kernel-name -> callable table backed by the compiled library."""

    def mulmod61(a, b) -> np.ndarray:
        """Element-wise ``(a * b) mod p`` in C (``unsigned __int128``)."""
        a = np.ascontiguousarray(a, dtype=np.uint64)
        b = np.ascontiguousarray(b, dtype=np.uint64)
        if a.ndim != 1 or a.shape != b.shape:
            return _limb.mulmod61(a, b)
        if _sanitize.ENABLED:
            _sanitize.require_canonical(a, MERSENNE_61, "mulmod61 lhs")
            _sanitize.require_canonical(b, MERSENNE_61, "mulmod61 rhs")
        out = np.empty(a.size, dtype=np.uint64)
        lib.repro_mulmod61(_ptr(a), _ptr(b), _ptr(out), a.size)
        return out

    def polyhash61(coefficients, xs) -> np.ndarray:
        """Scalar-loop Horner in C, one pass per key batch."""
        xs = np.asarray(xs)
        if xs.ndim != 1 or xs.size == 0:
            return _limb.polyhash61(coefficients, xs)
        keys = _canonical_keys(xs)
        coeffs = np.ascontiguousarray(
            [int(c) % MERSENNE_61 for c in coefficients], dtype=np.uint64
        )
        out = np.empty(keys.size, dtype=np.uint64)
        lib.repro_polyhash(_ptr(coeffs), coeffs.size, _ptr(keys), keys.size, _ptr(out))
        return out

    def polyhash61_multi(coeff_matrix, xs) -> np.ndarray:
        """``d`` Horner rows over one key batch in C."""
        xs = np.asarray(xs)
        if xs.ndim != 1 or xs.size == 0:
            return _limb.polyhash61_multi(coeff_matrix, xs)
        keys = _canonical_keys(xs)
        coeffs = np.ascontiguousarray(coeff_matrix, dtype=np.uint64)
        d, k = coeffs.shape
        out = np.empty((d, keys.size), dtype=np.uint64)
        lib.repro_polyhash_multi(_ptr(coeffs), d, k, _ptr(keys), keys.size, _ptr(out))
        return out

    def powmod61_windowed(exponents, table) -> np.ndarray:
        """Byte-windowed vectorized ``pow`` in C."""
        exponents = np.asarray(exponents)
        if exponents.ndim != 1 or exponents.size == 0:
            return _limb.powmod61_windowed(exponents, table)
        if np.any(exponents < 0):
            raise ValueError("exponents must be non-negative")
        exp = np.ascontiguousarray(exponents, dtype=np.uint64)
        table = np.ascontiguousarray(table, dtype=np.uint64)
        out = np.empty(exp.size, dtype=np.uint64)
        lib.repro_pow_windowed(_ptr(table), table.shape[0], _ptr(exp), exp.size, _ptr(out))
        return out

    def stack_positions_terms(bucket_coeffs, pow_table, indices, residues, buckets):
        """Fused shared-seed scatter precompute over the C kernels."""
        powers = powmod61_windowed(indices, pow_table)
        terms = mulmod61(residues, powers)
        stacked = polyhash61_multi(bucket_coeffs, indices)
        np.remainder(stacked, np.uint64(buckets), out=stacked)
        return stacked.astype(np.int64), terms

    return SimpleNamespace(
        mulmod61=mulmod61,
        polyhash61=polyhash61,
        polyhash61_multi=polyhash61_multi,
        powmod61_windowed=powmod61_windowed,
        stack_positions_terms=stack_positions_terms,
    )


def load():
    """Build (once per process) and load the C backend.

    Returns ``(kernel_table, None)`` on success or ``(None, reason)``
    when the backend is unavailable; the result is memoized so repeated
    ``select_backend("native")`` calls never rebuild.
    """
    if "table" not in _CACHE:
        lib, reason = _build_library()
        _CACHE["table"] = _make_table(lib) if lib is not None else None
        _CACHE["reason"] = reason
    return _CACHE["table"], _CACHE["reason"]
