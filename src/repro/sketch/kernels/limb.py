"""The ``limb`` kernel backend: fused in-place two-limb fast path.

Same exact 32/29-bit limb-split arithmetic as the ``reference`` backend,
restructured for throughput:

* every multiply runs through one in-place ufunc chain
  (:func:`_mul_into`) instead of ~10 fresh temporaries per call;
* the Horner loops split the key batch into 32-bit limbs **once** and
  reuse them for every coefficient round;
* intermediates live in a process-wide scratch-buffer pool keyed by
  ``(tag)`` and grown to the largest batch seen, so the steady-state hot
  path allocates only its output arrays.

The scratch pool makes these kernels **non-reentrant**: a kernel call
must finish before the next one starts (true for the single-threaded
numpy engines; the multiprocessing shard backend gets a pool per
process).  Scratch never escapes — every public function returns freshly
allocated arrays.

Bit-identity with ``reference`` is a hard contract: both backends
compute the same canonical residues in ``[0, p)`` on every input
(``tests/sketch/test_kernel_backends.py`` holds them to it).  Shapes the
in-place chain does not specialize (0-d, broadcasting, >1-D keys) defer
to the reference implementation — same values either way.
"""

from __future__ import annotations

import numpy as np

from repro.sketch.hashing import MERSENNE_61
from repro.sketch.kernels import reference as _ref
from repro.util import sanitize as _sanitize

__all__ = [
    "mulmod61",
    "polyhash61",
    "polyhash61_multi",
    "polyhash61_rows",
    "powmod61_windowed",
    "scatter_sum_mod61",
    "stack_positions_terms",
]

_M61 = np.uint64(MERSENNE_61)
_MASK32 = _ref.MASK32
_MASK29 = np.uint64((1 << 29) - 1)
_EIGHT = np.uint64(8)
_U29 = np.uint64(29)
_U32 = np.uint64(32)
_U61 = np.uint64(61)
_BYTE = np.uint64(0xFF)
_BYTE_I64 = np.int64(0xFF)

#: Scratch pool: tag -> flat uint64 buffer, grown to the largest request.
_SCRATCH: dict[str, np.ndarray] = {}
#: Same, for int64 gather-index scratch.
_SCRATCH_I64: dict[str, np.ndarray] = {}


def _buf(tag: str, size: int) -> np.ndarray:
    """A reusable flat ``uint64`` scratch view of ``size`` elements."""
    buf = _SCRATCH.get(tag)
    if buf is None or buf.size < size:
        buf = np.empty(max(size, 256), dtype=np.uint64)
        _SCRATCH[tag] = buf
    return buf[:size]


def _buf2(tag: str, d: int, n: int) -> np.ndarray:
    """A reusable ``(d, n)`` ``uint64`` scratch view."""
    return _buf(tag, d * n).reshape(d, n)


def _ibuf(tag: str, size: int) -> np.ndarray:
    """A reusable flat ``int64`` scratch view (gather indices)."""
    buf = _SCRATCH_I64.get(tag)
    if buf is None or buf.size < size:
        buf = np.empty(max(size, 256), dtype=np.int64)
        _SCRATCH_I64[tag] = buf
    return buf[:size]


def _finish_fold(out: np.ndarray, s1: np.ndarray) -> None:
    """Reduce ``out < 2^63`` into ``[0, p)`` in place (two Mersenne folds)."""
    np.right_shift(out, _U61, out=s1)
    np.bitwise_and(out, _M61, out=out)
    np.add(out, s1, out=out)
    np.right_shift(out, _U61, out=s1)
    np.bitwise_and(out, _M61, out=out)
    np.add(out, s1, out=out)
    np.subtract(out, _M61, out=out, where=out >= _M61)


def _mul_into(a, b_hi, b_lo, out, s1, s2, s3) -> None:
    """``out = (a * b) mod p`` with ``b`` pre-split into 32-bit limbs.

    ``out`` may alias ``a`` (the Horner accumulator does); the scratch
    buffers must alias nothing else.  Same limb algebra as
    ``reference.mulmod61`` (``2^61 ≡ 1``, ``2^64 ≡ 8 mod p``), run as an
    in-place ufunc chain.
    """
    np.right_shift(a, _U32, out=s1)  # a_hi
    np.multiply(s1, b_lo, out=s2)  # a_hi * b_lo
    np.multiply(s1, b_hi, out=s1)  # hi = a_hi * b_hi
    np.bitwise_and(a, _MASK32, out=out)  # a_lo (a dead past here)
    np.multiply(out, b_hi, out=s3)  # a_lo * b_hi
    np.add(s2, s3, out=s2)  # mid = a_hi*b_lo + a_lo*b_hi
    np.multiply(out, b_lo, out=s3)  # lo = a_lo * b_lo
    np.right_shift(s2, _U29, out=out)  # mid >> 29  (2^61 ≡ 1)
    np.bitwise_and(s2, _MASK29, out=s2)
    np.left_shift(s2, _U32, out=s2)  # (mid & (2^29-1)) << 32
    np.multiply(s1, _EIGHT, out=s1)  # hi * 8  (2^64 ≡ 8)
    np.add(out, s1, out=out)
    np.add(out, s2, out=out)
    np.right_shift(s3, _U61, out=s1)  # lo >> 61
    np.add(out, s1, out=out)
    np.bitwise_and(s3, _M61, out=s3)  # lo & p
    np.add(out, s3, out=out)  # total < 2^63, no wraparound
    _finish_fold(out, s1)


def _add_canonical(acc: np.ndarray, value, s1: np.ndarray) -> None:
    """``acc = (acc + value) mod p`` in place, both operands canonical."""
    np.add(acc, value, out=acc)  # < 2^62
    np.right_shift(acc, _U61, out=s1)
    np.bitwise_and(acc, _M61, out=acc)
    np.add(acc, s1, out=acc)
    np.subtract(acc, _M61, out=acc, where=acc >= _M61)


def _canonical_keys(xs: np.ndarray, tag: str) -> np.ndarray:
    """Key batch reduced into ``[0, p)``, matching the reference prologue.

    May return a scratch view — callers must split it into limbs before
    invoking anything that reuses the same tag space.
    """
    if xs.dtype != np.uint64:
        return np.remainder(xs, MERSENNE_61).astype(np.uint64)
    out = _buf(tag + ".keys", xs.size)
    np.copyto(out, xs)
    np.subtract(out, _M61, out=out, where=out >= _M61)
    return out


def _split_keys(xs: np.ndarray, tag: str) -> tuple[np.ndarray, np.ndarray]:
    """32-bit limbs of a canonical key batch, in scratch."""
    x_hi = _buf(tag + ".xhi", xs.size)
    x_lo = _buf(tag + ".xlo", xs.size)
    np.right_shift(xs, _U32, out=x_hi)
    np.bitwise_and(xs, _MASK32, out=x_lo)
    return x_hi, x_lo


def mulmod61(a, b) -> np.ndarray:
    """Element-wise ``(a * b) mod p``, scratch-pooled in-place fast path."""
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    if a.ndim != 1 or a.shape != b.shape:
        return _ref.mulmod61(a, b)
    if _sanitize.ENABLED:
        _sanitize.require_canonical(a, MERSENNE_61, "mulmod61 lhs")
        _sanitize.require_canonical(b, MERSENNE_61, "mulmod61 rhs")
    n = a.size
    b_hi = _buf("mul.bhi", n)
    b_lo = _buf("mul.blo", n)
    np.right_shift(b, _U32, out=b_hi)
    np.bitwise_and(b, _MASK32, out=b_lo)
    out = np.empty(n, dtype=np.uint64)
    _mul_into(a, b_hi, b_lo, out, _buf("mul.s1", n), _buf("mul.s2", n), _buf("mul.s3", n))
    return out


def polyhash61(coefficients, xs: np.ndarray) -> np.ndarray:
    """Vectorized Horner with the key limbs split once per batch."""
    xs = np.asarray(xs)
    if xs.ndim != 1 or xs.size == 0:
        return _ref.polyhash61(coefficients, xs)
    n = xs.size
    keys = _canonical_keys(xs, "ph1")
    x_hi, x_lo = _split_keys(keys, "ph1")
    acc = np.full(n, np.uint64(coefficients[0] % MERSENNE_61))
    s1, s2, s3 = _buf("ph1.s1", n), _buf("ph1.s2", n), _buf("ph1.s3", n)
    for coefficient in coefficients[1:]:
        _mul_into(acc, x_hi, x_lo, acc, s1, s2, s3)
        _add_canonical(acc, np.uint64(coefficient % MERSENNE_61), s1)
    return acc


def polyhash61_multi(coeff_matrix: np.ndarray, xs: np.ndarray) -> np.ndarray:
    """``d`` polynomials over one key batch, fused Horner over ``(d, n)``."""
    xs = np.asarray(xs)
    if xs.ndim != 1 or xs.size == 0:
        return _ref.polyhash61_multi(coeff_matrix, xs)
    d, n = coeff_matrix.shape[0], xs.size
    keys = _canonical_keys(xs, "phm")
    x_hi, x_lo = _split_keys(keys, "phm")
    acc = np.empty((d, n), dtype=np.uint64)
    np.copyto(acc, coeff_matrix[:, :1])  # broadcast the leading coefficients
    s1, s2, s3 = _buf2("phm.s1", d, n), _buf2("phm.s2", d, n), _buf2("phm.s3", d, n)
    for t in range(1, coeff_matrix.shape[1]):
        _mul_into(acc, x_hi, x_lo, acc, s1, s2, s3)
        _add_canonical(acc, coeff_matrix[:, t : t + 1], s1)
    return acc


def polyhash61_rows(coeff_matrix: np.ndarray, row_ids: np.ndarray, xs: np.ndarray) -> np.ndarray:
    """Per-row-polynomial Horner with scratch-pooled coefficient gathers."""
    xs = np.asarray(xs)
    row_ids = np.asarray(row_ids)
    if xs.ndim != 1 or xs.size == 0 or row_ids.shape != xs.shape:
        return _ref.polyhash61_rows(coeff_matrix, row_ids, xs)
    n = xs.size
    keys = _canonical_keys(xs, "phr")
    x_hi, x_lo = _split_keys(keys, "phr")
    acc = coeff_matrix[row_ids, 0]
    cbuf = _buf("phr.c", n)
    s1, s2, s3 = _buf("phr.s1", n), _buf("phr.s2", n), _buf("phr.s3", n)
    for t in range(1, coeff_matrix.shape[1]):
        _mul_into(acc, x_hi, x_lo, acc, s1, s2, s3)
        np.take(coeff_matrix[:, t], row_ids, out=cbuf)
        _add_canonical(acc, cbuf, s1)
    return acc


def powmod61_windowed(exponents: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Byte-windowed vectorized ``pow``, one in-place multiply per byte."""
    exponents = np.asarray(exponents)
    if exponents.ndim != 1 or exponents.size == 0:
        return _ref.powmod61_windowed(exponents, table)
    if np.any(exponents < 0):
        raise ValueError("exponents must be non-negative")
    n = exponents.size
    exp = exponents.astype(np.uint64)
    window = _ibuf("pw.w", n)
    np.bitwise_and(exp, _BYTE, out=window)
    result = table[0][window]
    tbuf = _buf("pw.t", n)
    t_hi, t_lo = _buf("pw.thi", n), _buf("pw.tlo", n)
    s1, s2, s3 = _buf("pw.s1", n), _buf("pw.s2", n), _buf("pw.s3", n)
    for i in range(1, table.shape[0]):
        np.right_shift(exp, np.uint64(8 * i), out=window)
        np.bitwise_and(window, _BYTE_I64, out=window)
        if window.any():  # base^0 = 1: all-zero windows multiply by one
            np.take(table[i], window, out=tbuf)
            np.right_shift(tbuf, _U32, out=t_hi)
            np.bitwise_and(tbuf, _MASK32, out=t_lo)
            _mul_into(result, t_hi, t_lo, result, s1, s2, s3)
    return result


def scatter_sum_mod61(cells: int, positions: np.ndarray, terms: np.ndarray) -> np.ndarray:
    """Fingerprint scatter-add with pooled limb planes."""
    if _sanitize.ENABLED:
        _sanitize.require_positions(positions, cells)
        _sanitize.require_canonical(terms, MERSENNE_61, "scatter_sum_mod61 terms")
    terms = np.asarray(terms, dtype=np.uint64)
    if terms.ndim != 1:
        return _ref.scatter_sum_mod61(cells, positions, terms)
    n = terms.size
    lo = _buf("sc.lo", cells)
    hi = _buf("sc.hi", cells)
    lo.fill(0)
    hi.fill(0)
    tb = _buf("sc.t", n)
    np.bitwise_and(terms, _MASK32, out=tb)
    np.add.at(lo, positions, tb)
    np.right_shift(terms, _U32, out=tb)
    np.add.at(hi, positions, tb)
    # lo < n*2^32, hi < n*2^29 (safe to 2^31 terms): reduce each limb mod
    # p, then recombine as lo + hi*2^32 mod p.
    s1 = _buf("sc.s1", cells)
    _finish_fold(lo, s1)
    _finish_fold(hi, s1)
    s2, s3 = _buf("sc.s2", cells), _buf("sc.s3", cells)
    _c32 = np.uint64((1 << 32) % MERSENNE_61)
    _mul_into(hi, _c32 >> _U32, _c32 & _MASK32, hi, s1, s2, s3)
    out = np.empty(cells, dtype=np.uint64)
    np.add(lo, hi, out=out)
    np.right_shift(out, _U61, out=s1)
    np.bitwise_and(out, _M61, out=out)
    np.add(out, s1, out=out)
    np.subtract(out, _M61, out=out, where=out >= _M61)
    return out


def stack_positions_terms(
    bucket_coeffs: np.ndarray,
    pow_table: np.ndarray,
    indices: np.ndarray,
    residues: np.ndarray,
    buckets: int,
):
    """Fused shared-seed scatter precompute (see the reference oracle).

    Runs the windowed power, fingerprint weighting, and multi-row bucket
    hash through the scratch-pooled kernels above; bit-identical to the
    reference composition.
    """
    powers = powmod61_windowed(indices, pow_table)
    terms = mulmod61(residues, powers)
    stacked = polyhash61_multi(bucket_coeffs, indices)
    np.remainder(stacked, np.uint64(buckets), out=stacked)
    return stacked.astype(np.int64), terms
