"""The ``reference`` kernel backend: exact numpy field arithmetic.

These are the original audited mod-``(2^61 - 1)`` kernels, moved here
verbatim from ``repro.sketch.batched`` when the backend seam was cut.
They are the **oracle**: every other backend (``limb``, ``native``) must
land bit-identical values on every input, and the property suite in
``tests/sketch/test_kernel_backends.py`` holds them to it.

Everything here is **exact**: products of 61-bit field elements are
evaluated via 32-bit limb splitting so no intermediate ever exceeds 64
bits, and Mersenne reduction (``2^61 ≡ 1 mod p``) folds the limbs back.
A batched sketch update therefore lands in *bit-identical* state to the
equivalent sequence of scalar updates.

With ``REPRO_SANITIZE=1`` (see :mod:`repro.util.sanitize`) the kernels
additionally assert their canonical-range preconditions at runtime.
"""

from __future__ import annotations

import numpy as np

from repro.sketch.hashing import MERSENNE_61
from repro.util import sanitize as _sanitize

__all__ = [
    "MASK32",
    "addmod61",
    "build_pow_table",
    "mulmod61",
    "polyhash61",
    "polyhash61_multi",
    "polyhash61_rows",
    "powmod61",
    "powmod61_bases",
    "powmod61_windowed",
    "scatter_sum_mod61",
    "stack_positions_terms",
    "submod61",
    "sum_mod61",
]

#: Low 32-bit limb mask used by the exact 61-bit multiplication.
MASK32 = np.uint64((1 << 32) - 1)

_M61 = np.uint64(MERSENNE_61)
_ZERO = np.uint64(0)


def _fold61(values: np.ndarray) -> np.ndarray:
    """Reduce ``uint64`` values below ``2^63`` into ``[0, p)``."""
    values = (values >> np.uint64(61)) + (values & _M61)
    return np.where(values >= _M61, values - _M61, values)


def addmod61(a: np.ndarray, b) -> np.ndarray:
    """Element-wise ``(a + b) mod p`` for operands already in ``[0, p)``."""
    if _sanitize.ENABLED:
        _sanitize.require_canonical(a, MERSENNE_61, "addmod61 lhs")
        _sanitize.require_canonical(b, MERSENNE_61, "addmod61 rhs")
    return _fold61(a + b)


def submod61(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise ``(a - b) mod p`` for operands already in ``[0, p)``."""
    if _sanitize.ENABLED:
        _sanitize.require_canonical(a, MERSENNE_61, "submod61 lhs")
        _sanitize.require_canonical(b, MERSENNE_61, "submod61 rhs")
    return _fold61(a + np.where(b == _ZERO, _ZERO, _M61 - b))


def mulmod61(a, b) -> np.ndarray:
    """Element-wise ``(a * b) mod p`` for operands in ``[0, p)``, exactly.

    Splits both operands into 32-bit limbs so every partial product fits
    ``uint64``, then folds with ``2^61 ≡ 1``, ``2^64 ≡ 8 (mod p)``.
    """
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    if _sanitize.ENABLED:
        _sanitize.require_canonical(a, MERSENNE_61, "mulmod61 lhs")
        _sanitize.require_canonical(b, MERSENNE_61, "mulmod61 rhs")
    a_hi, a_lo = a >> np.uint64(32), a & MASK32
    b_hi, b_lo = b >> np.uint64(32), b & MASK32
    # a*b = hi*2^64 + mid*2^32 + lo with hi < 2^58, mid < 2^62, lo < 2^64.
    hi = a_hi * b_hi
    mid = a_hi * b_lo + a_lo * b_hi
    lo = a_lo * b_lo
    # mid*2^32 = (mid >> 29)*2^61 + (mid & (2^29-1))*2^32  ≡  fold both.
    mid_hi, mid_lo = mid >> np.uint64(29), mid & np.uint64((1 << 29) - 1)
    total = (
        hi * np.uint64(8)  # 2^64 ≡ 8
        + mid_hi  # 2^61 ≡ 1
        + (mid_lo << np.uint64(32))
        + (lo >> np.uint64(61))
        + (lo & _M61)
    )  # < 2^63, no wraparound
    return _fold61(_fold61(total))


def polyhash61(coefficients, xs: np.ndarray) -> np.ndarray:
    """Vectorized Horner: ``(((c0*x + c1)*x + c2)...) mod p``.

    Bit-identical to :meth:`repro.sketch.hashing.KWiseHash.__call__`
    evaluated element-wise (inputs are reduced mod ``p`` first, which is
    a no-op for in-range sketch coordinates).
    """
    xs = np.asarray(xs)
    if xs.dtype != np.uint64:
        xs = np.remainder(xs, MERSENNE_61).astype(np.uint64)
    else:
        xs = np.where(xs >= _M61, xs - _M61, xs)
    # Horner with acc starting at the leading coefficient (the first
    # round of the naive loop is mulmod(0, x) — pure waste).
    acc = np.full(xs.shape, np.uint64(coefficients[0] % MERSENNE_61))
    for coefficient in coefficients[1:]:
        acc = addmod61(mulmod61(acc, xs), np.uint64(coefficient % MERSENNE_61))
    return acc


def polyhash61_rows(coeff_matrix: np.ndarray, row_ids: np.ndarray, xs: np.ndarray) -> np.ndarray:
    """Horner evaluation where each element uses its own coefficient row.

    ``coeff_matrix`` has shape ``(num_rows, k)`` (``uint64``, reduced mod
    ``p``); element ``t`` is hashed with the polynomial of row
    ``row_ids[t]``.  This is the heterogeneous-seed form of
    :func:`polyhash61`, used by sketch stacks whose rows hold
    *different*-seeded sketches (e.g. the spanner's per-root cut
    sketches): one vectorized pass evaluates every row's hash at once.
    Bit-identical to evaluating each row's scalar hash element-wise.
    """
    xs = np.asarray(xs)
    if xs.dtype != np.uint64:
        xs = np.remainder(xs, MERSENNE_61).astype(np.uint64)
    else:
        xs = np.where(xs >= _M61, xs - _M61, xs)
    acc = coeff_matrix[row_ids, 0]
    for t in range(1, coeff_matrix.shape[1]):
        acc = addmod61(mulmod61(acc, xs), coeff_matrix[row_ids, t])
    return acc


def polyhash61_multi(coeff_matrix: np.ndarray, xs: np.ndarray) -> np.ndarray:
    """Horner evaluation of ``d`` polynomials over one key batch at once.

    ``coeff_matrix`` has shape ``(d, k)`` (``uint64``, reduced mod
    ``p``); the result has shape ``(d, len(xs))`` with row ``r`` equal to
    ``polyhash61(coeff_matrix[r], xs)``.  One broadcasted pass replaces
    ``d`` separate evaluations — the sketch stacks use it to hash a
    chunk's coordinates with every bucket row in one go.  Bit-identical
    to the scalar hash element-wise.
    """
    xs = np.asarray(xs)
    if xs.dtype != np.uint64:
        xs = np.remainder(xs, MERSENNE_61).astype(np.uint64)
    else:
        xs = np.where(xs >= _M61, xs - _M61, xs)
    acc = np.broadcast_to(coeff_matrix[:, :1], (coeff_matrix.shape[0], xs.shape[0])).copy()
    for t in range(1, coeff_matrix.shape[1]):
        acc = addmod61(mulmod61(acc, xs), coeff_matrix[:, t : t + 1])
    return acc


def build_pow_table(base: int, max_exponent: int) -> np.ndarray:
    """Byte-windowed power table for :func:`powmod61_windowed`.

    ``table[i][j] = base^(j * 256^i) mod p`` for every byte value ``j``
    and every byte position of ``max_exponent``.  Built once per
    fingerprint base (a few hundred scalar multiplications) and reused
    for every batch — the square-and-multiply loop of :func:`powmod61`
    costs ``bit_length(max exponent)`` vectorized rounds per call, which
    dominates huge-coordinate domains (``n^2 ~ 10^14`` exponents), while
    the windowed form costs one table gather plus one multiply per byte.
    """
    windows = max(1, (max(max_exponent, 1).bit_length() + 7) // 8)
    table = np.empty((windows, 256), dtype=np.uint64)
    for i in range(windows):
        step = pow(base % MERSENNE_61, 256 ** i, MERSENNE_61)
        value = 1
        row = table[i]
        for j in range(256):
            row[j] = value
            value = value * step % MERSENNE_61
    return table


def powmod61_windowed(exponents: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Vectorized ``pow(base, e, p)`` through a precomputed byte table.

    Exactly :func:`powmod61` in value (integer-exact, so downstream
    sketch cells are bit-identical), at one gather + one
    :func:`mulmod61` per exponent byte instead of one masked multiply
    per exponent *bit*.
    """
    exponents = np.asarray(exponents)
    if np.any(exponents < 0):
        raise ValueError("exponents must be non-negative")
    exp = exponents.astype(np.uint64)
    result = table[0][exp & np.uint64(0xFF)]
    for i in range(1, table.shape[0]):
        window = (exp >> np.uint64(8 * i)) & np.uint64(0xFF)
        if window.any():  # base^0 = 1: all-zero windows multiply by one
            result = mulmod61(result, table[i][window])
    return result


def powmod61(base: int, exponents: np.ndarray) -> np.ndarray:
    """Vectorized ``pow(base, e, p)`` by square-and-multiply.

    ``base`` is a scalar field element (the fingerprint base ``z``);
    ``exponents`` are non-negative integers (sketch coordinates).  Runs
    ``bit_length(max exponent)`` vectorized rounds.
    """
    exponents = np.asarray(exponents)
    if np.any(exponents < 0):
        raise ValueError("exponents must be non-negative")
    exp = exponents.astype(np.uint64)
    result = np.ones(exp.shape, dtype=np.uint64)
    square = base % MERSENNE_61
    while True:
        top = int(exp.max()) if exp.size else 0
        if top == 0:
            break
        odd = (exp & np.uint64(1)).astype(bool)
        if odd.any():
            result[odd] = mulmod61(result[odd], np.uint64(square))
        exp = exp >> np.uint64(1)
        if int(exp.max()) == 0:
            break
        square = square * square % MERSENNE_61
    return result


def powmod61_bases(bases: np.ndarray, exponents: np.ndarray) -> np.ndarray:
    """Vectorized ``pow(bases[t], exponents[t], p)`` with per-element bases.

    The heterogeneous-seed form of :func:`powmod61`: each element raises
    its *own* fingerprint base (rows of a mixed-seed sketch stack hold
    different ``z``).  Runs ``bit_length(max exponent)`` vectorized
    square-and-multiply rounds.
    """
    exponents = np.asarray(exponents)
    if np.any(exponents < 0):
        raise ValueError("exponents must be non-negative")
    exp = exponents.astype(np.uint64)
    square = np.asarray(bases, dtype=np.uint64)
    square = np.where(square >= _M61, square - _M61, square)
    result = np.ones(exp.shape, dtype=np.uint64)
    while exp.size and int(exp.max()) != 0:
        odd = (exp & np.uint64(1)).astype(bool)
        if odd.any():
            result[odd] = mulmod61(result[odd], square[odd])
        exp = exp >> np.uint64(1)
        if int(exp.max()) == 0:
            break
        square = mulmod61(square, square)
    return result


def sum_mod61(terms: np.ndarray) -> int:
    """Exact ``sum(terms) mod p`` for field elements, any batch length.

    Accumulates the 32-bit limbs separately (each limb sum stays far
    below ``2^64`` for any realistic batch), then recombines exactly in
    Python integers.
    """
    if terms.size == 0:
        return 0
    if _sanitize.ENABLED:
        _sanitize.require_canonical(terms, MERSENNE_61, "sum_mod61 terms")
    lo = int(np.sum(terms & MASK32, dtype=np.uint64))
    hi = int(np.sum(terms >> np.uint64(32), dtype=np.uint64))
    return (lo + (hi << 32)) % MERSENNE_61


def scatter_sum_mod61(cells: int, positions: np.ndarray, terms: np.ndarray) -> np.ndarray:
    """Per-cell ``sum of terms mod p``: the fingerprint scatter-add.

    ``positions`` maps each term to a cell in ``[0, cells)``; the return
    value is a ``uint64`` array of length ``cells`` holding each cell's
    exact sum mod ``p``.  Limb-split so ``np.add.at`` cannot overflow
    even if every term lands in one cell (safe to ``2^31`` terms).
    """
    if _sanitize.ENABLED:
        _sanitize.require_positions(positions, cells)
        _sanitize.require_canonical(terms, MERSENNE_61, "scatter_sum_mod61 terms")
    lo = np.zeros(cells, dtype=np.uint64)
    hi = np.zeros(cells, dtype=np.uint64)
    np.add.at(lo, positions, terms & MASK32)
    np.add.at(hi, positions, terms >> np.uint64(32))
    # lo < n*2^32, hi < n*2^29: reduce each limb mod p, then recombine as
    # lo + hi*2^32 mod p — all operands back in field range.
    lo_red = _fold61(_fold61(lo))
    hi_red = _fold61(_fold61(hi))
    return addmod61(lo_red, mulmod61(hi_red, np.uint64((1 << 32) % MERSENNE_61)))


def stack_positions_terms(
    bucket_coeffs: np.ndarray,
    pow_table: np.ndarray,
    indices: np.ndarray,
    residues: np.ndarray,
    buckets: int,
):
    """Shared-seed scatter precompute: bucket positions + fingerprint terms.

    The hot per-chunk path of :meth:`repro.sketch.columnar.SketchStack.scatter`
    for same-seeded stacks: hash the chunk's coordinates with every
    bucket row (``polyhash61_multi``), raise the shared fingerprint base
    to each coordinate (``powmod61_windowed``), and weight by the field
    residues.  Returns ``(positions, terms)`` where ``positions`` is an
    ``int64`` array of shape ``(rows, len(indices))`` and ``terms`` is
    ``uint64`` of shape ``(len(indices),)``.  Backends may fuse the three
    stages; the values must stay bit-identical to this composition.
    """
    powers = powmod61_windowed(indices, pow_table)
    terms = mulmod61(residues, powers)
    stacked = polyhash61_multi(bucket_coeffs, indices) % np.uint64(buckets)
    return stacked.astype(np.int64), terms
