"""Pluggable Mersenne-field kernel backends behind one dispatch seam.

Every mod-``(2^61 - 1)`` array kernel in the repo routes through this
package.  Three backends implement the same exact field arithmetic:

``reference``
    the original audited numpy kernels (:mod:`.reference`) — the oracle;
``limb``
    the fused in-place two-limb fast path (:mod:`.limb`) — the default;
``native``
    optional C kernels built at first use via ctypes (:mod:`.native`),
    silently falling back to ``limb`` when no compiler is present.

Backend selection reads ``REPRO_KERNEL`` **once at import** (like
``REPRO_TRACE`` / ``REPRO_SANITIZE``): unset or ``auto`` picks ``limb``;
``reference`` / ``limb`` / ``native`` select explicitly.  Tests swap
backends at runtime with :func:`select_backend` — the module-level
kernel functions below are stable wrappers that delegate through the
active backend, so call sites that imported them keep following the
swap.

The contract is **bit-identity**: every backend must land the same
canonical residues in ``[0, p)`` on every input, so sketch state stays
summable across backends, engines, and shards.  The property suite in
``tests/sketch/test_kernel_backends.py`` enforces it; sketchlint SL205
keeps every caller outside this package on the dispatch functions.
"""

from __future__ import annotations

import os

from repro.sketch.kernels import limb as _limb_mod
from repro.sketch.kernels import reference as _reference_mod

__all__ = [
    "KERNEL_NAMES",
    "MASK32",
    "active_backend",
    "available_backends",
    "native_fallback_reason",
    "select_backend",
    "addmod61",
    "build_pow_table",
    "mulmod61",
    "polyhash61",
    "polyhash61_multi",
    "polyhash61_rows",
    "powmod61",
    "powmod61_bases",
    "powmod61_windowed",
    "scatter_sum_mod61",
    "stack_positions_terms",
    "submod61",
    "sum_mod61",
]

#: Every kernel a backend may provide; missing entries inherit from the
#: layer below (native -> limb -> reference).
KERNEL_NAMES = (
    "addmod61",
    "submod61",
    "mulmod61",
    "polyhash61",
    "polyhash61_rows",
    "polyhash61_multi",
    "powmod61",
    "powmod61_bases",
    "powmod61_windowed",
    "build_pow_table",
    "sum_mod61",
    "scatter_sum_mod61",
    "stack_positions_terms",
)

#: Low 32-bit limb mask (re-exported from the reference kernels).
MASK32 = _reference_mod.MASK32


class _Backend:
    """One resolved backend: a full kernel table layered from modules."""

    __slots__ = ("name",) + KERNEL_NAMES

    def __init__(self, name: str, *layers):
        self.name = name
        for kernel in KERNEL_NAMES:
            for layer in reversed(layers):  # later layers override
                impl = getattr(layer, kernel, None)
                if impl is not None:
                    setattr(self, kernel, impl)
                    break
            else:
                raise AttributeError(f"no backend layer provides {kernel!r}")


_FALLBACK_REASON: str | None = None


def _make_backend(name: str) -> _Backend:
    global _FALLBACK_REASON
    if name == "reference":
        return _Backend("reference", _reference_mod)
    if name == "limb":
        return _Backend("limb", _reference_mod, _limb_mod)
    if name == "native":
        from repro.sketch.kernels import native as _native_mod

        table, reason = _native_mod.load()
        if table is None:
            _FALLBACK_REASON = reason
            return _Backend("limb", _reference_mod, _limb_mod)
        _FALLBACK_REASON = None
        return _Backend("native", _reference_mod, _limb_mod, table)
    raise ValueError(
        f"unknown kernel backend {name!r}: expected auto, reference, limb, or native"
    )


_ACTIVE: _Backend


def select_backend(name: str | None) -> str:
    """Activate a kernel backend; returns the name actually in effect.

    ``None``, ``""``, and ``"auto"`` resolve to ``limb``.  ``"native"``
    may come back as ``"limb"`` — the silent no-compiler fallback, with
    the cause available from :func:`native_fallback_reason`.
    """
    global _ACTIVE
    requested = (name or "auto").strip().lower()
    if requested == "auto":
        requested = "limb"
    _ACTIVE = _make_backend(requested)
    return _ACTIVE.name


def active_backend() -> str:
    """Name of the backend currently serving the dispatch functions."""
    return _ACTIVE.name


def available_backends() -> tuple[str, ...]:
    """Selectable backend names (``native`` may fall back to ``limb``)."""
    return ("reference", "limb", "native")


def native_fallback_reason() -> str | None:
    """Why the last ``native`` selection fell back to ``limb`` (or None)."""
    return _FALLBACK_REASON


select_backend(os.environ.get("REPRO_KERNEL", "auto"))


def addmod61(a, b):
    """Element-wise ``(a + b) mod p`` via the active backend."""
    return _ACTIVE.addmod61(a, b)


def submod61(a, b):
    """Element-wise ``(a - b) mod p`` via the active backend."""
    return _ACTIVE.submod61(a, b)


def mulmod61(a, b):
    """Element-wise ``(a * b) mod p`` via the active backend."""
    return _ACTIVE.mulmod61(a, b)


def polyhash61(coefficients, xs):
    """Vectorized Horner hash evaluation via the active backend."""
    return _ACTIVE.polyhash61(coefficients, xs)


def polyhash61_rows(coeff_matrix, row_ids, xs):
    """Per-row-polynomial Horner evaluation via the active backend."""
    return _ACTIVE.polyhash61_rows(coeff_matrix, row_ids, xs)


def polyhash61_multi(coeff_matrix, xs):
    """Multi-polynomial Horner evaluation via the active backend."""
    return _ACTIVE.polyhash61_multi(coeff_matrix, xs)


def powmod61(base, exponents):
    """Vectorized ``pow(base, e, p)`` via the active backend."""
    return _ACTIVE.powmod61(base, exponents)


def powmod61_bases(bases, exponents):
    """Per-element-base vectorized ``pow`` via the active backend."""
    return _ACTIVE.powmod61_bases(bases, exponents)


def powmod61_windowed(exponents, table):
    """Byte-windowed vectorized ``pow`` via the active backend."""
    return _ACTIVE.powmod61_windowed(exponents, table)


def build_pow_table(base, max_exponent):
    """Byte-windowed power table for :func:`powmod61_windowed`."""
    return _ACTIVE.build_pow_table(base, max_exponent)


def sum_mod61(terms):
    """Exact ``sum(terms) mod p`` via the active backend."""
    return _ACTIVE.sum_mod61(terms)


def scatter_sum_mod61(cells, positions, terms):
    """Per-cell fingerprint scatter-add via the active backend."""
    return _ACTIVE.scatter_sum_mod61(cells, positions, terms)


def stack_positions_terms(bucket_coeffs, pow_table, indices, residues, buckets):
    """Fused shared-seed scatter precompute via the active backend."""
    return _ACTIVE.stack_positions_terms(bucket_coeffs, pow_table, indices, residues, buckets)
