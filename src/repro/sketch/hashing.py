"""k-wise independent hash families over a Mersenne-prime field.

The paper's streaming constructions consume three kinds of limited
randomness, all of which reduce to evaluating a ``k``-wise independent
hash function on demand:

* the vertex samples ``C_r`` (``Pr[v in C_r] = n^{-r/k}``),
* the nested edge samples ``E_j`` (``Pr[(a,b) in E_j] = 2^{-j}``, with
  ``E_0 ⊇ E_1 ⊇ ...``), and
* the bucket choices inside the sparse-recovery sketches.

Section 6.3 of the paper notes that ``O(log n)``-wise independence
suffices for the ``E_j`` and that Nisan's generator can replace the
remaining perfect randomness; lazily evaluated polynomial hashing is the
standard practical surrogate and keeps each hash function at ``k`` field
elements of state.
"""

from __future__ import annotations

from repro.util.rng import derive_seed, rng_from_seed

__all__ = ["MERSENNE_61", "KWiseHash", "NestedSampler"]

# numpy is the batch engine's substrate; the scalar paths never touch it.
import numpy as _np

#: The Mersenne prime 2^61 - 1; field arithmetic mod this prime is exact in
#: Python integers and collision probabilities are ~2^-61 per comparison.
MERSENNE_61 = (1 << 61) - 1


class KWiseHash:
    """A ``k``-wise independent hash function ``h: Z -> [0, p)``.

    Implemented as a random degree-``(k-1)`` polynomial over the field
    ``F_p`` with ``p = 2^61 - 1``.  Evaluation is Horner's rule, O(k).

    Two instances built from the same ``seed`` (and same ``k``) are
    identical — this is how sketches that must be *summable* share their
    randomness.  Instances are immutable after construction, so
    :meth:`shared` may intern them (sketch stacks that share per-round
    seeds then also share the hash objects, a large memory win).
    """

    __slots__ = ("k", "_coeffs")

    _intern_cache: dict[tuple[int, int], "KWiseHash"] = {}

    @classmethod
    def shared(cls, k: int, seed: int | str) -> "KWiseHash":
        """Return a (possibly cached) instance for ``(k, seed)``."""
        key = (k, derive_seed(seed, "intern-key"))
        cached = cls._intern_cache.get(key)
        if cached is None:
            cached = cls(k, seed)
            cls._intern_cache[key] = cached
        return cached

    def __init__(self, k: int, seed: int | str):
        if k < 1:
            raise ValueError(f"independence k must be >= 1, got {k}")
        self.k = k
        rng = rng_from_seed(seed, "kwise", k)
        self._coeffs = [rng.randrange(MERSENNE_61) for _ in range(k)]
        # A zero leading coefficient is harmless (it only lowers the
        # polynomial degree), so no rejection sampling is needed.

    def __call__(self, x: int) -> int:
        """Hash ``x`` to a field element in ``[0, 2^61 - 1)``."""
        acc = 0
        for coeff in self._coeffs:
            acc = (acc * x + coeff) % MERSENNE_61
        return acc

    @property
    def coefficients(self) -> tuple[int, ...]:
        """The polynomial's coefficients (read-only; for stacked
        evaluation of many hashes at once — see
        :func:`repro.sketch.batched.polyhash61_rows`)."""
        return tuple(self._coeffs)

    # Instances are immutable after construction, so copying is sharing.
    # This keeps ``clone()``/``copy.deepcopy`` of the sketches cheap and
    # preserves the interning win of :meth:`shared` across clones.
    def __copy__(self) -> "KWiseHash":
        return self

    def __deepcopy__(self, memo) -> "KWiseHash":
        return self

    def unit(self, x: int) -> float:
        """Hash ``x`` to a float in ``[0, 1)`` (k-wise independent)."""
        return self(x) / MERSENNE_61

    def bucket(self, x: int, m: int) -> int:
        """Hash ``x`` to a bucket in ``[0, m)``."""
        if m <= 0:
            raise ValueError(f"bucket count must be positive, got {m}")
        return self(x) % m

    def included(self, x: int, probability: float) -> bool:
        """Return whether ``x`` belongs to a sample taken at ``probability``."""
        return self.unit(x) < probability

    # -- batched evaluation (the numpy fast path) ----------------------

    def values_array(self, xs: "_np.ndarray") -> "_np.ndarray":
        """Vectorized :meth:`__call__`: field values for a batch of keys.

        Bit-identical to evaluating the scalar hash element-wise (the
        batched sketches depend on this — see
        :mod:`repro.sketch.kernels`).
        """
        from repro.sketch.kernels import polyhash61

        return polyhash61(self._coeffs, xs)

    def bucket_array(self, xs: "_np.ndarray", m: int) -> "_np.ndarray":
        """Vectorized :meth:`bucket`: bucket choices for a batch of keys."""
        if m <= 0:
            raise ValueError(f"bucket count must be positive, got {m}")
        return (self.values_array(xs) % _np.uint64(m)).astype(_np.int64)

    def space_words(self) -> int:
        """Persistent state, in machine words (one per coefficient)."""
        return self.k


class NestedSampler:
    """Nested geometric samples ``S_0 ⊇ S_1 ⊇ ...`` with ``Pr[x in S_j] = 2^-j``.

    A single hash value determines membership at *every* level: ``x`` is
    in ``S_j`` iff its hashed field value is below ``2^{61-j}``, i.e. iff
    the top ``j`` bits of the 61-bit hash are zero — the integer-exact
    form of "hashed unit value below ``2^-j``".  (Integer comparisons
    keep the scalar and batched evaluation paths bit-identical; a float
    surrogate would round differently between the two.)  :meth:`level`
    returns the deepest level containing ``x`` so callers can enumerate
    ``j = 0..level(x)`` in one evaluation — the access pattern used by
    the per-level sketches ``S^r_j(u)`` of Algorithm 1.
    """

    __slots__ = ("max_level", "_hash")

    def __init__(self, max_level: int, seed: int | str, independence: int = 16):
        if max_level < 0:
            raise ValueError(f"max_level must be >= 0, got {max_level}")
        self.max_level = max_level
        self._hash = KWiseHash.shared(independence, derive_seed(seed, "nested"))

    # Immutable (a max level plus an interned hash): share under copying,
    # mirroring :meth:`KWiseHash.__deepcopy__`.
    def __copy__(self) -> "NestedSampler":
        return self

    def __deepcopy__(self, memo) -> "NestedSampler":
        return self

    def level(self, x: int) -> int:
        """Deepest ``j`` (capped at ``max_level``) with ``x`` in ``S_j``."""
        value = self._hash(x)
        if value == 0:
            return self.max_level
        return min(self.max_level, max(0, 61 - value.bit_length()))

    def contains(self, x: int, j: int) -> bool:
        """Whether ``x`` belongs to the level-``j`` sample ``S_j``."""
        if j == 0:
            return True
        value = self._hash(x)
        if j > 61:
            return value == 0
        return value < (1 << (61 - j))

    def level_array(self, xs: "_np.ndarray") -> "_np.ndarray":
        """Vectorized :meth:`level`: deepest levels for a batch of keys.

        Bit-identical to the scalar method element-wise; this is what
        lets ``update_batch`` route each coordinate to exactly the same
        per-level sketches the scalar path would touch.
        """
        values = self._hash.values_array(xs)
        # x in S_j  <=>  value < 2^(61-j); thresholds ascending in j's
        # reverse order so searchsorted counts the failed levels.
        depth = min(self.max_level, 61)
        thresholds = _np.array(
            [1 << (61 - j) for j in range(depth, 0, -1)], dtype=_np.uint64
        )
        failed = _np.searchsorted(thresholds, values, side="right")
        levels = (depth - failed).astype(_np.int64)
        if self.max_level > 61:
            levels[values == 0] = self.max_level
        return levels

    def space_words(self) -> int:
        """Persistent state, in machine words."""
        return self._hash.space_words()
