"""Linear-sketching substrate.

Every structure here is a *linear* function of the summarized vector:
sketches built from the same seed can be added and subtracted, which is
the property the paper's graph algorithms exploit (summing per-vertex
sketches over a cluster, collapsing supernodes, subtracting recovered
edge sets).

Contents
--------
:class:`KWiseHash`, :class:`NestedSampler`
    limited-independence hashing; nested geometric samples.
:class:`OneSparseDetector`
    exact 0-vs-1-sparse classification with field fingerprints.
:class:`SparseRecoverySketch`
    the paper's ``SKETCH_B`` / ``DECODE`` (Theorem 8 interface).
:class:`DistinctElementsSketch`
    ``L_0`` estimation (Theorem 9 interface).
:class:`L0Sampler`
    sample one nonzero coordinate (AGM building block).
:class:`LinearHashTable`, :class:`NeighborhoodHashTable`
    the second-pass hash tables ``H^u_j`` of Algorithm 2.
:class:`SketchStack`, :class:`L0SamplerStack`
    columnar storage of many same-shaped sketches as one 2-D state
    array — hashes evaluated once per (coordinate, stack), one
    flattened scatter for all rows (:mod:`repro.sketch.columnar`).
:mod:`repro.sketch.batched`
    exact vectorized field arithmetic behind every ``update_batch``.

Scalar vs. batched updates
--------------------------
Every sketch takes single updates or whole batches; the two paths land
in bit-identical state (``tests/sketch/test_batched.py``), so they mix
freely — including across ``combine``::

    from repro.sketch import SparseRecoverySketch

    a = SparseRecoverySketch(domain_size=10_000, budget=8, seed="demo")
    b = SparseRecoverySketch(domain_size=10_000, budget=8, seed="demo")

    a.update(42, +1)                      # one coordinate at a time
    a.update(42, -1)
    b.update_batch(range(8), [1] * 8)     # vectorized over the batch

    a.combine(b)                          # same seed => summable
    assert a.decode() == {i: 1 for i in range(8)}

``update_batch`` is 5-10x faster on long batches and falls back to the
scalar loop below the measured crossover; see ``docs/performance.md``.

The ``clone()`` contract
------------------------
Every sketch class exposes ``clone() -> same type``: an independent copy
of the *dynamic* state (cells, counters, fingerprints) that shares the
immutable seed-derived randomness (hash families, samplers, fingerprint
bases).  Mutating the original after cloning never affects the clone and
vice versa — this is what lets the live sketch-store service
(:mod:`repro.service`) finalize snapshot copies while ingest continues.
The hash families define ``__deepcopy__`` as identity, so even a naive
``copy.deepcopy`` of a sketch preserves the interning memory win and
cannot accidentally fork shared randomness.
"""

from repro.sketch.columnar import L0SamplerStack, SketchStack
from repro.sketch.countsketch import CountSketch
from repro.sketch.distinct import DistinctElementsSketch
from repro.sketch.hashing import MERSENNE_61, KWiseHash, NestedSampler
from repro.sketch.l0sampler import L0Sampler
from repro.sketch.linear_hash_table import LinearHashTable, NeighborhoodHashTable
from repro.sketch.onesparse import DecodeStatus, OneSparseDetector, OneSparseResult
from repro.sketch.serialize import (
    deserialize_sketch,
    pack_ints,
    serialize_sketch,
    serialized_size_bytes,
    unpack_ints,
)
from repro.sketch.sparse_recovery import SparseRecoverySketch

__all__ = [
    "MERSENNE_61",
    "KWiseHash",
    "NestedSampler",
    "DecodeStatus",
    "OneSparseDetector",
    "OneSparseResult",
    "SparseRecoverySketch",
    "CountSketch",
    "DistinctElementsSketch",
    "L0Sampler",
    "SketchStack",
    "L0SamplerStack",
    "LinearHashTable",
    "NeighborhoodHashTable",
    "pack_ints",
    "unpack_ints",
    "serialized_size_bytes",
    "serialize_sketch",
    "deserialize_sketch",
]
