"""``L_0``-sampling: recover one nonzero coordinate of a dynamic vector.

The AGM spanning-forest sketch (Theorem 10) is a stack of independent
samplers of signed vertex-incidence vectors; the paper also notes
(Section 3.2) that its explicit ``Y_j`` vertex samples "could be
eliminated by using L0-SAMPLER in a similar way as [AGM12a] does".

Construction (Jowhari–Saglam–Tardos shape): geometric subsampling levels
``j = 0..L`` (nested, rate ``2^-j``); at each level a small
:class:`~repro.sketch.sparse_recovery.SparseRecoverySketch` summarizes the
surviving coordinates.  To sample, scan from the sparsest level down and
return a coordinate from the first level that decodes to a nonempty
vector.  Whp some level holds between 1 and ``budget`` survivors, so
sampling succeeds whenever the vector is nonzero.
"""

from __future__ import annotations

import math

import numpy as np

from repro.sketch.batched import prepare_batch
from repro.sketch.hashing import KWiseHash, NestedSampler
from repro.sketch.sparse_recovery import SparseRecoverySketch
from repro.util.rng import derive_seed

__all__ = ["L0Sampler"]

#: Measured scalar/vector crossover: an L0 batch pays one routing pass
#: plus a geometric cascade of sub-batches, so it needs a longer batch
#: than a flat sketch before numpy wins.
_SMALL_BATCH = 384


class L0Sampler:
    """Sample a nonzero coordinate ``(index, value)`` of a dynamic vector.

    Parameters
    ----------
    domain_size:
        Coordinates live in ``[0, domain_size)``.
    seed:
        Randomness name; samplers with equal seeds are summable, which is
        what lets AGM merge the sketches of collapsed supernodes.
    budget:
        Per-level sparse-recovery budget.  Small values (4) suffice
        because the geometric levels guarantee some level is sparse.
    """

    __slots__ = ("domain_size", "levels", "_seed_key", "_membership", "_level_sketches", "_tiebreak")

    def __init__(self, domain_size: int, seed: int | str, budget: int = 4):
        if domain_size <= 0:
            raise ValueError(f"domain_size must be positive, got {domain_size}")
        self.domain_size = domain_size
        self.levels = max(1, math.ceil(math.log2(domain_size))) + 1
        self._seed_key = derive_seed(seed, "l0sampler", domain_size, budget)
        self._membership = NestedSampler(self.levels - 1, derive_seed(self._seed_key, "membership"))
        self._level_sketches = [
            SparseRecoverySketch(
                domain_size,
                budget,
                derive_seed(self._seed_key, "level", j),
                rows=3,
            )
            for j in range(self.levels)
        ]
        self._tiebreak = KWiseHash.shared(4, derive_seed(self._seed_key, "tiebreak"))

    def update(self, index: int, delta: int) -> None:
        """Apply ``x[index] += delta``."""
        if delta == 0:
            return
        deepest = self._membership.level(index)
        for j in range(deepest + 1):
            self._level_sketches[j].update(index, delta)

    def update_batch(self, indices, deltas) -> None:
        """Apply ``x[indices[t]] += deltas[t]`` for a whole batch at once.

        The geometric level of every coordinate is computed in one
        vectorized pass, then each level sketch receives its surviving
        sub-batch via
        :meth:`~repro.sketch.sparse_recovery.SparseRecoverySketch.update_batch`.
        Bit-identical to the equivalent scalar :meth:`update` sequence.
        """
        route, idx, values, fits, _ = prepare_batch(
            indices, deltas, small_batch=_SMALL_BATCH
        )
        if route == "empty":
            return
        if route == "scalar":
            for index, delta in zip(idx, values):
                self.update(int(index), int(delta))
            return
        levels = self._membership.level_array(idx)
        for j in range(int(levels.max()) + 1):
            surviving = levels >= j
            if fits:
                self._level_sketches[j].update_batch(idx[surviving], values[surviving])
            else:
                kept = np.flatnonzero(surviving)
                self._level_sketches[j].update_batch(
                    idx[kept], [values[t] for t in kept]
                )

    def sample(self) -> tuple[int, int] | None:
        """Return one nonzero ``(index, value)`` or ``None`` if it failed.

        ``None`` either means the vector is zero or (rarely) that every
        level was undecodable; callers that need to distinguish should ask
        :meth:`is_probably_zero`.  The returned coordinate is chosen by a
        seeded tie-break hash among the recovered survivors, making the
        choice stable under re-decoding.
        """
        for j in range(self.levels - 1, -1, -1):
            decoded = self._level_sketches[j].decode()
            if decoded is None:
                continue
            if decoded:
                index = min(decoded, key=lambda i: (self._tiebreak(i), i))
                return (index, decoded[index])
        return None

    def is_probably_zero(self) -> bool:
        """Whether the summarized vector is (whp) identically zero."""
        return self._level_sketches[0].is_zero()

    def combine(self, other: "L0Sampler", sign: int = 1) -> None:
        """In-place ``self += sign * other``; seeds must match."""
        if self._seed_key != other._seed_key:
            raise ValueError("cannot combine samplers with different seeds")
        for j in range(self.levels):
            self._level_sketches[j].combine(other._level_sketches[j], sign)

    def copy(self) -> "L0Sampler":
        """Return an independent copy with the same state and seed."""
        clone = object.__new__(L0Sampler)
        clone.domain_size = self.domain_size
        clone.levels = self.levels
        clone._seed_key = self._seed_key
        clone._membership = self._membership
        clone._level_sketches = [sketch.copy() for sketch in self._level_sketches]
        clone._tiebreak = self._tiebreak
        return clone

    def clone(self) -> "L0Sampler":
        """Uniform deep-copy entry point (see the sketch-wide ``clone()``
        contract in :mod:`repro.sketch`): alias of :meth:`copy`."""
        return self.copy()

    def state_ints(self) -> list[int]:
        """Dynamic state as a flat int sequence (for serialization)."""
        flat: list[int] = []
        for sketch in self._level_sketches:
            flat.extend(sketch.state_ints())
        return flat

    def state_len(self) -> int:
        """Length of :meth:`state_ints`, without materializing it."""
        return sum(sketch.state_len() for sketch in self._level_sketches)

    def from_state_ints(self, values: list[int]) -> "L0Sampler":
        """Overwrite the dynamic state from a :meth:`state_ints` sequence.

        Exact inverse of :meth:`state_ints` on a same-seed sampler: the
        flat sequence is split back into the per-level sketch states;
        returns ``self``.
        """
        cursor = 0
        for sketch in self._level_sketches:
            need = sketch.state_len()
            sketch.from_state_ints(values[cursor : cursor + need])
            cursor += need
        if cursor != len(values):
            raise ValueError(f"expected {cursor} state ints, got {len(values)}")
        return self

    def space_words(self) -> int:
        """Persistent state, in machine words."""
        return (
            self._membership.space_words()
            + self._tiebreak.space_words()
            + sum(sketch.space_words() for sketch in self._level_sketches)
        )
