"""Deterministic fault injection for the recovery seams.

This package is how the repo proves its self-healing claims instead of
asserting them: a :class:`FaultPlan` names exactly which worker round
crashes, which checkpoint write tears, which snapshot decode fails, and
the chaos harness (:mod:`repro.faults.chaos`) runs a real workload
under that plan and checks the recovered answers are *bit-identical*
to an unfaulted run.

Wiring mirrors ``repro.obs``: production call sites read the module
attribute ``faults.ACTIVE`` on every use (never ``from repro.faults
import ACTIVE``, which would freeze the startup value).  ``ACTIVE`` is
``None`` by default, so the disabled path is one attribute load and an
``is None`` test — small enough to live inside the existing ≤3%
telemetry overhead gate.  Tests and the chaos CLI arm it with
:func:`install` / :func:`inject`::

    with faults.inject(FaultPlan.parse("worker-crash@round=1:worker=0")):
        runner.run(stream)

Everything here is clock-free and randomness-free by construction: the
package sits inside the sketchlint determinism seam closure (it is
imported by ``repro.service`` and ``repro.stream.distributed``), and a
fault plan that consumed randomness could not be replayed inside a
forked shard worker.

.. note::
   ``repro.faults.chaos`` is *not* imported here — it imports the
   service layer, which imports this package; the CLI pulls it in
   directly.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.faults.injector import (
    CheckpointFaults,
    FaultInjector,
    InjectedCrash,
    InjectedDecodeFailure,
    InjectedHang,
    apply_corruption,
)
from repro.faults.plan import KINDS, FaultPlan, FaultSpec

__all__ = [
    "KINDS",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "CheckpointFaults",
    "InjectedCrash",
    "InjectedHang",
    "InjectedDecodeFailure",
    "apply_corruption",
    "ACTIVE",
    "install",
    "clear",
    "inject",
]

#: The process-wide injector, or ``None`` when fault injection is off.
#: Call sites must read this through the module (``faults.ACTIVE``).
ACTIVE: FaultInjector | None = None


def install(plan: FaultPlan) -> FaultInjector:
    """Arm fault injection for this process; returns the injector."""
    global ACTIVE
    ACTIVE = FaultInjector(plan)
    return ACTIVE


def clear() -> None:
    """Disarm fault injection (the default state)."""
    global ACTIVE
    ACTIVE = None


@contextmanager
def inject(plan: FaultPlan):
    """Arm ``plan`` for the duration of the block, then restore.

    Restores whatever injector (or ``None``) was active before, so
    nested scopes compose and a test can never leak an armed injector.
    """
    global ACTIVE
    previous = ACTIVE
    ACTIVE = FaultInjector(plan)
    try:
        yield ACTIVE
    finally:
        ACTIVE = previous
