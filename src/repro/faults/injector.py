"""The fault injector: turns a :class:`~repro.faults.plan.FaultPlan` into fire decisions.

An injector owns the *mutable* part of fault injection — the per-site
ordinal counters (how many checkpoint saves / snapshot decodes have
happened so far) and the event log — while every fire decision stays a
deterministic function of (plan, ordinal).  Production call sites read
the process-wide ``repro.faults.ACTIVE`` slot each time; when it is
``None`` (the default) every hook is a single attribute load plus an
``is None`` branch, cheap enough to live inside the telemetry overhead
gate.

Three hook families:

- :meth:`FaultInjector.worker_fault` — consulted by shard workers
  (serial and forked) before running a round; returns the matching
  spec so the worker can crash or hang.
- :meth:`FaultInjector.checkpoint_faults` — consulted once per
  checkpoint save; returns a :class:`CheckpointFaults` bundle naming
  the byte budget (``io-error``) and the post-rename corruptions
  (truncate / bit-flip) for *this* write ordinal.
- :meth:`FaultInjector.maybe_fail_decode` — consulted once per
  snapshot decode; raises :class:`InjectedDecodeFailure` when the
  decode ordinal (and optional site) matches a ``decode-fail`` spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.plan import FaultPlan, FaultSpec

__all__ = [
    "InjectedCrash",
    "InjectedHang",
    "InjectedDecodeFailure",
    "CheckpointFaults",
    "FaultInjector",
    "apply_corruption",
]


class InjectedCrash(RuntimeError):
    """A worker crash forced by the fault plan."""


class InjectedHang(RuntimeError):
    """Raised by a *serial* worker in place of blocking.

    Serial execution has no process to kill, so a planned hang
    surfaces as this exception and takes the same retry path a
    timed-out process worker does.  Forked process workers really
    block (``time.sleep``) so the parent's timeout machinery is
    exercised for real.
    """


class InjectedDecodeFailure(RuntimeError):
    """A sketch/snapshot decode failure forced by the fault plan."""


@dataclass(frozen=True)
class CheckpointFaults:
    """The faults attacking one checkpoint save ordinal.

    ``fail_at_byte`` (when not ``None``) makes the writer raise
    :class:`OSError` once that many payload bytes are out; ``corrupt``
    lists truncate/bit-flip specs to apply to the file *after* the
    atomic rename (modelling media corruption of a completed write,
    not a torn write — torn writes never survive the rename).
    """

    fail_at_byte: int | None = None
    corrupt: tuple[FaultSpec, ...] = ()


@dataclass
class FaultInjector:
    """Mutable fire-decision state for one installed :class:`FaultPlan`."""

    plan: FaultPlan
    #: Checkpoint saves seen so far (the ``write_index`` ordinal).
    writes_seen: int = 0
    #: Snapshot decodes seen so far (the ``query_index`` ordinal).
    decodes_seen: int = 0
    #: Human-readable log of every fault that actually fired.
    events: list[str] = field(default_factory=list)

    def record(self, event: str) -> None:
        """Append one fired-fault line to the event log."""
        self.events.append(event)

    # -- shard workers -------------------------------------------------

    def worker_fault(
        self, pass_index: int, worker_id: int, attempt: int
    ) -> FaultSpec | None:
        """Delegates to the plan (pure; safe to call from forked workers)."""
        return self.plan.worker_fault(pass_index, worker_id, attempt)

    # -- checkpoint writes ---------------------------------------------

    def checkpoint_faults(self) -> CheckpointFaults:
        """Claim the next save ordinal and return its fault bundle."""
        ordinal = self.writes_seen
        self.writes_seen += 1
        fail_at: int | None = None
        corrupt: list[FaultSpec] = []
        for spec in self.plan.specs:
            if spec.write_index != ordinal:
                continue
            if spec.kind == "io-error":
                fail_at = spec.at_byte
                self.record(f"io-error write={ordinal} at_byte={spec.at_byte}")
            elif spec.kind in ("checkpoint-truncate", "checkpoint-bitflip"):
                corrupt.append(spec)
        return CheckpointFaults(fail_at_byte=fail_at, corrupt=tuple(corrupt))

    # -- snapshot decodes ----------------------------------------------

    def maybe_fail_decode(self, site: str) -> None:
        """Claim the next decode ordinal; raise if a spec matches it."""
        ordinal = self.decodes_seen
        self.decodes_seen += 1
        for spec in self.plan.specs:
            if (
                spec.kind == "decode-fail"
                and spec.query_index <= ordinal < spec.query_index + spec.times
                and (not spec.site or spec.site == site)
            ):
                self.record(f"decode-fail site={site} ordinal={ordinal}")
                raise InjectedDecodeFailure(
                    f"injected decode failure at {site} (decode ordinal {ordinal})"
                )


def apply_corruption(path, spec: FaultSpec) -> None:
    """Apply one truncate/bit-flip spec to the file at ``path`` in place."""
    if spec.kind == "checkpoint-truncate":
        with open(path, "r+b") as handle:
            handle.seek(0, 2)
            size = handle.tell()
            handle.truncate(max(0, size - spec.drop_bytes))
        return
    if spec.kind == "checkpoint-bitflip":
        with open(path, "r+b") as handle:
            handle.seek(0, 2)
            size = handle.tell()
            offset = spec.offset if spec.offset >= 0 else size + spec.offset
            if not 0 <= offset < size:
                raise ValueError(
                    f"bitflip offset {spec.offset} outside {size}-byte file {path}"
                )
            handle.seek(offset)
            byte = handle.read(1)[0]
            handle.seek(offset)
            handle.write(bytes([byte ^ spec.mask]))
        return
    raise ValueError(f"not a corruption spec: {spec.kind}")
