"""The chaos harness: run a real workload under faults, prove recovery.

:func:`run_chaos` is the executable form of the repo's robustness
claims.  It drives the same workload twice — once clean, once under a
:class:`~repro.faults.plan.FaultPlan` with a mid-run process "crash" —
and checks that the faulted run, after every recovery path fires
(checkpoint fallback past corrupt files, degraded-query absorption,
shard worker retry), finishes with **bit-identical** final answers:

1. *Baseline*: ingest the seeded token stream into a fresh session and
   record ``snapshot_answers()``.
2. *Faulted*: same stream, checkpointing through a
   :class:`~repro.service.checkpoint.CheckpointStore` while the plan
   tears writes (``io-error``) and corrupts completed files
   (``checkpoint-bitflip`` / ``checkpoint-truncate``); after a fixed
   number of save attempts the session is abandoned (the "crash") and
   restored via :meth:`~repro.service.checkpoint.CheckpointStore.load_latest`,
   which must walk past the corrupt newest files; a ``decode-fail``
   fault then degrades the first query; the remaining stream is
   re-ingested from the restored epoch.
3. *Sharded*: an independent seeded stream runs through
   :class:`~repro.stream.distributed.ShardedRunner` clean and under
   worker crash/hang faults; bounded retry must absorb them with
   bit-identical output.

Bit-identity holds by construction — checkpoints restore exact state,
re-ingest is deterministic, and retried workers are rebuilt from
deterministic shard chunks — and this harness is what keeps that
construction true.  ``repro chaos`` is a thin CLI over this module,
and ``tests/faults/`` pins the individual recovery paths.

(This module imports the service layer, so it deliberately lives
outside ``repro/faults/__init__`` — the service layer imports
``repro.faults`` for its hooks.)
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from functools import partial
from pathlib import Path

from repro import faults, obs
from repro.agm.connectivity import ConnectivityChecker
from repro.faults.plan import FaultPlan
from repro.service.checkpoint import CheckpointError, CheckpointStore
from repro.service.session import GraphSession
from repro.stream.distributed import ShardedRunner
from repro.stream.generators import mixed_workload_stream
from repro.util.rng import derive_seed

__all__ = ["DEFAULT_PLAN_TEXT", "ChaosReport", "run_chaos"]

#: The default plan exercises every recovery seam in one run: a torn
#: checkpoint write, two corrupted-but-renamed checkpoints (forcing a
#: fallback of depth 2 at restore), a degraded first query, and one
#: crashed plus one hung shard worker.
DEFAULT_PLAN_TEXT = (
    "io-error@write=0:at_byte=48,"
    "checkpoint-bitflip@write=2:offset=-4,"
    "checkpoint-truncate@write=3:drop_bytes=9,"
    "decode-fail@query=0,"
    "worker-crash@round=0:worker=1,"
    "worker-hang@round=0:worker=0"
)


@dataclass(frozen=True)
class ChaosReport:
    """Outcome of one :func:`run_chaos` run."""

    seed: int | str
    plan: str
    updates: int
    save_attempts: int
    save_failures: int
    checkpoint_fallbacks: int
    degraded_queries: int
    shard_retries: int
    #: Faults that actually fired, in order (injector event log).
    events: tuple[str, ...]
    answers_identical: bool
    shard_identical: bool

    @property
    def identical(self) -> bool:
        """Whether every recovered surface matched the unfaulted run."""
        return self.answers_identical and self.shard_identical

    def summary(self) -> str:
        """Human-readable report block (what ``repro chaos`` prints)."""
        lines = [
            f"chaos seed={self.seed}: {self.updates:,} updates, "
            f"{self.save_attempts} checkpoint saves "
            f"({self.save_failures} failed writes)",
            f"recovery: {self.checkpoint_fallbacks} checkpoint fallbacks, "
            f"{self.degraded_queries} degraded queries, "
            f"{self.shard_retries} shard retries",
        ]
        lines.extend(f"fired: {event}" for event in self.events)
        lines.append(
            "post-recovery answers: "
            + ("BIT-IDENTICAL" if self.answers_identical else "DIVERGED")
        )
        lines.append(
            "sharded output: "
            + ("BIT-IDENTICAL" if self.shard_identical else "DIVERGED")
        )
        return "\n".join(lines)


def _chunks(tokens, size):
    return [tokens[start : start + size] for start in range(0, len(tokens), size)]


def run_chaos(
    seed: int | str,
    num_vertices: int = 32,
    updates: int = 600,
    servers: int = 3,
    backend: str = "serial",
    keep_last: int = 3,
    crash_after_saves: int = 4,
    plan: FaultPlan | None = None,
    workdir=None,
    session_kwargs: dict | None = None,
) -> ChaosReport:
    """Run the fault/recovery workload described in the module docstring.

    ``plan`` defaults to :data:`DEFAULT_PLAN_TEXT`.  ``workdir`` (a
    fresh temp directory when ``None``) receives the faulted run's
    checkpoint files.  ``session_kwargs`` forwards to both
    :class:`~repro.service.session.GraphSession` constructions (the
    chaos tests disable the spanner/sparsifier slots for speed; the
    CLI runs all slots).  Deterministic given ``(seed, parameters)``;
    the returned report's :attr:`~ChaosReport.identical` is the
    assertion ``repro chaos`` and the chaos tests gate on.
    """
    if plan is None:
        plan = FaultPlan.parse(DEFAULT_PLAN_TEXT)
    if session_kwargs is None:
        session_kwargs = {}
    if workdir is None:
        workdir = tempfile.mkdtemp(prefix="repro-chaos-")
    workdir = Path(workdir)
    tokens = list(mixed_workload_stream(num_vertices, updates, seed))
    chunk_size = max(1, len(tokens) // 12)
    chunks = _chunks(tokens, chunk_size)

    # Phase 1: the unfaulted baseline.
    baseline = GraphSession(num_vertices, seed, **session_kwargs)
    for chunk in chunks:
        baseline.ingest_batch(chunk)
    expected = baseline.snapshot_answers()

    shard_stream = mixed_workload_stream(
        num_vertices, max(updates // 2, 64), derive_seed(seed, "chaos", "stream")
    )
    shard_factory = partial(
        ConnectivityChecker, num_vertices, derive_seed(seed, "chaos", "algo")
    )
    clean_shard = ShardedRunner(servers, backend=backend).run(
        shard_stream, shard_factory
    )

    # Phase 2: the same workload under the fault plan.
    with faults.inject(plan) as injector:
        store = CheckpointStore(workdir / "checkpoints", keep_last=keep_last)
        session = GraphSession(num_vertices, seed, **session_kwargs)
        save_attempts = 0
        save_failures = 0
        crashed = False
        for index, chunk in enumerate(chunks):
            session.ingest_batch(chunk)
            if (index + 1) % 2 == 0:
                save_attempts += 1
                try:
                    store.save(session)
                except CheckpointError:
                    # A torn write: the previous checkpoint is intact
                    # and the temp file is gone; the service keeps
                    # running and retries at the next interval.
                    obs.TRACER.count("chaos.save_failure")
                    save_failures += 1
                if save_attempts >= crash_after_saves and not crashed:
                    crashed = True
                    # The "crash": abandon the live session and restore
                    # from disk, falling back past corrupted files.
                    session = store.load_latest()
                    # When the plan schedules a decode failure, the
                    # first query after recovery must degrade, not
                    # raise — and must not poison the epoch cache.
                    outcome = session.query("forest")
                    plans_decode_fail = any(
                        spec.kind == "decode-fail" and spec.query_index == 0
                        for spec in plan.specs
                    )
                    if outcome.ok and plans_decode_fail:
                        raise RuntimeError(
                            "decode-fail fault did not fire; plan/harness drifted"
                        )
                    # Resume exactly where the restored state stops.
                    replay = tokens[session.updates_ingested :]
                    for tail in _chunks(replay, chunk_size):
                        session.ingest_batch(tail)
                    break
        faulted_shard = ShardedRunner(
            servers,
            backend=backend,
            worker_timeout=5.0 if backend == "mp" else None,
            retry_backoff=0.01,
        ).run(
            mixed_workload_stream(
                num_vertices, max(updates // 2, 64), derive_seed(seed, "chaos", "stream")
            ),
            shard_factory,
        )
        session.shard_retries += len(faulted_shard.degraded.retries)
        actual = session.snapshot_answers()
        events = tuple(injector.events)

    return ChaosReport(
        seed=seed,
        plan=plan.describe(),
        updates=len(tokens),
        save_attempts=save_attempts,
        save_failures=save_failures,
        checkpoint_fallbacks=session.checkpoint_fallbacks,
        degraded_queries=session.degraded_queries,
        shard_retries=session.shard_retries,
        events=events,
        answers_identical=actual == expected,
        shard_identical=faulted_shard.output == clean_shard.output,
    )
