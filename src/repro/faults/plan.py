"""Fault plans: a declarative, deterministic description of what breaks.

A :class:`FaultPlan` is a tuple of :class:`FaultSpec` records, each
naming one fault *kind* and the exact coordinates at which it fires —
which shard round, which worker attempt, which checkpoint write
ordinal, which snapshot decode.  Nothing in a plan consumes randomness
or the clock: given the same plan and the same workload, every fault
fires at the same place in every run (and in every forked worker
process, because the firing decision is a pure function of the
coordinates).  That determinism is what lets ``repro chaos`` assert
*bit-identity* between a faulted-and-recovered run and an unfaulted
one.

Supported kinds (:data:`KINDS`):

``worker-crash`` / ``worker-hang``
    A sharded-execution worker raises / blocks at round
    ``round_index`` for its first ``times`` attempts (shard
    ``worker_id``).  Retried attempts beyond ``times`` succeed —
    workers are rebuilt from deterministic shard chunks, so the retry
    is bit-exact.
``checkpoint-truncate`` / ``checkpoint-bitflip``
    The checkpoint file produced by save ordinal ``write_index`` is
    torn after the atomic rename: its last ``drop_bytes`` bytes are
    removed, or the byte at ``offset`` is XORed with ``mask``.
``io-error``
    Save ordinal ``write_index`` raises :class:`OSError` once
    ``at_byte`` bytes have been written (a full-disk / yanked-volume
    stand-in; the temp file must be cleaned up and the previous
    checkpoint left intact).
``decode-fail``
    Snapshot decodes ``query_index .. query_index + times - 1``
    (optionally restricted to one ``site`` — ``forest`` / ``spanner`` /
    ``sparsifier``) raise
    :class:`~repro.faults.injector.InjectedDecodeFailure`, which the
    session surfaces as a degraded
    :class:`~repro.service.session.QueryOutcome`.

Plans parse from compact CLI text (see :meth:`FaultPlan.parse`)::

    worker-crash@round=0:worker=1,checkpoint-bitflip@write=2:offset=-4
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["KINDS", "FaultSpec", "FaultPlan"]

#: Every fault kind the injector knows how to fire.
KINDS = (
    "worker-crash",
    "worker-hang",
    "checkpoint-truncate",
    "checkpoint-bitflip",
    "io-error",
    "decode-fail",
)

#: Spec fields that parse as floats; everything else numeric is an int.
_FLOAT_FIELDS = frozenset({"hang_seconds"})

#: Spec fields that stay strings.
_STR_FIELDS = frozenset({"kind", "site"})


@dataclass(frozen=True)
class FaultSpec:
    """One fault: a kind plus the coordinates at which it fires.

    Only the fields relevant to the spec's ``kind`` are consulted (see
    the module docstring); the rest keep their defaults.
    """

    kind: str
    #: ``worker-*``: the shard round (streaming pass) the fault targets.
    round_index: int = 0
    #: ``worker-*``: the shard/worker id the fault targets.
    worker_id: int = 0
    #: ``worker-*``: how many initial attempts fail (retries beyond
    #: succeed); ``decode-fail``: how many consecutive decodes fail.
    times: int = 1
    #: ``worker-hang``: seconds a hung *process* worker blocks before
    #: erroring out (the parent's timeout normally kills it first).
    hang_seconds: float = 30.0
    #: Checkpoint faults: which save ordinal (0-based, process-wide
    #: under one injector) the fault attacks.
    write_index: int = 0
    #: ``io-error``: raise once this many payload bytes were written.
    at_byte: int = 64
    #: ``checkpoint-truncate``: bytes torn off the end of the file.
    drop_bytes: int = 9
    #: ``checkpoint-bitflip``: byte offset (negative counts from EOF).
    offset: int = -4
    #: ``checkpoint-bitflip``: XOR mask applied to the targeted byte.
    mask: int = 0x40
    #: ``decode-fail``: first snapshot-decode ordinal that fails.
    query_index: int = 0
    #: ``decode-fail``: restrict to one decode site (`forest` /
    #: ``spanner`` / ``sparsifier``); empty matches any site.
    site: str = ""

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; choose from {KINDS}")
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        if not 0 <= self.mask <= 0xFF:
            raise ValueError(f"mask must be one byte (0..255), got {self.mask}")

    def describe(self) -> str:
        """One-line human-readable rendering of the spec."""
        if self.kind in ("worker-crash", "worker-hang"):
            return (
                f"{self.kind} round={self.round_index} worker={self.worker_id} "
                f"times={self.times}"
            )
        if self.kind == "checkpoint-truncate":
            return f"{self.kind} write={self.write_index} drop_bytes={self.drop_bytes}"
        if self.kind == "checkpoint-bitflip":
            return (
                f"{self.kind} write={self.write_index} offset={self.offset} "
                f"mask=0x{self.mask:02x}"
            )
        if self.kind == "io-error":
            return f"{self.kind} write={self.write_index} at_byte={self.at_byte}"
        return (
            f"{self.kind} query={self.query_index} times={self.times}"
            + (f" site={self.site}" if self.site else "")
        )


_SPEC_FIELDS = {field.name for field in fields(FaultSpec)}

#: CLI shorthand -> real field name (``round=0`` reads better than
#: ``round_index=0`` on a command line).
_ALIASES = {
    "round": "round_index",
    "worker": "worker_id",
    "write": "write_index",
    "query": "query_index",
}


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of faults to inject into one run."""

    specs: tuple[FaultSpec, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.specs)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse ``kind@key=value:key=value,kind@...`` CLI shorthand.

        Keys accept the aliases ``round``/``worker``/``write``/``query``
        for their ``*_index``/``*_id`` spellings.  An empty string (or
        ``none``) parses to the empty plan.
        """
        text = text.strip()
        if not text or text == "none":
            return cls()
        specs: list[FaultSpec] = []
        for clause in text.split(","):
            clause = clause.strip()
            if not clause:
                continue
            kind, _, tail = clause.partition("@")
            kwargs: dict = {}
            if tail:
                for pair in tail.split(":"):
                    key, eq, value = pair.partition("=")
                    if not eq:
                        raise ValueError(
                            f"malformed fault clause {clause!r}: expected key=value, "
                            f"got {pair!r}"
                        )
                    key = _ALIASES.get(key.strip(), key.strip())
                    if key not in _SPEC_FIELDS or key == "kind":
                        raise ValueError(
                            f"unknown fault parameter {key!r} in {clause!r}"
                        )
                    raw = value.strip()
                    if key in _STR_FIELDS:
                        kwargs[key] = raw
                    elif key in _FLOAT_FIELDS:
                        kwargs[key] = float(raw)
                    else:
                        kwargs[key] = int(raw, 0)
            specs.append(FaultSpec(kind.strip(), **kwargs))
        return cls(tuple(specs))

    def describe(self) -> str:
        """One line per spec (``(no faults)`` for the empty plan)."""
        if not self.specs:
            return "(no faults)"
        return "\n".join(spec.describe() for spec in self.specs)

    def worker_fault(
        self, pass_index: int, worker_id: int, attempt: int
    ) -> FaultSpec | None:
        """The worker fault firing at these coordinates, if any.

        A pure function of the coordinates — no injector state — so a
        forked worker process reaches the same decision as the parent
        that will retry it, and ``attempt`` numbers beyond a spec's
        ``times`` deterministically succeed.
        """
        for spec in self.specs:
            if (
                spec.kind in ("worker-crash", "worker-hang")
                and spec.round_index == pass_index
                and spec.worker_id == worker_id
                and attempt < spec.times
            ):
                return spec
        return None
