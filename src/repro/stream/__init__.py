"""The dynamic streaming model: updates, streams, passes, space, workloads."""

from repro.stream.distributed import (
    CommunicationReport,
    DistributedResult,
    RoundTrace,
    ShardedRunner,
)
from repro.stream.generators import (
    adversarial_churn_stream,
    mixed_session_ops,
    mixed_workload_stream,
    power_law_universe_stream,
    sparse_session_ops,
    sparse_touch_stream,
    stream_from_graph,
)
from repro.stream.batching import aggregate_updates, updates_to_arrays
from repro.stream.pipeline import StreamingAlgorithm, run_passes
from repro.stream.sharding import shard_by_edge, shard_round_robin
from repro.stream.space import SpaceReport
from repro.stream.stream import DynamicStream
from repro.stream.updates import EdgeUpdate

__all__ = [
    "EdgeUpdate",
    "DynamicStream",
    "StreamingAlgorithm",
    "run_passes",
    "updates_to_arrays",
    "aggregate_updates",
    "SpaceReport",
    "stream_from_graph",
    "adversarial_churn_stream",
    "mixed_workload_stream",
    "mixed_session_ops",
    "sparse_touch_stream",
    "power_law_universe_stream",
    "sparse_session_ops",
    "shard_round_robin",
    "shard_by_edge",
    "ShardedRunner",
    "DistributedResult",
    "CommunicationReport",
    "RoundTrace",
]
