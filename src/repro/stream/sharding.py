"""Stream sharding for the distributed setting.

The paper's introduction frames linear sketching as a *distributed*
primitive: servers hold disjoint shards of the update stream, sketch
locally, and communicate only sketches (``S x = S x^1 + ... + S x^s``).
These helpers split a :class:`~repro.stream.stream.DynamicStream` into
per-server token lists under two disciplines:

* :func:`shard_round_robin` — tokens alternate across servers (models a
  load balancer; a single edge's insert and delete may land on
  *different* servers, which only a linear sketch survives);
* :func:`shard_by_edge` — all updates of an edge go to one server
  (models edge-partitioned ingestion).

Both preserve per-edge update order, so each shard is a valid stream
fragment; only their union reconstructs the graph.
"""

from __future__ import annotations

from repro.graph.graph import edge_index
from repro.sketch.hashing import KWiseHash
from repro.stream.stream import DynamicStream
from repro.stream.updates import EdgeUpdate
from repro.util.rng import derive_seed

__all__ = ["shard_round_robin", "shard_by_edge"]


def shard_round_robin(stream: DynamicStream, num_servers: int) -> list[list[EdgeUpdate]]:
    """Deal tokens across ``num_servers`` in arrival order."""
    if num_servers < 1:
        raise ValueError(f"num_servers must be >= 1, got {num_servers}")
    shards: list[list[EdgeUpdate]] = [[] for _ in range(num_servers)]
    for position, update in enumerate(stream):
        shards[position % num_servers].append(update)
    return shards


def shard_by_edge(
    stream: DynamicStream, num_servers: int, seed: int | str = 0
) -> list[list[EdgeUpdate]]:
    """Route every update of a given edge to one hash-chosen server."""
    if num_servers < 1:
        raise ValueError(f"num_servers must be >= 1, got {num_servers}")
    router = KWiseHash.shared(4, derive_seed(seed, "shard-router"))
    shards: list[list[EdgeUpdate]] = [[] for _ in range(num_servers)]
    for update in stream:
        pair = edge_index(update.u, update.v, stream.num_vertices)
        shards[router.bucket(pair, num_servers)].append(update)
    return shards
