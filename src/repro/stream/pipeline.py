"""Pass-controlled execution of streaming algorithms.

The paper states exact pass budgets (Theorem 1: two passes; Theorem 3:
one pass) and those budgets are part of what the experiments verify, so
algorithms declare ``passes_required`` and the runner counts the passes
it actually performs.  An algorithm never touches the stream object — it
only receives updates through :meth:`StreamingAlgorithm.process`.
"""

from __future__ import annotations

import abc
from typing import Any

from repro.stream.stream import DynamicStream
from repro.stream.updates import EdgeUpdate

__all__ = ["StreamingAlgorithm", "run_passes"]


class StreamingAlgorithm(abc.ABC):
    """Interface for dynamic-stream algorithms.

    Lifecycle: for each pass ``p`` in ``0..passes_required-1`` the runner
    calls ``begin_pass(p)``, then ``process(update)`` for every token,
    then ``end_pass(p)``; finally ``finalize()`` returns the result.
    Post-processing that the paper performs "after the first pass"
    belongs in ``end_pass``.
    """

    @property
    @abc.abstractmethod
    def passes_required(self) -> int:
        """How many passes over the stream this algorithm needs."""

    def begin_pass(self, pass_index: int) -> None:
        """Hook: a pass is starting."""

    @abc.abstractmethod
    def process(self, update: EdgeUpdate, pass_index: int) -> None:
        """Consume one stream token."""

    def end_pass(self, pass_index: int) -> None:
        """Hook: a pass ended (between-pass computation goes here)."""

    @abc.abstractmethod
    def finalize(self) -> Any:
        """Produce the algorithm's output after the last pass."""

    def space_words(self) -> int:
        """Persistent sketch state in machine words (0 if not tracked)."""
        return 0


def run_passes(stream: DynamicStream, algorithm: StreamingAlgorithm) -> Any:
    """Run ``algorithm`` over ``stream`` with exactly its declared passes."""
    passes = algorithm.passes_required
    if passes < 1:
        raise ValueError(f"passes_required must be >= 1, got {passes}")
    for pass_index in range(passes):
        algorithm.begin_pass(pass_index)
        for update in stream:
            algorithm.process(update, pass_index)
        algorithm.end_pass(pass_index)
    return algorithm.finalize()
