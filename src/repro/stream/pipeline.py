"""Pass-controlled execution of streaming algorithms.

The paper states exact pass budgets (Theorem 1: two passes; Theorem 3:
one pass) and those budgets are part of what the experiments verify, so
algorithms declare ``passes_required`` and the runner counts the passes
it actually performs.  An algorithm never touches the stream object — it
only receives updates through :meth:`StreamingAlgorithm.process` or, on
the fast path, whole chunks through
:meth:`StreamingAlgorithm.process_batch`.

Batched execution
-----------------
Linear sketches don't care about update order *within* a pass — all the
state transitions commute — so :func:`run_passes` can hand the algorithm
contiguous chunks of the stream instead of single tokens.  Algorithms
that implement :meth:`~StreamingAlgorithm.process_batch` (the AGM
checkers, the two-pass spanner, the sparsifier pipeline) then ride the
numpy-vectorized ``update_batch`` paths of the sketch layer; the default
implementation just loops :meth:`~StreamingAlgorithm.process`, so every
algorithm works under either driver and the resulting sketch state is
bit-identical between the two.

Usage example
-------------
Run the paper's two-pass spanner over a dynamic stream, batched::

    from repro.core import TwoPassSpannerBuilder
    from repro.graph import connected_gnp
    from repro.stream import run_passes, stream_from_graph

    graph = connected_gnp(64, 0.2, seed=1)
    stream = stream_from_graph(graph, seed=1, churn=0.3)

    builder = TwoPassSpannerBuilder(64, k=2, seed=2)
    output = run_passes(stream, builder, batch_size=4096)
    print(output.spanner.num_edges())

``batch_size=None`` (the default) reproduces the historical one-token
loop; any positive value chunks each pass.  See ``docs/performance.md``
for batch-size guidance and measured speedups.
"""

from __future__ import annotations

import abc
import copy
from typing import Any, Sequence

from repro.stream.stream import DynamicStream
from repro.stream.updates import EdgeUpdate

__all__ = ["StreamingAlgorithm", "run_passes"]


class StreamingAlgorithm(abc.ABC):
    """Interface for dynamic-stream algorithms.

    Lifecycle: for each pass ``p`` in ``0..passes_required-1`` the runner
    calls ``begin_pass(p)``, then ``process(update)`` for every token
    (or ``process_batch(chunk)`` for every chunk, under a batched
    runner), then ``end_pass(p)``; finally ``finalize()`` returns the
    result.  Post-processing that the paper performs "after the first
    pass" belongs in ``end_pass``.
    """

    @property
    @abc.abstractmethod
    def passes_required(self) -> int:
        """How many passes over the stream this algorithm needs."""

    def begin_pass(self, pass_index: int) -> None:
        """Hook: a pass is starting."""

    @abc.abstractmethod
    def process(self, update: EdgeUpdate, pass_index: int) -> None:
        """Consume one stream token."""

    def process_batch(self, updates: Sequence[EdgeUpdate], pass_index: int) -> None:
        """Consume a contiguous chunk of stream tokens.

        Default: loop over :meth:`process`, so plain algorithms work
        under a batched runner unchanged.  Sketch-based algorithms
        override this to route the chunk through the vectorized
        ``update_batch`` sketch paths; overrides must leave the
        algorithm in exactly the state the scalar loop would produce
        (linear sketch updates commute, so this is a no-op requirement
        for anything built on the :mod:`repro.sketch` substrate).
        """
        for update in updates:
            self.process(update, pass_index)

    def end_pass(self, pass_index: int) -> None:
        """Hook: a pass ended (between-pass computation goes here)."""

    @abc.abstractmethod
    def finalize(self) -> Any:
        """Produce the algorithm's output after the last pass."""

    def space_words(self) -> int:
        """Persistent sketch state in machine words (0 if not tracked)."""
        return 0

    def clone(self) -> "StreamingAlgorithm":
        """Independent copy of this algorithm's dynamic state.

        Snapshot queries (the live service of :mod:`repro.service`)
        finalize a *clone* so decoding never perturbs — and is never
        perturbed by — continued ingest into the original.  The default
        is a ``copy.deepcopy``, which is correct for every algorithm in
        the repository because the immutable hash families deep-copy as
        themselves (see :mod:`repro.sketch.hashing`); sketch-heavy
        algorithms override it with cheaper structural copies that share
        the seed-derived randomness outright.
        """
        return copy.deepcopy(self)

    # -- sharded execution protocol (the distributed setting) ----------
    #
    # A *shardable* algorithm can run one instance per stream shard and
    # be reassembled by a coordinator: after each pass every worker
    # ships ``shard_state_ints(pass_index)`` (varint-packed by
    # :mod:`repro.sketch.serialize`), the coordinator rebuilds each
    # message via ``load_shard_state_ints`` on a fresh same-seed
    # instance and sums it in with ``merge_shard`` — linearity makes
    # the sum bit-identical to single-machine state.  Multi-pass
    # algorithms publish between-pass coordinator state through
    # ``broadcast_state`` / ``adopt_broadcast``.  The default
    # implementations mark the algorithm as not shardable; see
    # :mod:`repro.stream.distributed` for the runner.

    def shard_state_ints(self, pass_index: int) -> list[int]:
        """Worker-side: pass-``pass_index`` dynamic state as flat ints.

        This is the content of the worker's message to the coordinator.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support sharded execution"
        )

    def load_shard_state_ints(self, pass_index: int, values: list[int]) -> None:
        """Coordinator-side: inverse of :meth:`shard_state_ints`."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support sharded execution"
        )

    def merge_shard(self, other: "StreamingAlgorithm", pass_index: int) -> None:
        """Coordinator-side: sum another instance's pass state into ours."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support sharded execution"
        )

    def broadcast_state(self, pass_index: int) -> Any:
        """Coordinator-side: state workers need *before* ``pass_index``.

        ``None`` (the default) means the pass needs no broadcast.  The
        returned object must be picklable — the multiprocessing backend
        ships it into worker processes.
        """
        return None

    def adopt_broadcast(self, state: Any, pass_index: int) -> None:
        """Worker-side: receive a coordinator broadcast for ``pass_index``.

        Only called when :meth:`broadcast_state` returned non-``None``.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not consume coordinator broadcasts"
        )


def run_passes(
    stream: DynamicStream,
    algorithm: StreamingAlgorithm,
    batch_size: int | None = None,
) -> Any:
    """Run ``algorithm`` over ``stream`` with exactly its declared passes.

    Parameters
    ----------
    stream:
        The replayable dynamic stream.
    algorithm:
        Any :class:`StreamingAlgorithm`.
    batch_size:
        ``None`` feeds tokens one at a time through
        :meth:`~StreamingAlgorithm.process` (the historical behavior).
        A positive integer chunks each pass and feeds the chunks through
        :meth:`~StreamingAlgorithm.process_batch` — the fast path for
        sketch-based algorithms.  Both drivers produce identical final
        state; see ``docs/performance.md`` for choosing a size.
    """
    passes = algorithm.passes_required
    if passes < 1:
        raise ValueError(f"passes_required must be >= 1, got {passes}")
    if batch_size is not None and batch_size < 1:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    for pass_index in range(passes):
        algorithm.begin_pass(pass_index)
        if batch_size is None:
            for update in stream:
                algorithm.process(update, pass_index)
        else:
            for chunk in stream.iter_batches(batch_size):
                algorithm.process_batch(chunk, pass_index)
        algorithm.end_pass(pass_index)
    return algorithm.finalize()
