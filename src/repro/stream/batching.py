"""Shared ``EdgeUpdate``-chunk array unpacking and aggregation.

Every batched ``process_batch`` used to open with its own copy of the
same loop — pull ``u``/``v``/``sign`` out of a chunk of
:class:`~repro.stream.updates.EdgeUpdate` tokens into parallel lists.
This module is that loop, written once, plus the chunk-level
*aggregation* step the columnar engine builds on: linear sketches don't
care about update order, so a chunk can be collapsed to its **net delta
per distinct edge pair** before any sketch sees it.  An insert/delete
pair that cancels inside the chunk then costs zero sketch work, and the
per-(coordinate, stack) hash evaluations the columnar layer shares are
evaluated once per *distinct* pair instead of once per token — on
small-vertex service workloads that collapses a 65,536-token chunk to a
few hundred distinct pairs.

Aggregation is exact: integer cell updates commute and associate, and
``(sum of deltas) * z^i mod p`` equals the summed per-token fingerprint
contributions, so aggregated state is bit-identical to the token loop
(pinned by ``tests/sketch/test_columnar.py``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.stream.updates import EdgeUpdate

__all__ = ["updates_to_arrays", "aggregate_updates"]


def updates_to_arrays(
    updates: Sequence[EdgeUpdate],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Unpack a chunk into ``(us, vs, signs)`` ``int64`` arrays.

    Endpoints keep the tokens' canonical ``u < v`` orientation.  This is
    the shared prologue of every batched ``process_batch``.
    """
    count = len(updates)
    us = np.empty(count, dtype=np.int64)
    vs = np.empty(count, dtype=np.int64)
    signs = np.empty(count, dtype=np.int64)
    for t, update in enumerate(updates):
        us[t] = update.u
        vs[t] = update.v
        signs[t] = update.sign
    return us, vs, signs


def aggregate_updates(
    us: np.ndarray,
    vs: np.ndarray,
    deltas: np.ndarray,
    num_vertices: int,
    keep_zero: bool = False,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Collapse a chunk to one net delta per distinct edge pair.

    Returns ``(us, vs, pairs, deltas)`` over the distinct pairs, sorted
    by pair index, where ``pairs = us * num_vertices + vs`` (the
    :func:`~repro.graph.graph.edge_index` encoding the sketches use as
    their coordinate domain).

    ``keep_zero=False`` (default) drops pairs whose chunk-net delta is
    zero — correct for dense sketch state, where a canceled pair
    contributes zero to every cell.  Pass ``keep_zero=True`` when the
    caller must still *see* those pairs (the two-pass spanner lazily
    allocates per-``(vertex, r, j)`` sketch rows on first touch, and the
    scalar path allocates for canceled tokens too, so serialization
    equality requires touching them).
    """
    pairs = us * np.int64(num_vertices) + vs
    unique, inverse = np.unique(pairs, return_inverse=True)
    net = np.zeros(unique.size, dtype=np.int64)
    np.add.at(net, inverse, deltas)
    if not keep_zero:
        nonzero = net != 0
        if not nonzero.all():
            unique, net = unique[nonzero], net[nonzero]
    lows = unique // np.int64(num_vertices)
    highs = unique - lows * np.int64(num_vertices)
    return lows, highs, unique, net
