"""Stream update records: the dynamic streaming model's alphabet.

The paper's model (Section 1): a stream ``S = a_1 .. a_t`` with
``a_k in [n] x [n] x {-1, +1}``; the multigraph's edge multiplicity is
``x_{ij} = #insertions - #deletions >= 0``.  For weighted graphs the
stream may only *add a weighted edge or completely remove it* (no
turnstile weight increments — see the footnote to Section 1), so an
update carries the edge's full weight and the weight is known at update
time.  :class:`~repro.stream.stream.DynamicStream` enforces both rules.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EdgeUpdate"]


@dataclass(frozen=True)
class EdgeUpdate:
    """One stream token: insert (+1) or delete (-1) edge ``{u, v}``.

    ``weight`` is the weight of the edge being inserted/removed (always
    1.0 for unweighted streams).  ``u < v`` is canonicalized at
    construction.
    """

    u: int
    v: int
    sign: int
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise ValueError(f"self-loops are not allowed (vertex {self.u})")
        if self.sign not in (1, -1):
            raise ValueError(f"sign must be +1 or -1, got {self.sign}")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        if self.u > self.v:
            low, high = self.v, self.u
            object.__setattr__(self, "u", low)
            object.__setattr__(self, "v", high)

    @property
    def pair(self) -> tuple[int, int]:
        """The canonical ``(u, v)`` pair, ``u < v``."""
        return (self.u, self.v)

    def inverted(self) -> "EdgeUpdate":
        """The update that cancels this one."""
        return EdgeUpdate(self.u, self.v, -self.sign, self.weight)
