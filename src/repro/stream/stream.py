"""The dynamic edge stream and its model rules.

A :class:`DynamicStream` is a materialized update sequence that can be
replayed multiple times — "passes" in the streaming sense.  The class
enforces the paper's model invariants on construction/append:

* multiplicities never go negative (a deletion must match a prior
  insertion);
* in weighted mode, while an edge is present all further updates must
  carry the same weight (weights change only through full removal and
  re-insertion — the model's no-turnstile rule).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.graph.graph import Graph
from repro.stream.updates import EdgeUpdate

__all__ = ["DynamicStream"]


class DynamicStream:
    """A replayable dynamic-graph stream over ``num_vertices`` vertices."""

    def __init__(self, num_vertices: int, updates: Iterable[EdgeUpdate] = ()):
        if num_vertices <= 0:
            raise ValueError(f"num_vertices must be positive, got {num_vertices}")
        self.num_vertices = num_vertices
        self._updates: list[EdgeUpdate] = []
        self._multiplicity: dict[tuple[int, int], int] = {}
        self._weight: dict[tuple[int, int], float] = {}
        self._num_insertions = 0
        self._num_deletions = 0
        for update in updates:
            self.append(update)

    def append(self, update: EdgeUpdate) -> None:
        """Add one update, enforcing the model invariants."""
        if not (0 <= update.u < self.num_vertices and 0 <= update.v < self.num_vertices):
            raise ValueError(
                f"update touches vertices {update.pair} outside [0, {self.num_vertices})"
            )
        pair = update.pair
        current = self._multiplicity.get(pair, 0)
        if current > 0 and self._weight[pair] != update.weight:
            raise ValueError(
                f"edge {pair} is present with weight {self._weight[pair]}; the model "
                f"forbids turnstile weight changes (got {update.weight})"
            )
        updated = current + update.sign
        if updated < 0:
            raise ValueError(f"edge {pair} multiplicity would become negative")
        if updated == 0:
            self._multiplicity.pop(pair, None)
            self._weight.pop(pair, None)
        else:
            self._multiplicity[pair] = updated
            self._weight[pair] = update.weight
        self._updates.append(update)
        if update.sign == 1:
            self._num_insertions += 1
        else:
            self._num_deletions += 1

    def insert(self, u: int, v: int, weight: float = 1.0) -> None:
        """Convenience: append an insertion."""
        self.append(EdgeUpdate(u, v, +1, weight))

    def delete(self, u: int, v: int, weight: float | None = None) -> None:
        """Convenience: append a deletion.

        When ``weight`` is omitted and the edge is live, the stored
        weight is used — the model removes an edge *at its weight*, so
        the caller need not restate it (restating a different weight is
        still rejected as a turnstile change).  For a non-live edge the
        historical default of 1.0 applies (and the append will raise for
        going negative, as before).
        """
        if weight is None:
            weight = self._weight.get((min(u, v), max(u, v)), 1.0)
        self.append(EdgeUpdate(u, v, -1, weight))

    def __iter__(self) -> Iterator[EdgeUpdate]:
        """One pass over the stream."""
        return iter(self._updates)

    def iter_batches(self, batch_size: int) -> Iterator[list[EdgeUpdate]]:
        """One pass over the stream in contiguous chunks.

        The concatenation of the yielded chunks is exactly the stream,
        so a pass over :meth:`iter_batches` sees every token once — this
        is what :func:`repro.stream.pipeline.run_passes` consumes when a
        ``batch_size`` is configured.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        for start in range(0, len(self._updates), batch_size):
            yield self._updates[start : start + batch_size]

    def __len__(self) -> int:
        return len(self._updates)

    def final_multiplicities(self) -> dict[tuple[int, int], int]:
        """Edge multiplicities after the whole stream."""
        return dict(self._multiplicity)

    def final_graph(self) -> Graph:
        """The graph at the end of the stream (multiplicity collapsed)."""
        graph = Graph(self.num_vertices)
        for (u, v), multiplicity in self._multiplicity.items():
            if multiplicity > 0:
                graph.add_edge(u, v, self._weight[(u, v)])
        return graph

    def num_insertions(self) -> int:
        """Total insert tokens (O(1): maintained by :meth:`append`)."""
        return self._num_insertions

    def num_deletions(self) -> int:
        """Total delete tokens (O(1): maintained by :meth:`append`)."""
        return self._num_deletions

    def __repr__(self) -> str:
        return (
            f"DynamicStream(num_vertices={self.num_vertices}, updates={len(self._updates)}, "
            f"live_edges={len(self._multiplicity)})"
        )
