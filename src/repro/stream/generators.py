"""Dynamic-stream workload generators.

Dynamic streams differ from insertion-only streams in exactly one way —
deletions — so every generator here can interleave *churn*: transient
edges that are inserted and later deleted.  A sketch-based algorithm
cannot tell churned edges from surviving ones until the deletions arrive,
which is precisely the regime the paper's linearity arguments address
(and the regime in which insertion-only algorithms break).
"""

from __future__ import annotations

from bisect import bisect_left

from repro.graph.graph import Graph
from repro.stream.stream import DynamicStream
from repro.stream.updates import EdgeUpdate
from repro.util.rng import rng_from_seed

__all__ = [
    "stream_from_graph",
    "adversarial_churn_stream",
    "mixed_workload_stream",
    "mixed_session_ops",
    "sparse_touch_stream",
    "power_law_universe_stream",
    "sparse_session_ops",
]


def stream_from_graph(
    graph: Graph,
    seed: int | str,
    churn: float = 0.0,
    shuffle: bool = True,
) -> DynamicStream:
    """Encode ``graph`` as a dynamic stream whose final graph is ``graph``.

    Parameters
    ----------
    graph:
        The target final graph.
    seed:
        Randomness for ordering and churn placement.
    churn:
        Ratio of transient edges to real edges: ``churn * m`` edges *not*
        in the final graph are inserted and then deleted, interleaved at
        random positions (subject to insert-before-delete).
    shuffle:
        Randomize insertion order of the real edges.
    """
    if churn < 0:
        raise ValueError(f"churn must be >= 0, got {churn}")
    rng = rng_from_seed(seed, "stream-order")
    real_edges = list(graph.edges())
    if shuffle:
        rng.shuffle(real_edges)

    num_transient = int(churn * len(real_edges))
    transient: list[tuple[int, int, float]] = []
    present = graph.edge_set()
    attempts = 0
    n = graph.num_vertices
    while len(transient) < num_transient and attempts < 50 * (num_transient + 1):
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        pair = (min(u, v), max(u, v))
        if pair in present:
            continue
        present.add(pair)
        transient.append((pair[0], pair[1], 1.0))

    tokens: list[EdgeUpdate] = [EdgeUpdate(u, v, +1, w) for u, v, w in real_edges]
    for u, v, w in transient:
        insert_at = rng.randrange(len(tokens) + 1)
        tokens.insert(insert_at, EdgeUpdate(u, v, +1, w))
        delete_at = rng.randrange(insert_at + 1, len(tokens) + 1)
        tokens.insert(delete_at, EdgeUpdate(u, v, -1, w))

    return DynamicStream(graph.num_vertices, tokens)


def mixed_workload_stream(
    num_vertices: int,
    length: int,
    seed: int | str,
    delete_fraction: float = 0.35,
    burst_every: int = 0,
    burst_length: int = 0,
    weights: tuple[float, float] | None = None,
) -> DynamicStream:
    """A seeded unbounded-looking mixed insert/delete stream.

    This is the service-plane workload shape: unlike
    :func:`stream_from_graph` there is no target final graph — edges keep
    arriving and dying for as long as the caller asks, which is what a
    long-lived :class:`~repro.service.GraphSession` ingests.  Used by the
    service benchmark, the checkpoint/crash failure-injection tests and
    ``python -m repro workload``.

    Parameters
    ----------
    num_vertices, length, seed:
        Graph size, token count, and the name of all randomness.
    delete_fraction:
        Baseline probability that the next token deletes a live edge
        (inserts otherwise; deletions always target a live edge, so the
        stream respects the model invariants by construction).
    burst_every / burst_length:
        When both are positive, every ``burst_every`` tokens the stream
        enters a *delete burst*: the next ``burst_length`` tokens delete
        live edges for as long as any remain — the "bursty deletes"
        regime in which insertion-only algorithms break.
    weights:
        ``None`` for an unweighted stream; ``(w_min, w_max)`` draws each
        inserted edge's weight uniformly from the range.  A live edge's
        deletion restates its insertion weight (the model's no-turnstile
        rule), and a re-inserted pair may pick a fresh weight only after
        full removal.
    """
    if length < 0:
        raise ValueError(f"length must be >= 0, got {length}")
    if not 0.0 <= delete_fraction < 1.0:
        raise ValueError(f"delete_fraction must be in [0, 1), got {delete_fraction}")
    if (burst_every > 0) != (burst_length > 0):
        raise ValueError("burst_every and burst_length must be set together")
    if weights is not None and not 0 < weights[0] <= weights[1]:
        raise ValueError(f"need 0 < w_min <= w_max, got {weights}")
    if num_vertices < 2 and length > 0:
        raise ValueError("a nonempty stream needs at least 2 vertices")
    rng = rng_from_seed(seed, "mixed-workload")
    stream = DynamicStream(num_vertices)
    live: list[tuple[int, int]] = []
    live_set: set[tuple[int, int]] = set()
    burst_remaining = 0
    stalled = 0
    while len(stream) < length:
        # Progress guard: with every pair live and deletes disabled (or
        # similar corners) no token can ever be emitted — fail loudly
        # instead of spinning forever.
        if stalled > 10_000:
            raise ValueError(
                f"cannot generate more tokens at n={num_vertices} with "
                f"delete_fraction={delete_fraction} (all pairs live?)"
            )
        if burst_every > 0 and burst_remaining == 0 and len(stream) > 0 \
                and len(stream) % burst_every == 0:
            burst_remaining = burst_length
        deleting = live and (
            burst_remaining > 0 or rng.random() < delete_fraction
        )
        if deleting:
            position = rng.randrange(len(live))
            live[position], live[-1] = live[-1], live[position]
            pair = live.pop()
            live_set.discard(pair)
            stream.delete(*pair)  # restates the stored live weight
            if burst_remaining > 0:
                burst_remaining -= 1
            stalled = 0
        else:
            u = rng.randrange(num_vertices)
            v = rng.randrange(num_vertices)
            if u == v:
                stalled += 1
                continue
            pair = (min(u, v), max(u, v))
            if pair in live_set:
                stalled += 1
                continue  # already live: keep multiplicities at 1
            live.append(pair)
            live_set.add(pair)
            weight = rng.uniform(*weights) if weights else 1.0
            stream.insert(pair[0], pair[1], weight)
            stalled = 0
    return stream


def mixed_session_ops(
    num_vertices: int,
    length: int,
    seed: int | str,
    query_every: int = 0,
    query_kinds: tuple[str, ...] = ("connected", "forest", "spanner_distance", "cut"),
    ingest_chunk: int = 1024,
    query_repeats: int = 1,
    **stream_kwargs,
) -> list[tuple]:
    """Interleave a :func:`mixed_workload_stream` with seeded query ops.

    Returns a list of operations for a session driver
    (:class:`repro.service.WorkloadDriver`):

    * ``("ingest", updates)`` — a chunk (list) of
      :class:`~repro.stream.updates.EdgeUpdate` tokens;
    * ``("query", kind, args)`` — a snapshot query, where ``kind`` is one
      of ``query_kinds`` and ``args`` is a concrete seeded argument tuple
      (vertex pair for ``connected``/``spanner_distance``, a frozen
      vertex set for ``cut``, empty for ``forest``).

    ``query_every`` places a query op (cycling through ``query_kinds``)
    after every ``query_every`` ingested tokens; 0 generates pure ingest.
    ``query_repeats`` emits each query op that many times back-to-back —
    the dashboard-refresh pattern whose repeats land in the session's
    epoch cache.  Remaining keyword arguments flow to
    :func:`mixed_workload_stream`.
    """
    if query_every < 0:
        raise ValueError(f"query_every must be >= 0, got {query_every}")
    if query_repeats < 1:
        raise ValueError(f"query_repeats must be >= 1, got {query_repeats}")
    if ingest_chunk < 1:
        raise ValueError(f"ingest_chunk must be positive, got {ingest_chunk}")
    if query_every > 0 and not query_kinds:
        raise ValueError("query_every > 0 needs at least one query kind")
    stream = mixed_workload_stream(num_vertices, length, seed, **stream_kwargs)
    rng = rng_from_seed(seed, "mixed-queries")
    tokens = list(stream)
    ops: list[tuple] = []
    kind_index = 0
    pending_start = 0

    def flush_until(stop: int) -> None:
        nonlocal pending_start
        for start in range(pending_start, stop, ingest_chunk):
            ops.append(("ingest", tokens[start : min(start + ingest_chunk, stop)]))
        pending_start = stop

    next_query = query_every if query_every > 0 else len(tokens) + 1
    while next_query <= len(tokens):
        flush_until(next_query)
        kind = query_kinds[kind_index % len(query_kinds)]
        kind_index += 1
        if kind in ("connected", "spanner_distance"):
            u = rng.randrange(num_vertices)
            v = rng.randrange(num_vertices - 1)
            args: tuple = (u, v if v < u else v + 1)
        elif kind == "cut":
            side = frozenset(
                v for v in range(num_vertices) if rng.random() < 0.5
            ) or frozenset({0})
            args = (side,)
        else:
            args = ()
        ops.extend([("query", kind, args)] * query_repeats)
        next_query += query_every
    flush_until(len(tokens))
    return ops


def _touched_ids(universe_size: int, touched: int, rng) -> list[int]:
    """``touched`` distinct vertex ids spread across a huge universe."""
    if not 0 < touched <= universe_size:
        raise ValueError(
            f"touched must be in [1, universe_size], got {touched} of {universe_size}"
        )
    return sorted(rng.sample(range(universe_size), touched))


def _mixed_stream_over_ids(
    universe_size: int,
    ids: list[int],
    length: int,
    rng,
    delete_fraction: float,
    weights: tuple[float, float] | None,
    pick,
) -> DynamicStream:
    """Model-valid mixed insert/delete stream whose endpoints come from
    ``pick`` (a seeded chooser over ``ids``); shared core of the
    sparse-universe generators."""
    if length < 0:
        raise ValueError(f"length must be >= 0, got {length}")
    if not 0.0 <= delete_fraction < 1.0:
        raise ValueError(f"delete_fraction must be in [0, 1), got {delete_fraction}")
    if weights is not None and not 0 < weights[0] <= weights[1]:
        raise ValueError(f"need 0 < w_min <= w_max, got {weights}")
    if len(ids) < 2 and length > 0:
        raise ValueError("a nonempty stream needs at least 2 touched vertices")
    stream = DynamicStream(universe_size)
    live: list[tuple[int, int]] = []
    live_set: set[tuple[int, int]] = set()
    stalled = 0
    while len(stream) < length:
        if stalled > 10_000:
            raise ValueError(
                f"cannot generate more tokens over {len(ids)} touched ids "
                f"with delete_fraction={delete_fraction} (all pairs live?)"
            )
        if live and rng.random() < delete_fraction:
            position = rng.randrange(len(live))
            live[position], live[-1] = live[-1], live[position]
            pair = live.pop()
            live_set.discard(pair)
            stream.delete(*pair)
            stalled = 0
            continue
        u, v = pick(), pick()
        if u == v:
            stalled += 1
            continue
        pair = (min(u, v), max(u, v))
        if pair in live_set:
            stalled += 1
            continue
        live.append(pair)
        live_set.add(pair)
        weight = rng.uniform(*weights) if weights else 1.0
        stream.insert(pair[0], pair[1], weight)
        stalled = 0
    return stream


def sparse_touch_stream(
    universe_size: int,
    touched: int,
    length: int,
    seed: int | str,
    delete_fraction: float = 0.3,
    weights: tuple[float, float] | None = None,
) -> DynamicStream:
    """A mixed insert/delete stream touching a tiny slice of a huge universe.

    ``touched`` distinct vertex ids are sampled (seeded) from
    ``[0, universe_size)`` and all edges fall among them, uniformly —
    the workload shape the sparse vertex-universe engine exists for: the
    id space is enormous (``10^7`` and beyond) but resident sketch state
    must track only the ids that actually appear.  Token mix follows
    :func:`mixed_workload_stream`'s model rules (deletions always target
    a live edge; weighted mode restates insertion weights).
    """
    rng = rng_from_seed(seed, "sparse-touch")
    ids = _touched_ids(universe_size, touched, rng)
    pick = lambda: ids[rng.randrange(len(ids))]  # noqa: E731
    return _mixed_stream_over_ids(
        universe_size, ids, length, rng, delete_fraction, weights, pick
    )


def power_law_universe_stream(
    universe_size: int,
    touched: int,
    length: int,
    seed: int | str,
    exponent: float = 1.5,
    delete_fraction: float = 0.2,
    weights: tuple[float, float] | None = None,
) -> DynamicStream:
    """A sparse-universe stream with power-law endpoint popularity.

    Like :func:`sparse_touch_stream`, but endpoint ranks are drawn with
    probability proportional to ``(rank + 1)^-exponent`` — the
    social-graph regime where a few hub ids dominate the traffic while
    the long tail keeps materializing fresh sketch rows.
    """
    if exponent <= 0:
        raise ValueError(f"exponent must be positive, got {exponent}")
    rng = rng_from_seed(seed, "power-law-universe")
    ids = _touched_ids(universe_size, touched, rng)
    cumulative: list[float] = []
    total = 0.0
    for rank in range(len(ids)):
        total += (rank + 1) ** -exponent
        cumulative.append(total)

    def pick() -> int:
        return ids[bisect_left(cumulative, rng.random() * total)]

    return _mixed_stream_over_ids(
        universe_size, ids, length, rng, delete_fraction, weights, pick
    )


def sparse_session_ops(
    universe_size: int,
    touched: int,
    length: int,
    seed: int | str,
    query_every: int = 0,
    query_kinds: tuple[str, ...] = ("connected", "forest", "spanner_distance", "cut"),
    ingest_chunk: int = 4096,
    query_repeats: int = 1,
    power_law: bool = False,
    **stream_kwargs,
) -> list[tuple]:
    """Sparse-universe analogue of :func:`mixed_session_ops`.

    Ingest chunks come from :func:`sparse_touch_stream` (or the
    power-law variant); query arguments are drawn from the *touched* id
    sample — asking a ``10^7``-id session about uniformly random
    universe ids would only ever probe untouched singletons.
    """
    if query_every < 0:
        raise ValueError(f"query_every must be >= 0, got {query_every}")
    if query_repeats < 1:
        raise ValueError(f"query_repeats must be >= 1, got {query_repeats}")
    if ingest_chunk < 1:
        raise ValueError(f"ingest_chunk must be positive, got {ingest_chunk}")
    if query_every > 0 and not query_kinds:
        raise ValueError("query_every > 0 needs at least one query kind")
    generator = power_law_universe_stream if power_law else sparse_touch_stream
    stream = generator(universe_size, touched, length, seed, **stream_kwargs)
    touched_pool = sorted({v for update in stream for v in update.pair})
    rng = rng_from_seed(seed, "sparse-queries")
    tokens = list(stream)
    ops: list[tuple] = []
    kind_index = 0
    pending_start = 0

    def flush_until(stop: int) -> None:
        nonlocal pending_start
        for start in range(pending_start, stop, ingest_chunk):
            ops.append(("ingest", tokens[start : min(start + ingest_chunk, stop)]))
        pending_start = stop

    next_query = query_every if query_every > 0 else len(tokens) + 1
    while next_query <= len(tokens):
        flush_until(next_query)
        kind = query_kinds[kind_index % len(query_kinds)]
        kind_index += 1
        if kind in ("connected", "spanner_distance"):
            u = touched_pool[rng.randrange(len(touched_pool))]
            v = touched_pool[rng.randrange(len(touched_pool))]
            while v == u and len(touched_pool) > 1:
                v = touched_pool[rng.randrange(len(touched_pool))]
            args: tuple = (u, v)
        elif kind == "cut":
            side = frozenset(
                v for v in touched_pool if rng.random() < 0.5
            ) or frozenset({touched_pool[0]})
            args = (side,)
        else:
            args = ()
        ops.extend([("query", kind, args)] * query_repeats)
        next_query += query_every
    flush_until(len(tokens))
    return ops


def adversarial_churn_stream(
    graph: Graph,
    seed: int | str,
    rounds: int = 2,
) -> DynamicStream:
    """A stress stream: the full final graph is inserted, then for each
    round every edge of a random *dense decoy subgraph* is inserted and
    deleted again.  The decoys dominate the token count, so any algorithm
    that commits to early edges (as an insertion-only algorithm would)
    keeps almost only garbage.
    """
    rng = rng_from_seed(seed, "adversarial")
    n = graph.num_vertices
    stream = DynamicStream(n)
    for u, v, w in graph.edges():
        stream.insert(u, v, w)
    present = graph.edge_set()
    for _ in range(rounds):
        decoys = []
        for _ in range(graph.num_edges()):
            u = rng.randrange(n)
            v = rng.randrange(n)
            if u == v:
                continue
            pair = (min(u, v), max(u, v))
            if pair in present or pair in decoys:
                continue
            decoys.append(pair)
        for u, v in decoys:
            stream.insert(u, v)
        rng.shuffle(decoys)
        for u, v in decoys:
            stream.delete(u, v)
    return stream
