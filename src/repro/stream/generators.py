"""Dynamic-stream workload generators.

Dynamic streams differ from insertion-only streams in exactly one way —
deletions — so every generator here can interleave *churn*: transient
edges that are inserted and later deleted.  A sketch-based algorithm
cannot tell churned edges from surviving ones until the deletions arrive,
which is precisely the regime the paper's linearity arguments address
(and the regime in which insertion-only algorithms break).
"""

from __future__ import annotations

from repro.graph.graph import Graph
from repro.stream.stream import DynamicStream
from repro.stream.updates import EdgeUpdate
from repro.util.rng import rng_from_seed

__all__ = ["stream_from_graph", "adversarial_churn_stream"]


def stream_from_graph(
    graph: Graph,
    seed: int | str,
    churn: float = 0.0,
    shuffle: bool = True,
) -> DynamicStream:
    """Encode ``graph`` as a dynamic stream whose final graph is ``graph``.

    Parameters
    ----------
    graph:
        The target final graph.
    seed:
        Randomness for ordering and churn placement.
    churn:
        Ratio of transient edges to real edges: ``churn * m`` edges *not*
        in the final graph are inserted and then deleted, interleaved at
        random positions (subject to insert-before-delete).
    shuffle:
        Randomize insertion order of the real edges.
    """
    if churn < 0:
        raise ValueError(f"churn must be >= 0, got {churn}")
    rng = rng_from_seed(seed, "stream-order")
    real_edges = list(graph.edges())
    if shuffle:
        rng.shuffle(real_edges)

    num_transient = int(churn * len(real_edges))
    transient: list[tuple[int, int, float]] = []
    present = graph.edge_set()
    attempts = 0
    n = graph.num_vertices
    while len(transient) < num_transient and attempts < 50 * (num_transient + 1):
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        pair = (min(u, v), max(u, v))
        if pair in present:
            continue
        present.add(pair)
        transient.append((pair[0], pair[1], 1.0))

    tokens: list[EdgeUpdate] = [EdgeUpdate(u, v, +1, w) for u, v, w in real_edges]
    for u, v, w in transient:
        insert_at = rng.randrange(len(tokens) + 1)
        tokens.insert(insert_at, EdgeUpdate(u, v, +1, w))
        delete_at = rng.randrange(insert_at + 1, len(tokens) + 1)
        tokens.insert(delete_at, EdgeUpdate(u, v, -1, w))

    return DynamicStream(graph.num_vertices, tokens)


def adversarial_churn_stream(
    graph: Graph,
    seed: int | str,
    rounds: int = 2,
) -> DynamicStream:
    """A stress stream: the full final graph is inserted, then for each
    round every edge of a random *dense decoy subgraph* is inserted and
    deleted again.  The decoys dominate the token count, so any algorithm
    that commits to early edges (as an insertion-only algorithm would)
    keeps almost only garbage.
    """
    rng = rng_from_seed(seed, "adversarial")
    n = graph.num_vertices
    stream = DynamicStream(n)
    for u, v, w in graph.edges():
        stream.insert(u, v, w)
    present = graph.edge_set()
    for _ in range(rounds):
        decoys = []
        for _ in range(graph.num_edges()):
            u = rng.randrange(n)
            v = rng.randrange(n)
            if u == v:
                continue
            pair = (min(u, v), max(u, v))
            if pair in present or pair in decoys:
                continue
            decoys.append(pair)
        for u, v in decoys:
            stream.insert(u, v)
        rng.shuffle(decoys)
        for u, v in decoys:
            stream.delete(u, v)
    return stream
