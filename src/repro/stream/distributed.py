"""Distributed sharded execution: servers sketch, the coordinator sums.

The paper's introduction motivates linear sketching as a *distributed*
primitive: the update stream is split across ``s`` servers, each server
sketches only its own shard, and ``S x = S x^1 + ... + S x^s`` — the
coordinator needs nothing but the sketches.  This module turns that
one-line identity into an executable subsystem:

* :class:`ShardedRunner` shards a :class:`~repro.stream.stream.DynamicStream`
  with the existing disciplines (:func:`~repro.stream.sharding.shard_round_robin`
  or :func:`~repro.stream.sharding.shard_by_edge`), runs one
  sketch-holding worker per shard — in-process (``backend="serial"``) or
  in real OS processes (``backend="mp"``) — and reassembles the workers'
  serialized states at a coordinator;
* every worker→coordinator message is the worker's
  ``shard_state_ints()`` packed by :func:`repro.sketch.serialize.pack_ints`
  — the *same* encoding the Theorem 4 communication game charges for —
  and every coordinator→worker broadcast (the spanner's between-pass
  cluster forest) is measured too, so each run carries a per-round
  :class:`CommunicationReport` in bytes;
* because every sketch update commutes and the coordinator sums exact
  integer (and mod-``p``) cells, the merged state is **bit-identical**
  to the single-machine state, and so is everything decoded from it —
  the property ``tests/integration/test_distributed.py`` pins down.

Algorithms opt in through the sharded-execution protocol on
:class:`~repro.stream.pipeline.StreamingAlgorithm` (``shard_state_ints``
/ ``load_shard_state_ints`` / ``merge_shard`` plus the broadcast pair
for multi-pass algorithms).  The AGM checkers, the two-pass spanner and
the streaming sparsifier pipeline all implement it, so the full paper
pipeline runs distributed end-to-end::

    from functools import partial
    from repro.agm import ConnectivityChecker
    from repro.stream import ShardedRunner

    runner = ShardedRunner(num_servers=4, backend="mp")
    result = runner.run(stream, partial(ConnectivityChecker, n, 7))
    components = result.output
    print(result.communication.summary())

``python -m repro spanner --servers 4 --backend mp`` drives the same
machinery from the command line and verifies the distributed output
against the single-stream run.
"""

from __future__ import annotations

import multiprocessing
import pickle
import sys
import time
import traceback
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Sequence

from repro import faults, obs
from repro.sketch.serialize import pack_ints, unpack_ints
from repro.stream.pipeline import StreamingAlgorithm
from repro.stream.sharding import shard_by_edge, shard_round_robin
from repro.stream.stream import DynamicStream
from repro.stream.updates import EdgeUpdate

__all__ = [
    "BACKENDS",
    "DISCIPLINES",
    "RoundTrace",
    "CommunicationReport",
    "RetryEvent",
    "DegradedResult",
    "DistributedResult",
    "ShardedRunner",
]

#: Supported execution backends.
BACKENDS = ("serial", "mp")

#: Supported sharding disciplines (see :mod:`repro.stream.sharding`).
DISCIPLINES = ("round-robin", "by-edge")


@dataclass(frozen=True)
class RoundTrace:
    """Communication of one round (= one streaming pass).

    ``message_bytes[i]`` is the length of server ``i``'s serialized
    state message (varint-packed ``shard_state_ints``).
    ``broadcast_bytes`` is the serialized size of the coordinator's
    between-pass broadcast *per server* (0 when the pass needs none).
    """

    pass_index: int
    message_bytes: tuple[int, ...]
    #: Uplink messages are varint-coded sketch cells; the broadcast is
    #: structured routing state (the cluster forest), so its size is the
    #: pickle transport encoding actually shipped to worker processes —
    #: an upper bound on, not a varint measure of, its information
    #: content.
    broadcast_bytes: int = 0
    #: Wall-clock seconds the workers (all shards, this round) and the
    #: coordinator merge loop took.  Populated only when tracing is
    #: armed (``obs.TRACER.enabled``); 0.0 otherwise, so equality
    #: comparisons against hand-built traces in tests stay exact.
    worker_seconds: float = 0.0
    merge_seconds: float = 0.0

    def uplink_bytes(self) -> int:
        """Total server→coordinator bytes this round."""
        return sum(self.message_bytes)

    def downlink_bytes(self) -> int:
        """Total coordinator→server bytes this round."""
        return self.broadcast_bytes * len(self.message_bytes)

    def total_bytes(self) -> int:
        """All bytes on the wire this round."""
        return self.uplink_bytes() + self.downlink_bytes()


@dataclass(frozen=True)
class CommunicationReport:
    """Per-round communication accounting for one distributed run."""

    num_servers: int
    rounds: tuple[RoundTrace, ...]

    def uplink_bytes(self) -> int:
        """Total server→coordinator bytes across all rounds."""
        return sum(trace.uplink_bytes() for trace in self.rounds)

    def downlink_bytes(self) -> int:
        """Total coordinator→server bytes across all rounds."""
        return sum(trace.downlink_bytes() for trace in self.rounds)

    def total_bytes(self) -> int:
        """All bytes on the wire across all rounds."""
        return self.uplink_bytes() + self.downlink_bytes()

    def worker_seconds(self) -> float:
        """Total worker wall-clock across rounds (0.0 unless traced)."""
        return sum(trace.worker_seconds for trace in self.rounds)

    def merge_seconds(self) -> float:
        """Total coordinator merge wall-clock (0.0 unless traced)."""
        return sum(trace.merge_seconds for trace in self.rounds)

    def summary(self) -> str:
        """One line per round plus a total, human-readable.

        Round lines carry worker/merge timing when the run was traced
        (``obs.TRACER`` enabled during :meth:`ShardedRunner.run`).
        """
        lines = []
        for trace in self.rounds:
            line = (
                f"round {trace.pass_index}: "
                f"{trace.uplink_bytes():,} B up "
                f"({min(trace.message_bytes):,}-{max(trace.message_bytes):,} B/server), "
                f"{trace.downlink_bytes():,} B down"
            )
            if trace.worker_seconds or trace.merge_seconds:
                line += (
                    f", workers {trace.worker_seconds * 1e3:.1f} ms"
                    f", merge {trace.merge_seconds * 1e3:.1f} ms"
                )
            lines.append(line)
        lines.append(
            f"total over {self.num_servers} servers: {self.total_bytes():,} B"
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class RetryEvent:
    """One absorbed worker failure: which round/worker/attempt, and why.

    ``attempt`` is the 0-based attempt that *failed*; the work was
    redone by attempt ``attempt + 1``.  ``reason`` is a short
    human-readable cause (crash / hang / timeout / death / reported
    error).
    """

    pass_index: int
    worker_id: int
    attempt: int
    reason: str


@dataclass(frozen=True)
class DegradedResult:
    """Recovery accounting for one run: which failures were absorbed.

    The *output* of a run that retried is still bit-identical to an
    undisturbed run — workers are rebuilt every round from
    deterministic shard chunks, so a replayed worker regenerates the
    exact same message.  "Degraded" here means the run's *operational*
    guarantees (latency, worker health) degraded, and this record says
    where; an empty one (``bool(...) is False``) means nothing went
    wrong.
    """

    retries: tuple[RetryEvent, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.retries)

    def rounds_retried(self) -> tuple[int, ...]:
        """Distinct pass indexes that needed at least one retry."""
        return tuple(sorted({event.pass_index for event in self.retries}))

    def summary(self) -> str:
        """One line per absorbed failure (empty string when clean)."""
        return "\n".join(
            f"round {event.pass_index}: worker {event.worker_id} "
            f"attempt {event.attempt} {event.reason}"
            for event in self.retries
        )


@dataclass(frozen=True)
class DistributedResult:
    """Outcome of a :meth:`ShardedRunner.run`: the algorithm's output
    (identical to the single-stream output) plus the measured
    communication, the run configuration, and the recovery record."""

    output: Any
    communication: CommunicationReport
    num_servers: int
    backend: str
    discipline: str
    degraded: DegradedResult = DegradedResult()


def _feed_tokens(
    algorithm: StreamingAlgorithm,
    tokens: Sequence[EdgeUpdate],
    pass_index: int,
    batch_size: int | None,
) -> None:
    """One worker pass over its shard (workers never run ``end_pass`` —
    decoding and between-pass computation are coordinator business)."""
    algorithm.begin_pass(pass_index)
    if batch_size is None:
        for update in tokens:
            algorithm.process(update, pass_index)
    else:
        for start in range(0, len(tokens), batch_size):
            algorithm.process_batch(tokens[start : start + batch_size], pass_index)


def _planned_fault(plan, pass_index, worker_id, attempt, in_process):
    """Fire this attempt's planned worker fault, if any.

    The decision is a pure function of ``(plan, coordinates)`` (see
    :meth:`repro.faults.plan.FaultPlan.worker_fault`), so a forked or
    spawned child reaches the same verdict the parent's retry
    bookkeeping expects.  In-process (serial) workers surface a hang as
    :class:`~repro.faults.injector.InjectedHang` — there is no process
    to time out — while a process worker genuinely blocks so the
    parent's deadline machinery is exercised for real, then crashes in
    case no timeout was armed.
    """
    spec = None if plan is None else plan.worker_fault(pass_index, worker_id, attempt)
    if spec is None:
        return
    if spec.kind == "worker-crash":
        raise faults.InjectedCrash(
            f"injected crash: worker {worker_id} round {pass_index} "
            f"attempt {attempt}"
        )
    if in_process:
        raise faults.InjectedHang(
            f"injected hang: worker {worker_id} round {pass_index} "
            f"attempt {attempt}"
        )
    time.sleep(spec.hang_seconds)
    raise faults.InjectedCrash(
        f"injected hang expired after {spec.hang_seconds}s: worker "
        f"{worker_id} round {pass_index} attempt {attempt}"
    )


def _worker_round(
    factory: Callable[[], StreamingAlgorithm],
    tokens: Sequence[EdgeUpdate],
    pass_index: int,
    broadcast: Any,
    batch_size: int | None,
    worker_id: int = 0,
    attempt: int = 0,
    plan=None,
    in_process: bool = True,
) -> bytes:
    """Run one worker for one round and return its state message.

    Workers are built fresh every round in *both* backends — a pass-1
    worker carries nothing from pass 0 except the coordinator
    broadcast, so serial and mp execution are behaviorally identical
    by construction.  That same freshness is what makes retries
    bit-exact: a replacement worker rebuilt from the identical shard
    chunk regenerates the identical message.
    """
    _planned_fault(plan, pass_index, worker_id, attempt, in_process)
    algorithm = factory()
    if broadcast is not None:
        algorithm.adopt_broadcast(broadcast, pass_index)
    _feed_tokens(algorithm, tokens, pass_index, batch_size)
    return pack_ints(algorithm.shard_state_ints(pass_index))


def _mp_worker_main(
    conn, worker_id, factory, tokens, pass_index, broadcast, batch_size,
    attempt=0, plan=None,
):
    # Child-process entry point; ships (id, message, error) back over
    # this worker's *private* pipe — a shared queue's write lock would
    # die with whichever process the coordinator terminates mid-send,
    # wedging every sibling.  The fault plan rides in as an argument
    # (not via inherited globals) so spawn-start children make the same
    # fire decisions fork children do.
    try:
        try:
            message = _worker_round(
                factory, tokens, pass_index, broadcast, batch_size,
                worker_id=worker_id, attempt=attempt, plan=plan, in_process=False,
            )
            conn.send((worker_id, message, None))
        # sketchlint: disable=SL602 the error is shipped to the coordinator via the pipe, which retries or raises
        except BaseException:
            conn.send((worker_id, None, traceback.format_exc()))
    finally:
        conn.close()


class ShardedRunner:
    """Execute a shardable streaming algorithm across ``num_servers``.

    Parameters
    ----------
    num_servers:
        Number of shards/workers.
    backend:
        ``"serial"`` runs the workers in-process (deterministic,
        dependency-free); ``"mp"`` forks one OS process per worker and
        ships the ``pack_ints``-serialized states back, each over its
        own private pipe.
        Both backends follow the identical message protocol, so their
        results are bit-identical.
    discipline:
        ``"round-robin"`` (tokens dealt across servers — a single
        edge's insert and delete may land on different servers, which
        only a linear sketch survives) or ``"by-edge"``
        (hash-partitioned ingestion).
    shard_seed:
        Seed for the ``by-edge`` router hash.
    batch_size:
        Per-worker chunk size for the batched sketch engine (``None``
        feeds tokens one at a time).
    start_method:
        Multiprocessing start method; default prefers ``fork`` (cheap
        shard hand-off via copy-on-write) and falls back to the
        platform default.
    worker_timeout:
        Per-round, per-worker wall-clock budget in seconds (``mp``
        backend).  A worker that neither reports nor exits within it is
        terminated and retried; ``None`` (the default) waits forever,
        the historical behavior.
    max_retries:
        How many times one worker's round may be retried (crash, hang,
        timeout, or reported error) before the run fails.  Retries
        relaunch a fresh worker over the identical shard chunk, so a
        recovered run's output is bit-identical to an undisturbed one.
    retry_backoff:
        Base pause in seconds before relaunching a failed worker,
        scaled linearly by attempt number (set 0 to retry immediately,
        e.g. in deterministic simulation tests).
    """

    def __init__(
        self,
        num_servers: int,
        backend: str = "serial",
        discipline: str = "round-robin",
        shard_seed: int | str = 0,
        batch_size: int | None = None,
        start_method: str | None = None,
        worker_timeout: float | None = None,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
    ):
        if num_servers < 1:
            raise ValueError(f"num_servers must be >= 1, got {num_servers}")
        if worker_timeout is not None and worker_timeout <= 0:
            raise ValueError(f"worker_timeout must be positive, got {worker_timeout}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if retry_backoff < 0:
            raise ValueError(f"retry_backoff must be >= 0, got {retry_backoff}")
        normalized_backend = backend.strip().lower()
        if normalized_backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        normalized_discipline = discipline.strip().lower().replace("_", "-")
        if normalized_discipline not in DISCIPLINES:
            raise ValueError(
                f"discipline must be one of {DISCIPLINES}, got {discipline!r}"
            )
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.num_servers = num_servers
        self.backend = normalized_backend
        self.discipline = normalized_discipline
        self.shard_seed = shard_seed
        self.batch_size = batch_size
        self.worker_timeout = worker_timeout
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        if (
            start_method is None
            and sys.platform.startswith("linux")
            and "fork" in multiprocessing.get_all_start_methods()
        ):
            # Linux only: macOS lists fork as available but forking a
            # threaded/framework-touched parent is unsafe there (CPython
            # defaults it to spawn for a reason).
            start_method = "fork"
        self._mp_context = multiprocessing.get_context(start_method)

    def shard(self, stream: DynamicStream) -> list[list[EdgeUpdate]]:
        """Split ``stream`` into per-server token lists."""
        if self.discipline == "round-robin":
            return shard_round_robin(stream, self.num_servers)
        return shard_by_edge(stream, self.num_servers, seed=self.shard_seed)

    def run(
        self,
        stream: DynamicStream,
        factory: Callable[[], StreamingAlgorithm],
    ) -> DistributedResult:
        """Run ``factory()``-built workers over the sharded ``stream``.

        ``factory`` must build a fresh, same-seeded instance on every
        call (all the repo's algorithms derive their randomness from
        their seed argument, so ``functools.partial(Cls, n, seed)`` is
        the canonical factory) and must be picklable for the ``mp``
        backend.  Returns the coordinator's finalized output along with
        the per-round communication accounting.
        """
        shards = self.shard(stream)
        coordinator = factory()
        passes = coordinator.passes_required
        rounds: list[RoundTrace] = []
        retries: list[RetryEvent] = []
        for pass_index in range(passes):
            broadcast = (
                coordinator.broadcast_state(pass_index) if pass_index > 0 else None
            )
            broadcast_bytes = len(pickle.dumps(broadcast)) if broadcast is not None else 0
            with obs.TRACER.span(
                "shard.round.workers", pass_index=pass_index
            ) as worker_span:
                if self.backend == "serial":
                    messages = self._run_serial_round(
                        factory, shards, pass_index, broadcast, retries
                    )
                else:
                    messages = self._run_mp_round(
                        factory, shards, pass_index, broadcast, retries
                    )
            with obs.TRACER.span(
                "shard.round.merge", pass_index=pass_index
            ) as merge_span:
                coordinator.begin_pass(pass_index)
                for message in messages:
                    peer = factory()
                    if broadcast is not None:
                        peer.adopt_broadcast(broadcast, pass_index)
                    peer.load_shard_state_ints(pass_index, unpack_ints(message))
                    coordinator.merge_shard(peer, pass_index)
                coordinator.end_pass(pass_index)
            uplink = sum(len(message) for message in messages)
            obs.TRACER.count("shard.round.uplink_bytes", uplink)
            obs.TRACER.observe("shard.message.bytes", max(len(m) for m in messages))
            rounds.append(
                RoundTrace(
                    pass_index=pass_index,
                    message_bytes=tuple(len(message) for message in messages),
                    broadcast_bytes=broadcast_bytes,
                    worker_seconds=worker_span.elapsed,
                    merge_seconds=merge_span.elapsed,
                )
            )
        output = coordinator.finalize()
        return DistributedResult(
            output=output,
            communication=CommunicationReport(
                num_servers=self.num_servers, rounds=tuple(rounds)
            ),
            num_servers=self.num_servers,
            backend=self.backend,
            discipline=self.discipline,
            degraded=DegradedResult(retries=tuple(retries)),
        )

    def _note_retry(
        self,
        retries: list[RetryEvent],
        pass_index: int,
        worker_id: int,
        attempt: int,
        reason: str,
    ) -> None:
        """Record one absorbed failure and apply the relaunch backoff."""
        obs.TRACER.count("shard.retry")
        retries.append(
            RetryEvent(
                pass_index=pass_index,
                worker_id=worker_id,
                attempt=attempt,
                reason=reason,
            )
        )
        if self.retry_backoff > 0:
            time.sleep(self.retry_backoff * (attempt + 1))

    def _run_serial_round(
        self,
        factory: Callable[[], StreamingAlgorithm],
        shards: list[list[EdgeUpdate]],
        pass_index: int,
        broadcast: Any,
        retries: list[RetryEvent],
    ) -> list[bytes]:
        """One in-process round; injected crashes/hangs take the same
        bounded-retry path a process worker's death or timeout does."""
        plan = faults.ACTIVE.plan if faults.ACTIVE is not None else None
        messages: list[bytes] = []
        for worker_id, shard in enumerate(shards):
            attempt = 0
            while True:
                try:
                    messages.append(
                        _worker_round(
                            factory, shard, pass_index, broadcast, self.batch_size,
                            worker_id=worker_id, attempt=attempt, plan=plan,
                        )
                    )
                    break
                except (faults.InjectedCrash, faults.InjectedHang) as error:
                    if attempt >= self.max_retries:
                        raise RuntimeError(
                            f"distributed worker {worker_id} failed after "
                            f"{attempt + 1} attempts; last failure: {error}"
                        ) from error
                    reason = (
                        "hang" if isinstance(error, faults.InjectedHang) else "crash"
                    )
                    self._note_retry(retries, pass_index, worker_id, attempt, reason)
                    attempt += 1
        return messages

    def _run_mp_round(
        self,
        factory: Callable[[], StreamingAlgorithm],
        shards: list[list[EdgeUpdate]],
        pass_index: int,
        broadcast: Any,
        retries: list[RetryEvent],
    ) -> list[bytes]:
        """One round with real worker processes; preserves shard order.

        Each worker gets up to ``1 + max_retries`` attempts: a worker
        that dies abnormally, reports an error, or (with
        ``worker_timeout`` set) neither reports nor exits in time is
        torn down and relaunched fresh over the identical shard chunk —
        deterministic replay makes the replacement's message
        bit-identical, which also lets a late message from a superseded
        attempt be accepted or dropped freely.
        """
        ctx = self._mp_context
        plan = faults.ACTIVE.plan if faults.ACTIVE is not None else None
        processes: dict[int, Any] = {}
        #: Parent (receive) end of each live worker's private pipe.
        conns: dict[int, Any] = {}
        retired: list[Any] = []
        attempts = {worker_id: 0 for worker_id in range(len(shards))}
        deadlines: dict[int, float | None] = {}

        def launch(worker_id: int) -> None:
            receiver, sender = ctx.Pipe(duplex=False)
            process = ctx.Process(
                target=_mp_worker_main,
                args=(
                    sender, worker_id, factory, shards[worker_id], pass_index,
                    broadcast, self.batch_size, attempts[worker_id], plan,
                ),
                daemon=True,
            )
            process.start()
            # Drop the parent's copy of the send end so the receiver
            # reads EOF the moment the child's end closes.
            sender.close()
            processes[worker_id] = process
            conns[worker_id] = receiver
            deadlines[worker_id] = (
                None
                if self.worker_timeout is None
                else obs.DEFAULT_CLOCK() + self.worker_timeout
            )

        def retry_or_fail(worker_id: int, reason: str) -> None:
            conns.pop(worker_id).close()
            stale = processes.pop(worker_id)
            if stale.is_alive():
                # Killing the worker can at worst corrupt its own
                # (already discarded) pipe — never a sibling's channel.
                stale.terminate()
            retired.append(stale)
            attempt = attempts[worker_id]
            if attempt >= self.max_retries:
                raise RuntimeError(
                    f"distributed worker {worker_id} failed after "
                    f"{attempt + 1} attempts; last failure: {reason}"
                )
            self._note_retry(retries, pass_index, worker_id, attempt, reason)
            attempts[worker_id] = attempt + 1
            launch(worker_id)

        messages: dict[int, bytes] = {}
        pending = set(range(len(shards)))
        all_processes = lambda: list(processes.values()) + retired
        try:
            for worker_id in sorted(pending):
                launch(worker_id)
            # Drain results before joining: a child blocks in ``send``
            # until its (possibly large) message is consumed.  The poll
            # timeout is when death and deadline checks run; a clean
            # exit (code 0) means the message is already in flight, so
            # only abnormal exits and timeouts trigger recovery.
            while pending:
                ready = mp_connection.wait(list(conns.values()), timeout=0.1)
                if not ready:
                    obs.TRACER.count("shard.poll.tick")
                    now = obs.DEFAULT_CLOCK()
                    for worker_id in sorted(pending):
                        process = processes[worker_id]
                        deadline = deadlines[worker_id]
                        if not process.is_alive() and process.exitcode != 0:
                            retry_or_fail(
                                worker_id,
                                f"died with exit code {process.exitcode} "
                                "before reporting a result",
                            )
                        elif deadline is not None and now > deadline:
                            retry_or_fail(
                                worker_id,
                                f"timed out after {self.worker_timeout:.3f}s",
                            )
                    continue
                for conn in ready:
                    worker_id = next(
                        wid for wid, c in conns.items() if c is conn
                    )
                    try:
                        _, message, error = conn.recv()
                    # sketchlint: disable=SL602 retry_or_fail escalates: it relaunches (counting the retry) or raises
                    except EOFError:
                        # The pipe closed with nothing in it: the
                        # worker exited (or was killed) before
                        # reporting.  Reap it for the exit code.
                        processes[worker_id].join()
                        retry_or_fail(
                            worker_id,
                            "died with exit code "
                            f"{processes[worker_id].exitcode} "
                            "before reporting a result",
                        )
                        continue
                    if error is not None:
                        retry_or_fail(worker_id, f"reported an error:\n{error}")
                        continue
                    messages[worker_id] = message
                    pending.discard(worker_id)
                    # Retire the channel so its end-of-stream EOF is
                    # never mistaken for a death on a later poll.
                    conns.pop(worker_id).close()
        except BaseException:
            # Undrained siblings may be blocked writing their messages;
            # joining them would deadlock, so tear the round down.
            for process in all_processes():
                process.terminate()
            for process in all_processes():
                process.join()
            for receiver in conns.values():
                receiver.close()
            raise
        for process in all_processes():
            if process.is_alive():
                # Already reported (its message is in hand) and merely
                # still winding down; don't wait on its exit ceremony.
                process.terminate()
            process.join()
        return [messages[worker_id] for worker_id in range(len(shards))]
