"""Distributed sharded execution: servers sketch, the coordinator sums.

The paper's introduction motivates linear sketching as a *distributed*
primitive: the update stream is split across ``s`` servers, each server
sketches only its own shard, and ``S x = S x^1 + ... + S x^s`` — the
coordinator needs nothing but the sketches.  This module turns that
one-line identity into an executable subsystem:

* :class:`ShardedRunner` shards a :class:`~repro.stream.stream.DynamicStream`
  with the existing disciplines (:func:`~repro.stream.sharding.shard_round_robin`
  or :func:`~repro.stream.sharding.shard_by_edge`), runs one
  sketch-holding worker per shard — in-process (``backend="serial"``) or
  in real OS processes (``backend="mp"``) — and reassembles the workers'
  serialized states at a coordinator;
* every worker→coordinator message is the worker's
  ``shard_state_ints()`` packed by :func:`repro.sketch.serialize.pack_ints`
  — the *same* encoding the Theorem 4 communication game charges for —
  and every coordinator→worker broadcast (the spanner's between-pass
  cluster forest) is measured too, so each run carries a per-round
  :class:`CommunicationReport` in bytes;
* because every sketch update commutes and the coordinator sums exact
  integer (and mod-``p``) cells, the merged state is **bit-identical**
  to the single-machine state, and so is everything decoded from it —
  the property ``tests/integration/test_distributed.py`` pins down.

Algorithms opt in through the sharded-execution protocol on
:class:`~repro.stream.pipeline.StreamingAlgorithm` (``shard_state_ints``
/ ``load_shard_state_ints`` / ``merge_shard`` plus the broadcast pair
for multi-pass algorithms).  The AGM checkers, the two-pass spanner and
the streaming sparsifier pipeline all implement it, so the full paper
pipeline runs distributed end-to-end::

    from functools import partial
    from repro.agm import ConnectivityChecker
    from repro.stream import ShardedRunner

    runner = ShardedRunner(num_servers=4, backend="mp")
    result = runner.run(stream, partial(ConnectivityChecker, n, 7))
    components = result.output
    print(result.communication.summary())

``python -m repro spanner --servers 4 --backend mp`` drives the same
machinery from the command line and verifies the distributed output
against the single-stream run.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue as queue_module
import sys
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro import obs
from repro.sketch.serialize import pack_ints, unpack_ints
from repro.stream.pipeline import StreamingAlgorithm
from repro.stream.sharding import shard_by_edge, shard_round_robin
from repro.stream.stream import DynamicStream
from repro.stream.updates import EdgeUpdate

__all__ = [
    "BACKENDS",
    "DISCIPLINES",
    "RoundTrace",
    "CommunicationReport",
    "DistributedResult",
    "ShardedRunner",
]

#: Supported execution backends.
BACKENDS = ("serial", "mp")

#: Supported sharding disciplines (see :mod:`repro.stream.sharding`).
DISCIPLINES = ("round-robin", "by-edge")


@dataclass(frozen=True)
class RoundTrace:
    """Communication of one round (= one streaming pass).

    ``message_bytes[i]`` is the length of server ``i``'s serialized
    state message (varint-packed ``shard_state_ints``).
    ``broadcast_bytes`` is the serialized size of the coordinator's
    between-pass broadcast *per server* (0 when the pass needs none).
    """

    pass_index: int
    message_bytes: tuple[int, ...]
    #: Uplink messages are varint-coded sketch cells; the broadcast is
    #: structured routing state (the cluster forest), so its size is the
    #: pickle transport encoding actually shipped to worker processes —
    #: an upper bound on, not a varint measure of, its information
    #: content.
    broadcast_bytes: int = 0
    #: Wall-clock seconds the workers (all shards, this round) and the
    #: coordinator merge loop took.  Populated only when tracing is
    #: armed (``obs.TRACER.enabled``); 0.0 otherwise, so equality
    #: comparisons against hand-built traces in tests stay exact.
    worker_seconds: float = 0.0
    merge_seconds: float = 0.0

    def uplink_bytes(self) -> int:
        """Total server→coordinator bytes this round."""
        return sum(self.message_bytes)

    def downlink_bytes(self) -> int:
        """Total coordinator→server bytes this round."""
        return self.broadcast_bytes * len(self.message_bytes)

    def total_bytes(self) -> int:
        """All bytes on the wire this round."""
        return self.uplink_bytes() + self.downlink_bytes()


@dataclass(frozen=True)
class CommunicationReport:
    """Per-round communication accounting for one distributed run."""

    num_servers: int
    rounds: tuple[RoundTrace, ...]

    def uplink_bytes(self) -> int:
        """Total server→coordinator bytes across all rounds."""
        return sum(trace.uplink_bytes() for trace in self.rounds)

    def downlink_bytes(self) -> int:
        """Total coordinator→server bytes across all rounds."""
        return sum(trace.downlink_bytes() for trace in self.rounds)

    def total_bytes(self) -> int:
        """All bytes on the wire across all rounds."""
        return self.uplink_bytes() + self.downlink_bytes()

    def worker_seconds(self) -> float:
        """Total worker wall-clock across rounds (0.0 unless traced)."""
        return sum(trace.worker_seconds for trace in self.rounds)

    def merge_seconds(self) -> float:
        """Total coordinator merge wall-clock (0.0 unless traced)."""
        return sum(trace.merge_seconds for trace in self.rounds)

    def summary(self) -> str:
        """One line per round plus a total, human-readable.

        Round lines carry worker/merge timing when the run was traced
        (``obs.TRACER`` enabled during :meth:`ShardedRunner.run`).
        """
        lines = []
        for trace in self.rounds:
            line = (
                f"round {trace.pass_index}: "
                f"{trace.uplink_bytes():,} B up "
                f"({min(trace.message_bytes):,}-{max(trace.message_bytes):,} B/server), "
                f"{trace.downlink_bytes():,} B down"
            )
            if trace.worker_seconds or trace.merge_seconds:
                line += (
                    f", workers {trace.worker_seconds * 1e3:.1f} ms"
                    f", merge {trace.merge_seconds * 1e3:.1f} ms"
                )
            lines.append(line)
        lines.append(
            f"total over {self.num_servers} servers: {self.total_bytes():,} B"
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class DistributedResult:
    """Outcome of a :meth:`ShardedRunner.run`: the algorithm's output
    (identical to the single-stream output) plus the measured
    communication and the run configuration."""

    output: Any
    communication: CommunicationReport
    num_servers: int
    backend: str
    discipline: str


def _feed_tokens(
    algorithm: StreamingAlgorithm,
    tokens: Sequence[EdgeUpdate],
    pass_index: int,
    batch_size: int | None,
) -> None:
    """One worker pass over its shard (workers never run ``end_pass`` —
    decoding and between-pass computation are coordinator business)."""
    algorithm.begin_pass(pass_index)
    if batch_size is None:
        for update in tokens:
            algorithm.process(update, pass_index)
    else:
        for start in range(0, len(tokens), batch_size):
            algorithm.process_batch(tokens[start : start + batch_size], pass_index)


def _worker_round(
    factory: Callable[[], StreamingAlgorithm],
    tokens: Sequence[EdgeUpdate],
    pass_index: int,
    broadcast: Any,
    batch_size: int | None,
) -> bytes:
    """Run one worker for one round and return its state message.

    Workers are built fresh every round in *both* backends — a pass-1
    worker carries nothing from pass 0 except the coordinator
    broadcast, so serial and mp execution are behaviorally identical
    by construction.
    """
    algorithm = factory()
    if broadcast is not None:
        algorithm.adopt_broadcast(broadcast, pass_index)
    _feed_tokens(algorithm, tokens, pass_index, batch_size)
    return pack_ints(algorithm.shard_state_ints(pass_index))


def _mp_worker_main(queue, worker_id, factory, tokens, pass_index, broadcast, batch_size):
    # Child-process entry point; ships (id, message, error) back.
    try:
        message = _worker_round(factory, tokens, pass_index, broadcast, batch_size)
        queue.put((worker_id, message, None))
    except BaseException:
        queue.put((worker_id, None, traceback.format_exc()))


class ShardedRunner:
    """Execute a shardable streaming algorithm across ``num_servers``.

    Parameters
    ----------
    num_servers:
        Number of shards/workers.
    backend:
        ``"serial"`` runs the workers in-process (deterministic,
        dependency-free); ``"mp"`` forks one OS process per worker and
        ships the ``pack_ints``-serialized states back over a queue.
        Both backends follow the identical message protocol, so their
        results are bit-identical.
    discipline:
        ``"round-robin"`` (tokens dealt across servers — a single
        edge's insert and delete may land on different servers, which
        only a linear sketch survives) or ``"by-edge"``
        (hash-partitioned ingestion).
    shard_seed:
        Seed for the ``by-edge`` router hash.
    batch_size:
        Per-worker chunk size for the batched sketch engine (``None``
        feeds tokens one at a time).
    start_method:
        Multiprocessing start method; default prefers ``fork`` (cheap
        shard hand-off via copy-on-write) and falls back to the
        platform default.
    """

    def __init__(
        self,
        num_servers: int,
        backend: str = "serial",
        discipline: str = "round-robin",
        shard_seed: int | str = 0,
        batch_size: int | None = None,
        start_method: str | None = None,
    ):
        if num_servers < 1:
            raise ValueError(f"num_servers must be >= 1, got {num_servers}")
        normalized_backend = backend.strip().lower()
        if normalized_backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        normalized_discipline = discipline.strip().lower().replace("_", "-")
        if normalized_discipline not in DISCIPLINES:
            raise ValueError(
                f"discipline must be one of {DISCIPLINES}, got {discipline!r}"
            )
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.num_servers = num_servers
        self.backend = normalized_backend
        self.discipline = normalized_discipline
        self.shard_seed = shard_seed
        self.batch_size = batch_size
        if (
            start_method is None
            and sys.platform.startswith("linux")
            and "fork" in multiprocessing.get_all_start_methods()
        ):
            # Linux only: macOS lists fork as available but forking a
            # threaded/framework-touched parent is unsafe there (CPython
            # defaults it to spawn for a reason).
            start_method = "fork"
        self._mp_context = multiprocessing.get_context(start_method)

    def shard(self, stream: DynamicStream) -> list[list[EdgeUpdate]]:
        """Split ``stream`` into per-server token lists."""
        if self.discipline == "round-robin":
            return shard_round_robin(stream, self.num_servers)
        return shard_by_edge(stream, self.num_servers, seed=self.shard_seed)

    def run(
        self,
        stream: DynamicStream,
        factory: Callable[[], StreamingAlgorithm],
    ) -> DistributedResult:
        """Run ``factory()``-built workers over the sharded ``stream``.

        ``factory`` must build a fresh, same-seeded instance on every
        call (all the repo's algorithms derive their randomness from
        their seed argument, so ``functools.partial(Cls, n, seed)`` is
        the canonical factory) and must be picklable for the ``mp``
        backend.  Returns the coordinator's finalized output along with
        the per-round communication accounting.
        """
        shards = self.shard(stream)
        coordinator = factory()
        passes = coordinator.passes_required
        rounds: list[RoundTrace] = []
        for pass_index in range(passes):
            broadcast = (
                coordinator.broadcast_state(pass_index) if pass_index > 0 else None
            )
            broadcast_bytes = len(pickle.dumps(broadcast)) if broadcast is not None else 0
            with obs.TRACER.span(
                "shard.round.workers", pass_index=pass_index
            ) as worker_span:
                if self.backend == "serial":
                    messages = [
                        _worker_round(factory, shard, pass_index, broadcast, self.batch_size)
                        for shard in shards
                    ]
                else:
                    messages = self._run_mp_round(factory, shards, pass_index, broadcast)
            with obs.TRACER.span(
                "shard.round.merge", pass_index=pass_index
            ) as merge_span:
                coordinator.begin_pass(pass_index)
                for message in messages:
                    peer = factory()
                    if broadcast is not None:
                        peer.adopt_broadcast(broadcast, pass_index)
                    peer.load_shard_state_ints(pass_index, unpack_ints(message))
                    coordinator.merge_shard(peer, pass_index)
                coordinator.end_pass(pass_index)
            uplink = sum(len(message) for message in messages)
            obs.TRACER.count("shard.round.uplink_bytes", uplink)
            obs.TRACER.observe("shard.message.bytes", max(len(m) for m in messages))
            rounds.append(
                RoundTrace(
                    pass_index=pass_index,
                    message_bytes=tuple(len(message) for message in messages),
                    broadcast_bytes=broadcast_bytes,
                    worker_seconds=worker_span.elapsed,
                    merge_seconds=merge_span.elapsed,
                )
            )
        output = coordinator.finalize()
        return DistributedResult(
            output=output,
            communication=CommunicationReport(
                num_servers=self.num_servers, rounds=tuple(rounds)
            ),
            num_servers=self.num_servers,
            backend=self.backend,
            discipline=self.discipline,
        )

    def _run_mp_round(
        self,
        factory: Callable[[], StreamingAlgorithm],
        shards: list[list[EdgeUpdate]],
        pass_index: int,
        broadcast: Any,
    ) -> list[bytes]:
        """One round with real worker processes; preserves shard order."""
        ctx = self._mp_context
        queue = ctx.Queue()
        processes = [
            ctx.Process(
                target=_mp_worker_main,
                args=(queue, worker_id, factory, shard, pass_index, broadcast, self.batch_size),
                daemon=True,
            )
            for worker_id, shard in enumerate(shards)
        ]
        for process in processes:
            process.start()
        messages: dict[int, bytes] = {}
        pending = set(range(len(shards)))
        try:
            # Drain results before joining: a child blocks on the queue
            # pipe until its (possibly large) message is consumed.  The
            # timeout lets us notice a worker that died without ever
            # reporting (OOM kill, segfault) instead of hanging forever;
            # a clean exit (code 0) means its message is already in
            # flight, so only abnormal exits abort the round.
            while pending:
                try:
                    worker_id, message, error = queue.get(timeout=1.0)
                except queue_module.Empty:
                    for worker_id, process in enumerate(processes):
                        if (
                            worker_id in pending
                            and not process.is_alive()
                            and process.exitcode != 0
                        ):
                            raise RuntimeError(
                                f"distributed worker {worker_id} died with "
                                f"exit code {process.exitcode} before "
                                "reporting a result"
                            )
                    continue
                if error is not None:
                    raise RuntimeError(
                        f"distributed worker {worker_id} failed:\n{error}"
                    )
                messages[worker_id] = message
                pending.discard(worker_id)
        except BaseException:
            # Undrained siblings may be blocked writing their messages;
            # joining them would deadlock, so tear the round down.
            for process in processes:
                process.terminate()
            for process in processes:
                process.join()
            raise
        for process in processes:
            process.join()
        return [messages[worker_id] for worker_id in range(len(shards))]
