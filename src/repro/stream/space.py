"""Space accounting.

The paper's results are space bounds, so the experiments must *measure*
space rather than assert it.  Convention used throughout the repository:
every sketch object exposes ``space_words()``, the number of persistent
machine words (counters, field elements, hash coefficients) it holds.
One word models ``O(log n)`` bits; reported bit counts multiply by 64.

:class:`SpaceReport` aggregates per-component word counts so experiments
can print a breakdown (e.g. pass-1 cluster sketches vs pass-2 hash
tables) next to the theory's ``~O(k n^{1+1/k})`` target.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SpaceReport"]


@dataclass
class SpaceReport:
    """Named word counts with totals."""

    components: dict[str, int] = field(default_factory=dict)

    def add(self, name: str, words: int) -> None:
        """Accumulate ``words`` under ``name``."""
        if words < 0:
            raise ValueError(f"word count must be >= 0, got {words}")
        self.components[name] = self.components.get(name, 0) + words

    def total_words(self) -> int:
        """Total words across all components."""
        return sum(self.components.values())

    def total_bits(self, bits_per_word: int = 64) -> int:
        """Total bits, assuming ``bits_per_word``-bit words."""
        return self.total_words() * bits_per_word

    def merged(self, other: "SpaceReport") -> "SpaceReport":
        """A new report combining both component maps."""
        result = SpaceReport(dict(self.components))
        for name, words in other.components.items():
            result.add(name, words)
        return result

    def format_table(self) -> str:
        """Human-readable breakdown, largest components first."""
        lines = ["component                          words"]
        for name, words in sorted(self.components.items(), key=lambda kv: -kv[1]):
            lines.append(f"{name:<32} {words:>8}")
        lines.append(f"{'TOTAL':<32} {self.total_words():>8}")
        return "\n".join(lines)
