"""Space accounting.

The paper's results are space bounds, so the experiments must *measure*
space rather than assert it.  Convention used throughout the repository:
every sketch object exposes ``space_words()``, the number of persistent
machine words (counters, field elements, hash coefficients) it holds.
One word models ``O(log n)`` bits; reported bit counts multiply by 64.

Since the sparse vertex-universe engine, "held" is no longer the same as
"addressed": a lazy :class:`~repro.graph.vertex_space.VertexSpace`
materializes per-vertex sketch rows on first touch, so the interesting
number is the **resident** word count (what is actually allocated for
touched vertices) next to the **dense-universe** word count (what an
eager allocation over the full id range would hold — the quantity the
paper's ``~O(n polylog n)`` bounds talk about).  :class:`SpaceReport`
tracks both per component: ``add(name, words)`` keeps the historical
single-number accounting (universe defaults to resident), and callers
that know their dense-universe reference pass ``universe_words``
explicitly.  ``space_words()`` implementations across the repository
report *resident* words — nothing computes space from the universe size
alone anymore; the universe number is only ever a reported reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SpaceReport"]


@dataclass
class SpaceReport:
    """Named word counts with totals (resident and dense-universe)."""

    components: dict[str, int] = field(default_factory=dict)
    universe_components: dict[str, int] = field(default_factory=dict)

    def add(self, name: str, words: int, universe_words: int | None = None) -> None:
        """Accumulate ``words`` (resident) under ``name``.

        ``universe_words`` is what a dense allocation over the vertex
        universe would hold for this component; it defaults to the
        resident count (correct for state that is not vertex-indexed).
        """
        if words < 0:
            raise ValueError(f"word count must be >= 0, got {words}")
        if universe_words is None:
            universe_words = words
        if universe_words < words:
            raise ValueError(
                f"universe words ({universe_words}) cannot be below resident "
                f"words ({words}) for {name!r}"
            )
        self.components[name] = self.components.get(name, 0) + words
        self.universe_components[name] = (
            self.universe_components.get(name, 0) + universe_words
        )

    def total_words(self) -> int:
        """Total *resident* words across all components."""
        return sum(self.components.values())

    def universe_words(self) -> int:
        """Total words of a dense-universe allocation (>= resident)."""
        return sum(self.universe_components.values())

    def total_bits(self, bits_per_word: int = 64) -> int:
        """Total resident bits, assuming ``bits_per_word``-bit words."""
        return self.total_words() * bits_per_word

    def merged(self, other: "SpaceReport") -> "SpaceReport":
        """A new report combining both component maps."""
        result = SpaceReport(dict(self.components), dict(self.universe_components))
        for name, words in other.components.items():
            result.add(name, words, other.universe_components.get(name, words))
        return result

    def format_table(self) -> str:
        """Human-readable breakdown, largest components first.

        A ``universe`` column appears only when some component's
        dense-universe reference differs from its resident count (the
        lazy-engine regime).
        """
        sparse = self.universe_words() != self.total_words()
        if sparse:
            lines = ["component                          resident     universe"]
        else:
            lines = ["component                          words"]
        for name, words in sorted(self.components.items(), key=lambda kv: -kv[1]):
            if sparse:
                lines.append(
                    f"{name:<32} {words:>10} {self.universe_components.get(name, words):>12}"
                )
            else:
                lines.append(f"{name:<32} {words:>8}")
        if sparse:
            lines.append(
                f"{'TOTAL':<32} {self.total_words():>10} {self.universe_words():>12}"
            )
        else:
            lines.append(f"{'TOTAL':<32} {self.total_words():>8}")
        return "\n".join(lines)
