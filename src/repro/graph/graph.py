"""Undirected weighted graph container.

This is the *offline* graph representation used for inputs to stream
generators, outputs of the streaming algorithms (spanners, sparsifiers,
forests) and for verification (distances, Laplacians, cuts).  The
streaming algorithms themselves never hold a :class:`Graph` of the input —
they only see updates — which is what the space accounting measures.

Vertices are integers ``0..n-1``.  Edges are unordered pairs with a
positive weight (the paper's model: weighted edges are inserted and
removed whole; multiplicity is a property of the *stream*, not of the
final graph).
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = ["Graph", "edge_index", "edge_from_index"]


def edge_index(u: int, v: int, num_vertices: int) -> int:
    """Map an unordered vertex pair to a stable index in ``[0, n^2)``.

    The sketches treat the graph as a vector indexed by vertex pairs;
    this is that indexing.  (We spend a factor ~2 over ``C(n, 2)`` for a
    branch-free encode/decode; sketch space depends only on the number of
    *cells*, not the domain size, so this is free.)
    """
    if u == v:
        raise ValueError(f"self-loops are not allowed (vertex {u})")
    if not (0 <= u < num_vertices and 0 <= v < num_vertices):
        raise ValueError(f"vertices ({u}, {v}) out of range [0, {num_vertices})")
    if u > v:
        u, v = v, u
    return u * num_vertices + v


def edge_from_index(index: int, num_vertices: int) -> tuple[int, int]:
    """Inverse of :func:`edge_index`."""
    u, v = divmod(index, num_vertices)
    if not (0 <= u < v < num_vertices):
        raise ValueError(f"index {index} does not encode a valid edge")
    return (u, v)


class Graph:
    """Simple undirected graph with positive edge weights.

    Parameters
    ----------
    num_vertices:
        Number of vertices; vertex ids are ``0..num_vertices-1``.
    """

    __slots__ = ("num_vertices", "_adjacency", "_num_edges")

    def __init__(self, num_vertices: int):
        if num_vertices <= 0:
            raise ValueError(f"num_vertices must be positive, got {num_vertices}")
        self.num_vertices = num_vertices
        # Adjacency is keyed by vertex and allocated on first touch, so a
        # Graph over a huge sparse universe (the lazy VertexSpace regime)
        # costs O(edges), not O(num_vertices) — vertices without entries
        # simply have no neighbors.
        self._adjacency: dict[int, dict[int, float]] = {}
        self._num_edges = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Insert edge ``{u, v}`` with ``weight`` (replaces any existing)."""
        self._check_pair(u, v)
        if weight <= 0:
            raise ValueError(f"edge weight must be positive, got {weight}")
        row = self._adjacency.setdefault(u, {})
        if v not in row:
            self._num_edges += 1
        row[v] = weight
        self._adjacency.setdefault(v, {})[u] = weight

    def remove_edge(self, u: int, v: int) -> None:
        """Delete edge ``{u, v}``; raises ``KeyError`` if absent."""
        self._check_pair(u, v)
        del self._adjacency[u][v]
        del self._adjacency[v][u]
        self._num_edges -= 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def has_edge(self, u: int, v: int) -> bool:
        """Whether edge ``{u, v}`` is present."""
        self._check_pair(u, v)
        return v in self._adjacency.get(u, ())

    def weight(self, u: int, v: int) -> float:
        """Weight of edge ``{u, v}``; raises ``KeyError`` if absent."""
        return self._adjacency[u][v]

    def degree(self, u: int) -> int:
        """Number of edges incident on ``u``."""
        self._check_vertex(u)
        return len(self._adjacency.get(u, ()))

    def neighbors(self, u: int) -> Iterator[int]:
        """Iterate over the neighbors of ``u``."""
        self._check_vertex(u)
        return iter(self._adjacency.get(u, ()))

    def neighbor_weights(self, u: int) -> Iterator[tuple[int, float]]:
        """Iterate over ``(neighbor, weight)`` pairs of ``u``."""
        self._check_vertex(u)
        row = self._adjacency.get(u)
        return iter(row.items()) if row else iter(())

    def num_edges(self) -> int:
        """Number of edges."""
        return self._num_edges

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate over edges as ``(u, v, weight)`` with ``u < v``."""
        for u in sorted(self._adjacency):
            for v, weight in self._adjacency[u].items():
                if u < v:
                    yield (u, v, weight)

    def edge_set(self) -> set[tuple[int, int]]:
        """The set of edges as ``(u, v)`` pairs with ``u < v``."""
        return {(u, v) for u, v, _ in self.edges()}

    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return sum(weight for _, _, weight in self.edges())

    def is_connected(self) -> bool:
        """Whether the graph is connected (trivially true for n=1)."""
        if self.num_vertices <= 1:
            return True
        seen = {0}
        frontier = [0]
        while frontier:
            u = frontier.pop()
            for v in self._adjacency.get(u, ()):
                if v not in seen:
                    seen.add(v)
                    frontier.append(v)
        return len(seen) == self.num_vertices

    def connected_components(self) -> list[set[int]]:
        """Connected components as vertex sets."""
        seen: set[int] = set()
        components = []
        for start in range(self.num_vertices):
            if start in seen:
                continue
            component = {start}
            frontier = [start]
            while frontier:
                u = frontier.pop()
                for v in self._adjacency.get(u, ()):
                    if v not in component:
                        component.add(v)
                        frontier.append(v)
            seen |= component
            components.append(component)
        return components

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------

    def copy(self) -> "Graph":
        """Deep copy."""
        clone = Graph(self.num_vertices)
        for u, v, weight in self.edges():
            clone.add_edge(u, v, weight)
        return clone

    def subgraph_of_edges(self, edges: Iterable[tuple[int, int]]) -> "Graph":
        """Subgraph on the same vertex set containing only ``edges``
        (weights copied from this graph; absent pairs raise)."""
        sub = Graph(self.num_vertices)
        for u, v in edges:
            sub.add_edge(u, v, self.weight(u, v))
        return sub

    @classmethod
    def from_edges(
        cls, num_vertices: int, edges: Iterable[tuple[int, int] | tuple[int, int, float]]
    ) -> "Graph":
        """Build a graph from ``(u, v)`` or ``(u, v, weight)`` tuples."""
        graph = cls(num_vertices)
        for edge in edges:
            if len(edge) == 2:
                u, v = edge  # type: ignore[misc]
                graph.add_edge(u, v)
            else:
                u, v, weight = edge  # type: ignore[misc]
                graph.add_edge(u, v, weight)
        return graph

    def _check_vertex(self, u: int) -> None:
        if not 0 <= u < self.num_vertices:
            raise ValueError(f"vertex {u} out of range [0, {self.num_vertices})")

    def _check_pair(self, u: int, v: int) -> None:
        if u == v:
            raise ValueError(f"self-loops are not allowed (vertex {u})")
        if not (0 <= u < self.num_vertices and 0 <= v < self.num_vertices):
            raise ValueError(f"vertices ({u}, {v}) out of range [0, {self.num_vertices})")

    def __repr__(self) -> str:
        return f"Graph(num_vertices={self.num_vertices}, num_edges={self._num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if self.num_vertices != other.num_vertices:
            return False
        return dict(self._edge_weight_items()) == dict(other._edge_weight_items())

    def _edge_weight_items(self) -> Iterator[tuple[tuple[int, int], float]]:
        for u, v, weight in self.edges():
            yield ((u, v), weight)
