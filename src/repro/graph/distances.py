"""Shortest-path machinery and spanner-quality evaluation.

Used only for verification and benchmarking — the streaming algorithms
never run BFS on the input (they cannot: they hold sketches, not edges).

Definitions follow the paper:

* multiplicative ``t``-spanner (Definition 5):
  ``d_G(u,v) <= d_H(u,v) <= t * d_G(u,v)`` for all pairs;
* additive ``t``-spanner:
  ``d_G(u,v) <= d_H(u,v) <= d_G(u,v) + t`` for all pairs (unweighted).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from repro.graph.graph import Graph
from repro.util.rng import rng_from_seed

__all__ = [
    "bfs_distances",
    "dijkstra_distances",
    "distance",
    "StretchReport",
    "evaluate_multiplicative_stretch",
    "evaluate_additive_error",
]


def bfs_distances(graph: Graph, source: int, cutoff: float | None = None) -> dict[int, int]:
    """Unweighted (hop) distances from ``source``; omits unreachable nodes.

    ``cutoff`` stops the search once distances exceed it — the sparsifier's
    connectivity tests only care whether the distance exceeds a threshold,
    and truncated BFS keeps those tests cheap.
    """
    distances = {source: 0}
    frontier = [source]
    depth = 0
    while frontier:
        if cutoff is not None and depth >= cutoff:
            break
        depth += 1
        next_frontier = []
        for u in frontier:
            for v in graph.neighbors(u):
                if v not in distances:
                    distances[v] = depth
                    next_frontier.append(v)
        frontier = next_frontier
    return distances


def dijkstra_distances(graph: Graph, source: int, cutoff: float | None = None) -> dict[int, float]:
    """Weighted distances from ``source``; omits unreachable nodes."""
    distances: dict[int, float] = {}
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        dist, u = heapq.heappop(heap)
        if u in distances:
            continue
        if cutoff is not None and dist > cutoff:
            continue
        distances[u] = dist
        for v, weight in graph.neighbor_weights(u):
            if v not in distances:
                heapq.heappush(heap, (dist + weight, v))
    return distances


def distance(graph: Graph, u: int, v: int, weighted: bool = False, cutoff: float | None = None) -> float:
    """Distance between ``u`` and ``v``; ``math.inf`` if disconnected."""
    if u == v:
        return 0.0
    if weighted:
        found = dijkstra_distances(graph, u, cutoff=cutoff)
    else:
        found = bfs_distances(graph, u, cutoff=cutoff)
    return float(found.get(v, math.inf))


@dataclass(frozen=True)
class StretchReport:
    """Worst/mean stretch of a subgraph against its base graph.

    ``max_stretch`` is ``inf`` when the subgraph disconnects a pair that
    the base graph connects (a spanner must never do that).
    """

    max_stretch: float
    mean_stretch: float
    pairs_checked: int

    def within(self, stretch_bound: float) -> bool:
        """Whether every checked pair is within ``stretch_bound``."""
        return self.max_stretch <= stretch_bound + 1e-9


def _sample_pairs(num_vertices: int, sample_pairs: int | None, seed: int) -> list[tuple[int, int]] | None:
    if sample_pairs is None:
        return None
    rng = rng_from_seed(seed, "stretch-pairs")
    pairs = []
    for _ in range(sample_pairs):
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u != v:
            pairs.append((min(u, v), max(u, v)))
    return pairs


def evaluate_multiplicative_stretch(
    graph: Graph,
    spanner: Graph,
    weighted: bool = False,
    sample_pairs: int | None = None,
    seed: int = 0,
) -> StretchReport:
    """Measure ``max/mean d_H(u,v) / d_G(u,v)`` over connected pairs.

    With ``sample_pairs=None`` all pairs are checked (single-source
    searches from every vertex); otherwise a seeded random pair sample is
    used, which is how the benchmarks keep large instances affordable.
    """
    pairs = _sample_pairs(graph.num_vertices, sample_pairs, seed)
    ratios: list[float] = []
    worst = 0.0

    def search(g: Graph, source: int) -> dict[int, float]:
        if weighted:
            return dijkstra_distances(g, source)
        return {k: float(v) for k, v in bfs_distances(g, source).items()}

    if pairs is None:
        sources = range(graph.num_vertices)
    else:
        sources = sorted({u for u, _ in pairs})
    wanted: dict[int, set[int]] | None = None
    if pairs is not None:
        wanted = {}
        for u, v in pairs:
            wanted.setdefault(u, set()).add(v)

    for source in sources:
        base = search(graph, source)
        over = search(spanner, source)
        targets = wanted[source] if wanted is not None else base.keys()
        for target in targets:
            if target == source:
                continue
            base_dist = base.get(target)
            if base_dist is None or base_dist == 0:
                continue  # disconnected in G: no requirement
            span_dist = over.get(target, math.inf)
            ratio = span_dist / base_dist
            ratios.append(ratio)
            worst = max(worst, ratio)
    if not ratios:
        return StretchReport(max_stretch=1.0, mean_stretch=1.0, pairs_checked=0)
    finite = [r for r in ratios if math.isfinite(r)]
    mean = sum(finite) / len(finite) if finite else math.inf
    return StretchReport(max_stretch=worst, mean_stretch=mean, pairs_checked=len(ratios))


def evaluate_additive_error(
    graph: Graph,
    spanner: Graph,
    sample_pairs: int | None = None,
    seed: int = 0,
) -> tuple[float, int]:
    """Worst additive error ``max d_H(u,v) - d_G(u,v)`` (hop metric).

    Returns ``(max_error, pairs_checked)``; error is ``inf`` if the
    spanner disconnects a connected pair.
    """
    pairs = _sample_pairs(graph.num_vertices, sample_pairs, seed)
    worst = 0.0
    checked = 0
    if pairs is None:
        sources = range(graph.num_vertices)
        wanted = None
    else:
        sources = sorted({u for u, _ in pairs})
        wanted = {}
        for u, v in pairs:
            wanted.setdefault(u, set()).add(v)
    for source in sources:
        base = bfs_distances(graph, source)
        over = bfs_distances(spanner, source)
        targets = wanted[source] if wanted is not None else base.keys()
        for target in targets:
            if target == source:
                continue
            if target not in base:
                continue
            span_dist = over.get(target, math.inf)
            worst = max(worst, span_dist - base[target])
            checked += 1
    return (worst, checked)
