"""Effective resistances (the sampling weights of Theorem 7 / [SS08]).

``R_e`` for an edge ``e = (u, v)`` is the potential difference across
``e`` when a unit current is injected at ``u`` and extracted at ``v`` in
the electrical network where each edge has conductance ``w_e``.  In
matrix form ``R_uv = (chi_u - chi_v)^T L^+ (chi_u - chi_v)``.

Dense pseudoinverse computation — used by the Spielman–Srivastava
baseline and by tests that validate the sparsifier pipeline's sampling
rates against the quantity they are meant to approximate.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.graph.laplacian import laplacian_matrix

__all__ = ["resistance_matrix", "effective_resistance", "edge_resistances"]


def resistance_matrix(graph: Graph) -> np.ndarray:
    """All-pairs effective resistances (``inf``-free only if connected).

    For pairs in different components the returned value is meaningless;
    callers are expected to query pairs joined by an edge or to check
    connectivity first.
    """
    pinv = np.linalg.pinv(laplacian_matrix(graph))
    diag = np.diag(pinv)
    return diag[:, None] + diag[None, :] - 2.0 * pinv


def effective_resistance(graph: Graph, u: int, v: int) -> float:
    """Effective resistance between ``u`` and ``v``."""
    return float(resistance_matrix(graph)[u, v])


def edge_resistances(graph: Graph) -> dict[tuple[int, int], float]:
    """Effective resistance of every edge, keyed by ``(u, v)`` with u<v."""
    matrix = resistance_matrix(graph)
    return {(u, v): float(matrix[u, v]) for u, v, _ in graph.edges()}
