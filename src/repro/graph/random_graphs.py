"""Workload graph generators.

The paper has no testbed, so these synthetic families are the workloads
the experiments run on.  Families were chosen to exercise the claims:

* ``random_gnp`` / ``random_gnm`` — the generic dense/sparse regime for
  spanner size and sparsifier quality;
* ``power_law_graph`` (Chung–Lu) — the skewed-degree "social network"
  motivation from the introduction, and the high/low degree split the
  additive spanner's analysis revolves around;
* ``cycle_graph`` / ``path_graph`` / ``grid_graph`` — high-diameter
  instances where stretch is actually stressed;
* ``barbell_graph`` — low-conductance bottleneck, the hard case for cut
  and spectral approximation;
* ``disjoint_cliques_with_path`` — the Theorem 4 lower-bound instance
  shape.

All generators are seeded and deterministic.
"""

from __future__ import annotations

import math

from repro.graph.graph import Graph
from repro.util.rng import rng_from_seed

__all__ = [
    "random_gnp",
    "random_gnm",
    "connected_gnp",
    "cycle_graph",
    "path_graph",
    "grid_graph",
    "complete_graph",
    "barbell_graph",
    "power_law_graph",
    "disjoint_cliques_with_path",
    "with_random_weights",
]


def random_gnp(num_vertices: int, p: float, seed: int | str) -> Graph:
    """Erdős–Rényi ``G(n, p)``."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    rng = rng_from_seed(seed, "gnp", num_vertices, p)
    graph = Graph(num_vertices)
    for u in range(num_vertices):
        for v in range(u + 1, num_vertices):
            if rng.random() < p:
                graph.add_edge(u, v)
    return graph


def random_gnm(num_vertices: int, num_edges: int, seed: int | str) -> Graph:
    """Uniform graph with exactly ``num_edges`` edges."""
    max_edges = num_vertices * (num_vertices - 1) // 2
    if num_edges > max_edges:
        raise ValueError(f"num_edges {num_edges} exceeds maximum {max_edges}")
    rng = rng_from_seed(seed, "gnm", num_vertices, num_edges)
    graph = Graph(num_vertices)
    added = 0
    while added < num_edges:
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
            added += 1
    return graph


def connected_gnp(num_vertices: int, p: float, seed: int | str) -> Graph:
    """``G(n, p)`` plus a random Hamiltonian path to force connectivity.

    Keeps expected density ~``p`` while guaranteeing every pair has a
    finite distance, which simplifies stretch accounting in experiments.
    """
    graph = random_gnp(num_vertices, p, seed)
    rng = rng_from_seed(seed, "connector", num_vertices)
    order = list(range(num_vertices))
    rng.shuffle(order)
    for i in range(num_vertices - 1):
        u, v = order[i], order[i + 1]
        if not graph.has_edge(u, v):
            graph.add_edge(u, v)
    return graph


def cycle_graph(num_vertices: int) -> Graph:
    """The ``n``-cycle."""
    graph = Graph(num_vertices)
    for u in range(num_vertices):
        graph.add_edge(u, (u + 1) % num_vertices)
    return graph


def path_graph(num_vertices: int) -> Graph:
    """The ``n``-path."""
    graph = Graph(num_vertices)
    for u in range(num_vertices - 1):
        graph.add_edge(u, u + 1)
    return graph


def grid_graph(rows: int, cols: int) -> Graph:
    """The ``rows x cols`` grid."""
    graph = Graph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                graph.add_edge(node, node + 1)
            if r + 1 < rows:
                graph.add_edge(node, node + cols)
    return graph


def complete_graph(num_vertices: int) -> Graph:
    """The complete graph ``K_n``."""
    graph = Graph(num_vertices)
    for u in range(num_vertices):
        for v in range(u + 1, num_vertices):
            graph.add_edge(u, v)
    return graph


def barbell_graph(clique_size: int, bridge_length: int = 1) -> Graph:
    """Two ``K_m`` cliques joined by a path of ``bridge_length`` edges."""
    n = 2 * clique_size + max(0, bridge_length - 1)
    graph = Graph(n)
    for u in range(clique_size):
        for v in range(u + 1, clique_size):
            graph.add_edge(u, v)
            graph.add_edge(clique_size + u, clique_size + v)
    left_anchor = 0
    right_anchor = clique_size
    if bridge_length == 1:
        graph.add_edge(left_anchor, right_anchor)
    else:
        previous = left_anchor
        for i in range(bridge_length - 1):
            middle = 2 * clique_size + i
            graph.add_edge(previous, middle)
            previous = middle
        graph.add_edge(previous, right_anchor)
    return graph


def power_law_graph(num_vertices: int, exponent: float, seed: int | str, mean_degree: float = 4.0) -> Graph:
    """Chung–Lu graph with power-law expected degrees.

    Vertex ``i`` gets expected degree ``~ (i+1)^(-1/(exponent-1))``
    rescaled to ``mean_degree``; edges appear independently with
    probability ``min(1, w_u w_v / sum_w)``.
    """
    if exponent <= 1.0:
        raise ValueError(f"exponent must exceed 1, got {exponent}")
    rng = rng_from_seed(seed, "powerlaw", num_vertices, exponent)
    raw = [(i + 1.0) ** (-1.0 / (exponent - 1.0)) for i in range(num_vertices)]
    scale = mean_degree * num_vertices / sum(raw)
    weights = [w * scale for w in raw]
    total = sum(weights)
    graph = Graph(num_vertices)
    for u in range(num_vertices):
        for v in range(u + 1, num_vertices):
            probability = min(1.0, weights[u] * weights[v] / total)
            if rng.random() < probability:
                graph.add_edge(u, v)
    return graph


def disjoint_cliques_with_path(num_blocks: int, block_size: int, p: float, seed: int | str) -> Graph:
    """``num_blocks`` disjoint ``G(block_size, p)`` blocks plus a path of
    single edges linking consecutive blocks — the Theorem 4 hard-instance
    shape (Alice's blocks, Bob's path)."""
    n = num_blocks * block_size
    rng = rng_from_seed(seed, "blocks", num_blocks, block_size, p)
    graph = Graph(n)
    for block in range(num_blocks):
        base = block * block_size
        for i in range(block_size):
            for j in range(i + 1, block_size):
                if rng.random() < p:
                    graph.add_edge(base + i, base + j)
    for block in range(num_blocks - 1):
        u = block * block_size + rng.randrange(block_size)
        v = (block + 1) * block_size + rng.randrange(block_size)
        graph.add_edge(u, v)
    return graph


def with_random_weights(
    graph: Graph, seed: int | str, w_min: float = 1.0, w_max: float = 16.0
) -> Graph:
    """Copy of ``graph`` with log-uniform random weights in [w_min, w_max].

    Log-uniform exercises the paper's geometric weight-class reduction
    (Remark 14) across several classes.
    """
    if w_min <= 0 or w_max < w_min:
        raise ValueError(f"need 0 < w_min <= w_max, got ({w_min}, {w_max})")
    rng = rng_from_seed(seed, "weights")
    weighted = Graph(graph.num_vertices)
    for u, v, _ in graph.edges():
        weight = math.exp(rng.uniform(math.log(w_min), math.log(w_max)))
        weighted.add_edge(u, v, weight)
    return weighted
