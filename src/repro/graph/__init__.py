"""Offline graph substrate: containers, metrics and workload generators.

These utilities exist to *verify and benchmark* the streaming algorithms;
the streaming algorithms themselves only consume updates and sketches.
"""

from repro.graph.cuts import cut_value, max_cut_discrepancy, sample_cuts
from repro.graph.distances import (
    StretchReport,
    bfs_distances,
    dijkstra_distances,
    distance,
    evaluate_additive_error,
    evaluate_multiplicative_stretch,
)
from repro.graph.graph import Graph, edge_from_index, edge_index
from repro.graph.vertex_space import MAX_UNIVERSE, VertexSpace, as_vertex_space
from repro.graph.metrics import (
    DegreeSummary,
    degree_summary,
    diameter,
    eccentricity,
    girth,
)
from repro.graph.laplacian import (
    SpectralBounds,
    laplacian_matrix,
    quadratic_form,
    spectral_approximation,
)
from repro.graph.random_graphs import (
    barbell_graph,
    complete_graph,
    connected_gnp,
    cycle_graph,
    disjoint_cliques_with_path,
    grid_graph,
    path_graph,
    power_law_graph,
    random_gnm,
    random_gnp,
    with_random_weights,
)
from repro.graph.resistance import edge_resistances, effective_resistance, resistance_matrix

__all__ = [
    "Graph",
    "edge_index",
    "edge_from_index",
    "VertexSpace",
    "as_vertex_space",
    "MAX_UNIVERSE",
    "bfs_distances",
    "dijkstra_distances",
    "distance",
    "StretchReport",
    "evaluate_multiplicative_stretch",
    "evaluate_additive_error",
    "eccentricity",
    "diameter",
    "girth",
    "DegreeSummary",
    "degree_summary",
    "laplacian_matrix",
    "quadratic_form",
    "SpectralBounds",
    "spectral_approximation",
    "resistance_matrix",
    "effective_resistance",
    "edge_resistances",
    "cut_value",
    "sample_cuts",
    "max_cut_discrepancy",
    "random_gnp",
    "random_gnm",
    "connected_gnp",
    "cycle_graph",
    "path_graph",
    "grid_graph",
    "complete_graph",
    "barbell_graph",
    "power_law_graph",
    "disjoint_cliques_with_path",
    "with_random_weights",
]
