"""Global graph metrics used by experiments and workload characterization.

These complement :mod:`repro.graph.distances` (which is pairwise):
diameter/eccentricity summarize how much room a stretch guarantee has to
bite, girth witnesses spanner size bounds (a ``t``-spanner with girth
``> t + 1`` is size-optimal), and degree statistics characterize the
high/low split the additive spanner's analysis depends on.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass

from repro.graph.distances import bfs_distances
from repro.graph.graph import Graph

__all__ = ["eccentricity", "diameter", "girth", "DegreeSummary", "degree_summary"]


def eccentricity(graph: Graph, vertex: int) -> float:
    """Largest hop distance from ``vertex`` to any reachable vertex.

    ``inf`` if some vertex is unreachable (disconnected graph).
    """
    found = bfs_distances(graph, vertex)
    if len(found) < graph.num_vertices:
        return math.inf
    return float(max(found.values()))


def diameter(graph: Graph) -> float:
    """Largest hop distance between any connected pair.

    For a disconnected graph, returns the largest *finite* eccentricity
    over components (``0`` for an edgeless graph).
    """
    worst = 0.0
    for vertex in range(graph.num_vertices):
        found = bfs_distances(graph, vertex)
        if found:
            worst = max(worst, float(max(found.values())))
    return worst


def girth(graph: Graph) -> float:
    """Length of the shortest cycle; ``inf`` for forests.

    BFS from every vertex; a non-tree edge closing a BFS level witnesses
    a cycle of length ``d(u) + d(v) + 1`` (or ``+ 2`` within a level) —
    the standard ``O(nm)`` exact algorithm for unweighted graphs is
    implemented via parent tracking.
    """
    best = math.inf
    for source in range(graph.num_vertices):
        distance = {source: 0}
        parent = {source: -1}
        frontier = [source]
        while frontier:
            next_frontier = []
            for u in frontier:
                for v in graph.neighbors(u):
                    if v not in distance:
                        distance[v] = distance[u] + 1
                        parent[v] = u
                        next_frontier.append(v)
                    elif parent[u] != v:
                        # Non-tree edge: cycle through the BFS tree.
                        best = min(best, distance[u] + distance[v] + 1)
            frontier = next_frontier
    return best


@dataclass(frozen=True)
class DegreeSummary:
    """Degree distribution statistics."""

    minimum: int
    maximum: int
    mean: float
    median: float

    def skew(self) -> float:
        """``max / mean`` — heavy-tail indicator (1.0 = regular)."""
        if self.mean == 0:
            return 1.0
        return self.maximum / self.mean


def degree_summary(graph: Graph) -> DegreeSummary:
    """Summarize the degree distribution of ``graph``."""
    degrees = [graph.degree(u) for u in range(graph.num_vertices)]
    return DegreeSummary(
        minimum=min(degrees),
        maximum=max(degrees),
        mean=sum(degrees) / len(degrees),
        median=float(statistics.median(degrees)),
    )
