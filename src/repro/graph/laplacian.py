"""Graph Laplacians and the spectral partial order (Definition 6).

A weighted graph ``H`` is an ``eps``-spectral sparsifier of ``G`` when

    (1 - eps) x^T L_G x  <=  x^T L_H x  <=  (1 + eps) x^T L_G x

for all ``x`` (Corollary 2's guarantee).  :func:`spectral_approximation`
computes the tight constants by whitening with the pseudoinverse square
root of ``L_G`` and reading off extreme eigenvalues, which is the exact
(dense) form of the check — fine at verification scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph

__all__ = [
    "laplacian_matrix",
    "quadratic_form",
    "SpectralBounds",
    "spectral_approximation",
]

#: Relative eigenvalue threshold below which directions are treated as the
#: Laplacian nullspace (connected components).
_NULLSPACE_RTOL = 1e-9


def laplacian_matrix(graph: Graph) -> np.ndarray:
    """Dense weighted Laplacian ``L(i,j) = -w(i,j)``, ``L(i,i) = sum_j w(i,j)``."""
    n = graph.num_vertices
    lap = np.zeros((n, n), dtype=float)
    for u, v, weight in graph.edges():
        lap[u, u] += weight
        lap[v, v] += weight
        lap[u, v] -= weight
        lap[v, u] -= weight
    return lap


def quadratic_form(graph: Graph, x: np.ndarray) -> float:
    """``x^T L_G x`` computed edge-wise: ``sum_e w_e (x_u - x_v)^2``."""
    total = 0.0
    for u, v, weight in graph.edges():
        diff = x[u] - x[v]
        total += weight * diff * diff
    return float(total)


@dataclass(frozen=True)
class SpectralBounds:
    """Extreme generalized eigenvalues of ``(L_H, L_G)`` on range(L_G)."""

    low: float
    high: float

    def epsilon(self) -> float:
        """Smallest ``eps`` with ``(1-eps) G <= H <= (1+eps) G``."""
        return max(1.0 - self.low, self.high - 1.0)

    def is_sparsifier(self, eps: float) -> bool:
        """Whether ``H`` is an ``eps``-spectral sparsifier of ``G``."""
        return self.epsilon() <= eps + 1e-9


def spectral_approximation(graph: Graph, candidate: Graph) -> SpectralBounds:
    """Tight constants ``low <= x^T L_H x / x^T L_G x <= high``.

    Directions in the nullspace of ``L_G`` (one per connected component)
    are excluded; if ``L_H`` acts on such a direction (i.e. the candidate
    connects vertices the base graph does not) the bounds are infinite.
    """
    if graph.num_vertices != candidate.num_vertices:
        raise ValueError("graphs must share a vertex set")
    base = laplacian_matrix(graph)
    cand = laplacian_matrix(candidate)

    eigenvalues, eigenvectors = np.linalg.eigh(base)
    scale = max(float(eigenvalues[-1]), 1.0)
    keep = eigenvalues > _NULLSPACE_RTOL * scale
    if not np.any(keep):
        return SpectralBounds(low=1.0, high=1.0)  # both graphs empty

    null_vectors = eigenvectors[:, ~keep]
    # Candidate energy on G's nullspace must vanish for finite bounds.
    null_energy = np.linalg.norm(cand @ null_vectors)
    if null_energy > 1e-6 * max(1.0, np.linalg.norm(cand)):
        return SpectralBounds(low=0.0, high=math.inf)

    inv_sqrt = eigenvectors[:, keep] / np.sqrt(eigenvalues[keep])
    whitened = inv_sqrt.T @ cand @ inv_sqrt
    whitened = (whitened + whitened.T) / 2.0
    spectrum = np.linalg.eigvalsh(whitened)
    return SpectralBounds(low=float(spectrum[0]), high=float(spectrum[-1]))
