"""Vertex universes: dense ranges, sparse gigascale ids, interned labels.

The paper's sketches are *linear maps over the edge-incidence domain*:
their state is well defined for any vertex universe, and every space
bound is stated in the universe size ``n`` — yet only rows for vertices
actually incident to stream edges ever hold nonzero state.  Historically
every layer of this repository took ``num_vertices: int`` and eagerly
allocated dense per-vertex state, capping sessions at universes that fit
in RAM.  :class:`VertexSpace` decouples the three roles that single
integer used to play:

* the **universe size** — the logical id range, which seeds every hash
  family and sizes the edge-coordinate domain ``n^2`` (two spaces with
  equal universe sizes derive identical randomness, so their sketches
  stay summable regardless of storage);
* the **storage policy** — ``lazy`` universes tell the columnar engine
  (:mod:`repro.sketch.columnar`) to materialize sketch rows on first
  touch instead of allocating ``n x O(log n)`` cells up front, keeping
  resident state proportional to *touched* vertices;
* the **external id map** — interned spaces accept arbitrary external
  ids (ints up to ``2^32``, or strings) and assign each a stable logical
  index on first sight.  Hash and seed derivation remain pure functions
  of the *logical* index, never of materialization order, so two
  sessions that intern the same externals in the same order hold
  bit-identical sketches.

Every algorithm constructor that used to take ``num_vertices: int``
still does — a plain int coerces to :meth:`VertexSpace.dense`, which
reproduces the historical dense engine bit for bit.  Pass
:meth:`VertexSpace.sparse` (huge int universes) or
:meth:`VertexSpace.interned` (external ids) to flip the same code onto
lazy storage.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["VertexSpace", "as_vertex_space", "MAX_UNIVERSE"]

#: Largest supported universe: pair coordinates are ``u * n + v < n^2``
#: and the columnar engine's per-cell ``int64`` overflow guard needs a
#: unit-delta contribution ``|delta| * index < 2^61`` to stay on its
#: vectorized path, so ``n <= floor(sqrt(2^61))`` (~1.5 * 10^9).
#: Larger external id ranges (e.g. full 32-bit ids, or strings) go
#: through :meth:`VertexSpace.interned`, whose *logical* universe is the
#: declared session capacity, not the external id range.
MAX_UNIVERSE = 1_518_500_249  # floor(sqrt(2^61))

#: Kinds of external-id handling.
_ID_KINDS = (None, "ints", "strings")


class VertexSpace:
    """A vertex universe: logical size, storage policy, external ids.

    Parameters
    ----------
    universe_size:
        Number of logical vertex ids ``0..universe_size-1``.  Seeds and
        edge coordinates derive from this, so it is part of every
        sketch's identity.
    ids:
        ``None`` — external ids *are* the logical ids (ints in
        ``[0, universe_size)``).  ``"ints"`` / ``"strings"`` — external
        ids are arbitrary (32-bit ints / strings) and are interned to
        logical ids on first sight; ``universe_size`` is then the
        session's declared capacity of *distinct* ids.
    lazy:
        Whether sketch engines should materialize per-vertex rows on
        first touch.  Defaults to ``True`` for interned spaces and for
        identity spaces, ``False`` only through :meth:`dense` (plain-int
        coercion), which preserves the historical eager engine exactly.
    """

    __slots__ = ("universe_size", "ids", "lazy", "_intern", "_externals")

    def __init__(self, universe_size: int, ids: str | None = None, lazy: bool | None = None):
        if universe_size <= 0:
            raise ValueError(f"universe_size must be positive, got {universe_size}")
        if universe_size > MAX_UNIVERSE:
            raise ValueError(
                f"universe_size {universe_size} exceeds {MAX_UNIVERSE} "
                "(floor(sqrt(2^61))); pair coordinates must stay inside the "
                "columnar engine's exact-int64 envelope — intern larger "
                "external id ranges via VertexSpace.interned(capacity, ids=...)"
            )
        if ids not in _ID_KINDS:
            raise ValueError(f"ids must be one of {_ID_KINDS}, got {ids!r}")
        self.universe_size = universe_size
        self.ids = ids
        self.lazy = bool(lazy) if lazy is not None else True
        if ids is None:
            self._intern = None
            self._externals = None
        else:
            self._intern: dict = {}
            self._externals: list = []

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def dense(cls, num_vertices: int) -> "VertexSpace":
        """The historical dense engine: eager arrays over ``range(n)``."""
        return cls(num_vertices, ids=None, lazy=False)

    @classmethod
    def sparse(cls, universe_size: int) -> "VertexSpace":
        """A huge identity universe with lazy row materialization."""
        return cls(universe_size, ids=None, lazy=True)

    @classmethod
    def interned(cls, capacity: int, ids: str = "strings") -> "VertexSpace":
        """A lazy universe addressed by external ids (always interned)."""
        if ids not in ("ints", "strings"):
            raise ValueError(f"ids must be 'ints' or 'strings', got {ids!r}")
        return cls(capacity, ids=ids, lazy=True)

    # ------------------------------------------------------------------
    # External-id interning
    # ------------------------------------------------------------------

    @property
    def is_interned(self) -> bool:
        """Whether external ids are interned (vs identity logical ids)."""
        return self.ids is not None

    def _check_external(self, external) -> None:
        if self.ids == "strings":
            if not isinstance(external, str):
                raise TypeError(f"this space interns strings, got {type(external).__name__}")
        else:  # "ints"
            if isinstance(external, bool) or not isinstance(external, int):
                raise TypeError(f"this space interns ints, got {type(external).__name__}")
            if not 0 <= external < (1 << 32):
                raise ValueError(f"external id {external} outside [0, 2^32)")

    def intern(self, external) -> int:
        """Logical id of ``external``, assigning the next free id if new.

        The assignment is first-sight stable: id ``t`` is the ``t``-th
        distinct external ever interned, which the checkpoint layer
        persists so a restored session re-derives identical sketches.
        """
        if self._intern is None:
            return self.resolve(external)
        logical = self._intern.get(external)
        if logical is None:
            self._check_external(external)
            logical = len(self._externals)
            if logical >= self.universe_size:
                raise ValueError(
                    f"interned universe is full: capacity {self.universe_size} "
                    f"distinct ids already assigned"
                )
            self._intern[external] = logical
            self._externals.append(external)
        return logical

    def lookup(self, external) -> int | None:
        """Logical id of ``external``, or ``None`` if never interned.

        Query paths use this so asking about an unknown id never grows
        the intern table.
        """
        if self._intern is None:
            if isinstance(external, int) and 0 <= external < self.universe_size:
                return external
            return None
        return self._intern.get(external)

    def resolve(self, external) -> int:
        """Logical id of ``external``; raises if unknown/out of range."""
        if self._intern is None:
            if isinstance(external, bool) or not isinstance(external, int):
                raise TypeError(
                    f"identity space takes int vertex ids, got {type(external).__name__}"
                )
            if not 0 <= external < self.universe_size:
                raise ValueError(
                    f"vertex {external} outside [0, {self.universe_size})"
                )
            return external
        logical = self._intern.get(external)
        if logical is None:
            raise KeyError(f"external id {external!r} was never interned")
        return logical

    def label(self, logical: int):
        """External id of a logical vertex (identity when not interned)."""
        if self._externals is None:
            return logical
        if not 0 <= logical < len(self._externals):
            raise IndexError(f"logical id {logical} was never assigned")
        return self._externals[logical]

    def interned_count(self) -> int:
        """How many distinct external ids have been assigned so far."""
        return 0 if self._externals is None else len(self._externals)

    def externals(self) -> list:
        """The intern table in logical-id order (checkpoint payload)."""
        return [] if self._externals is None else list(self._externals)

    def load_externals(self, externals: Iterable) -> None:
        """Rebuild the intern table (restore path); must be empty."""
        if self._intern is None:
            raise ValueError("identity spaces have no intern table to load")
        if self._externals:
            raise ValueError("intern table is not empty; cannot load over it")
        for external in externals:
            self.intern(external)

    # ------------------------------------------------------------------
    # Derived spaces / config round-trip
    # ------------------------------------------------------------------

    def doubled(self) -> "VertexSpace":
        """A same-policy identity space over ``2n`` logical ids.

        The bipartite double cover lives on logical ids ``v`` and
        ``v + n``; external ids never reach it, so the derived space is
        always an identity space.
        """
        return VertexSpace(2 * self.universe_size, ids=None, lazy=self.lazy)

    def config(self) -> dict:
        """JSON-serializable description (without the intern table)."""
        return {
            "universe_size": self.universe_size,
            "ids": self.ids,
            "lazy": self.lazy,
        }

    @classmethod
    def from_config(cls, config: dict) -> "VertexSpace":
        """Inverse of :meth:`config` (intern table loaded separately)."""
        return cls(
            int(config["universe_size"]),
            ids=config.get("ids"),
            lazy=bool(config.get("lazy", False)),
        )

    def __repr__(self) -> str:
        kind = "interned-" + self.ids if self.ids else ("sparse" if self.lazy else "dense")
        return f"VertexSpace({self.universe_size}, {kind})"


def as_vertex_space(value: "int | VertexSpace") -> VertexSpace:
    """Coerce the historical ``num_vertices: int`` contract to a space.

    Plain ints become :meth:`VertexSpace.dense`, reproducing the eager
    engine exactly; an existing space passes through unchanged.
    """
    if isinstance(value, VertexSpace):
        return value
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(
            f"expected an int or VertexSpace, got {type(value).__name__}"
        )
    return VertexSpace.dense(value)
