"""Cut values and cut-preservation checks.

Spectral sparsifiers preserve all cuts (restrict the quadratic form to
0/1 vectors); the E2 experiment verifies this directly on sampled cuts,
which is a cheaper — and independently meaningful — check than the full
eigenvalue computation.
"""

from __future__ import annotations

from typing import Iterable

from repro.graph.graph import Graph
from repro.util.rng import rng_from_seed

__all__ = ["cut_value", "sample_cuts", "max_cut_discrepancy"]


def cut_value(graph: Graph, side: set[int] | frozenset[int]) -> float:
    """Total weight of edges crossing the cut ``(side, V - side)``."""
    total = 0.0
    for u, v, weight in graph.edges():
        if (u in side) != (v in side):
            total += weight
    return total


def sample_cuts(num_vertices: int, trials: int, seed: int) -> Iterable[frozenset[int]]:
    """Seeded random nontrivial cuts (each vertex joins w.p. 1/2)."""
    rng = rng_from_seed(seed, "cuts")
    produced = 0
    while produced < trials:
        side = frozenset(u for u in range(num_vertices) if rng.random() < 0.5)
        if 0 < len(side) < num_vertices:
            produced += 1
            yield side


def max_cut_discrepancy(
    graph: Graph, candidate: Graph, trials: int = 200, seed: int = 0
) -> float:
    """Largest relative cut error ``|w_H(S) - w_G(S)| / w_G(S)`` over
    sampled cuts (cuts with zero weight in ``G`` must also be zero in
    ``H``; otherwise the discrepancy is infinite)."""
    worst = 0.0
    for side in sample_cuts(graph.num_vertices, trials, seed):
        base = cut_value(graph, side)
        cand = cut_value(candidate, side)
        if base == 0.0:
            if cand != 0.0:
                return float("inf")
            continue
        worst = max(worst, abs(cand - base) / base)
    return worst
