"""Single-pass connectivity applications of AGM sketches.

The paper's introduction cites [AGM12a]'s suite of dynamic-stream graph
properties — "bipartiteness, connectivity, k-connectivity, ..." — all of
which reduce to spanning-forest extraction.  This module exposes them as
one-pass :class:`~repro.stream.pipeline.StreamingAlgorithm`s:

* :class:`ConnectivityChecker` — connected components from one sketch
  stack;
* :class:`BipartitenessChecker` — the double-cover reduction: ``G`` is
  bipartite iff its bipartite double cover has exactly twice as many
  components as ``G``;
* :class:`KConnectivityCertificate` — the union of ``k`` successively
  extracted spanning forests; the certificate preserves every cut up to
  value ``k`` (so ``G`` is ``k``-edge-connected iff the certificate is),
  and is the building block of [AGM12b]'s cut sparsifiers.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.agm.spanning_forest import AgmSketch
from repro.graph.graph import Graph
from repro.graph.vertex_space import VertexSpace, as_vertex_space
from repro.stream.batching import updates_to_arrays
from repro.stream.pipeline import StreamingAlgorithm, run_passes
from repro.stream.stream import DynamicStream
from repro.stream.updates import EdgeUpdate
from repro.util.rng import derive_seed

__all__ = ["ConnectivityChecker", "BipartitenessChecker", "KConnectivityCertificate"]


class ConnectivityChecker(StreamingAlgorithm):
    """One-pass connected components of a dynamic stream.

    ``num_vertices`` may be a plain int (dense universe) or a
    :class:`~repro.graph.vertex_space.VertexSpace`; lazy spaces keep
    resident sketch rows proportional to touched vertices and answer
    component queries over the touched subgraph.  ``rounds`` forwards to
    :class:`~repro.agm.spanning_forest.AgmSketch` for sessions that know
    their touched count is far below the universe.
    """

    def __init__(
        self,
        num_vertices: int | VertexSpace,
        seed: int | str,
        rounds: int | None = None,
    ):
        self.space = as_vertex_space(num_vertices)
        self.num_vertices = self.space.universe_size
        self._sketch = AgmSketch(
            self.space, derive_seed(seed, "connectivity"), rounds=rounds
        )

    @property
    def passes_required(self) -> int:
        return 1

    def process(self, update: EdgeUpdate, pass_index: int) -> None:
        self._sketch.update(update.u, update.v, update.sign)

    def process_batch(self, updates: Sequence[EdgeUpdate], pass_index: int) -> None:
        self._sketch.update_batch(*updates_to_arrays(updates))

    def finalize(self) -> list[set[int]]:
        """The connected components (whp)."""
        return self._sketch.connected_components()

    def spanning_forest(self) -> list[tuple[int, int]]:
        """A spanning forest of the current graph (whp), as edge pairs.

        Read-only like :meth:`finalize`; one Borůvka extraction yields
        both the forest and (via union-find over it) the components,
        which is how the live service answers ``spanning_forest()`` and
        ``connected(u, v)`` from a single decode.
        """
        return self._sketch.spanning_forest()

    def is_connected(self) -> bool:
        """Whether the final graph is connected (consumes the sketch state
        read-only; callable after the pass)."""
        return len(self.finalize()) == 1

    def run(
        self, stream: DynamicStream, batch_size: int | None = None
    ) -> list[set[int]]:
        """Convenience: run the single pass over ``stream``."""
        return run_passes(stream, self, batch_size=batch_size)

    def shard_state_ints(self, pass_index: int) -> list[int]:
        """Shardable entry point: the AGM sketch stack's flat state."""
        return self._sketch.state_ints()

    def load_shard_state_ints(self, pass_index: int, values: list[int]) -> None:
        """Shardable entry point: inverse of :meth:`shard_state_ints`."""
        self._sketch.from_state_ints(values)

    def state_digest(self) -> str:
        """Canonical content hash of the full sketch state (cheap,
        memory-bandwidth identity probe — see
        :meth:`~repro.agm.spanning_forest.AgmSketch.state_digest`)."""
        return self._sketch.state_digest()

    def merge_shard(self, other: "ConnectivityChecker", pass_index: int) -> None:
        """Shardable entry point: sum a shard's sketches into ours."""
        self._sketch.combine(other._sketch)

    def clone(self) -> "ConnectivityChecker":
        """Cheap structural copy: the AGM sketch stack is cloned."""
        clone = object.__new__(ConnectivityChecker)
        clone.space = self.space
        clone.num_vertices = self.num_vertices
        clone._sketch = self._sketch.clone()
        return clone

    def space_words(self) -> int:
        return self._sketch.space_words()

    def space_report(self):
        """Resident vs dense-universe words of the AGM sketch stacks."""
        from repro.stream.space import SpaceReport

        report = SpaceReport()
        report.add(
            "agm vertex samplers",
            self._sketch.space_words(),
            universe_words=self._sketch.universe_space_words(),
        )
        return report


class BipartitenessChecker(StreamingAlgorithm):
    """One-pass bipartiteness via the double-cover reduction.

    The bipartite double cover ``G x K_2`` replaces every edge ``{u, v}``
    by ``{u_0, v_1}`` and ``{u_1, v_0}``.  A connected component of ``G``
    lifts to two components iff it is bipartite, and to one (odd cycle
    merging the layers) otherwise — so ``G`` is bipartite iff
    ``cc(double cover) = 2 * cc(G)``.
    """

    def __init__(self, num_vertices: int | VertexSpace, seed: int | str):
        self.space = as_vertex_space(num_vertices)
        self.num_vertices = self.space.universe_size
        base_space = (
            self.space
            if not self.space.is_interned
            else VertexSpace(self.num_vertices, ids=None, lazy=True)
        )
        self._base = AgmSketch(base_space, derive_seed(seed, "bipartite-base"))
        self._cover = AgmSketch(
            self.space.doubled(), derive_seed(seed, "bipartite-cover")
        )

    @property
    def passes_required(self) -> int:
        return 1

    def process(self, update: EdgeUpdate, pass_index: int) -> None:
        u, v, sign = update.u, update.v, update.sign
        self._base.update(u, v, sign)
        n = self.num_vertices
        self._cover.update(u, v + n, sign)
        self._cover.update(u + n, v, sign)

    def process_batch(self, updates: Sequence[EdgeUpdate], pass_index: int) -> None:
        us, vs, signs = updates_to_arrays(updates)
        self._base.update_batch(us, vs, signs)
        n = np.int64(self.num_vertices)
        self._cover.update_batch(
            np.concatenate([us, us + n]),
            np.concatenate([vs + n, vs]),
            np.concatenate([signs, signs]),
        )

    def finalize(self) -> bool:
        """``True`` iff the final graph is bipartite (whp)."""
        base_components = len(self._base.connected_components())
        cover_components = len(self._cover.connected_components())
        return cover_components == 2 * base_components

    def run(self, stream: DynamicStream, batch_size: int | None = None) -> bool:
        """Convenience: run the single pass over ``stream``."""
        return run_passes(stream, self, batch_size=batch_size)

    def shard_state_ints(self, pass_index: int) -> list[int]:
        """Shardable entry point: base-sketch state then cover-sketch state
        (both blocks are self-delimiting sparse-row sequences)."""
        return self._base.state_ints() + self._cover.state_ints()

    def load_shard_state_ints(self, pass_index: int, values: list[int]) -> None:
        """Shardable entry point: inverse of :meth:`shard_state_ints`."""
        cursor = self._base.load_state_ints(values, 0)
        cursor = self._cover.load_state_ints(values, cursor)
        if cursor != len(values):
            raise ValueError(f"expected {cursor} state ints, got {len(values)}")

    def merge_shard(self, other: "BipartitenessChecker", pass_index: int) -> None:
        """Shardable entry point: sum a shard's sketches into ours."""
        self._base.combine(other._base)
        self._cover.combine(other._cover)

    def clone(self) -> "BipartitenessChecker":
        """Cheap structural copy: both sketch stacks are cloned."""
        clone = object.__new__(BipartitenessChecker)
        clone.space = self.space
        clone.num_vertices = self.num_vertices
        clone._base = self._base.clone()
        clone._cover = self._cover.clone()
        return clone

    def space_words(self) -> int:
        return self._base.space_words() + self._cover.space_words()


class KConnectivityCertificate(StreamingAlgorithm):
    """One-pass sparse ``k``-edge-connectivity certificate.

    Maintains ``k`` independent AGM sketch stacks; at extraction time the
    ``i``-th stack yields a spanning forest of the graph minus the first
    ``i-1`` forests (linearity: recovered forests are *subtracted* from
    the later stacks).  The union ``F_1 ∪ ... ∪ F_k`` has at most
    ``k (n-1)`` edges and preserves every edge cut up to value ``k``.
    """

    def __init__(self, num_vertices: int | VertexSpace, k: int, seed: int | str):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.space = as_vertex_space(num_vertices)
        self.num_vertices = self.space.universe_size
        self.k = k
        self._stacks = [
            AgmSketch(self.space, derive_seed(seed, "certificate", i)) for i in range(k)
        ]

    @property
    def passes_required(self) -> int:
        return 1

    def process(self, update: EdgeUpdate, pass_index: int) -> None:
        for stack in self._stacks:
            stack.update(update.u, update.v, update.sign)

    def process_batch(self, updates: Sequence[EdgeUpdate], pass_index: int) -> None:
        us, vs, signs = updates_to_arrays(updates)
        for stack in self._stacks:
            stack.update_batch(us, vs, signs)

    def finalize(self) -> Graph:
        """The certificate subgraph (unit weights)."""
        # Each stack is consulted once, with *every* previously recovered
        # forest subtracted, so forest i is a spanning forest of
        # G - (F_1 ∪ ... ∪ F_{i-1}).
        cumulative: dict[tuple[int, int], int] = {}
        certificate = Graph(self.num_vertices)
        for stack in self._stacks:
            if cumulative:
                stack.subtract_edges(cumulative)
            for a, b in stack.spanning_forest():
                pair = (min(a, b), max(a, b))
                cumulative[pair] = cumulative.get(pair, 0) + 1
                if not certificate.has_edge(*pair):
                    certificate.add_edge(*pair)
        return certificate

    def run(self, stream: DynamicStream, batch_size: int | None = None) -> Graph:
        """Convenience: run the single pass over ``stream``."""
        return run_passes(stream, self, batch_size=batch_size)

    def shard_state_ints(self, pass_index: int) -> list[int]:
        """Shardable entry point: concatenated per-stack sketch states."""
        flat: list[int] = []
        for stack in self._stacks:
            flat.extend(stack.state_ints())
        return flat

    def load_shard_state_ints(self, pass_index: int, values: list[int]) -> None:
        """Shardable entry point: inverse of :meth:`shard_state_ints`
        (each stack's block is self-delimiting)."""
        cursor = 0
        for stack in self._stacks:
            cursor = stack.load_state_ints(values, cursor)
        if cursor != len(values):
            raise ValueError(f"expected {cursor} state ints, got {len(values)}")

    def merge_shard(self, other: "KConnectivityCertificate", pass_index: int) -> None:
        """Shardable entry point: sum a shard's sketch stacks into ours."""
        for mine, theirs in zip(self._stacks, other._stacks):
            mine.combine(theirs)

    def clone(self) -> "KConnectivityCertificate":
        """Cheap structural copy: every AGM stack is cloned.

        Cloning matters doubly here: :meth:`finalize` *mutates* the
        stacks (``subtract_edges`` peels recovered forests), so a
        snapshot query must never finalize the live instance.
        """
        clone = object.__new__(KConnectivityCertificate)
        clone.space = self.space
        clone.num_vertices = self.num_vertices
        clone.k = self.k
        clone._stacks = [stack.clone() for stack in self._stacks]
        return clone

    def space_words(self) -> int:
        return sum(stack.space_words() for stack in self._stacks)
