"""Signed vertex-incidence encoding of a graph as sketchable vectors.

AGM's key idea: encode each vertex ``u`` as a vector ``a_u`` over the
edge-pair domain with, for every edge ``e = {i, j}`` (``i < j``) of
multiplicity ``x_e``:

    a_i[e] = +x_e      a_j[e] = -x_e

Then for any vertex set ``S``, ``sum_{u in S} a_u`` is supported exactly
on the edges *leaving* ``S`` (internal edges cancel by the sign
convention).  Sampling a nonzero coordinate of the summed sketches thus
yields an outgoing edge of ``S`` — the Borůvka step of
:mod:`repro.agm.spanning_forest`.
"""

from __future__ import annotations

from repro.graph.graph import edge_from_index, edge_index

__all__ = ["incidence_updates", "decode_edge"]


def incidence_updates(u: int, v: int, delta: int, num_vertices: int) -> list[tuple[int, int, int]]:
    """The per-vertex coordinate updates encoding ``x_{uv} += delta``.

    Returns two triples ``(vertex, coordinate, signed delta)`` — one for
    each endpoint, with the lower endpoint getting ``+delta``.
    """
    index = edge_index(u, v, num_vertices)
    low, high = (u, v) if u < v else (v, u)
    return [(low, index, delta), (high, index, -delta)]


def decode_edge(coordinate: int, num_vertices: int) -> tuple[int, int]:
    """Recover the vertex pair from a sampled coordinate."""
    return edge_from_index(coordinate, num_vertices)
