"""AGM spanning-forest sketches (Theorem 10, [AGM12a]).

``O(log n)`` independent rounds of per-vertex L0-samplers of the signed
incidence vectors; a spanning forest is extracted by Borůvka: every round
each current component sums its members' round-``r`` samplers (linearity)
and samples one outgoing edge.

Storage is *columnar* (:mod:`repro.sketch.columnar`): the ``n`` vertex
samplers of one round are same-seeded by construction (component sums
must be meaningful), so each round keeps one
:class:`~repro.sketch.columnar.L0SamplerStack` whose rows are vertices.
A batched update then evaluates each round's membership/bucket hashes
and fingerprint powers once per distinct edge coordinate and scatters
into all affected vertex rows at once — instead of routing per-vertex
sub-batches into ``n x rounds`` standalone samplers.  State stays
bit-identical to the per-sampler scalar sequence
(``tests/sketch/test_columnar.py``), and the Borůvka component sums
become vectorized column reductions.

Two extra properties the paper relies on are implemented here:

* **supernode collapsing** — "if a graph H is obtained from G by
  collapsing some sets of nodes into supernodes, an AGM sketch for H can
  be obtained from an AGM sketch for G" — pass ``supernodes`` to
  :meth:`AgmSketch.spanning_forest`;
* **edge subtraction** — "we will maintain AGM sketches for a graph G and
  use them for finding a spanning forest of a graph G' obtained by
  subtracting a set of edges from G" — :meth:`AgmSketch.subtract_edges`.
"""

from __future__ import annotations

import hashlib
import math

import numpy as np

from repro.agm.incidence import decode_edge, incidence_updates
from repro.graph.vertex_space import VertexSpace, as_vertex_space
from repro.sketch.columnar import L0SamplerStack
from repro.sketch.l0sampler import L0Sampler
from repro.stream.batching import aggregate_updates
from repro.util.rng import derive_seed

__all__ = ["AgmSketch", "DisjointSets", "SparseDisjointSets"]

#: Below this many updates the batched path's fixed numpy cost exceeds
#: the scalar loop's (the stacks amortize over distinct coordinates, so
#: the crossover is lower than the per-sketch engine's).
_SMALL_BATCH = 48


class DisjointSets:
    """Union-find with path compression and union by size."""

    def __init__(self, num_elements: int):
        self.parent = list(range(num_elements))
        self.size = [1] * num_elements

    def find(self, x: int) -> int:
        """Root of ``x``'s set."""
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, x: int, y: int) -> bool:
        """Merge the sets of ``x`` and ``y``; False if already merged."""
        root_x, root_y = self.find(x), self.find(y)
        if root_x == root_y:
            return False
        if self.size[root_x] < self.size[root_y]:
            root_x, root_y = root_y, root_x
        self.parent[root_y] = root_x
        self.size[root_x] += self.size[root_y]
        return True

    def num_sets(self) -> int:
        """Number of disjoint sets."""
        return sum(1 for x in range(len(self.parent)) if self.find(x) == x)


class SparseDisjointSets:
    """Union-find over arbitrary int elements, allocated on first touch.

    The sparse-universe Borůvka runs over *touched* vertices only; a
    dense ``parent`` array over a ``10^7``-id universe would cost more
    than the sketches.  Elements register lazily via :meth:`add` (or on
    first ``find``/``union``), so space is proportional to the elements
    actually seen.
    """

    __slots__ = ("parent", "size")

    def __init__(self, elements=()):
        self.parent: dict[int, int] = {}
        self.size: dict[int, int] = {}
        for element in elements:
            self.add(element)

    def add(self, x: int) -> None:
        """Register ``x`` as a singleton if unseen."""
        if x not in self.parent:
            self.parent[x] = x
            self.size[x] = 1

    def find(self, x: int) -> int:
        """Root of ``x``'s set (registers ``x`` if unseen)."""
        self.add(x)
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, x: int, y: int) -> bool:
        """Merge the sets of ``x`` and ``y``; False if already merged."""
        root_x, root_y = self.find(x), self.find(y)
        if root_x == root_y:
            return False
        if self.size[root_x] < self.size[root_y]:
            root_x, root_y = root_y, root_x
        self.parent[root_y] = root_x
        self.size[root_x] += self.size[root_y]
        return True


class AgmSketch:
    """Per-vertex incidence samplers supporting spanning-forest extraction.

    Parameters
    ----------
    num_vertices:
        The vertex universe: a plain int (the historical dense engine
        over ``range(n)``) or a :class:`~repro.graph.vertex_space.VertexSpace`
        — a lazy space materializes per-vertex rows on first touch, so
        resident state tracks *touched* vertices while seeds and edge
        coordinates stay pure functions of the universe size (dense and
        lazy sketches over equal universes are summable and
        bit-identical on the touched subset).
    seed:
        Randomness name; sketches with equal seeds/shape are summable.
    rounds:
        Borůvka rounds (default ``ceil(log2 n) + 2``); each consumes one
        independent sampler per vertex, the standard AGM requirement.
        Sparse sessions whose expected touched count is far below the
        universe can pass a smaller explicit value.
    budget:
        Per-level sparse-recovery budget inside each L0-sampler.
    """

    def __init__(
        self,
        num_vertices: int | VertexSpace,
        seed: int | str,
        rounds: int | None = None,
        budget: int = 4,
    ):
        self.space = as_vertex_space(num_vertices)
        num_vertices = self.space.universe_size
        self.num_vertices = num_vertices
        if rounds is None:
            rounds = max(2, math.ceil(math.log2(max(num_vertices, 2)))) + 2
        self.rounds = rounds
        self._seed_key = derive_seed(seed, "agm", num_vertices, rounds, budget)
        domain = num_vertices * num_vertices
        # One columnar stack per round, rows = vertices: samplers for the
        # same round share a seed across vertices so that component sums
        # are meaningful; rounds are independent.
        self._round_stacks = [
            L0SamplerStack(
                num_vertices,
                domain,
                derive_seed(self._seed_key, "round", r),
                budget=budget,
                lazy=self.space.lazy,
            )
            for r in range(rounds)
        ]

    # ------------------------------------------------------------------
    # Streaming updates
    # ------------------------------------------------------------------

    def update(self, u: int, v: int, delta: int) -> None:
        """Apply ``x_{uv} += delta`` to every round's samplers."""
        for vertex, coordinate, signed in incidence_updates(u, v, delta, self.num_vertices):
            for stack in self._round_stacks:
                stack.update_row(vertex, coordinate, signed)

    def update_batch(self, us, vs, deltas) -> None:
        """Apply a whole batch of edge updates ``x_{u_t v_t} += delta_t``.

        The chunk is first collapsed to its net delta per distinct edge
        pair (:func:`~repro.stream.batching.aggregate_updates` — exact by
        linearity), then every round stack absorbs the signed-incidence
        encoding of the distinct pairs in one columnar scatter.  Hashes
        are evaluated once per (coordinate, round) rather than once per
        (coordinate, vertex, round, level); the final state is
        bit-identical to the scalar :meth:`update` sequence.
        """
        us = np.ascontiguousarray(us, dtype=np.int64)
        vs = np.ascontiguousarray(vs, dtype=np.int64)
        values = np.ascontiguousarray(deltas, dtype=np.int64)
        if not (us.shape == vs.shape == values.shape) or us.ndim != 1:
            raise ValueError("us, vs, deltas must be 1-D of equal length")
        if us.size == 0:
            return
        if int(min(us.min(), vs.min())) < 0 or int(max(us.max(), vs.max())) >= self.num_vertices:
            raise ValueError(f"vertex batch leaves [0, {self.num_vertices})")
        if np.any(us == vs):
            raise ValueError("self-loops are not allowed")
        if us.size <= _SMALL_BATCH:
            for u, v, delta in zip(us, vs, values):
                if delta:
                    self.update(int(u), int(v), int(delta))
            return
        low = np.minimum(us, vs)
        high = np.maximum(us, vs)
        lows, highs, coordinates, net = aggregate_updates(
            low, high, values, self.num_vertices
        )
        if coordinates.size == 0:
            return
        # Each distinct edge touches both endpoints: +delta at the low
        # endpoint, -delta at the high endpoint (the AGM sign convention).
        rows = np.concatenate([lows, highs])
        coords = np.concatenate([coordinates, coordinates])
        signed = np.concatenate([net, -net])
        for stack in self._round_stacks:
            stack.scatter(rows, coords, signed)

    def subtract_edges(self, edges: dict[tuple[int, int], int]) -> None:
        """Remove known edges (pair -> multiplicity) by linearity."""
        live = [(u, v, m) for (u, v), m in edges.items() if m != 0]
        if not live:
            return
        self.update_batch(
            [u for u, _, _ in live],
            [v for _, v, _ in live],
            [-m for _, _, m in live],
        )

    def combine(self, other: "AgmSketch", sign: int = 1) -> None:
        """In-place ``self += sign * other``; seeds must match."""
        if self._seed_key != other._seed_key:
            raise ValueError("cannot combine AGM sketches with different seeds")
        for mine, theirs in zip(self._round_stacks, other._round_stacks):
            mine.combine(theirs, sign)

    def clone(self) -> "AgmSketch":
        """Independent copy with the same state and seed.

        Round stacks are copied cell-for-cell (their hash families are
        shared, immutable), so forest extraction from the clone is
        unaffected by further updates to the original.
        """
        clone = object.__new__(AgmSketch)
        clone.space = self.space
        clone.num_vertices = self.num_vertices
        clone.rounds = self.rounds
        clone._seed_key = self._seed_key
        clone._round_stacks = [stack.clone() for stack in self._round_stacks]
        return clone

    def sampler_view(self, vertex: int, r: int) -> L0Sampler:
        """Standalone copy of vertex ``vertex``'s round-``r`` sampler.

        For inspection and tests: the returned sampler holds the row's
        exact current state and shares the (immutable) randomness, so it
        is summable with other views of the same round.
        """
        return self._round_stacks[r].row_sampler(vertex)

    # ------------------------------------------------------------------
    # Forest extraction
    # ------------------------------------------------------------------

    def spanning_forest(self, supernodes: list[int] | None = None) -> list[tuple[int, int]]:
        """Extract a spanning forest via Borůvka over the sketches.

        Parameters
        ----------
        supernodes:
            Optional map ``vertex -> group id`` (length ``n``).  Vertices
            sharing a group id start pre-merged — this is the collapsing
            operation the additive spanner uses to contract its clusters.
            Edges internal to a group cancel in the summed sketches, so
            they can never be sampled.

        Returns
        -------
        Edges of the original graph forming a spanning forest of the
        (possibly contracted) graph, as ``(u, v)`` pairs.  Over a lazy
        space, Borůvka runs on *touched* vertices only — untouched
        vertices are isolated, hold exactly-zero samplers, and can never
        contribute an edge, so the forest is identical to the dense
        engine's on the same stream.
        """
        if self.space.lazy:
            if supernodes is not None:
                raise ValueError(
                    "supernode collapsing needs a dense per-vertex group map; "
                    "lazy vertex spaces do not support it"
                )
            vertices: list[int] = self._round_stacks[0].touched_row_ids()
            dsu: DisjointSets | SparseDisjointSets = SparseDisjointSets(vertices)
        else:
            vertices = list(range(self.num_vertices))
            if supernodes is None:
                groups = vertices
            else:
                if len(supernodes) != self.num_vertices:
                    raise ValueError("supernodes must assign a group to every vertex")
                groups = list(supernodes)

            # Union-find over vertices; pre-merge supernode groups.
            dsu = DisjointSets(self.num_vertices)
            first_of_group: dict[int, int] = {}
            for vertex, group in enumerate(groups):
                if group in first_of_group:
                    dsu.union(first_of_group[group], vertex)
                else:
                    first_of_group[group] = vertex

        forest: list[tuple[int, int]] = []
        for r in range(self.rounds):
            members: dict[int, list[int]] = {}
            for vertex in vertices:
                members.setdefault(dsu.find(vertex), []).append(vertex)
            if len(members) <= 1:
                break
            merged_any = False
            for root, component in members.items():
                # The component sum, as one column reduction over the
                # round's stack (identical to pairwise combines).
                combined = self._round_stacks[r].rows_sum_sampler(component)
                sampled = combined.sample()
                if sampled is None:
                    continue
                coordinate, _ = sampled
                a, b = decode_edge(coordinate, self.num_vertices)
                if dsu.union(a, b):
                    forest.append((a, b))
                    merged_any = True
            if not merged_any:
                break
        return forest

    def touched_vertices(self) -> list[int]:
        """Sorted vertex ids holding resident sketch rows.

        Every update reaches every round's level-0 stack, so round 0
        carries the complete touched set; for a dense space this is all
        of ``range(n)``.
        """
        return self._round_stacks[0].touched_row_ids()

    def num_touched_vertices(self) -> int:
        """Number of vertices holding resident sketch rows, in O(1).

        The cheap cardinality twin of :meth:`touched_vertices` (which
        sorts the ids); the adaptive sizing ladder polls this after
        every ingest batch, so it must not scale with the touched set.
        """
        return self._round_stacks[0].num_touched_rows()

    def state_digest(self) -> str:
        """Canonical content hash of every round stack's resident state.

        Runs at memory bandwidth (numpy ``tobytes`` into BLAKE2b), so
        it stays practical at million-vertex scale where
        :meth:`state_ints` would materialize hundreds of millions of
        Python ints.  Two same-shaped, same-seeded sketches digest
        equally iff their resident states match cell-for-cell — the
        cheap strong probe for replay/promotion identity checks.
        """
        hasher = hashlib.blake2b(digest_size=16)
        for r, stack in enumerate(self._round_stacks):
            hasher.update(np.int64(r).tobytes())
            stack.state_digest(hasher)
        return hasher.hexdigest()

    def connected_components(self, supernodes: list[int] | None = None) -> list[set[int]]:
        """Vertex components implied by the extracted spanning forest.

        Dense spaces enumerate the whole universe (isolated vertices are
        singleton components, the historical behavior); lazy spaces
        return components of the *touched* vertices only — the
        untouched rest of a huge universe is implicitly isolated.
        """
        forest = self.spanning_forest(supernodes)
        if self.space.lazy:
            sparse_dsu = SparseDisjointSets(self.touched_vertices())
            for a, b in forest:
                sparse_dsu.union(a, b)
            components: dict[int, set[int]] = {}
            for vertex in sparse_dsu.parent:
                components.setdefault(sparse_dsu.find(vertex), set()).add(vertex)
            return list(components.values())
        dsu = DisjointSets(self.num_vertices)
        if supernodes is not None:
            first_of_group: dict[int, int] = {}
            for vertex, group in enumerate(supernodes):
                if group in first_of_group:
                    dsu.union(first_of_group[group], vertex)
                else:
                    first_of_group[group] = vertex
        for a, b in forest:
            dsu.union(a, b)
        dense_components: dict[int, set[int]] = {}
        for vertex in range(self.num_vertices):
            dense_components.setdefault(dsu.find(vertex), set()).add(vertex)
        return list(dense_components.values())

    def state_ints(self) -> list[int]:
        """Dynamic state as a flat int sequence (for serialization).

        Round-major sparse blocks: every round stack ships, per
        geometric level, its *nonzero* rows tagged with their logical
        vertex ids (:meth:`~repro.sketch.columnar.SketchStack.sparse_state_ints`).
        Nonzero-ness is a pure function of the summarized vectors, so
        dense and lazy engines fed the same stream emit byte-identical
        sequences — which is what lets their checkpoints and shard
        messages round-trip interchangeably.
        """
        flat: list[int] = []
        for stack in self._round_stacks:
            flat.extend(stack.sparse_state_ints())
        return flat

    def load_state_ints(self, values: list[int], cursor: int = 0) -> int:
        """Consume one serialized sketch from ``values`` at ``cursor``;
        returns the new cursor (the format is self-delimiting, so
        multi-sketch wires concatenate without length prefixes).

        The wire names nonzero rows only, so the sketch is reset to
        all-zero first — loading genuinely *overwrites* the dynamic
        state even on a non-fresh target.
        """
        for stack in self._round_stacks:
            stack.reset_state()
            cursor = stack.load_sparse_state(values, cursor)
        return cursor

    def from_state_ints(self, values: list[int]) -> "AgmSketch":
        """Overwrite the dynamic state from a :meth:`state_ints` sequence.

        Exact inverse of :meth:`state_ints` on a same-seed/same-shape
        sketch; returns ``self``.  This is what lets a coordinator
        rebuild a server's shipped sketch before summing (the
        distributed setting of :mod:`repro.stream.distributed`) — and a
        lazy coordinator materializes exactly the rows the wire names.
        """
        cursor = self.load_state_ints(values, 0)
        if cursor != len(values):
            raise ValueError(f"expected {cursor} state ints, got {len(values)}")
        return self

    def space_words(self) -> int:
        """Resident persistent state, in machine words (lazy spaces count
        materialized rows only; dense spaces count every row, matching
        the historical accounting)."""
        return sum(stack.resident_space_words() for stack in self._round_stacks)

    def universe_space_words(self) -> int:
        """Words a fully dense allocation over the universe would hold —
        the paper's ``O(n polylog n)`` reference the resident number is
        audited against."""
        return sum(stack.universe_space_words() for stack in self._round_stacks)
