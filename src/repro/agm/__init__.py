"""AGM graph sketches: spanning forests and their one-pass applications."""

from repro.agm.connectivity import (
    BipartitenessChecker,
    ConnectivityChecker,
    KConnectivityCertificate,
)
from repro.agm.incidence import decode_edge, incidence_updates
from repro.agm.spanning_forest import AgmSketch, DisjointSets

__all__ = [
    "AgmSketch",
    "DisjointSets",
    "incidence_updates",
    "decode_edge",
    "ConnectivityChecker",
    "BipartitenessChecker",
    "KConnectivityCertificate",
]
