"""The one-way communication protocol of Theorem 4, executable.

Alice runs a 1-pass streaming algorithm over her block edges; the
algorithm's state *is* her message.  Bob resumes the same algorithm on
his path edges, extracts the spanner ``H``, and outputs
``[{U, V} ∈ H]``.  Theorem 4 says that if the algorithm guarantees
additive distortion ``n/d`` with probability ``≥ 6/7``, Bob succeeds
with probability ``≥ 2/3`` — so by the INDEX lower bound [KNR99] the
state must be ``Ω(nd)`` bits.

Empirically (experiment E4) we run the paper's own additive spanner as
the protocol's algorithm at different space budgets: with budget matched
to the instance (``d' ≈ d``) Bob decodes almost perfectly; starved
budgets (``d' ≪ d / log n``) drive him to a coin flip — the Ω(nd)
tradeoff made visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.lowerbound.hard_instance import sample_hard_instance
from repro.sketch.serialize import pack_ints
from repro.stream.pipeline import StreamingAlgorithm
from repro.stream.updates import EdgeUpdate
from repro.util.rng import derive_seed

__all__ = ["GameReport", "run_spanner_protocol"]


@dataclass(frozen=True)
class GameReport:
    """Aggregate outcome of repeated protocol runs."""

    trials: int
    successes: int
    #: message (algorithm state) size in machine words, averaged.
    mean_message_words: float
    #: serialized message size in bytes, averaged (0 when the algorithm
    #: does not expose ``state_ints``).
    mean_message_bytes: float
    #: the instance's INDEX length r = s * C(d, 2) — the Ω(nd) target.
    index_bits: int

    @property
    def success_rate(self) -> float:
        """Bob's empirical success fraction (Theorem 4's 2/3 bar)."""
        return self.successes / self.trials

    def message_bits(self, bits_per_word: int = 64) -> float:
        """Mean message size in bits (serialized size when available)."""
        if self.mean_message_bytes > 0:
            return self.mean_message_bytes * 8
        return self.mean_message_words * bits_per_word


def run_spanner_protocol(
    num_blocks: int,
    block_size: int,
    algorithm_factory: Callable[[int, int], StreamingAlgorithm],
    trials: int,
    seed: int | str,
) -> GameReport:
    """Play the game ``trials`` times with a fresh instance each time.

    Parameters
    ----------
    num_blocks, block_size:
        Instance shape (``s`` blocks of ``d`` vertices).
    algorithm_factory:
        ``(num_vertices, trial) -> StreamingAlgorithm`` building Alice's
        1-pass algorithm.  It must declare ``passes_required == 1`` and
        its ``finalize()`` must return the spanner
        (:class:`~repro.graph.graph.Graph`).
    trials:
        Protocol repetitions (fresh instance + fresh algorithm seed).
    seed:
        Master randomness.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    successes = 0
    message_words_total = 0
    message_bytes_total = 0
    index_bits = 0
    for trial in range(trials):
        instance = sample_hard_instance(
            num_blocks, block_size, derive_seed(seed, "instance", trial)
        )
        index_bits = instance.index_length()
        algorithm = algorithm_factory(instance.num_vertices, trial)
        if algorithm.passes_required != 1:
            raise ValueError("the protocol only admits 1-pass algorithms")

        # --- Alice's side: stream the blocks, measure the message.
        algorithm.begin_pass(0)
        for u, v in instance.alice_edges():
            algorithm.process(EdgeUpdate(u, v, +1), 0)
        message_words_total += algorithm.space_words()
        if hasattr(algorithm, "state_ints"):
            message_bytes_total += len(pack_ints(algorithm.state_ints()))

        # --- Bob's side: resume from Alice's state, append the path.
        for u, v in instance.bob_edges():
            algorithm.process(EdgeUpdate(u, v, +1), 0)
        algorithm.end_pass(0)
        spanner = algorithm.finalize()

        target_u, target_v = instance.target_pair()
        bob_output = spanner.has_edge(target_u, target_v)
        if bob_output == instance.target_bit():
            successes += 1

    return GameReport(
        trials=trials,
        successes=successes,
        mean_message_words=message_words_total / trials,
        mean_message_bytes=message_bytes_total / trials,
        index_bits=index_bits,
    )
