"""Theorem 4's hard distribution for additive spanners.

Alice's input encodes an INDEX bit string of length ``r = Θ(nd)`` as
``s`` disjoint random graphs ``G_1..G_s``, each drawn ``G(d, 1/2)`` on
``d`` vertices (each potential in-block edge is one bit of ``X``).  Bob
holds an index — a specific pair ``{U, V}`` inside a specific block
``G_J`` — picks uniform pairs ``{U_l, V_l}`` in every other block, and
appends the path edges ``{V_1, U_2}, {V_2, U_3}, ...`` to the stream.

The shortest ``U_1 -> V_s`` path uses Bob's path edges plus, inside each
block, either the pair edge (length 1, if that bit of ``X`` is 1) or a
two-hop detour (length >= 2).  An additive spanner with distortion
``n/d`` must therefore retain most of the pair edges that exist — which
lets Bob read off his bit, so the algorithm's state must carry
``Ω(nd)`` bits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.rng import rng_from_seed

__all__ = ["HardInstance", "sample_hard_instance"]


@dataclass
class HardInstance:
    """One draw from the hard distribution (Alice's side + Bob's side)."""

    num_blocks: int
    block_size: int
    #: Alice's bits: (block, i, j) -> present, for 0 <= i < j < block_size.
    bits: dict[tuple[int, int, int], bool]
    #: Bob's chosen pair per block (local vertex ids).
    pairs: list[tuple[int, int]]
    #: Bob's secret index: which block's pair he must decide.
    target_block: int

    @property
    def num_vertices(self) -> int:
        """Total vertices ``n = s * d`` across all blocks."""
        return self.num_blocks * self.block_size

    def vertex(self, block: int, local: int) -> int:
        """Global vertex id of ``local`` inside ``block``."""
        return block * self.block_size + local

    def alice_edges(self) -> list[tuple[int, int]]:
        """The edges of Alice's disjoint union ``G_1 ∪ ... ∪ G_s``."""
        edges = []
        for (block, i, j), present in self.bits.items():
            if present:
                edges.append((self.vertex(block, i), self.vertex(block, j)))
        return edges

    def bob_edges(self) -> list[tuple[int, int]]:
        """Bob's path edges ``{V_l, U_{l+1}}``."""
        edges = []
        for block in range(self.num_blocks - 1):
            _, v_here = self.pairs[block]
            u_next, _ = self.pairs[block + 1]
            edges.append((self.vertex(block, v_here), self.vertex(block + 1, u_next)))
        return edges

    def target_pair(self) -> tuple[int, int]:
        """The global pair ``{U, V}`` whose bit Bob must output."""
        u, v = self.pairs[self.target_block]
        return (self.vertex(self.target_block, u), self.vertex(self.target_block, v))

    def target_bit(self) -> bool:
        """The ground truth ``X_I``."""
        u, v = self.pairs[self.target_block]
        i, j = min(u, v), max(u, v)
        return self.bits[(self.target_block, i, j)]

    def index_length(self) -> int:
        """``r``: how many bits Alice's input encodes."""
        return len(self.bits)


def sample_hard_instance(num_blocks: int, block_size: int, seed: int | str) -> HardInstance:
    """Draw an instance: uniform bits, uniform pairs, uniform target."""
    if num_blocks < 2:
        raise ValueError(f"need at least 2 blocks, got {num_blocks}")
    if block_size < 2:
        raise ValueError(f"need block_size >= 2, got {block_size}")
    rng = rng_from_seed(seed, "hard-instance", num_blocks, block_size)
    bits = {}
    for block in range(num_blocks):
        for i in range(block_size):
            for j in range(i + 1, block_size):
                bits[(block, i, j)] = rng.random() < 0.5
    pairs = []
    for _ in range(num_blocks):
        u = rng.randrange(block_size)
        v = rng.randrange(block_size - 1)
        if v >= u:
            v += 1
        pairs.append((u, v))
    target_block = rng.randrange(num_blocks)
    return HardInstance(
        num_blocks=num_blocks,
        block_size=block_size,
        bits=bits,
        pairs=pairs,
        target_block=target_block,
    )
