"""Theorem 4: the Ω(nd) additive-spanner lower bound, as a playable game."""

from repro.lowerbound.hard_instance import HardInstance, sample_hard_instance
from repro.lowerbound.protocol import GameReport, run_spanner_protocol

__all__ = ["HardInstance", "sample_hard_instance", "GameReport", "run_spanner_protocol"]
