"""The tracer: nested spans, counters, log2 histograms, a JSONL sink.

One :class:`Tracer` holds everything a process measures about itself:

* **spans** — nested named intervals (``with tracer.span("ingest"):``),
  aggregated per *path* (the tuple of enclosing span names) into
  :class:`PhaseStat` totals, and optionally streamed to a JSONL sink as
  they close;
* **counters** — monotonically accumulated named integers
  (``tracer.count("session.cache.hit")``);
* **histograms** — log2-bucketed distributions of sizes and latencies
  (``tracer.observe("sketch.scatter.batch", n)``); bucket ``b`` holds
  values in ``[2^(b-1), 2^b)`` (bucket 0 holds zero), so a histogram of
  any dynamic range costs a handful of ints.

Clock injection
---------------
A tracer never calls a wall-clock function by name: it calls whatever
``clock`` it was constructed with (default: a monotonic high-resolution
clock held as a *reference* in :data:`DEFAULT_CLOCK`).  This keeps the
sketchlint determinism rules (SL3xx — no wall-clock calls on the
checkpoint/wire/state seam closure) satisfiable even though the service
and checkpoint modules import this package, and it lets tests drive the
tracer with a deterministic fake clock.

The disabled path
-----------------
:data:`NOOP_TRACER` is a stateless singleton whose ``span`` always
returns the same :data:`NOOP_SPAN` object and whose ``count`` /
``observe`` do nothing — instrumented hot paths pay an attribute load
and a no-op call, nothing more, and allocate no per-call objects (the
property ``tests/obs/test_tracer.py`` pins by identity).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable

__all__ = [
    "DEFAULT_CLOCK",
    "PhaseStat",
    "Histogram",
    "Span",
    "Tracer",
    "NoopTracer",
    "JsonlSink",
    "NOOP_SPAN",
    "NOOP_TRACER",
    "log2_bucket",
]

#: The default span clock — monotonic and high-resolution.  Held as a
#: function *reference* (never called at module level) so importing the
#: tracer from a determinism-seam module executes no wall-clock read;
#: enabled tracers call it through their injected ``clock`` slot.
DEFAULT_CLOCK = time.perf_counter


def log2_bucket(value: float) -> int:
    """Histogram bucket of a non-negative value: ``0`` for zero, else
    ``b`` such that ``2^(b-1) <= int(value) < 2^b`` (fractions below 1
    land in bucket 1 with integer 0 values in bucket 0)."""
    if value < 0:
        raise ValueError(f"histogram values must be >= 0, got {value}")
    integral = int(value)
    if integral == 0:
        return 1 if value > 0 else 0
    return integral.bit_length()


@dataclass
class PhaseStat:
    """Aggregate of every closed span sharing one path."""

    count: int = 0
    seconds: float = 0.0

    def add(self, elapsed: float) -> None:
        """Fold one closed span into the aggregate."""
        self.count += 1
        self.seconds += elapsed


@dataclass
class Histogram:
    """A log2-bucketed distribution (bucket ``b``: ``[2^(b-1), 2^b)``)."""

    count: int = 0
    total: float = 0.0
    max_value: float = 0.0
    buckets: dict[int, int] = field(default_factory=dict)

    def record(self, value: float) -> None:
        """Add one observation."""
        bucket = log2_bucket(value)
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        """Mean observed value (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def to_json(self) -> dict:
        """The pinned machine-readable form (see docs/observability.md)."""
        return {
            "count": self.count,
            "total": self.total,
            "max": self.max_value,
            "buckets": {str(b): n for b, n in sorted(self.buckets.items())},
        }


class Span:
    """One live interval on an enabled tracer (use as a context manager).

    ``elapsed`` is 0.0 while open and the measured duration after exit;
    callers that need the number (the workload driver folding span times
    into its report) read it off the span they just closed — one clock,
    one measurement, no way for trace and report to disagree.
    """

    __slots__ = ("name", "attrs", "path", "elapsed", "_tracer", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict | None):
        self.name = name
        self.attrs = attrs
        self.path: tuple[str, ...] = ()
        self.elapsed = 0.0
        self._tracer = tracer
        self._start = 0.0

    def annotate(self, **attrs) -> None:
        """Attach/overwrite attributes on the open span."""
        if self.attrs is None:
            self.attrs = {}
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._tracer._begin(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._end(self)
        return False


class Tracer:
    """An enabled telemetry collector (see the module docstring).

    Parameters
    ----------
    clock:
        Zero-argument callable returning monotonic seconds; defaults to
        :data:`DEFAULT_CLOCK`.  Inject a fake for deterministic tests.
    sink:
        Optional :class:`JsonlSink`; every closed span is streamed to it
        and :meth:`close` appends the counter/histogram summary records.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None, sink: "JsonlSink | None" = None):
        self._clock = DEFAULT_CLOCK if clock is None else clock
        self.sink = sink
        self.phases: dict[tuple[str, ...], PhaseStat] = {}
        self.counters: dict[str, int] = {}
        self.histograms: dict[str, Histogram] = {}
        self._stack: list[Span] = []

    # -- spans ----------------------------------------------------------

    def span(self, name: str, **attrs) -> Span:
        """Open a nested span (enter it to start the clock)."""
        return Span(self, name, attrs or None)

    def _begin(self, span: Span) -> None:
        stack = self._stack
        span.path = (stack[-1].path + (span.name,)) if stack else (span.name,)
        stack.append(span)
        span._start = self._clock()

    def _end(self, span: Span) -> None:
        span.elapsed = self._clock() - span._start
        stack = self._stack
        if stack and stack[-1] is span:
            stack.pop()
        else:  # tolerate out-of-order exits rather than corrupting the tree
            try:
                stack.remove(span)
            except ValueError:
                pass
        stat = self.phases.get(span.path)
        if stat is None:
            stat = self.phases[span.path] = PhaseStat()
        stat.add(span.elapsed)
        if self.sink is not None:
            record = {
                "type": "span",
                "path": "/".join(span.path),
                "name": span.name,
                "seconds": span.elapsed,
            }
            if span.attrs:
                record["attrs"] = span.attrs
            self.sink.write(record)

    # -- counters / histograms -----------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Accumulate ``n`` into the named counter."""
        self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        """Record one value into the named log2 histogram."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.record(value)

    # -- lifecycle ------------------------------------------------------

    def phase_seconds(self) -> dict[str, float]:
        """``"a/b" -> total seconds`` for every recorded span path."""
        return {"/".join(path): stat.seconds for path, stat in self.phases.items()}

    def close(self) -> None:
        """Flush the summary (counters + histograms) and close the sink."""
        if self.sink is None:
            return
        for name, value in sorted(self.counters.items()):
            self.sink.write({"type": "counter", "name": name, "value": value})
        for name, histogram in sorted(self.histograms.items()):
            self.sink.write(
                {"type": "histogram", "name": name, **histogram.to_json()}
            )
        self.sink.close()


class _NoopSpan:
    """The do-nothing span singleton (one per process, never allocated
    per call — the disabled path's cost contract)."""

    __slots__ = ()
    name = ""
    attrs = None
    path: tuple[str, ...] = ()
    elapsed = 0.0

    def annotate(self, **attrs) -> None:
        """Discard attributes."""
        return None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: The single span object every disabled-path ``span()`` call returns.
NOOP_SPAN = _NoopSpan()


class NoopTracer:
    """The disabled tracer: stateless, allocation-free, always off."""

    __slots__ = ()
    enabled = False
    sink = None

    def span(self, name: str, **attrs) -> _NoopSpan:
        """Return the shared no-op span singleton."""
        return NOOP_SPAN

    def count(self, name: str, n: int = 1) -> None:
        """Do nothing."""
        return None

    def observe(self, name: str, value: float) -> None:
        """Do nothing."""
        return None

    def phase_seconds(self) -> dict[str, float]:
        """Nothing was recorded."""
        return {}

    def close(self) -> None:
        """Nothing to flush."""
        return None


#: The process-wide disabled tracer (``repro.obs.TRACER`` points here
#: unless ``REPRO_TRACE`` or ``set_tracer`` installed an enabled one).
NOOP_TRACER = NoopTracer()


class JsonlSink:
    """Append-mode JSONL writer for trace records (one object per line).

    The file is opened lazily on the first record, so constructing a
    tracer with a sink costs nothing until something is measured.
    """

    def __init__(self, path):
        self.path = path
        self._handle = None

    def write(self, record: dict) -> None:
        """Append one record as a JSON line."""
        if self._handle is None:
            self._handle = open(self.path, "w", encoding="utf-8")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
