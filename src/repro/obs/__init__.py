"""Unified telemetry: spans, counters, and phase-attributed profiles.

The live pipeline (columnar sketches → :class:`~repro.service.session.GraphSession`
→ :class:`~repro.stream.distributed.ShardedRunner`) measures itself
through this package instead of scattering ``time.perf_counter`` pairs:
ingest batches, query snapshots, cache traffic, checkpoint bytes,
scatter batch sizes, spill events, decode/peeling work and per-round
shard communication all land in one :class:`~repro.obs.tracer.Tracer`
as nested spans, counters and log2 histograms.  ``repro trace`` and
``repro stats --live`` surface the result; ``REPRO_TRACE=1`` streams a
JSONL trace from any entry point (schema in docs/observability.md).

The module-level :data:`TRACER` is the process-wide collector.  It is
the no-op singleton (:data:`~repro.obs.tracer.NOOP_TRACER`) unless
``REPRO_TRACE`` was set at import or :func:`set_tracer` installed an
enabled tracer — the same read-once-at-import pattern as
:mod:`repro.util.sanitize`.  Instrumented call sites read it as
``obs.TRACER`` so a swap takes effect everywhere immediately; the
disabled path allocates no per-call objects (``span()`` returns one
shared singleton) and its cost is gated at under 3% of the committed
ingest floor by ``benchmarks/bench_service.py``.

Usage::

    from repro import obs

    with obs.TRACER.span("session.ingest", updates=len(batch)):
        ...
    obs.TRACER.count("session.cache.hit")
    obs.TRACER.observe("sketch.scatter.batch", batch_len)

``REPRO_TRACE`` accepts ``1`` (trace to ``REPRO_TRACE_FILE``, default
``repro-trace.jsonl``) or a path ending in ``.jsonl`` / containing a
separator (trace directly to that path).
"""

from __future__ import annotations

import atexit
import os

from repro.obs.render import (
    counter_table,
    histogram_table,
    phase_tree,
    render_summary,
)
from repro.obs.tracer import (
    DEFAULT_CLOCK,
    NOOP_SPAN,
    NOOP_TRACER,
    Histogram,
    JsonlSink,
    NoopTracer,
    PhaseStat,
    Span,
    Tracer,
    log2_bucket,
)

__all__ = [
    "DEFAULT_CLOCK",
    "ENABLED",
    "NOOP_SPAN",
    "NOOP_TRACER",
    "TRACER",
    "Histogram",
    "JsonlSink",
    "NoopTracer",
    "PhaseStat",
    "Span",
    "Tracer",
    "counter_table",
    "get_tracer",
    "histogram_table",
    "log2_bucket",
    "phase_tree",
    "render_summary",
    "set_tracer",
    "trace_path_from_env",
]

#: Whether ``REPRO_TRACE`` armed tracing when this package was first
#: imported (anything but ``""``/``"0"`` arms it).
ENABLED = os.environ.get("REPRO_TRACE", "0") not in ("", "0")


def trace_path_from_env() -> str:
    """The JSONL path ``REPRO_TRACE`` / ``REPRO_TRACE_FILE`` selects.

    A ``REPRO_TRACE`` value that looks like a path (ends in ``.jsonl``
    or contains a path separator) is the sink path itself; any other
    truthy value defers to ``REPRO_TRACE_FILE`` (default
    ``repro-trace.jsonl`` in the working directory).
    """
    raw = os.environ.get("REPRO_TRACE", "")
    if raw.endswith(".jsonl") or os.sep in raw:
        return raw
    return os.environ.get("REPRO_TRACE_FILE", "repro-trace.jsonl")


#: The process-wide tracer every instrumented seam reads (``obs.TRACER``).
TRACER: Tracer | NoopTracer = NOOP_TRACER

if ENABLED:
    TRACER = Tracer(sink=JsonlSink(trace_path_from_env()))
    atexit.register(TRACER.close)


def get_tracer() -> Tracer | NoopTracer:
    """The current process-wide tracer (noop unless tracing is armed)."""
    return TRACER


def set_tracer(tracer: Tracer | NoopTracer) -> Tracer | NoopTracer:
    """Install ``tracer`` process-wide; returns the previous one.

    ``repro trace`` and tests use this for programmatic arming;
    call sites notice immediately because they read ``obs.TRACER``
    through the module attribute on every use.
    """
    global TRACER
    previous = TRACER
    TRACER = tracer
    return previous
