"""Terminal rendering of a tracer's aggregates: the phase tree and tables.

``repro trace`` and ``REPRO_TRACE=1 repro workload`` print these after a
run; the JSONL sink carries the same data machine-readably (one record
per closed span plus counter/histogram summaries — see
docs/observability.md for the schema).
"""

from __future__ import annotations

from repro.obs.tracer import Tracer

__all__ = ["phase_tree", "counter_table", "histogram_table", "render_summary"]


def phase_tree(tracer: Tracer) -> str:
    """The span aggregates as an indented tree, children under parents.

    Each line shows the phase name, total seconds, span count, and its
    share of the parent phase's time — the at-a-glance attribution the
    telemetry layer exists for.
    """
    phases = tracer.phases
    if not phases:
        return "(no spans recorded)"
    paths = sorted(phases)
    name_width = max(2 * (len(path) - 1) + len(path[-1]) for path in paths)
    lines = []
    for path in paths:
        stat = phases[path]
        indent = "  " * (len(path) - 1)
        label = f"{indent}{path[-1]}"
        parent = phases.get(path[:-1])
        share = ""
        if parent is not None and parent.seconds > 0:
            share = f"  {100.0 * stat.seconds / parent.seconds:5.1f}% of parent"
        lines.append(
            f"{label:<{name_width}}  {stat.seconds:10.4f} s  x{stat.count:<6}{share}"
        )
    return "\n".join(lines)


def counter_table(tracer: Tracer) -> str:
    """Counters as ``name value`` lines, sorted (empty string if none)."""
    if not tracer.counters:
        return ""
    width = max(len(name) for name in tracer.counters)
    return "\n".join(
        f"{name:<{width}}  {value:>14,}"
        for name, value in sorted(tracer.counters.items())
    )


def histogram_table(tracer: Tracer) -> str:
    """Histograms as one line each: count, mean, max, top log2 buckets."""
    if not tracer.histograms:
        return ""
    width = max(len(name) for name in tracer.histograms)
    lines = []
    for name, histogram in sorted(tracer.histograms.items()):
        buckets = ", ".join(
            f"2^{b}:{n}" for b, n in sorted(histogram.buckets.items())
        )
        lines.append(
            f"{name:<{width}}  x{histogram.count:<8} mean {histogram.mean:12.1f}  "
            f"max {histogram.max_value:12.1f}  [{buckets}]"
        )
    return "\n".join(lines)


def render_summary(tracer: Tracer) -> str:
    """The full terminal summary: phase tree + counters + histograms."""
    sections = [("phase tree (total seconds per span path)", phase_tree(tracer))]
    counters = counter_table(tracer)
    if counters:
        sections.append(("counters", counters))
    histograms = histogram_table(tracer)
    if histograms:
        sections.append(("histograms (log2 buckets)", histograms))
    blocks = []
    for title, body in sections:
        blocks.append(f"-- {title} --\n{body}")
    return "\n".join(blocks)
