"""Opt-in runtime sanitizer for the field kernels and clone discipline.

``REPRO_SANITIZE=1`` arms assertion-grade checks at the two places the
repo's invariants can silently rot at runtime rather than in review:

* **canonical-range discipline** — every mod-``p`` kernel in
  :mod:`repro.sketch.batched` requires operands already reduced into
  ``[0, p)``; an out-of-range operand does not crash, it *wraps*, and
  the sketch quietly stops being summable with its scalar twin.  The
  armed kernels assert the precondition instead.
* **clone independence** — a ``clone()`` that aliases live numpy state
  (the bug class PR 5's manual audit caught in a hash-family deepcopy)
  makes a "snapshot" mutate under the continuing stream.
  :func:`check_clone_independent` walks both objects' reachable numpy
  buffers and asserts the writable ones are disjoint.

The flag is read **once at import** into :data:`ENABLED`; tests flip
``sanitize.ENABLED`` directly (monkeypatch) to exercise both arms
without re-importing.  When disarmed, the kernels pay a single
attribute load and falsy branch per call — measured noise.

Checks raise :class:`SanitizeError` (an ``AssertionError`` subclass:
they are assertions about *our* code, not input validation).
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator

import numpy as np

__all__ = [
    "ENABLED",
    "SHARED_ATTRS",
    "SanitizeError",
    "check_clone_independent",
    "require_canonical",
    "require_positions",
]

#: Armed iff ``REPRO_SANITIZE`` is set to anything but ``""``/``"0"``
#: when this module is first imported.
ENABLED = os.environ.get("REPRO_SANITIZE", "0") not in ("", "0")


class SanitizeError(AssertionError):
    """A sanitizer assertion failed: an invariant does not hold at runtime."""


#: Attribute names whose numpy buffers are *immutable shared tables* by
#: design — hash-family coefficient matrices and power tables interned
#: across clones on purpose (``KWiseHash.__deepcopy__`` returns self).
#: Everything else reachable from a clone must be a distinct buffer.
SHARED_ATTRS = frozenset({"_zs", "_coeff_mats", "_pow_table", "_bucket_coeffs"})


def require_canonical(values, modulus: int, label: str = "operand") -> None:
    """Assert every element of ``values`` lies in ``[0, modulus)``.

    ``values`` may be a numpy array or scalar; integer dtypes only (the
    kernels never see floats — a float here is itself a violation).
    """
    array = np.asarray(values)
    if array.dtype.kind == "f":
        raise SanitizeError(
            f"{label}: float array reached a field kernel "
            f"(dtype {array.dtype}); field elements are exact integers"
        )
    if array.size and int(array.max()) >= modulus:
        raise SanitizeError(
            f"{label}: value {int(array.max())} >= modulus {modulus}; "
            f"kernels require canonical operands in [0, p) — reduce with "
            f"as_field_array first"
        )


def require_positions(positions, cells: int) -> None:
    """Assert scatter targets lie in ``[0, cells)`` (np.add.at wraps negatives)."""
    array = np.asarray(positions)
    if array.size == 0:
        return
    low, high = int(array.min()), int(array.max())
    if low < 0 or high >= cells:
        raise SanitizeError(
            f"scatter position out of range: [{low}, {high}] not within "
            f"[0, {cells}); np.add.at would silently wrap or raise mid-scatter"
        )


def _numpy_buffers(obj, shared: frozenset[str]) -> Iterator[int]:
    """Yield ``id()`` of every writable numpy array reachable from ``obj``.

    Walks ``__dict__``/containers breadth-first, skipping attributes in
    ``shared`` (immutable-by-design interned tables) and zero-size
    arrays (numpy may legitimately intern empties).
    """
    seen: set[int] = set()
    queue: list[object] = [obj]
    while queue:
        current = queue.pop()
        if id(current) in seen:
            continue
        seen.add(id(current))
        if isinstance(current, np.ndarray):
            if current.size:
                yield id(current)
            continue
        if isinstance(current, dict):
            queue.extend(current.values())
            continue
        if isinstance(current, (list, tuple, set, frozenset)):
            queue.extend(current)
            continue
        state = getattr(current, "__dict__", None)
        if state:
            for name, value in state.items():
                if name in shared:
                    continue
                queue.append(value)


def check_clone_independent(
    original, clone, shared: Iterable[str] = SHARED_ATTRS
) -> None:
    """Assert ``clone`` shares no writable numpy buffer with ``original``.

    ``shared`` names attributes exempt by design (interned immutable
    tables).  Raises :class:`SanitizeError` naming the aliased buffer
    count — the snapshot-mutates-under-the-stream bug class.
    """
    shared = frozenset(shared)
    mine = set(_numpy_buffers(original, shared))
    theirs = set(_numpy_buffers(clone, shared))
    aliased = mine & theirs
    if aliased:
        raise SanitizeError(
            f"clone aliases {len(aliased)} writable numpy buffer(s) of the "
            f"original ({type(original).__name__}): snapshot state will "
            f"mutate under the continuing stream"
        )
