"""Small shared utilities: deterministic seed derivation and misc helpers."""

from repro.util.rng import derive_seed, rng_from_seed

__all__ = ["derive_seed", "rng_from_seed"]
