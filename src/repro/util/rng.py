"""Deterministic seed derivation.

Every randomized component in this repository draws its randomness from a
named seed derived with :func:`derive_seed`.  Derivation is cryptographic
(SHA-256 over the rendered parts), so distinct names give independent
streams while identical names give identical streams — which is exactly
what linear sketching needs: two sketches can only be added if they were
built from the same derived seed, and re-running an experiment with the
same master seed reproduces it bit-for-bit.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["derive_seed", "rng_from_seed"]


def derive_seed(master: int | str, *parts: int | str) -> int:
    """Derive a 64-bit seed from a master seed and a path of name parts.

    Parameters
    ----------
    master:
        The experiment-level master seed (int or string).
    parts:
        Arbitrary identifying parts, e.g. ``("sketch", r, j)``.  The same
        ``(master, parts)`` always yields the same seed; any change in any
        part yields an (effectively) independent seed.
    """
    hasher = hashlib.sha256()
    hasher.update(repr(master).encode("utf-8"))
    for part in parts:
        hasher.update(b"/")
        hasher.update(repr(part).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big")


def rng_from_seed(master: int | str, *parts: int | str) -> random.Random:
    """Return a ``random.Random`` seeded via :func:`derive_seed`."""
    return random.Random(derive_seed(master, *parts))
