"""The two-pass streaming ``2^k``-spanner (Theorem 1; Algorithms 1 and 2).

Pass 1 (Algorithm 1 — CONSTRUCTCLUSTERS)
    Every vertex ``u`` maintains sketches
    ``S^r_j(u) = SKETCH_B(({u} x C_r) ∩ E ∩ E_j)`` for each target level
    ``r`` and each nested edge-sample level ``j``.  After the pass the
    cluster forest is built bottom-up: a copy ``(u, i)`` sums its
    subtree's level-``(i+1)`` sketches (linearity!), decodes from the
    sparsest ``E_j`` downward, and attaches to the first recovered
    neighbor in ``C_{i+1}`` — the recovered edge is the witness.

Pass 2 (Algorithm 2 — CONSTRUCTSPANNER)
    Every terminal root keeps, per vertex-sample level ``Y_j`` (and per
    independent repetition — see :mod:`repro.sketch.linear_hash_table`
    and ``SpannerParams.table_stacks``), a linear hash table
    ``H^u_j`` keyed by outside vertices ``v`` whose payload sketches
    ``N(v) ∩ T_u ∩ Y_j``.  Decoding the tables yields one edge from each
    outside neighbor into the cluster, completing the spanner.

Columnar storage
----------------
The pass-1 sketches of one ``(r, j)`` slot are seeded independently of
the vertex — sketches of different vertices must be summable — so all
``n`` of them live in one :class:`~repro.sketch.columnar.SketchStack`
(rows = vertices); likewise every terminal root's pass-2 *cut* sketch
joins a per-shape mixed-seed stack (rows = roots).  A stream chunk is
first collapsed to its net delta per distinct edge pair
(:func:`~repro.stream.batching.aggregate_updates`), hashes are evaluated
once per (pair, stack), and one flattened scatter lands every row's
contribution — bit-identical to the historical per-sketch state,
including the lazy-allocation bookkeeping (``shard_state_ints`` still
ships exactly the ``(vertex, r, j)`` rows the scalar path would have
allocated).

The class is linear-sketch-based throughout: all pass-1/pass-2 state
supports addition of same-seeded instances, so sketches computed on
different shards of the stream can be merged (see
``examples/distributed_servers.py``).

Setting ``augmented=True`` additionally records ``Sigma(R)`` — every
edge any successful decode revealed (Claims 16/18/20) — which the
spectral sparsifier's sampler consumes.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Callable, Sequence

import numpy as np

from repro.core.cluster_forest import ClusterForest, Copy
from repro.core.levels import LevelSamples
from repro.core.offline_spanner import SpannerOutput
from repro.core.parameters import SpannerParams
from repro.graph.graph import Graph, edge_from_index, edge_index
from repro.graph.vertex_space import VertexSpace, as_vertex_space
from repro.sketch.columnar import SketchStack
from repro.sketch.hashing import NestedSampler
from repro.sketch.linear_hash_table import NeighborhoodHashTable
from repro.sketch.onesparse import DecodeStatus
from repro.stream.batching import aggregate_updates, updates_to_arrays
from repro.stream.pipeline import StreamingAlgorithm, run_passes
from repro.stream.space import SpaceReport
from repro.stream.stream import DynamicStream
from repro.stream.updates import EdgeUpdate
from repro.util.rng import derive_seed

__all__ = ["TwoPassSpannerBuilder"]

#: Below this many distinct chunk tokens the token loop beats the
#: aggregation + scatter machinery.
_SMALL_BATCH = 32


class TwoPassSpannerBuilder(StreamingAlgorithm):
    """Dynamic-stream ``2^k``-spanner in exactly two passes.

    Parameters
    ----------
    num_vertices:
        Graph size ``n``.
    k:
        Cluster-hierarchy depth; stretch is ``2^k`` and space
        ``~O(n^{1+1/k})``.
    seed:
        Randomness name (cluster samples, edge samples, sketches).
    params:
        Constant calibration, see
        :class:`~repro.core.parameters.SpannerParams`.
    augmented:
        Record the observed-edge set ``Sigma(R)``.
    edge_filter:
        Optional predicate on canonical pairs ``(u, v)``; updates whose
        pair fails it are ignored.  This is how the sparsifier runs many
        spanner instances on (hash-)filtered substreams, and how the
        weighted wrapper splits weight classes.  (The sparsifier's own
        batch path evaluates the filters vectorized and feeds the
        surviving pairs through :meth:`process_pairs`, bypassing the
        per-token predicate.)
    """

    def __init__(
        self,
        num_vertices: int | VertexSpace,
        k: int,
        seed: int | str,
        params: SpannerParams | None = None,
        augmented: bool = False,
        edge_filter: Callable[[int, int], bool] | None = None,
    ):
        self.space = as_vertex_space(num_vertices)
        num_vertices = self.space.universe_size
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.num_vertices = num_vertices
        self.k = k
        self.params = params or SpannerParams()
        self.augmented = augmented
        self.edge_filter = edge_filter
        self._seed = derive_seed(seed)

        self.levels = LevelSamples(num_vertices, k, derive_seed(seed, "levels"))
        self._edge_levels = self.params.edge_levels(num_vertices)
        self._edge_sampler = NestedSampler(
            self._edge_levels, derive_seed(seed, "edge-samples")
        )
        self._vertex_levels = self.params.vertex_levels(num_vertices)
        self._y_samplers = [
            NestedSampler(self._vertex_levels, derive_seed(seed, "y-samples", stack))
            for stack in range(self.params.table_stacks)
        ]

        # Pass-1 columnar stacks, allocated lazily: (r, j) -> stack with
        # one (logical) row per vertex, plus the per-row liveness sets
        # that reproduce the historical per-(vertex, r, j) lazy
        # allocation.  Every stream endpoint also lands in ``_touched``
        # (chunking-independent: canceled tokens count too), which is
        # what the forest registers copies from — the dense engine
        # registered every universe vertex, but untouched vertices can
        # only ever form empty singleton trees, so restricting to the
        # touched set leaves the spanner output unchanged while keeping
        # the forest/table layout proportional to touched vertices.
        self._cluster_stacks: dict[tuple[int, int], SketchStack] = {}
        self._cluster_live: dict[tuple[int, int], set[int]] = {}
        self._touched: set[int] = set()
        # Pass-2 table layout bound: vertex-sample levels actually
        # allocated, derived from the *touched* count once the forest is
        # built (== the universe-derived bound when everything is touched).
        self._active_vertex_levels = self._vertex_levels
        # Per-chunk memo of the (hash-derived) vertex levels.
        self._levels_memo: dict[int, list[int]] = {}

        # Filled between passes.
        self.forest: ClusterForest | None = None
        self._terminal_trees: dict[Copy, set[int]] = {}
        self._trees_of_vertex: dict[int, list[Copy]] = {}
        # Pass-2 tables: (root, stack, j) -> table, materialized on first
        # touch (a root's deep Y_j levels usually never see an inside
        # vertex, so eager allocation would dominate sparse sessions).
        # Seeds and capacities are pure functions of (root, stack, j) and
        # the forest, so lazily allocated tables are bit-identical to
        # eagerly allocated ones and shards may allocate different sets.
        self._tables: dict[tuple[Copy, int, int], NeighborhoodHashTable] = {}
        self._table_effective_n: int | None = None
        # Pass-2 repair sketches: per-shape mixed-seed stacks whose rows
        # are terminal roots; root -> (stack index, row).
        self._cut_stacks: list[SketchStack] = []
        self._cut_rows: dict[Copy, tuple[int, int]] = {}

        self.observed_edges: set[tuple[int, int]] = set()
        self.diagnostics: dict[str, int] = {
            "pass1_decode_failures": 0,
            "pass2_table_overflows": 0,
            "pass2_uncovered_keys": 0,
            "pass2_repaired_keys": 0,
        }

    # ------------------------------------------------------------------
    # Streaming interface
    # ------------------------------------------------------------------

    @property
    def passes_required(self) -> int:
        return 2

    def process(self, update: EdgeUpdate, pass_index: int) -> None:
        if self.edge_filter is not None and not self.edge_filter(update.u, update.v):
            return
        if pass_index == 0:
            self._process_first_pass(update)
        else:
            self._process_second_pass(update)

    def process_batch(self, updates: Sequence[EdgeUpdate], pass_index: int) -> None:
        """Consume a chunk of stream tokens through the columnar sketch
        paths; final state is bit-identical to the scalar loop."""
        if self.edge_filter is not None:
            updates = [
                update for update in updates if self.edge_filter(update.u, update.v)
            ]
        if not updates:
            return
        if len(updates) <= _SMALL_BATCH:
            for update in updates:
                if pass_index == 0:
                    self._process_first_pass(update)
                else:
                    self._process_second_pass(update)
            return
        us, vs, signs = updates_to_arrays(updates)
        if pass_index == 0:
            lows, highs, pairs, net = aggregate_updates(
                us, vs, signs, self.num_vertices, keep_zero=True
            )
            self._first_pass_pairs(lows, highs, pairs, net)
        else:
            lows, highs, pairs, net = aggregate_updates(
                us, vs, signs, self.num_vertices
            )
            self._second_pass_pairs(lows, highs, pairs, net)

    def process_pairs(
        self,
        us: np.ndarray,
        vs: np.ndarray,
        pairs: np.ndarray,
        deltas: np.ndarray,
        pass_index: int,
    ) -> None:
        """Array entry point for pre-filtered, pre-aggregated chunks.

        ``us < vs`` are the distinct canonical pairs of a chunk,
        ``pairs`` their :func:`~repro.graph.graph.edge_index`
        coordinates, ``deltas`` the chunk-net multiplicity changes.  The
        sparsifier pipeline evaluates its per-slot hash filters
        vectorized on the distinct pairs of each chunk and routes the
        survivors here, skipping the per-token ``edge_filter`` Python
        loop entirely.  Pass-0 callers must keep zero-delta pairs (they
        drive the lazy sketch-row allocation); pass-1 callers should
        drop them.
        """
        if pass_index == 0:
            self._first_pass_pairs(us, vs, pairs, deltas)
        else:
            self._second_pass_pairs(us, vs, pairs, deltas)

    def end_pass(self, pass_index: int) -> None:
        if pass_index == 0:
            self._build_forest()
            self._allocate_tables()

    def finalize(self) -> SpannerOutput:
        return self._recover_spanner()

    def run(self, stream: DynamicStream, batch_size: int | None = None) -> SpannerOutput:
        """Convenience: run both passes over ``stream``.

        Pass a ``batch_size`` to ride the vectorized sketch engine
        (identical output, much faster on long streams — see
        ``docs/performance.md``).
        """
        return run_passes(stream, self, batch_size=batch_size)

    # ------------------------------------------------------------------
    # Distributed merging (linearity across stream shards)
    # ------------------------------------------------------------------

    def merge_first_pass(self, other: "TwoPassSpannerBuilder") -> None:
        """Add another same-seeded builder's pass-1 sketches into ours.

        This is the distributed use case from the paper's introduction:
        each server sketches its own shard of the update stream, the
        sketches are summed, and the sum equals the sketch of the union
        stream — so the forest built afterwards is exactly the
        single-machine forest.
        """
        if other._seed != self._seed:
            raise ValueError("builders must share a seed to merge")
        self._touched |= other._touched
        for key, stack in other._cluster_stacks.items():
            mine = self._cluster_stacks.get(key)
            if mine is None:
                self._ensure_cluster_stack(*key)
                mine = self._cluster_stacks[key]
            mine.combine(stack)
            self._cluster_live[key] |= other._cluster_live[key]

    def adopt_forest_from(self, other: "TwoPassSpannerBuilder") -> None:
        """Take the between-pass state (forest + table layout) from a
        coordinator builder, so pass-2 routing agrees across servers."""
        if other.forest is None:
            raise ValueError("the coordinator has not built its forest yet")
        self.adopt_broadcast(
            (other.forest, other._terminal_trees, other._trees_of_vertex), 1
        )

    def merge_second_pass(self, other: "TwoPassSpannerBuilder") -> None:
        """Add another same-seeded builder's pass-2 tables into ours
        (tables the other shard touched but we did not materialize on
        demand — same seeds, so the sum is exact)."""
        if other._seed != self._seed:
            raise ValueError("builders must share a seed to merge")
        for (root, stack, j), table in other._tables.items():
            self._ensure_table(root, stack, j).combine(table)
        for mine, theirs in zip(self._cut_stacks, other._cut_stacks):
            mine.combine(theirs)

    def clone(self) -> "TwoPassSpannerBuilder":
        """Cheap structural copy of the builder's dynamic state.

        Stacks, tables and repair stacks are copied cell-for-cell; the
        seed-derived samplers and level samples are immutable and
        shared.  The cluster forest and its routing maps are shared too:
        after ``end_pass(0)`` they are read-only (the same sharing the
        distributed broadcast relies on), and ``_build_forest`` installs
        a *new* forest object rather than mutating one in place — so a
        clone taken mid-pass-1 builds its own forest without touching
        the original's.
        """
        clone = object.__new__(TwoPassSpannerBuilder)
        clone.space = self.space
        clone.num_vertices = self.num_vertices
        clone.k = self.k
        clone.params = self.params
        clone.augmented = self.augmented
        clone.edge_filter = self.edge_filter
        clone._seed = self._seed
        clone.levels = self.levels
        clone._edge_levels = self._edge_levels
        clone._edge_sampler = self._edge_sampler
        clone._vertex_levels = self._vertex_levels
        clone._y_samplers = self._y_samplers
        clone._cluster_stacks = {
            key: stack.clone() for key, stack in self._cluster_stacks.items()
        }
        clone._cluster_live = {
            key: set(live) for key, live in self._cluster_live.items()
        }
        clone._touched = set(self._touched)
        clone._active_vertex_levels = self._active_vertex_levels
        clone._table_effective_n = self._table_effective_n
        clone._levels_memo = self._levels_memo
        clone.forest = self.forest
        clone._terminal_trees = self._terminal_trees
        clone._trees_of_vertex = self._trees_of_vertex
        clone._tables = {key: table.clone() for key, table in self._tables.items()}
        clone._cut_stacks = [stack.clone() for stack in self._cut_stacks]
        clone._cut_rows = dict(self._cut_rows)
        clone.observed_edges = set(self.observed_edges)
        clone.diagnostics = dict(self.diagnostics)
        return clone

    # -- sharded execution protocol (see repro.stream.distributed) -----

    def shard_state_ints(self, pass_index: int) -> list[int]:
        """Serialize one pass's sketch state as a flat int sequence.

        Pass 0 ships the lazily allocated cluster sketch rows as
        ``[count, (vertex, r, j, cells...) ...]`` — different shards
        allocate different key sets, so keys travel with the states
        (the columnar storage reproduces the per-(vertex, r, j)
        allocation exactly, so the wire format is unchanged).
        Pass 1 ships the *materialized* hash tables key-tagged in sorted
        order (lazy allocation means different shards touch different
        table sets), then the repair sketches — whose layout is
        determined by the (broadcast) forest, so only cell values travel.
        """
        if pass_index == 0:
            keys: list[tuple[int, int, int]] = []
            for (r, j), live in self._cluster_live.items():
                for vertex in live:
                    keys.append((int(vertex), r, j))
            keys.sort()
            touched = sorted(self._touched)
            flat: list[int] = [len(touched)]
            flat.extend(touched)
            flat.append(len(keys))
            for vertex, r, j in keys:
                flat.extend((vertex, r, j))
                flat.extend(self._cluster_stacks[(r, j)].row_state_ints(vertex))
            return flat
        # Nonzero tables only: materialization depends on chunk
        # boundaries (canceled-in-chunk tokens), nonzero-ness does not —
        # so every engine and chunking emits the identical wire.
        live_keys = [
            key for key in sorted(self._tables) if not self._tables[key].is_zero()
        ]
        flat = [len(live_keys)]
        for (root, stack, j) in live_keys:
            flat.extend((root[0], root[1], stack, j))
            flat.extend(self._tables[(root, stack, j)].state_ints())
        for root in sorted(self._cut_rows):
            stack_index, row = self._cut_rows[root]
            flat.extend(self._cut_stacks[stack_index].row_state_ints(row))
        return flat

    def load_shard_state_ints(self, pass_index: int, values: list[int]) -> None:
        """Inverse of :meth:`shard_state_ints` on a fresh same-seed
        builder (pass 1 additionally requires the adopted forest, which
        fixes the table layout)."""
        if pass_index == 0:
            touched_count = int(values[0])
            cursor = 1
            self._touched.update(
                int(v) for v in values[cursor : cursor + touched_count]
            )
            cursor += touched_count
            count = values[cursor]
            cursor += 1
            for _ in range(count):
                vertex, r, j = (int(v) for v in values[cursor : cursor + 3])
                cursor += 3
                stack = self._ensure_cluster_stack(r, j)
                self._cluster_live[(r, j)].add(vertex)
                need = stack.row_state_len()
                stack.load_row_state(vertex, values[cursor : cursor + need])
                cursor += need
            if cursor != len(values):
                raise ValueError(f"expected {cursor} state ints, got {len(values)}")
            return
        if self.forest is None:
            raise RuntimeError("adopt the coordinator forest before loading pass-2 state")
        table_count = int(values[0])
        cursor = 1
        for _ in range(table_count):
            vertex, level, stack_id, j = (int(v) for v in values[cursor : cursor + 4])
            cursor += 4
            table = self._ensure_table((vertex, level), stack_id, j)
            need = table.state_len()
            table.from_state_ints(values[cursor : cursor + need])
            cursor += need
        for root in sorted(self._cut_rows):
            stack_index, row = self._cut_rows[root]
            stack = self._cut_stacks[stack_index]
            need = stack.row_state_len()
            stack.load_row_state(row, values[cursor : cursor + need])
            cursor += need
        if cursor != len(values):
            raise ValueError(f"expected {cursor} state ints, got {len(values)}")

    def merge_shard(self, other: "TwoPassSpannerBuilder", pass_index: int) -> None:
        """Sum a shard builder's pass state into ours (linearity)."""
        if pass_index == 0:
            self.merge_first_pass(other)
        else:
            self.merge_second_pass(other)

    def broadcast_state(self, pass_index: int) -> object:
        """Coordinator state workers need before ``pass_index``: the
        cluster forest and its derived routing maps (pass 1 only)."""
        if pass_index != 1:
            return None
        if self.forest is None:
            raise RuntimeError("no forest to broadcast; run pass 0 first")
        return (self.forest, self._terminal_trees, self._trees_of_vertex)

    def adopt_broadcast(self, state: object, pass_index: int) -> None:
        """Install a coordinator's between-pass broadcast: the forest
        plus routing maps, and the table layout they determine."""
        forest, terminal_trees, trees_of_vertex = state
        self.forest = forest
        self._terminal_trees = terminal_trees
        self._trees_of_vertex = trees_of_vertex
        # Idempotence keyed on the layout marker, not on the (lazily
        # populated, possibly still empty) table dict: a repeated
        # broadcast must not re-run _allocate_tables and duplicate the
        # cut-sketch stacks.
        if self._table_effective_n is None:
            self._allocate_tables()

    # ------------------------------------------------------------------
    # Pass 1: cluster sketch stacks
    # ------------------------------------------------------------------

    def _ensure_cluster_stack(self, r: int, j: int) -> SketchStack:
        key = (r, j)
        stack = self._cluster_stacks.get(key)
        if stack is None:
            # Seeds depend on (r, j) only: sketches of different vertices
            # are summable, which _build_forest relies on — and which
            # lets all n of them share one columnar stack.
            stack = SketchStack(
                self.num_vertices,
                self.num_vertices * self.num_vertices,
                self.params.cluster_budget,
                derive_seed(self._seed, "cluster-sketch", r, j),
                rows=self.params.cluster_rows,
                lazy=self.space.lazy,
            )
            self._cluster_stacks[key] = stack
            self._cluster_live[key] = set()
        return stack

    def _vertex_levels_of(self, vertex: int) -> list[int]:
        """Nonzero sample levels of ``vertex`` (hash-derived, memoized)."""
        levels = self._levels_memo.get(vertex)
        if levels is None:
            levels = [r for r in self.levels.levels_of(vertex) if r != 0]
            self._levels_memo[vertex] = levels
        return levels

    def _process_first_pass(self, update: EdgeUpdate) -> None:
        pair = edge_index(update.u, update.v, self.num_vertices)
        self._touched.add(update.u)
        self._touched.add(update.v)
        deepest_j = min(self._edge_sampler.level(pair), self._edge_levels)
        for endpoint, other in ((update.u, update.v), (update.v, update.u)):
            for r in self._vertex_levels_of(other):
                for j in range(deepest_j + 1):
                    stack = self._ensure_cluster_stack(r, j)
                    self._cluster_live[(r, j)].add(endpoint)
                    stack.update_row(endpoint, pair, update.sign)

    def _first_pass_pairs(
        self, us: np.ndarray, vs: np.ndarray, pairs: np.ndarray, deltas: np.ndarray
    ) -> None:
        """Columnar Algorithm 1 updates over a chunk's distinct pairs.

        The nested sample levels ``E_j`` are computed in one vectorized
        pass over the distinct pairs; the (vertex-sample) routing fans
        each pair out to its ``(endpoint, r)`` incidences, and each
        ``(r, j)`` stack absorbs its incidence list in one scatter —
        hashes evaluated once per (pair, stack) instead of once per
        (pair, vertex, stack).  Zero-delta pairs still mark their rows
        live (the scalar path allocates their sketches too) but
        contribute no cell changes.
        """
        if pairs.size == 0:
            return
        self._touched.update(us.tolist())
        self._touched.update(vs.tolist())
        deepest = np.minimum(
            self._edge_sampler.level_array(pairs), self._edge_levels
        )
        # Fan distinct pairs out to their (endpoint, r) incidences.
        rows_of_r: dict[int, list[int]] = defaultdict(list)
        take_of_r: dict[int, list[int]] = defaultdict(list)
        for position in range(pairs.size):
            u = int(us[position])
            v = int(vs[position])
            for endpoint, other in ((u, v), (v, u)):
                for r in self._vertex_levels_of(other):
                    rows_of_r[r].append(endpoint)
                    take_of_r[r].append(position)
        for r, row_list in rows_of_r.items():
            rows = np.array(row_list, dtype=np.int64)
            take = np.array(take_of_r[r], dtype=np.intp)
            group_pairs = pairs[take]
            group_deltas = deltas[take]
            group_deepest = deepest[take]
            for j in range(int(group_deepest.max()) + 1):
                surviving = group_deepest >= j
                stack = self._ensure_cluster_stack(r, j)
                self._cluster_live[(r, j)].update(rows[surviving].tolist())
                stack.scatter(
                    rows[surviving], group_pairs[surviving], group_deltas[surviving]
                )

    def _build_forest(self) -> None:
        """Between-pass forest construction (lines 8-20 of Algorithm 1).

        Copies are registered for *touched* vertices only (stream
        endpoints, canceled tokens included): an untouched vertex holds
        zero sketches, can never attach anywhere, and would only produce
        an empty singleton tree whose pass-2 tables decode nothing — so
        dropping it leaves the spanner identical while keeping forest
        and table state proportional to the touched count (the sparse
        vertex-universe regime).
        """
        forest = ClusterForest(self.num_vertices, self.k)
        touched = sorted(self._touched)
        members_of = {
            level: [v for v in touched if self.levels.contains(v, level)]
            for level in range(self.k)
        }
        for level in range(self.k):
            for vertex in members_of[level]:
                forest.register_copy((vertex, level))

        for level in range(self.k - 1):
            target = level + 1
            for vertex in members_of[level]:
                copy: Copy = (vertex, level)
                tree = forest.subtree_vertices(copy)
                attached = self._attach_via_sketches(forest, copy, tree, target)
                if not attached:
                    forest.mark_terminal(copy)
        for vertex in members_of[self.k - 1]:
            forest.mark_terminal((vertex, self.k - 1))

        forest.validate()
        self.forest = forest
        self._terminal_trees = forest.terminal_trees()
        self._trees_of_vertex = forest.trees_containing()

    def _attach_via_sketches(
        self, forest: ClusterForest, copy: Copy, tree: set[int], target: int
    ) -> bool:
        """Decode ``Q^{target}_j = sum_{v in tree} S^{target}_j(v)`` from
        the sparsest level down; attach on the first usable edge."""
        for j in range(self._edge_levels, -1, -1):
            stack = self._cluster_stacks.get((target, j))
            if stack is None:
                continue
            live = self._cluster_live[(target, j)]
            members = [v for v in tree if v in live]
            if not members:
                continue  # no member saw any edge at this level
            combined = stack.rows_sum_sketch(members)
            decoded = combined.decode()
            if decoded is None:
                self.diagnostics["pass1_decode_failures"] += 1
                continue
            if not decoded:
                continue
            edges = sorted(
                edge_from_index(index, self.num_vertices) for index in decoded
            )
            if self.augmented:
                self.observed_edges.update(edges)
            for a, b in edges:
                # One endpoint lies in the tree, the other must be the
                # C_target parent; prefer a parent outside the tree.
                candidates = []
                if self.levels.contains(b, target) and a in tree:
                    candidates.append((b not in tree, b, (a, b)))
                if self.levels.contains(a, target) and b in tree:
                    candidates.append((a not in tree, a, (a, b)))
                if not candidates:
                    continue
                candidates.sort(reverse=True)
                prefer_outside, parent, witness = candidates[0]
                forest.attach(copy, parent, witness)
                return True
        return False

    # ------------------------------------------------------------------
    # Pass 2: neighborhood hash tables
    # ------------------------------------------------------------------

    def _effective_n(self) -> int:
        """Table-sizing vertex count: vertices registered in the forest.

        Equal to ``num_vertices`` when every universe vertex is touched
        (the historical dense regime), and to the touched count over a
        sparse universe — capacities and ``Y_j`` depth then track the
        graph that actually arrived, not the id space it lives in.
        Derived from the (broadcast) forest, so every builder that
        adopted the same forest allocates the identical layout.
        """
        return max(1, len(self._trees_of_vertex))

    def _ensure_table(self, root: Copy, stack: int, j: int) -> NeighborhoodHashTable:
        """The ``H^root_j`` table of one ``Y_j`` stack, materialized on
        first touch (seed and capacity are pure functions of the key and
        the forest, never of allocation order)."""
        key = (root, stack, j)
        table = self._tables.get(key)
        if table is None:
            if self._table_effective_n is None:
                raise RuntimeError("table layout requested before the forest was built")
            capacity = self.params.table_capacity(
                self._table_effective_n, root[1], self.k
            )
            table = NeighborhoodHashTable(
                self.num_vertices,
                capacity,
                derive_seed(self._seed, "table", root[0], root[1], stack, j),
                rows=self.params.table_rows,
                bucket_factor=self.params.table_bucket_factor,
            )
            self._tables[key] = table
        return table

    def _allocate_tables(self) -> None:
        """Fix the pass-2 layout (capacities, ``Y_j`` depth, cut-sketch
        stacks) from the built forest; the tables themselves materialize
        lazily as pass-2 updates touch them."""
        effective_n = self._effective_n()
        self._table_effective_n = effective_n
        self._active_vertex_levels = min(
            self._vertex_levels, self.params.vertex_levels(effective_n)
        )
        if self.params.repair_budget_factor > 0:
            # Group the per-root cut sketches into mixed-seed stacks by
            # shape (the budget depends only on the root's level); the
            # grouping is seed-determined, so every same-forest builder
            # forms identical stacks and they merge stack-wise.
            by_budget: dict[int, list[Copy]] = {}
            for root in sorted(self._terminal_trees):
                capacity = self.params.table_capacity(
                    effective_n, root[1], self.k
                )
                budget = max(8, math.ceil(self.params.repair_budget_factor * capacity))
                by_budget.setdefault(budget, []).append(root)
            for budget, group in by_budget.items():
                seeds = [
                    derive_seed(self._seed, "cut-sketch", root[0], root[1])
                    for root in group
                ]
                stack = SketchStack(
                    len(group),
                    self.num_vertices * self.num_vertices,
                    budget,
                    seeds,
                    rows=3,
                )
                stack_index = len(self._cut_stacks)
                self._cut_stacks.append(stack)
                for row, root in enumerate(group):
                    self._cut_rows[root] = (stack_index, row)

    def _process_second_pass(self, update: EdgeUpdate) -> None:
        if self.forest is None:
            raise RuntimeError("second pass before the forest was built")
        pair = edge_index(update.u, update.v, self.num_vertices)
        for inside, outside in ((update.u, update.v), (update.v, update.u)):
            for root in self._trees_of_vertex.get(inside, ()):
                if outside in self._terminal_trees[root]:
                    continue
                cut_entry = self._cut_rows.get(root)
                if cut_entry is not None:
                    stack_index, row = cut_entry
                    self._cut_stacks[stack_index].update_row(row, pair, update.sign)
                for stack, sampler in enumerate(self._y_samplers):
                    deepest = min(sampler.level(inside), self._active_vertex_levels)
                    for j in range(deepest + 1):
                        self._ensure_table(root, stack, j).add_neighbor(
                            key=outside, neighbor=inside, delta=update.sign
                        )

    def _second_pass_pairs(
        self, us: np.ndarray, vs: np.ndarray, pairs: np.ndarray, deltas: np.ndarray
    ) -> None:
        """Columnar Algorithm 2 updates over a chunk's distinct pairs.

        Routing (which terminal trees a pair crosses into) runs once per
        *distinct* pair; cut contributions group per columnar stack (one
        scatter each), and the per-(root, stack) hash tables absorb
        their groups through their vectorized batch paths.  The ``Y_j``
        level of each inside endpoint is memoized per stack, mirroring
        the scalar path's hash evaluations.
        """
        if self.forest is None:
            raise RuntimeError("second pass before the forest was built")
        if pairs.size == 0:
            return
        # (stack index) -> rows / coords / deltas of cut contributions.
        cut_groups: dict[int, list[tuple[int, int, int]]] = defaultdict(list)
        # (root, stack) -> (keys, neighbors, deltas, deepest levels)
        table_groups: dict[tuple[Copy, int], list[tuple[int, int, int, int]]] = (
            defaultdict(list)
        )
        y_levels: list[dict[int, int]] = [{} for _ in self._y_samplers]
        for position in range(pairs.size):
            u = int(us[position])
            v = int(vs[position])
            pair = int(pairs[position])
            delta = int(deltas[position])
            for inside, outside in ((u, v), (v, u)):
                for root in self._trees_of_vertex.get(inside, ()):
                    if outside in self._terminal_trees[root]:
                        continue
                    cut_entry = self._cut_rows.get(root)
                    if cut_entry is not None:
                        stack_index, row = cut_entry
                        cut_groups[stack_index].append((row, pair, delta))
                    for stack, sampler in enumerate(self._y_samplers):
                        deepest = y_levels[stack].get(inside)
                        if deepest is None:
                            deepest = min(sampler.level(inside), self._active_vertex_levels)
                            y_levels[stack][inside] = deepest
                        table_groups[(root, stack)].append(
                            (outside, inside, delta, deepest)
                        )
        for stack_index, entries in cut_groups.items():
            self._cut_stacks[stack_index].scatter(
                np.array([row for row, _, _ in entries], dtype=np.int64),
                np.array([pair for _, pair, _ in entries], dtype=np.int64),
                np.array([delta for _, _, delta in entries], dtype=np.int64),
            )
        for (root, stack), entries in table_groups.items():
            deepest = np.array([entry[3] for entry in entries], dtype=np.int64)
            keys = np.array([entry[0] for entry in entries], dtype=np.int64)
            neighbors = np.array([entry[1] for entry in entries], dtype=np.int64)
            values = np.array([entry[2] for entry in entries], dtype=np.int64)
            for j in range(int(deepest.max()) + 1):
                surviving = deepest >= j
                self._ensure_table(root, stack, j).add_neighbors_batch(
                    keys[surviving], neighbors[surviving], values[surviving]
                )

    def _recover_spanner(self) -> SpannerOutput:
        """Post-pass-2 recovery (lines 20-33 of Algorithm 2)."""
        if self.forest is None:
            raise RuntimeError("finalize before passes ran")
        spanner = Graph(self.num_vertices)

        # Step 1: witness edges of every attached copy.
        for a, b in self.forest.witness_edges():
            if not spanner.has_edge(a, b):
                spanner.add_edge(a, b)

        # Step 2: per terminal root, decode all tables and take, for each
        # outside key, the highest-level 1-sparse payload.
        for root, tree in self._terminal_trees.items():
            decoded_tables = {}
            for stack in range(self.params.table_stacks):
                for j in range(self._active_vertex_levels, -1, -1):
                    table = self._tables.get((root, stack, j))
                    if table is None:
                        continue  # never touched: decodes to nothing
                    decoded = table.decode_neighbors()
                    if decoded is None:
                        self.diagnostics["pass2_table_overflows"] += 1
                        continue
                    decoded_tables[(stack, j)] = decoded
            keys = set()
            for decoded in decoded_tables.values():
                keys.update(decoded)
            uncovered = []
            for v in sorted(keys):
                covered = False
                for j in range(self._active_vertex_levels, -1, -1):
                    for stack in range(self.params.table_stacks):
                        result = decoded_tables.get((stack, j), {}).get(v)
                        if result is None or result.status is not DecodeStatus.ONE_SPARSE:
                            continue
                        w = result.index
                        if w not in tree:
                            continue  # fingerprint-level noise; skip
                        if self.augmented:
                            self.observed_edges.add((min(w, v), max(w, v)))
                        if not covered:
                            if not spanner.has_edge(w, v):
                                spanner.add_edge(w, v)
                            covered = True
                    if covered:
                        break
                if not covered:
                    uncovered.append(v)
            if uncovered:
                repaired = self._repair_coverage(root, tree, uncovered, spanner)
                self.diagnostics["pass2_repaired_keys"] += repaired
                self.diagnostics["pass2_uncovered_keys"] += len(uncovered) - repaired

        for level in range(self.k):
            count = sum(1 for root in self._terminal_trees if root[1] == level)
            self.diagnostics[f"terminals_level_{level}"] = count

        return SpannerOutput(
            spanner=spanner,
            forest=self.forest,
            observed_edges=set(self.observed_edges),
            diagnostics=dict(self.diagnostics),
        )

    def _repair_coverage(
        self, root: Copy, tree: set[int], uncovered: list[int], spanner: Graph
    ) -> int:
        """Patch table-missed keys from the root's cut-edge sketch.

        Returns the number of keys repaired.  Only possible when the cut
        sketch decodes, i.e. the root's cut is within its budget.
        """
        cut_entry = self._cut_rows.get(root)
        if cut_entry is None:
            return 0
        stack_index, row = cut_entry
        decoded = self._cut_stacks[stack_index].row_sketch(row).decode()
        if decoded is None:
            return 0
        best_neighbor: dict[int, int] = {}
        for index in decoded:
            a, b = edge_from_index(index, self.num_vertices)
            if a in tree and b not in tree:
                inside, outside = a, b
            elif b in tree and a not in tree:
                inside, outside = b, a
            else:
                continue
            current = best_neighbor.get(outside)
            if current is None or inside < current:
                best_neighbor[outside] = inside
        if self.augmented:
            for index in decoded:
                a, b = edge_from_index(index, self.num_vertices)
                self.observed_edges.add((a, b))
        repaired = 0
        for v in uncovered:
            w = best_neighbor.get(v)
            if w is None:
                continue
            if not spanner.has_edge(w, v):
                spanner.add_edge(w, v)
            repaired += 1
        return repaired

    # ------------------------------------------------------------------
    # Space accounting
    # ------------------------------------------------------------------

    def space_report(self) -> SpaceReport:
        """Measured words held by every sketch component."""
        report = SpaceReport()
        report.add("level-sample seeds", self.levels.space_words())
        report.add("edge-sample seeds", self._edge_sampler.space_words())
        for sampler in self._y_samplers:
            report.add("vertex-sample seeds", sampler.space_words())
        for key, stack in self._cluster_stacks.items():
            live_rows = len(self._cluster_live[key])
            report.add(
                "pass1 cluster sketches",
                live_rows * stack.row_space_words(),
                universe_words=self.num_vertices * stack.row_space_words(),
            )
        for table in self._tables.values():
            report.add("pass2 hash tables", table.space_words())
        for root, (stack_index, _) in self._cut_rows.items():
            report.add(
                "pass2 repair sketches",
                self._cut_stacks[stack_index].row_space_words(),
            )
        return report

    def space_words(self) -> int:
        return self.space_report().total_words()
