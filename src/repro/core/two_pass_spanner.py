"""The two-pass streaming ``2^k``-spanner (Theorem 1; Algorithms 1 and 2).

Pass 1 (Algorithm 1 — CONSTRUCTCLUSTERS)
    Every vertex ``u`` maintains sketches
    ``S^r_j(u) = SKETCH_B(({u} x C_r) ∩ E ∩ E_j)`` for each target level
    ``r`` and each nested edge-sample level ``j``.  After the pass the
    cluster forest is built bottom-up: a copy ``(u, i)`` sums its
    subtree's level-``(i+1)`` sketches (linearity!), decodes from the
    sparsest ``E_j`` downward, and attaches to the first recovered
    neighbor in ``C_{i+1}`` — the recovered edge is the witness.

Pass 2 (Algorithm 2 — CONSTRUCTSPANNER)
    Every terminal root keeps, per vertex-sample level ``Y_j`` (and per
    independent repetition — see :mod:`repro.sketch.linear_hash_table`
    and ``SpannerParams.table_stacks``), a linear hash table
    ``H^u_j`` keyed by outside vertices ``v`` whose payload sketches
    ``N(v) ∩ T_u ∩ Y_j``.  Decoding the tables yields one edge from each
    outside neighbor into the cluster, completing the spanner.

The class is linear-sketch-based throughout: all pass-1/pass-2 state
supports addition of same-seeded instances, so sketches computed on
different shards of the stream can be merged (see
``examples/distributed_servers.py``).

Setting ``augmented=True`` additionally records ``Sigma(R)`` — every
edge any successful decode revealed (Claims 16/18/20) — which the
spectral sparsifier's sampler consumes.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Callable, Sequence

import numpy as np

from repro.core.cluster_forest import ClusterForest, Copy
from repro.core.levels import LevelSamples
from repro.core.offline_spanner import SpannerOutput
from repro.core.parameters import SpannerParams
from repro.graph.graph import Graph, edge_from_index, edge_index
from repro.sketch.hashing import NestedSampler
from repro.sketch.linear_hash_table import NeighborhoodHashTable
from repro.sketch.onesparse import DecodeStatus
from repro.sketch.sparse_recovery import SparseRecoverySketch
from repro.stream.pipeline import StreamingAlgorithm, run_passes
from repro.stream.space import SpaceReport
from repro.stream.stream import DynamicStream
from repro.stream.updates import EdgeUpdate
from repro.util.rng import derive_seed

__all__ = ["TwoPassSpannerBuilder"]


class TwoPassSpannerBuilder(StreamingAlgorithm):
    """Dynamic-stream ``2^k``-spanner in exactly two passes.

    Parameters
    ----------
    num_vertices:
        Graph size ``n``.
    k:
        Cluster-hierarchy depth; stretch is ``2^k`` and space
        ``~O(n^{1+1/k})``.
    seed:
        Randomness name (cluster samples, edge samples, sketches).
    params:
        Constant calibration, see
        :class:`~repro.core.parameters.SpannerParams`.
    augmented:
        Record the observed-edge set ``Sigma(R)``.
    edge_filter:
        Optional predicate on canonical pairs ``(u, v)``; updates whose
        pair fails it are ignored.  This is how the sparsifier runs many
        spanner instances on (hash-)filtered substreams, and how the
        weighted wrapper splits weight classes.
    """

    def __init__(
        self,
        num_vertices: int,
        k: int,
        seed: int | str,
        params: SpannerParams | None = None,
        augmented: bool = False,
        edge_filter: Callable[[int, int], bool] | None = None,
    ):
        if num_vertices <= 0:
            raise ValueError(f"num_vertices must be positive, got {num_vertices}")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.num_vertices = num_vertices
        self.k = k
        self.params = params or SpannerParams()
        self.augmented = augmented
        self.edge_filter = edge_filter
        self._seed = derive_seed(seed)

        self.levels = LevelSamples(num_vertices, k, derive_seed(seed, "levels"))
        self._edge_levels = self.params.edge_levels(num_vertices)
        self._edge_sampler = NestedSampler(
            self._edge_levels, derive_seed(seed, "edge-samples")
        )
        self._vertex_levels = self.params.vertex_levels(num_vertices)
        self._y_samplers = [
            NestedSampler(self._vertex_levels, derive_seed(seed, "y-samples", stack))
            for stack in range(self.params.table_stacks)
        ]

        # Pass-1 sketches, allocated lazily: (vertex, r, j) -> sketch.
        self._cluster_sketches: dict[tuple[int, int, int], SparseRecoverySketch] = {}

        # Filled between passes.
        self.forest: ClusterForest | None = None
        self._terminal_trees: dict[Copy, set[int]] = {}
        self._trees_of_vertex: dict[int, list[Copy]] = {}
        # Pass-2 tables: (root, stack, j) -> table.
        self._tables: dict[tuple[Copy, int, int], NeighborhoodHashTable] = {}
        # Pass-2 repair sketches: root -> sketch of the root's cut edges.
        self._cut_sketches: dict[Copy, SparseRecoverySketch] = {}

        self.observed_edges: set[tuple[int, int]] = set()
        self.diagnostics: dict[str, int] = {
            "pass1_decode_failures": 0,
            "pass2_table_overflows": 0,
            "pass2_uncovered_keys": 0,
            "pass2_repaired_keys": 0,
        }

    # ------------------------------------------------------------------
    # Streaming interface
    # ------------------------------------------------------------------

    @property
    def passes_required(self) -> int:
        return 2

    def process(self, update: EdgeUpdate, pass_index: int) -> None:
        if self.edge_filter is not None and not self.edge_filter(update.u, update.v):
            return
        if pass_index == 0:
            self._process_first_pass(update)
        else:
            self._process_second_pass(update)

    def process_batch(self, updates: Sequence[EdgeUpdate], pass_index: int) -> None:
        """Consume a chunk of stream tokens through the batched sketch
        paths; final state is bit-identical to the scalar loop."""
        if self.edge_filter is not None:
            updates = [
                update for update in updates if self.edge_filter(update.u, update.v)
            ]
        if not updates:
            return
        if pass_index == 0:
            self._process_first_pass_batch(updates)
        else:
            self._process_second_pass_batch(updates)

    def end_pass(self, pass_index: int) -> None:
        if pass_index == 0:
            self._build_forest()
            self._allocate_tables()

    def finalize(self) -> SpannerOutput:
        return self._recover_spanner()

    def run(self, stream: DynamicStream, batch_size: int | None = None) -> SpannerOutput:
        """Convenience: run both passes over ``stream``.

        Pass a ``batch_size`` to ride the vectorized sketch engine
        (identical output, much faster on long streams — see
        ``docs/performance.md``).
        """
        return run_passes(stream, self, batch_size=batch_size)

    # ------------------------------------------------------------------
    # Distributed merging (linearity across stream shards)
    # ------------------------------------------------------------------

    def merge_first_pass(self, other: "TwoPassSpannerBuilder") -> None:
        """Add another same-seeded builder's pass-1 sketches into ours.

        This is the distributed use case from the paper's introduction:
        each server sketches its own shard of the update stream, the
        sketches are summed, and the sum equals the sketch of the union
        stream — so the forest built afterwards is exactly the
        single-machine forest.
        """
        if other._seed != self._seed:
            raise ValueError("builders must share a seed to merge")
        for key, sketch in other._cluster_sketches.items():
            mine = self._cluster_sketches.get(key)
            if mine is None:
                self._cluster_sketches[key] = sketch.copy()
            else:
                mine.combine(sketch)

    def adopt_forest_from(self, other: "TwoPassSpannerBuilder") -> None:
        """Take the between-pass state (forest + table layout) from a
        coordinator builder, so pass-2 routing agrees across servers."""
        if other.forest is None:
            raise ValueError("the coordinator has not built its forest yet")
        self.adopt_broadcast(
            (other.forest, other._terminal_trees, other._trees_of_vertex), 1
        )

    def merge_second_pass(self, other: "TwoPassSpannerBuilder") -> None:
        """Add another same-seeded builder's pass-2 tables into ours."""
        if other._seed != self._seed:
            raise ValueError("builders must share a seed to merge")
        for key, table in other._tables.items():
            self._tables[key].combine(table)
        for root, sketch in other._cut_sketches.items():
            self._cut_sketches[root].combine(sketch)

    def clone(self) -> "TwoPassSpannerBuilder":
        """Cheap structural copy of the builder's dynamic state.

        Sketches, tables and repair sketches are copied cell-for-cell;
        the seed-derived samplers and level samples are immutable and
        shared.  The cluster forest and its routing maps are shared too:
        after ``end_pass(0)`` they are read-only (the same sharing the
        distributed broadcast relies on), and ``_build_forest`` installs
        a *new* forest object rather than mutating one in place — so a
        clone taken mid-pass-1 builds its own forest without touching
        the original's.
        """
        clone = object.__new__(TwoPassSpannerBuilder)
        clone.num_vertices = self.num_vertices
        clone.k = self.k
        clone.params = self.params
        clone.augmented = self.augmented
        clone.edge_filter = self.edge_filter
        clone._seed = self._seed
        clone.levels = self.levels
        clone._edge_levels = self._edge_levels
        clone._edge_sampler = self._edge_sampler
        clone._vertex_levels = self._vertex_levels
        clone._y_samplers = self._y_samplers
        clone._cluster_sketches = {
            key: sketch.copy() for key, sketch in self._cluster_sketches.items()
        }
        clone.forest = self.forest
        clone._terminal_trees = self._terminal_trees
        clone._trees_of_vertex = self._trees_of_vertex
        clone._tables = {key: table.clone() for key, table in self._tables.items()}
        clone._cut_sketches = {
            root: sketch.copy() for root, sketch in self._cut_sketches.items()
        }
        clone.observed_edges = set(self.observed_edges)
        clone.diagnostics = dict(self.diagnostics)
        return clone

    # -- sharded execution protocol (see repro.stream.distributed) -----

    def shard_state_ints(self, pass_index: int) -> list[int]:
        """Serialize one pass's sketch state as a flat int sequence.

        Pass 0 ships the lazily allocated cluster sketches as
        ``[count, (vertex, r, j, cells...) ...]`` — different shards
        allocate different key sets, so keys travel with the states.
        Pass 1 ships the hash tables and repair sketches in sorted key
        order; their layout is determined by the (broadcast) forest, so
        only the cell values travel.
        """
        if pass_index == 0:
            flat: list[int] = [len(self._cluster_sketches)]
            for key in sorted(self._cluster_sketches):
                vertex, r, j = key
                flat.extend((vertex, r, j))
                flat.extend(self._cluster_sketches[key].state_ints())
            return flat
        flat = []
        for key in sorted(self._tables):
            flat.extend(self._tables[key].state_ints())
        for root in sorted(self._cut_sketches):
            flat.extend(self._cut_sketches[root].state_ints())
        return flat

    def load_shard_state_ints(self, pass_index: int, values: list[int]) -> None:
        """Inverse of :meth:`shard_state_ints` on a fresh same-seed
        builder (pass 1 additionally requires the adopted forest, which
        fixes the table layout)."""
        if pass_index == 0:
            count = values[0]
            cursor = 1
            for _ in range(count):
                vertex, r, j = values[cursor : cursor + 3]
                cursor += 3
                sketch = self._cluster_sketch(int(vertex), int(r), int(j))
                need = sketch.state_len()
                sketch.from_state_ints(values[cursor : cursor + need])
                cursor += need
            if cursor != len(values):
                raise ValueError(f"expected {cursor} state ints, got {len(values)}")
            return
        if not self._tables and self.forest is None:
            raise RuntimeError("adopt the coordinator forest before loading pass-2 state")
        cursor = 0
        for key in sorted(self._tables):
            table = self._tables[key]
            need = table.state_len()
            table.from_state_ints(values[cursor : cursor + need])
            cursor += need
        for root in sorted(self._cut_sketches):
            sketch = self._cut_sketches[root]
            need = sketch.state_len()
            sketch.from_state_ints(values[cursor : cursor + need])
            cursor += need
        if cursor != len(values):
            raise ValueError(f"expected {cursor} state ints, got {len(values)}")

    def merge_shard(self, other: "TwoPassSpannerBuilder", pass_index: int) -> None:
        """Sum a shard builder's pass state into ours (linearity)."""
        if pass_index == 0:
            self.merge_first_pass(other)
        else:
            self.merge_second_pass(other)

    def broadcast_state(self, pass_index: int) -> object:
        """Coordinator state workers need before ``pass_index``: the
        cluster forest and its derived routing maps (pass 1 only)."""
        if pass_index != 1:
            return None
        if self.forest is None:
            raise RuntimeError("no forest to broadcast; run pass 0 first")
        return (self.forest, self._terminal_trees, self._trees_of_vertex)

    def adopt_broadcast(self, state: object, pass_index: int) -> None:
        """Install a coordinator's between-pass broadcast: the forest
        plus routing maps, and the table layout they determine."""
        forest, terminal_trees, trees_of_vertex = state
        self.forest = forest
        self._terminal_trees = terminal_trees
        self._trees_of_vertex = trees_of_vertex
        if not self._tables:
            self._allocate_tables()

    # ------------------------------------------------------------------
    # Pass 1: cluster sketches
    # ------------------------------------------------------------------

    def _cluster_sketch(self, vertex: int, r: int, j: int) -> SparseRecoverySketch:
        key = (vertex, r, j)
        sketch = self._cluster_sketches.get(key)
        if sketch is None:
            # Seeds depend on (r, j) only: sketches of different vertices
            # are summable, which _build_forest relies on.
            sketch = SparseRecoverySketch(
                domain_size=self.num_vertices * self.num_vertices,
                budget=self.params.cluster_budget,
                seed=derive_seed(self._seed, "cluster-sketch", r, j),
                rows=self.params.cluster_rows,
            )
            self._cluster_sketches[key] = sketch
        return sketch

    def _process_first_pass(self, update: EdgeUpdate) -> None:
        pair = edge_index(update.u, update.v, self.num_vertices)
        deepest_j = min(self._edge_sampler.level(pair), self._edge_levels)
        for endpoint, other in ((update.u, update.v), (update.v, update.u)):
            for r in self.levels.levels_of(other):
                if r == 0:
                    continue  # Q sums only target levels r = i+1 >= 1
                for j in range(deepest_j + 1):
                    self._cluster_sketch(endpoint, r, j).update(pair, update.sign)

    def _process_first_pass_batch(self, updates: Sequence[EdgeUpdate]) -> None:
        """Batched Algorithm 1 updates.

        The edge-pair coordinates and their nested sample levels ``E_j``
        are computed in two vectorized passes; the per-update routing
        (which ``(endpoint, r)`` sketch stacks an edge feeds) is grouped
        in plain dicts, and every group then rides
        :meth:`~repro.sketch.sparse_recovery.SparseRecoverySketch.update_batch`.
        """
        us = np.array([update.u for update in updates], dtype=np.int64)
        vs = np.array([update.v for update in updates], dtype=np.int64)
        signs = np.array([update.sign for update in updates], dtype=np.int64)
        pairs = us * np.int64(self.num_vertices) + vs  # canonical u < v
        deepest = np.minimum(
            self._edge_sampler.level_array(pairs), self._edge_levels
        )
        # Route update positions to their (endpoint, r) sketch stacks;
        # levels_of is hash-derived, so memoize it per distinct vertex.
        levels_cache: dict[int, list[int]] = {}
        groups: dict[tuple[int, int], list[int]] = defaultdict(list)
        for position, update in enumerate(updates):
            for endpoint, other in ((update.u, update.v), (update.v, update.u)):
                levels = levels_cache.get(other)
                if levels is None:
                    levels = [r for r in self.levels.levels_of(other) if r != 0]
                    levels_cache[other] = levels
                for r in levels:
                    groups[(endpoint, r)].append(position)
        for (endpoint, r), positions in groups.items():
            selector = np.array(positions, dtype=np.intp)
            group_pairs = pairs[selector]
            group_signs = signs[selector]
            group_deepest = deepest[selector]
            for j in range(int(group_deepest.max()) + 1):
                surviving = group_deepest >= j
                self._cluster_sketch(endpoint, r, j).update_batch(
                    group_pairs[surviving], group_signs[surviving]
                )

    def _build_forest(self) -> None:
        """Between-pass forest construction (lines 8-20 of Algorithm 1)."""
        forest = ClusterForest(self.num_vertices, self.k)
        for level in range(self.k):
            for vertex in self.levels.members(level):
                forest.register_copy((vertex, level))

        for level in range(self.k - 1):
            target = level + 1
            for vertex in self.levels.members(level):
                copy: Copy = (vertex, level)
                tree = forest.subtree_vertices(copy)
                attached = self._attach_via_sketches(forest, copy, tree, target)
                if not attached:
                    forest.mark_terminal(copy)
        for vertex in self.levels.members(self.k - 1):
            forest.mark_terminal((vertex, self.k - 1))

        forest.validate()
        self.forest = forest
        self._terminal_trees = forest.terminal_trees()
        self._trees_of_vertex = forest.trees_containing()

    def _attach_via_sketches(
        self, forest: ClusterForest, copy: Copy, tree: set[int], target: int
    ) -> bool:
        """Decode ``Q^{target}_j = sum_{v in tree} S^{target}_j(v)`` from
        the sparsest level down; attach on the first usable edge."""
        for j in range(self._edge_levels, -1, -1):
            combined: SparseRecoverySketch | None = None
            for v in tree:
                sketch = self._cluster_sketches.get((v, target, j))
                if sketch is None:
                    continue
                if combined is None:
                    combined = sketch.copy()
                else:
                    combined.combine(sketch)
            if combined is None:
                continue  # no member saw any edge at this level
            decoded = combined.decode()
            if decoded is None:
                self.diagnostics["pass1_decode_failures"] += 1
                continue
            if not decoded:
                continue
            edges = sorted(
                edge_from_index(index, self.num_vertices) for index in decoded
            )
            if self.augmented:
                self.observed_edges.update(edges)
            for a, b in edges:
                # One endpoint lies in the tree, the other must be the
                # C_target parent; prefer a parent outside the tree.
                candidates = []
                if self.levels.contains(b, target) and a in tree:
                    candidates.append((b not in tree, b, (a, b)))
                if self.levels.contains(a, target) and b in tree:
                    candidates.append((a not in tree, a, (a, b)))
                if not candidates:
                    continue
                candidates.sort(reverse=True)
                prefer_outside, parent, witness = candidates[0]
                forest.attach(copy, parent, witness)
                return True
        return False

    # ------------------------------------------------------------------
    # Pass 2: neighborhood hash tables
    # ------------------------------------------------------------------

    def _allocate_tables(self) -> None:
        for root in self._terminal_trees:
            capacity = self.params.table_capacity(self.num_vertices, root[1], self.k)
            for stack in range(self.params.table_stacks):
                for j in range(self._vertex_levels + 1):
                    self._tables[(root, stack, j)] = NeighborhoodHashTable(
                        self.num_vertices,
                        capacity,
                        derive_seed(self._seed, "table", root[0], root[1], stack, j),
                        rows=self.params.table_rows,
                        bucket_factor=self.params.table_bucket_factor,
                    )
            if self.params.repair_budget_factor > 0:
                self._cut_sketches[root] = SparseRecoverySketch(
                    domain_size=self.num_vertices * self.num_vertices,
                    budget=max(8, math.ceil(self.params.repair_budget_factor * capacity)),
                    seed=derive_seed(self._seed, "cut-sketch", root[0], root[1]),
                    rows=3,
                )

    def _process_second_pass(self, update: EdgeUpdate) -> None:
        if self.forest is None:
            raise RuntimeError("second pass before the forest was built")
        pair = edge_index(update.u, update.v, self.num_vertices)
        for inside, outside in ((update.u, update.v), (update.v, update.u)):
            for root in self._trees_of_vertex[inside]:
                if outside in self._terminal_trees[root]:
                    continue
                cut_sketch = self._cut_sketches.get(root)
                if cut_sketch is not None:
                    cut_sketch.update(pair, update.sign)
                for stack, sampler in enumerate(self._y_samplers):
                    deepest = min(sampler.level(inside), self._vertex_levels)
                    for j in range(deepest + 1):
                        self._tables[(root, stack, j)].add_neighbor(
                            key=outside, neighbor=inside, delta=update.sign
                        )

    def _process_second_pass_batch(self, updates: Sequence[EdgeUpdate]) -> None:
        """Batched Algorithm 2 updates.

        Routing (which terminal trees an update crosses into) is grouped
        per root in plain dicts; the cut sketches and the per-stack hash
        tables then absorb each group through their vectorized batch
        paths.  The ``Y_j`` level of each inside endpoint is memoized
        per stack, mirroring the scalar path's hash evaluations.
        """
        if self.forest is None:
            raise RuntimeError("second pass before the forest was built")
        cut_groups: dict[Copy, list[tuple[int, int]]] = defaultdict(list)
        # (root, stack) -> (keys, neighbors, deltas, deepest levels)
        table_groups: dict[tuple[Copy, int], list[tuple[int, int, int, int]]] = (
            defaultdict(list)
        )
        y_levels: list[dict[int, int]] = [{} for _ in self._y_samplers]
        for update in updates:
            pair = edge_index(update.u, update.v, self.num_vertices)
            for inside, outside in ((update.u, update.v), (update.v, update.u)):
                for root in self._trees_of_vertex[inside]:
                    if outside in self._terminal_trees[root]:
                        continue
                    if root in self._cut_sketches:
                        cut_groups[root].append((pair, update.sign))
                    for stack, sampler in enumerate(self._y_samplers):
                        deepest = y_levels[stack].get(inside)
                        if deepest is None:
                            deepest = min(sampler.level(inside), self._vertex_levels)
                            y_levels[stack][inside] = deepest
                        table_groups[(root, stack)].append(
                            (outside, inside, update.sign, deepest)
                        )
        for root, entries in cut_groups.items():
            self._cut_sketches[root].update_batch(
                [pair for pair, _ in entries], [sign for _, sign in entries]
            )
        for (root, stack), entries in table_groups.items():
            deepest = np.array([entry[3] for entry in entries], dtype=np.int64)
            keys = np.array([entry[0] for entry in entries], dtype=np.int64)
            neighbors = np.array([entry[1] for entry in entries], dtype=np.int64)
            deltas = np.array([entry[2] for entry in entries], dtype=np.int64)
            for j in range(int(deepest.max()) + 1):
                surviving = deepest >= j
                self._tables[(root, stack, j)].add_neighbors_batch(
                    keys[surviving], neighbors[surviving], deltas[surviving]
                )

    def _recover_spanner(self) -> SpannerOutput:
        """Post-pass-2 recovery (lines 20-33 of Algorithm 2)."""
        if self.forest is None:
            raise RuntimeError("finalize before passes ran")
        spanner = Graph(self.num_vertices)

        # Step 1: witness edges of every attached copy.
        for a, b in self.forest.witness_edges():
            if not spanner.has_edge(a, b):
                spanner.add_edge(a, b)

        # Step 2: per terminal root, decode all tables and take, for each
        # outside key, the highest-level 1-sparse payload.
        for root, tree in self._terminal_trees.items():
            decoded_tables = {}
            for stack in range(self.params.table_stacks):
                for j in range(self._vertex_levels, -1, -1):
                    table = self._tables[(root, stack, j)]
                    decoded = table.decode_neighbors()
                    if decoded is None:
                        self.diagnostics["pass2_table_overflows"] += 1
                        continue
                    decoded_tables[(stack, j)] = decoded
            keys = set()
            for decoded in decoded_tables.values():
                keys.update(decoded)
            uncovered = []
            for v in sorted(keys):
                covered = False
                for j in range(self._vertex_levels, -1, -1):
                    for stack in range(self.params.table_stacks):
                        result = decoded_tables.get((stack, j), {}).get(v)
                        if result is None or result.status is not DecodeStatus.ONE_SPARSE:
                            continue
                        w = result.index
                        if w not in tree:
                            continue  # fingerprint-level noise; skip
                        if self.augmented:
                            self.observed_edges.add((min(w, v), max(w, v)))
                        if not covered:
                            if not spanner.has_edge(w, v):
                                spanner.add_edge(w, v)
                            covered = True
                    if covered:
                        break
                if not covered:
                    uncovered.append(v)
            if uncovered:
                repaired = self._repair_coverage(root, tree, uncovered, spanner)
                self.diagnostics["pass2_repaired_keys"] += repaired
                self.diagnostics["pass2_uncovered_keys"] += len(uncovered) - repaired

        for level in range(self.k):
            count = sum(1 for root in self._terminal_trees if root[1] == level)
            self.diagnostics[f"terminals_level_{level}"] = count

        return SpannerOutput(
            spanner=spanner,
            forest=self.forest,
            observed_edges=set(self.observed_edges),
            diagnostics=dict(self.diagnostics),
        )

    def _repair_coverage(
        self, root: Copy, tree: set[int], uncovered: list[int], spanner: Graph
    ) -> int:
        """Patch table-missed keys from the root's cut-edge sketch.

        Returns the number of keys repaired.  Only possible when the cut
        sketch decodes, i.e. the root's cut is within its budget.
        """
        cut_sketch = self._cut_sketches.get(root)
        if cut_sketch is None:
            return 0
        decoded = cut_sketch.decode()
        if decoded is None:
            return 0
        best_neighbor: dict[int, int] = {}
        for index in decoded:
            a, b = edge_from_index(index, self.num_vertices)
            if a in tree and b not in tree:
                inside, outside = a, b
            elif b in tree and a not in tree:
                inside, outside = b, a
            else:
                continue
            current = best_neighbor.get(outside)
            if current is None or inside < current:
                best_neighbor[outside] = inside
        if self.augmented:
            for index in decoded:
                a, b = edge_from_index(index, self.num_vertices)
                self.observed_edges.add((a, b))
        repaired = 0
        for v in uncovered:
            w = best_neighbor.get(v)
            if w is None:
                continue
            if not spanner.has_edge(w, v):
                spanner.add_edge(w, v)
            repaired += 1
        return repaired

    # ------------------------------------------------------------------
    # Space accounting
    # ------------------------------------------------------------------

    def space_report(self) -> SpaceReport:
        """Measured words held by every sketch component."""
        report = SpaceReport()
        report.add("level-sample seeds", self.levels.space_words())
        report.add("edge-sample seeds", self._edge_sampler.space_words())
        for sampler in self._y_samplers:
            report.add("vertex-sample seeds", sampler.space_words())
        for sketch in self._cluster_sketches.values():
            report.add("pass1 cluster sketches", sketch.space_words())
        for table in self._tables.values():
            report.add("pass2 hash tables", table.space_words())
        for sketch in self._cut_sketches.values():
            report.add("pass2 repair sketches", sketch.space_words())
        return report

    def space_words(self) -> int:
        return self.space_report().total_words()
