"""Weighted spanners via geometric weight classes (Remark 14).

"Round weights to the nearest power of ``1 + gamma`` and run the
unweighted spanner construction on each weight class" — costing a factor
``O(log(w_max/w_min) / gamma)`` in space.  The model guarantees an
update's weight is known when it arrives (edges are inserted/removed
whole, footnote 1 of the paper), so class routing is a pure function of
the update.

Output weights are the class *upper* bounds: sketches recover edge
identities, not weights, and rounding up preserves the spanner
inequality — every output distance dominates the true distance while the
stretch grows only by the quantization factor ``(1 + gamma)``.  The
bounds ``w_min, w_max`` are assumed known a priori, exactly as in
[AGM12b] (the paper's footnote 1 makes the same assumption).
"""

from __future__ import annotations

import math

from repro.core.parameters import SpannerParams
from repro.core.two_pass_spanner import TwoPassSpannerBuilder
from repro.graph.graph import Graph
from repro.stream.pipeline import StreamingAlgorithm, run_passes
from repro.stream.space import SpaceReport
from repro.stream.stream import DynamicStream
from repro.stream.updates import EdgeUpdate
from repro.util.rng import derive_seed

__all__ = ["WeightedTwoPassSpanner"]


class WeightedTwoPassSpanner(StreamingAlgorithm):
    """Two-pass ``(1+gamma) * 2^k``-spanner of a weighted dynamic stream.

    Parameters
    ----------
    num_vertices, k, seed:
        As in :class:`~repro.core.two_pass_spanner.TwoPassSpannerBuilder`.
    w_min, w_max:
        A-priori weight range; updates outside it are rejected.
    gamma:
        Weight-class ratio; classes are
        ``[w_min (1+gamma)^t, w_min (1+gamma)^{t+1})``.
    """

    def __init__(
        self,
        num_vertices: int,
        k: int,
        seed: int | str,
        w_min: float,
        w_max: float,
        gamma: float = 0.5,
        params: SpannerParams | None = None,
    ):
        if not 0 < w_min <= w_max:
            raise ValueError(f"need 0 < w_min <= w_max, got ({w_min}, {w_max})")
        if gamma <= 0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        self.num_vertices = num_vertices
        self.k = k
        self.w_min = w_min
        self.w_max = w_max
        self.gamma = gamma
        self.num_classes = (
            1 + math.floor(math.log(w_max / w_min) / math.log(1.0 + gamma))
        )
        self._builders = [
            TwoPassSpannerBuilder(
                num_vertices,
                k,
                derive_seed(seed, "weight-class", t),
                params=params,
            )
            for t in range(self.num_classes)
        ]
        self.class_spanners: list[Graph] | None = None

    def weight_class(self, weight: float) -> int:
        """Index of the weight class containing ``weight``."""
        if not self.w_min <= weight <= self.w_max:
            raise ValueError(
                f"weight {weight} outside the declared range [{self.w_min}, {self.w_max}]"
            )
        t = math.floor(math.log(weight / self.w_min) / math.log(1.0 + self.gamma))
        return min(t, self.num_classes - 1)

    def class_representative(self, t: int) -> float:
        """Output weight of class ``t`` (its upper bound, clamped)."""
        return min(self.w_max, self.w_min * (1.0 + self.gamma) ** (t + 1))

    @property
    def passes_required(self) -> int:
        return 2

    def begin_pass(self, pass_index: int) -> None:
        for builder in self._builders:
            builder.begin_pass(pass_index)

    def process(self, update: EdgeUpdate, pass_index: int) -> None:
        self._builders[self.weight_class(update.weight)].process(update, pass_index)

    def end_pass(self, pass_index: int) -> None:
        for builder in self._builders:
            builder.end_pass(pass_index)

    def finalize(self) -> Graph:
        """Union of the per-class spanners, with class-bound weights."""
        spanner = Graph(self.num_vertices)
        self.class_spanners = []
        for t, builder in enumerate(self._builders):
            output = builder.finalize()
            self.class_spanners.append(output.spanner)
            representative = self.class_representative(t)
            for u, v, _ in output.spanner.edges():
                if not spanner.has_edge(u, v) or spanner.weight(u, v) > representative:
                    spanner.add_edge(u, v, representative)
        return spanner

    def run(self, stream: DynamicStream) -> Graph:
        """Convenience: run both passes over ``stream``."""
        return run_passes(stream, self)

    def space_report(self) -> SpaceReport:
        """Aggregated space across weight classes."""
        report = SpaceReport()
        for builder in self._builders:
            report = report.merged(builder.space_report())
        return report

    def space_words(self) -> int:
        return self.space_report().total_words()

    def stretch_bound(self) -> float:
        """The guaranteed stretch ``(1 + gamma) * 2^k``."""
        return (1.0 + self.gamma) * (2 ** self.k)
