"""Parameter policy for the paper's algorithms.

The theory hides constants inside ``~O(.)`` and "sufficiently large C";
at laptop scale those constants dominate, so every tunable lives here
with its theory counterpart documented.  Defaults are calibrated so the
high-probability events hold at the ``n`` used in tests and benchmarks
(E6 measures the failure rates of the underlying primitives).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["SpannerParams", "AdditiveParams", "SparsifierParams"]


@dataclass(frozen=True)
class SpannerParams:
    """Constants for the two-pass multiplicative spanner (Section 3).

    Attributes
    ----------
    cluster_budget:
        Sparsity budget ``B`` of the pass-1 sketches ``S^r_j(u)``
        (theory: ``O(log n)``).
    cluster_rows:
        Hash rows inside each pass-1 sketch.
    table_capacity_factor:
        Pass-2 hash-table capacity is
        ``min(ceil(factor * n^{(i+1)/k} * log2 n), n)`` — theory's
        ``C log n * n^{(i+1)/k}`` of Claim 11, capped by the trivial
        bound (keys are vertices).
    table_stacks:
        Independent ``Y_j``-stack repetitions.  The paper stores an
        ``O(log n)``-budget sketch per key; we store a 1-sparse detector
        per key per level (see
        :mod:`repro.sketch.linear_hash_table`), and stacks restore
        the per-key success probability (a key with exactly two in-tree
        neighbors defeats one stack with probability 1/3 — the nested
        levels drop both neighbors at once when their geometric levels
        tie — so ``R`` stacks fail with probability ``~3^-R``).
    table_rows / table_bucket_factor:
        Shape of the outer table sketch.
    repair_budget_factor:
        Every terminal root also keeps one plain sparse-recovery sketch
        of its cut edges with budget ``factor * capacity``; it patches
        the residual per-key failures of the stacks whenever the cut is
        small enough to decode.  Set to 0 to disable (pure Algorithm 2).
    """

    cluster_budget: int = 8
    cluster_rows: int = 3
    table_capacity_factor: float = 1.0
    table_stacks: int = 4
    table_rows: int = 3
    table_bucket_factor: float = 1.5
    repair_budget_factor: float = 2.0

    def edge_levels(self, num_vertices: int) -> int:
        """Number of nested edge-sample levels ``E_j`` (``log2 n^2``)."""
        return max(2, math.ceil(math.log2(max(num_vertices * num_vertices, 4))))

    def vertex_levels(self, num_vertices: int) -> int:
        """Number of ``Y_j`` vertex-sample levels (``log2 n``)."""
        return max(1, math.ceil(math.log2(max(num_vertices, 2))))

    def table_capacity(self, num_vertices: int, level: int, k: int) -> int:
        """Key capacity of ``H^u_j`` for a terminal at ``level`` (Claim 11)."""
        scale = num_vertices ** ((level + 1) / k)
        log_factor = max(1.0, math.log2(max(num_vertices, 2)))
        raw = math.ceil(self.table_capacity_factor * scale * log_factor)
        return max(8, min(raw, num_vertices))


@dataclass(frozen=True)
class AdditiveParams:
    """Constants for the one-pass additive spanner (Section 4).

    Attributes
    ----------
    center_rate_factor:
        ``|C| ~ center_rate_factor * n / d`` expected centers (theory:
        ``O(n/d)``).
    degree_threshold_factor:
        A vertex is "low degree" below
        ``degree_threshold_factor * d * log2 n`` (theory: ``O(d log n)``).
    neighborhood_budget_factor:
        Budget of ``SKETCH(N(u))`` as a multiple of the degree threshold
        (theory: ``~O(d)`` with the polylog absorbed).
    parent_budget:
        Budget of the ``A^r(u)`` parent-selection sketches.
    distinct_reps:
        Repetitions inside the degree estimator (Theorem 9 sketch).
    """

    center_rate_factor: float = 1.0
    degree_threshold_factor: float = 1.0
    neighborhood_budget_factor: float = 1.5
    parent_budget: int = 4
    distinct_reps: int = 24

    def center_probability(self, num_vertices: int, d: int) -> float:
        """Sampling rate of the center set ``C`` — the paper's ``O(1/d)``.

        A node of degree above ``degree_threshold ~ d log n`` then has
        ``~log n`` expected neighbors in ``C``, i.e. one whp, while
        ``E|C| = O(n/d)`` keeps the cluster count (and hence the additive
        distortion) at ``O(n/d)``.
        """
        return min(1.0, self.center_rate_factor / d)

    def degree_threshold(self, num_vertices: int, d: int) -> int:
        """Degrees strictly above this are "high" (join a center)."""
        return math.ceil(
            self.degree_threshold_factor * d * max(1.0, math.log2(max(num_vertices, 2)))
        )

    def neighborhood_budget(self, num_vertices: int, d: int) -> int:
        """Sparsity budget of the per-vertex neighborhood sketches."""
        return max(8, math.ceil(self.neighborhood_budget_factor * self.degree_threshold(num_vertices, d)))


@dataclass(frozen=True)
class SparsifierParams:
    """Constants for the sparsification pipeline (Section 6).

    The paper's setting: ``J = O(log n / eps^2)`` estimator repetitions,
    ``T = log n^2`` nested levels, ``Z = Theta(lambda^2 log n /
    ((1-eps) eps^3))`` sampling rounds, ``H = log n^2`` sampling levels.
    Those blow up quickly, so the defaults here express them as
    multipliers that can be scaled down for smoke tests; E2 documents
    the settings used for each measured row.
    """

    estimate_reps_factor: float = 1.0  # J = ceil(factor * log2 n)
    estimate_levels: int | None = None  # T; default log2(n^2)
    sampling_rounds_factor: float = 1.0  # Z multiplier
    sampling_levels: int | None = None  # H; default log2(n^2)
    epsilon: float = 0.5
    disagreement: float = 0.25  # the paper's `eps` vote threshold in ESTIMATE

    def estimate_reps(self, num_vertices: int) -> int:
        """``J``: independent subsampling sequences in ESTIMATE."""
        return max(3, math.ceil(self.estimate_reps_factor * math.log2(max(num_vertices, 2))))

    def levels(self, num_vertices: int) -> int:
        """``T`` and ``H``: nested subsampling depth."""
        if self.estimate_levels is not None:
            return self.estimate_levels
        return max(2, math.ceil(math.log2(max(num_vertices * num_vertices, 4))))

    def sampling_rounds(self, stretch: int, num_vertices: int) -> int:
        """``Z = Theta(lambda^2 log n / ((1-eps) eps^3))`` scaled by the
        configured factor (lambda = the oracle stretch)."""
        log_n = math.log2(max(num_vertices, 2))
        raw = (
            self.sampling_rounds_factor
            * stretch
            * stretch
            * log_n
            / ((1.0 - self.disagreement) * self.epsilon ** 3)
        )
        return max(2, math.ceil(raw))
