"""Approximate distance oracles from streamed spanners.

Section 6 uses the two-pass spanner as a drop-in replacement for the
Thorup–Zwick oracles of [KP12]: "our multiplicative spanner construction
provides such an estimate with λ = 2^k when ~O(n^{1+1/k}) space is
used".  This module packages that usage as a public API: build once from
a dynamic stream, answer ``query(u, v)`` forever after, with the
guarantee ``d(u,v) <= query(u,v) <= 2^k d(u,v)``.

:func:`recommended_k` implements the paper's parameter policy
``k = sqrt(log n)`` (Section 6.3), which balances the ``2^{2k}`` stretch
cost against the ``n^{1/k}`` space cost and yields the ``n^{1+o(1)}``
bound of Corollary 2.
"""

from __future__ import annotations

import math

from repro.core.parameters import SpannerParams
from repro.core.two_pass_spanner import TwoPassSpannerBuilder
from repro.graph.distances import bfs_distances
from repro.graph.graph import Graph
from repro.stream.stream import DynamicStream

__all__ = ["recommended_k", "SpannerDistanceOracle"]


def recommended_k(num_vertices: int) -> int:
    """The paper's ``k = sqrt(log n)`` (at least 1)."""
    return max(1, round(math.sqrt(math.log2(max(num_vertices, 2)))))


class SpannerDistanceOracle:
    """Two-pass streamed distance oracle with stretch ``2^k``.

    Parameters
    ----------
    num_vertices, seed:
        Graph size and randomness name.
    k:
        Stretch parameter (default: :func:`recommended_k`).
    params:
        Spanner constant calibration.
    """

    def __init__(
        self,
        num_vertices: int,
        seed: int | str,
        k: int | None = None,
        params: SpannerParams | None = None,
    ):
        self.num_vertices = num_vertices
        self.k = k if k is not None else recommended_k(num_vertices)
        self._builder = TwoPassSpannerBuilder(num_vertices, self.k, seed, params=params)
        self._spanner: Graph | None = None
        self._bfs_cache: dict[int, dict[int, int]] = {}

    @property
    def stretch(self) -> int:
        """The multiplicative guarantee ``2^k``."""
        return 2 ** self.k

    def build(self, stream: DynamicStream) -> "SpannerDistanceOracle":
        """Consume the stream (two passes); returns self for chaining."""
        self._spanner = self._builder.run(stream).spanner
        self._bfs_cache.clear()
        return self

    def query(self, u: int, v: int) -> float:
        """Estimate ``d(u, v)``: exact lower bound, ``2^k`` upper stretch.

        Returns ``inf`` for pairs the spanner does not connect (whp:
        pairs disconnected in the input graph).
        """
        if self._spanner is None:
            raise RuntimeError("call build(stream) before querying")
        if u == v:
            return 0.0
        cached = self._bfs_cache.get(u)
        if cached is None:
            cached = bfs_distances(self._spanner, u)
            self._bfs_cache[u] = cached
        return float(cached.get(v, math.inf))

    def spanner(self) -> Graph:
        """The underlying spanner (after :meth:`build`)."""
        if self._spanner is None:
            raise RuntimeError("call build(stream) first")
        return self._spanner

    def space_words(self) -> int:
        """Measured sketch words of the underlying builder."""
        return self._builder.space_words()
