"""The levelled vertex samples ``C_0 ⊇ ... hierarchy`` of Section 3.1.

``C_i`` contains each vertex independently with probability ``n^{-i/k}``
(``C_0 = V`` deterministically).  The sets are *not* nested — Claim 11's
argument needs ``C_{i+1}`` independent of ``C_0..C_i`` — so each level
draws from its own hash function.  Membership is hash-derived, so the
streaming algorithm stores ``O(k)`` words of seeds, not the sets.
"""

from __future__ import annotations

from repro.sketch.hashing import KWiseHash
from repro.util.rng import derive_seed

__all__ = ["LevelSamples"]

#: Independence of the membership hashes; the analysis only needs
#: Chernoff-style concentration, for which O(log n)-wise suffices.
_MEMBERSHIP_INDEPENDENCE = 16


class LevelSamples:
    """Hash-derived samples ``C_0, ..., C_{k-1}``."""

    def __init__(self, num_vertices: int, k: int, seed: int | str):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if num_vertices <= 0:
            raise ValueError(f"num_vertices must be positive, got {num_vertices}")
        self.num_vertices = num_vertices
        self.k = k
        self._hashes = [
            KWiseHash.shared(_MEMBERSHIP_INDEPENDENCE, derive_seed(seed, "level-sample", r))
            for r in range(k)
        ]
        self._probabilities = [num_vertices ** (-r / k) for r in range(k)]

    def contains(self, vertex: int, level: int) -> bool:
        """Whether ``vertex`` belongs to ``C_level``."""
        if not 0 <= level < self.k:
            raise IndexError(f"level {level} out of [0, {self.k})")
        if level == 0:
            return True
        return self._hashes[level].unit(vertex) < self._probabilities[level]

    def levels_of(self, vertex: int) -> list[int]:
        """All levels whose sample contains ``vertex`` (always includes 0)."""
        return [r for r in range(self.k) if self.contains(vertex, r)]

    def members(self, level: int) -> list[int]:
        """All vertices in ``C_level`` (verification helper, O(n))."""
        return [v for v in range(self.num_vertices) if self.contains(v, level)]

    def space_words(self) -> int:
        """Persistent state, in machine words (seed coefficients)."""
        return sum(h.space_words() for h in self._hashes)
