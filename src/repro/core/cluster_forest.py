"""The logical cluster forest ``F`` of Section 3.1.

Nodes of ``F`` are *copies* ``(vertex, level)`` with ``vertex in C_level``
(footnote 2 of the paper: a vertex appearing in several ``C_i`` appears
once per level).  Edges of ``F`` connect a copy at level ``i`` to its
parent copy at level ``i+1`` and are only logical — each carries a
*witness edge* ``sigma(e)``, a real graph edge connecting the child's
subtree to the parent vertex.  Roots of ``F`` are exactly the *terminal*
copies; their subtrees' vertex projections are the clusters whose
outside-neighborhoods the second pass must cover.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Copy", "ClusterForest"]

#: A forest node: (vertex, level).
Copy = tuple[int, int]


@dataclass
class ClusterForest:
    """Mutable forest over vertex copies, built bottom-up by phase 1."""

    num_vertices: int
    k: int
    parent: dict[Copy, Copy] = field(default_factory=dict)
    children: dict[Copy, list[Copy]] = field(default_factory=dict)
    #: witness[(child copy)] = the real edge (a, b) with a in T_child's
    #: vertex set and b the parent vertex.
    witness: dict[Copy, tuple[int, int]] = field(default_factory=dict)
    terminals: set[Copy] = field(default_factory=set)
    #: every copy that exists, by level (filled as levels are processed).
    copies_by_level: dict[int, list[Copy]] = field(default_factory=dict)

    def register_copy(self, copy: Copy) -> None:
        """Declare that ``copy`` exists (its vertex is in C_level)."""
        vertex, level = copy
        if not 0 <= vertex < self.num_vertices:
            raise ValueError(f"vertex {vertex} out of range")
        if not 0 <= level < self.k:
            raise ValueError(f"level {level} out of range [0, {self.k})")
        self.copies_by_level.setdefault(level, []).append(copy)

    def attach(self, child: Copy, parent_vertex: int, witness_edge: tuple[int, int]) -> None:
        """Make ``(parent_vertex, child_level + 1)`` the parent of ``child``."""
        vertex, level = child
        if level + 1 >= self.k:
            raise ValueError(f"cannot attach at top level {level}")
        parent_copy = (parent_vertex, level + 1)
        self.parent[child] = parent_copy
        self.children.setdefault(parent_copy, []).append(child)
        a, b = witness_edge
        self.witness[child] = (min(a, b), max(a, b))

    def mark_terminal(self, copy: Copy) -> None:
        """Declare ``copy`` a root of its component."""
        self.terminals.add(copy)

    def subtree_vertices(self, root: Copy) -> set[int]:
        """Vertex projection of the subtree rooted at ``root``."""
        vertices: set[int] = set()
        stack = [root]
        while stack:
            vertex, level = stack.pop()
            vertices.add(vertex)
            stack.extend(self.children.get((vertex, level), ()))
        return vertices

    def terminal_trees(self) -> dict[Copy, set[int]]:
        """Vertex projection of every terminal root's tree."""
        return {root: self.subtree_vertices(root) for root in self.terminals}

    def trees_containing(self) -> dict[int, list[Copy]]:
        """For each vertex *in some tree*, the terminal roots whose tree
        contains it.

        Every registered vertex belongs to at least one tree (its
        level-0 copy) and in expectation to ``1 + o(1)`` trees (one per
        level membership).  The map covers registered (touched) vertices
        only — over a huge sparse universe a dense ``{v: [] for v in
        range(n)}`` would dominate the sketches themselves.
        """
        result: dict[int, list[Copy]] = {}
        for root, vertices in self.terminal_trees().items():
            for vertex in vertices:
                result.setdefault(vertex, []).append(root)
        return result

    def witness_edges(self) -> set[tuple[int, int]]:
        """All witness edges ``sigma(F)`` (phase 2, step 1 output)."""
        return set(self.witness.values())

    def validate(self) -> None:
        """Internal consistency checks (used by tests).

        * every non-root copy's parent is exactly one level up;
        * every attached copy has a witness edge;
        * terminals have no parent.
        """
        for child, parent_copy in self.parent.items():
            if parent_copy[1] != child[1] + 1:
                raise AssertionError(f"parent {parent_copy} not one level above {child}")
            if child not in self.witness:
                raise AssertionError(f"attached copy {child} lacks a witness edge")
        for terminal in self.terminals:
            if terminal in self.parent:
                raise AssertionError(f"terminal {terminal} has a parent")
