"""Sampling via augmented spanners (Section 6.2; Algorithm 5).

One invocation ``s`` of SAMPLE-AUGMENTED-SPANNER holds, for each
geometric level ``j = 1..H``, an edge sample ``E_{s,j}`` (independent
Bernoulli at rate ``2^-j``, hash-derived) and an *augmented* spanner of
it.  Its output keeps, for every edge ``e`` recovered at level ``j``
(either as a spanner edge or as a member of the observed set
``Σ(R_{s,j})``), weight ``2^j`` — but only when the estimator says
``q̂(e) = 2^-j``; other recovered edges get weight 0 (line 7).

The key correctness fact (Lemma 22): if ``q̂(e) = 2^-j`` then with
probability ``>= 1 - 2ε`` the sampled set ``E_{s,j} \\ {e}`` has no short
path between ``e``'s endpoints, so *any* λ-stretch spanner of ``E_{s,j}``
that contains ``e``'s endpoints at distance 1 must output ``e`` — the
sampler inherits near-independent Bernoulli behaviour from the sample
itself (Claim 23).
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import edge_index
from repro.sketch.hashing import MERSENNE_61, KWiseHash
from repro.util.rng import derive_seed

__all__ = ["SpannerSampleLevels"]

#: Independence of the per-(s, j) membership hashes (O(log n)-wise
#: suffices per Section 6.3; 16 is comfortable).
_MEMBERSHIP_INDEPENDENCE = 16


def _rate_threshold(j: int) -> int:
    """Largest field-value threshold with ``value < threshold`` iff
    ``value / p < 2^-j`` as exact rationals: ``ceil(p / 2^j)``.

    Integer-exact Bernoulli(``2^-j``) membership — the scalar and
    vectorized evaluations agree bit-for-bit, with none of the boundary
    rounding a float ``unit() < 2.0**-j`` comparison would admit.
    """
    return (MERSENNE_61 + (1 << j) - 1) >> j


class SpannerSampleLevels:
    """Membership bookkeeping for one sampling invocation ``s``.

    The spanners themselves are built by the caller (offline or
    streaming) on the filtered edge sets this class defines; recovered
    edge sets are registered back via :meth:`attach_level_output`.
    """

    def __init__(self, num_vertices: int, levels: int, seed: int | str, invocation: int):
        self.num_vertices = num_vertices
        self.levels = levels
        self.invocation = invocation
        self._hashes = [
            KWiseHash.shared(
                _MEMBERSHIP_INDEPENDENCE,
                derive_seed(seed, "sample-level", invocation, j),
            )
            for j in range(levels + 1)
        ]
        # level -> set of recovered (spanner ∪ observed) edges.
        self._outputs: dict[int, set[tuple[int, int]]] = {}

    def clone(self) -> "SpannerSampleLevels":
        """Independent copy: registered level outputs are copied, the
        (immutable) membership hashes are shared."""
        clone = object.__new__(SpannerSampleLevels)
        clone.num_vertices = self.num_vertices
        clone.levels = self.levels
        clone.invocation = self.invocation
        clone._hashes = self._hashes
        clone._outputs = {j: set(edges) for j, edges in self._outputs.items()}
        return clone

    def member(self, j: int, u: int, v: int) -> bool:
        """Whether pair ``(u, v)`` belongs to ``E_{s,j}`` (rate ``2^-j``)."""
        if not 1 <= j <= self.levels:
            raise IndexError(f"level {j} out of [1, {self.levels}]")
        pair = edge_index(u, v, self.num_vertices)
        return self._hashes[j](pair) < _rate_threshold(j)

    def edge_filter(self, j: int):
        """A pair predicate selecting ``E_{s,j}``."""
        return lambda u, v: self.member(j, u, v)

    def member_array(self, j: int, pairs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`member` over a batch of pair coordinates.

        One polynomial-hash evaluation per (pair, level) replaces the
        per-token Python filter in the streaming sparsifier's ingest
        path; bit-identical to the scalar predicate element-wise.
        """
        if not 1 <= j <= self.levels:
            raise IndexError(f"level {j} out of [1, {self.levels}]")
        values = self._hashes[j].values_array(pairs)
        return values < np.uint64(_rate_threshold(j))

    def attach_level_output(self, j: int, recovered_edges: set[tuple[int, int]]) -> None:
        """Register ``S_j`` — the level-``j`` spanner's recovered edges
        (spanner edges plus the observed set in augmented mode)."""
        self._outputs[j] = {(min(u, v), max(u, v)) for u, v in recovered_edges}

    def weighted_output(self, level_of_edge) -> dict[tuple[int, int], float]:
        """Line 7 of Algorithm 5: keep edge ``e`` from level ``j`` with
        weight ``2^j`` iff ``level_of_edge(e) == j``; weight-0 otherwise.

        ``level_of_edge`` maps a canonical pair to its estimator level
        ``j(e)``.
        """
        kept: dict[tuple[int, int], float] = {}
        for j, edges in self._outputs.items():
            for edge in edges:
                if level_of_edge(edge) == j:
                    kept[edge] = float(2 ** j)
        return kept

    def recovered_edges(self) -> set[tuple[int, int]]:
        """Union of all levels' recovered edges (candidate support)."""
        union: set[tuple[int, int]] = set()
        for edges in self._outputs.values():
            union |= edges
        return union
