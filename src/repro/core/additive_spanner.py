"""The one-pass ``O(n/d)``-additive spanner (Theorem 3; Algorithm 3).

Single pass over the dynamic stream, keeping per vertex:

* ``SKETCH_{~O(d)}(N(u))`` — recovers *all* neighbors of low-degree
  vertices (their edges form ``E_low``);
* a sampler of ``N(u) ∩ C`` — picks each high-degree vertex's parent
  center (the paper's ``A^r(u) = SKETCH(N(u) ∩ C ∩ Z^r)`` stack is
  exactly an L0-sampler, which is how it is realized here);
* a sketched degree estimate (Theorem 9) to decide low vs high;
* AGM spanning-forest sketches (Theorem 10).

After the pass: decode ``E_low``, attach high-degree vertices to centers
(forest ``F`` of stars), *subtract* ``E_low`` from the AGM sketches by
linearity, collapse the star clusters into supernodes, and extract a
spanning forest ``F'`` of the contracted remainder.  The spanner is
``E_low ∪ F ∪ F'``; every shortest path detours at most twice per
cluster plus once per contracted-forest edge, i.e. ``+O(n/d)`` in total
because there are only ``O(n/d)`` clusters.
"""

from __future__ import annotations

from repro.agm.spanning_forest import AgmSketch
from repro.core.parameters import AdditiveParams
from repro.graph.graph import Graph
from repro.sketch.distinct import DistinctElementsSketch
from repro.sketch.hashing import KWiseHash
from repro.sketch.l0sampler import L0Sampler
from repro.sketch.sparse_recovery import SparseRecoverySketch
from repro.stream.pipeline import StreamingAlgorithm, run_passes
from repro.stream.space import SpaceReport
from repro.stream.stream import DynamicStream
from repro.stream.updates import EdgeUpdate
from repro.util.rng import derive_seed

__all__ = ["AdditiveSpannerBuilder"]

#: Independence of the center-membership hash.
_CENTER_INDEPENDENCE = 16


class AdditiveSpannerBuilder(StreamingAlgorithm):
    """Dynamic-stream additive spanner: one pass, ``~O(nd)`` space.

    Parameters
    ----------
    num_vertices:
        Graph size ``n``.
    d:
        Space/approximation knob: space ``~O(nd)``, additive distortion
        ``O(n/d)``.
    seed:
        Randomness name.
    params:
        Constant calibration, see
        :class:`~repro.core.parameters.AdditiveParams`.
    """

    def __init__(
        self,
        num_vertices: int,
        d: int,
        seed: int | str,
        params: AdditiveParams | None = None,
    ):
        if num_vertices <= 0:
            raise ValueError(f"num_vertices must be positive, got {num_vertices}")
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        self.num_vertices = num_vertices
        self.d = d
        self.params = params or AdditiveParams()
        self._seed = derive_seed(seed)

        self._center_hash = KWiseHash.shared(
            _CENTER_INDEPENDENCE, derive_seed(seed, "centers")
        )
        self._center_probability = self.params.center_probability(num_vertices, d)
        self.degree_threshold = self.params.degree_threshold(num_vertices, d)

        budget = self.params.neighborhood_budget(num_vertices, d)
        self._neighborhoods = [
            SparseRecoverySketch(
                num_vertices,
                budget,
                derive_seed(seed, "neighborhood"),
                rows=3,
            )
            for _ in range(num_vertices)
        ]
        self._parent_samplers = [
            L0Sampler(
                num_vertices,
                derive_seed(seed, "parent-sampler"),
                budget=self.params.parent_budget,
            )
            for _ in range(num_vertices)
        ]
        self._degree_sketches = [
            DistinctElementsSketch(
                num_vertices,
                derive_seed(seed, "degree"),
                reps=self.params.distinct_reps,
            )
            for _ in range(num_vertices)
        ]
        self._agm = AgmSketch(num_vertices, derive_seed(seed, "agm"))

        self.diagnostics: dict[str, int] = {
            "low_degree": 0,
            "high_degree": 0,
            "orphan_high_degree": 0,
            "neighborhood_decode_failures": 0,
        }

    def is_center(self, vertex: int) -> bool:
        """Whether ``vertex`` is in the center sample ``C``."""
        return self._center_hash.unit(vertex) < self._center_probability

    @property
    def passes_required(self) -> int:
        return 1

    def process(self, update: EdgeUpdate, pass_index: int) -> None:
        u, v, sign = update.u, update.v, update.sign
        self._neighborhoods[u].update(v, sign)
        self._neighborhoods[v].update(u, sign)
        self._degree_sketches[u].update(v, sign)
        self._degree_sketches[v].update(u, sign)
        if self.is_center(v):
            self._parent_samplers[u].update(v, sign)
        if self.is_center(u):
            self._parent_samplers[v].update(u, sign)
        self._agm.update(u, v, sign)

    def finalize(self) -> Graph:
        low_edges: dict[tuple[int, int], int] = {}
        star_edges: list[tuple[int, int]] = []
        cluster_of = list(range(self.num_vertices))  # default: own singleton

        high_vertices = []
        for u in range(self.num_vertices):
            degree_estimate = self._degree_sketches[u].estimate()
            decoded = None
            if degree_estimate <= 2.0 * self.degree_threshold:
                decoded = self._neighborhoods[u].decode()
                if decoded is None:
                    self.diagnostics["neighborhood_decode_failures"] += 1
            if decoded is not None:
                self.diagnostics["low_degree"] += 1
                for w, multiplicity in decoded.items():
                    pair = (min(u, w), max(u, w))
                    low_edges[pair] = multiplicity
            else:
                self.diagnostics["high_degree"] += 1
                high_vertices.append(u)

        for u in high_vertices:
            sampled = self._parent_samplers[u].sample()
            if sampled is None:
                self.diagnostics["orphan_high_degree"] += 1
                continue
            center, _ = sampled
            star_edges.append((u, center))
            cluster_of[u] = center

        # Centers anchor their own clusters (their id is the group id).
        # G' = G - E_low, then contract the clusters and extract F'.
        self._agm.subtract_edges(low_edges)
        contracted_forest = self._agm.spanning_forest(supernodes=cluster_of)

        spanner = Graph(self.num_vertices)
        for (u, v) in low_edges:
            spanner.add_edge(u, v)
        for u, v in star_edges:
            if not spanner.has_edge(u, v):
                spanner.add_edge(u, v)
        for u, v in contracted_forest:
            if not spanner.has_edge(u, v):
                spanner.add_edge(u, v)
        return spanner

    def run(self, stream: DynamicStream) -> Graph:
        """Convenience: run the single pass over ``stream``."""
        return run_passes(stream, self)

    def state_ints(self) -> list[int]:
        """Dynamic state as a flat int sequence.

        This is exactly Alice's message in the Theorem 4 game: the full
        sketch state (seeds excluded — shared randomness), serializable
        via :func:`repro.sketch.serialize.pack_ints`.
        """
        flat: list[int] = []
        for sketch in self._neighborhoods:
            flat.extend(sketch.state_ints())
        for sampler in self._parent_samplers:
            flat.extend(sampler.state_ints())
        for sketch in self._degree_sketches:
            flat.extend(sketch.state_ints())
        flat.extend(self._agm.state_ints())
        return flat

    def load_state_ints(self, values: list[int], cursor: int = 0) -> int:
        """Consume one serialized builder state from ``values`` at
        ``cursor``; returns the new cursor.

        Exact inverse of :meth:`state_ints` on a same-seed/same-shape
        builder (Bob's side of the Theorem 4 game): the per-vertex
        components are fixed-length (their ``state_len()``), the AGM
        tail is self-delimiting, so the whole sequence concatenates
        without length prefixes.
        """
        for sketch in self._neighborhoods:
            step = sketch.state_len()
            sketch.from_state_ints(values[cursor : cursor + step])
            cursor += step
        for sampler in self._parent_samplers:
            step = sampler.state_len()
            sampler.from_state_ints(values[cursor : cursor + step])
            cursor += step
        for sketch in self._degree_sketches:
            step = sketch.state_len()
            sketch.from_state_ints(values[cursor : cursor + step])
            cursor += step
        return self._agm.load_state_ints(values, cursor)

    def from_state_ints(self, values: list[int]) -> "AdditiveSpannerBuilder":
        """Overwrite the dynamic state from a :meth:`state_ints` sequence.

        Returns ``self``; raises if the sequence's length does not match
        exactly (a truncated or over-long wire is corruption, never
        silently tolerated).
        """
        try:
            cursor = self.load_state_ints(values, 0)
        except IndexError as exc:
            raise ValueError("truncated state sequence") from exc
        if cursor != len(values):
            raise ValueError(f"expected {cursor} state ints, got {len(values)}")
        return self

    def space_report(self) -> SpaceReport:
        """Measured words held by every sketch component."""
        report = SpaceReport()
        report.add("center seeds", self._center_hash.space_words())
        for sketch in self._neighborhoods:
            report.add("neighborhood sketches", sketch.space_words())
        for sampler in self._parent_samplers:
            report.add("parent samplers", sampler.space_words())
        for sketch in self._degree_sketches:
            report.add("degree sketches", sketch.space_words())
        report.add("agm sketches", self._agm.space_words())
        return report

    def space_words(self) -> int:
        return self.space_report().total_words()
