"""Robust-connectivity estimation (Section 6.1; Algorithm 4, ESTIMATE).

For each queried pair ``(u, v)`` the estimator returns
``q̂_{λ,ε}(u,v) = 2^{-t*}`` where ``t*`` is the smallest subsampling
depth at which, in at least a ``(1 - ε)`` fraction of ``J`` independent
subsampling sequences, the endpoints are "λ-disconnected".

Disconnection is tested through a *λ-stretch distance oracle* built on
each subsampled edge set ``E^j_t`` — here, the paper's own two-pass
spanner (stretch ``λ = 2^k``).  Since the oracle may overestimate by a
factor ``λ``, the test threshold is ``λ²`` (line 16 of Algorithm 4): an
oracle estimate above ``λ²`` certifies true distance above ``λ``, and
this one-sided slack is exactly why the sampling lemma (Eq. 1) pays
``q̂ = Ω(R_e / λ²)``.

The estimator never touches the edge set directly — membership in
``E^j_t`` is a hash of the pair (Section 6.3's derandomization), and the
oracles are spanners, so the whole structure fits the dynamic streaming
model.  Oracles are supplied by the caller (offline-built or
stream-built), keeping this module mode-agnostic.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.parameters import SparsifierParams
from repro.graph.distances import bfs_distances
from repro.graph.graph import Graph, edge_index
from repro.sketch.hashing import NestedSampler
from repro.util.rng import derive_seed

__all__ = ["RobustConnectivityEstimator"]


class RobustConnectivityEstimator:
    """Query-time side of ESTIMATE, given the per-(j, t) oracle spanners.

    Parameters
    ----------
    num_vertices:
        Graph size ``n``.
    stretch:
        The oracle stretch ``λ`` (``2^k`` for the two-pass spanner).
    seed:
        Membership-hash randomness (must match the seed used to filter
        the streams the oracles were built on).
    params:
        ``J`` (repetitions), ``T`` (depths), ``ε`` (vote threshold).
    """

    def __init__(
        self,
        num_vertices: int,
        stretch: int,
        seed: int | str,
        params: SparsifierParams | None = None,
    ):
        self.num_vertices = num_vertices
        self.stretch = stretch
        self.params = params or SparsifierParams()
        self.reps = self.params.estimate_reps(num_vertices)
        self.depths = self.params.levels(num_vertices)
        self._samplers = [
            NestedSampler(self.depths, derive_seed(seed, "estimate-levels", j))
            for j in range(self.reps)
        ]
        # oracles[j][t] = spanner of E^j_t, filled by attach_oracle.
        self._oracles: list[list[Graph | None]] = [
            [None] * (self.depths + 1) for _ in range(self.reps)
        ]
        # Per-(j, t) BFS caches: source -> {target: distance}.
        self._bfs_cache: dict[tuple[int, int, int], dict[int, int]] = {}

    # ------------------------------------------------------------------
    # Membership (shared with whoever builds the oracles)
    # ------------------------------------------------------------------

    def member(self, j: int, t: int, u: int, v: int) -> bool:
        """Whether pair ``(u, v)`` belongs to ``E^j_t``.

        ``E^j_1`` contains every pair; deeper levels are nested halvings
        (rate ``2^{-(t-1)}``), exactly Algorithm 4's construction.
        """
        if t <= 1:
            return True
        pair = edge_index(u, v, self.num_vertices)
        return self._samplers[j].contains(pair, t - 1)

    def edge_filter(self, j: int, t: int):
        """A pair predicate selecting ``E^j_t`` (for spanner builders)."""
        return lambda u, v: self.member(j, t, u, v)

    def member_level_array(self, j: int, pairs: np.ndarray) -> np.ndarray:
        """Vectorized nesting depths of a batch of pair coordinates.

        ``pairs[i]`` belongs to ``E^j_t`` iff the returned depth is
        ``>= t - 1`` — one hash evaluation per (pair, sequence ``j``)
        answers membership at *every* depth ``t``, which is how the
        streaming sparsifier evaluates all its oracle-slot filters in
        one vectorized pass per chunk.  Bit-identical to :meth:`member`
        element-wise (the nested sampler is integer-exact).
        """
        return self._samplers[j].level_array(pairs)

    def attach_oracle(self, j: int, t: int, spanner: Graph) -> None:
        """Provide the distance oracle (a spanner of ``E^j_t``)."""
        if not 0 <= j < self.reps:
            raise IndexError(f"j {j} out of [0, {self.reps})")
        if not 1 <= t <= self.depths:
            raise IndexError(f"t {t} out of [1, {self.depths}]")
        self._oracles[j][t] = spanner

    def clone(self) -> "RobustConnectivityEstimator":
        """Independent copy: oracle slots are copied, BFS caches reset.

        The membership samplers are immutable shared randomness.  The
        cache starts empty so a clone whose oracles are re-attached (the
        snapshot path of :mod:`repro.service`) can never serve distances
        computed against another epoch's oracles.
        """
        clone = object.__new__(RobustConnectivityEstimator)
        clone.num_vertices = self.num_vertices
        clone.stretch = self.stretch
        clone.params = self.params
        clone.reps = self.reps
        clone.depths = self.depths
        clone._samplers = self._samplers
        clone._oracles = [list(row) for row in self._oracles]
        clone._bfs_cache = {}
        return clone

    def oracles_missing(self) -> int:
        """How many (j, t) slots still lack an oracle."""
        return sum(
            1 for j in range(self.reps) for t in range(1, self.depths + 1)
            if self._oracles[j][t] is None
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _oracle_distance(self, j: int, t: int, u: int, v: int) -> float:
        """Truncated-BFS distance in the (j, t) oracle spanner."""
        spanner = self._oracles[j][t]
        if spanner is None:
            raise RuntimeError(f"oracle ({j}, {t}) was never attached")
        threshold = self.stretch * self.stretch
        key = (j, t, u)
        cached = self._bfs_cache.get(key)
        if cached is None:
            cached = bfs_distances(spanner, u, cutoff=threshold + 1)
            self._bfs_cache[key] = cached
        return float(cached.get(v, math.inf))

    def query(self, u: int, v: int) -> float:
        """``q̂_{λ,ε}(u, v)``: the sampled-connectivity estimate."""
        threshold = self.stretch * self.stretch
        needed = math.ceil((1.0 - self.params.disagreement) * self.reps)
        for t in range(1, self.depths + 1):
            disconnected_votes = 0
            for j in range(self.reps):
                if self._oracle_distance(j, t, u, v) > threshold:
                    disconnected_votes += 1
            if disconnected_votes >= needed:
                return 2.0 ** (-t)
        return 2.0 ** (-self.depths)

    def sampling_level(self, u: int, v: int) -> int:
        """``j(e)`` with ``q̂(e) = 2^{-j(e)}`` (the weight exponent)."""
        return int(round(-math.log2(self.query(u, v))))
