"""Offline reference implementation of the two-phase spanner (Section 3.1).

This runs the *same* two phases as the streaming algorithm — identical
cluster hierarchy (shared ``LevelSamples`` seeds), identical forest
semantics, identical coverage rule — but reads the graph directly instead
of decoding sketches.  It serves three purposes:

* the semantic reference the streaming implementation is differentially
  tested against (both must satisfy Lemma 12's size bound and Lemma 13's
  ``2^k`` stretch);
* the "offline oracle" mode of the sparsification pipeline, which swaps
  sketch-decoding for direct access while preserving every other choice
  (lets E2 reach larger ``n`` than full sketching allows);
* a readable statement of the algorithm, free of sketching machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cluster_forest import ClusterForest, Copy
from repro.core.levels import LevelSamples
from repro.graph.graph import Graph
from repro.util.rng import derive_seed

__all__ = ["SpannerOutput", "offline_two_phase_spanner"]


@dataclass
class SpannerOutput:
    """Result of a spanner construction (offline or streaming).

    Attributes
    ----------
    spanner:
        The spanner subgraph ``H`` (unit weights for unweighted inputs).
    forest:
        The cluster forest ``F`` with witness edges.
    observed_edges:
        ``Sigma(R)`` — every input edge the construction's execution path
        examined (Claims 16/18/20; empty in offline mode, where the whole
        graph is "examined").  Used by the sparsifier's sampler.
    diagnostics:
        Counters: terminals per level, decode/coverage failures, etc.
    """

    spanner: Graph
    forest: ClusterForest
    observed_edges: set[tuple[int, int]] = field(default_factory=set)
    diagnostics: dict[str, int] = field(default_factory=dict)


def offline_two_phase_spanner(
    graph: Graph,
    k: int,
    seed: int | str,
) -> SpannerOutput:
    """Run the basic algorithm of Section 3.1 with direct graph access.

    ``seed`` controls the cluster samples ``C_i``; the arbitrary choices
    (which sampled neighbor becomes the parent, which in-tree endpoint
    witnesses) are resolved lexicographically for reproducibility.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    n = graph.num_vertices
    levels = LevelSamples(n, k, derive_seed(seed, "levels"))
    forest = ClusterForest(n, k)

    for level in range(k):
        for vertex in levels.members(level):
            forest.register_copy((vertex, level))

    # Phase 1: attach each copy at level i to a sampled neighbor at i+1.
    for level in range(k - 1):
        for vertex in levels.members(level):
            copy: Copy = (vertex, level)
            tree = forest.subtree_vertices(copy)
            # The parent may be any C_{i+1} vertex adjacent to the tree —
            # including a vertex whose lower-level copy is *inside* the
            # tree (forest nodes are copies, footnote 2 of the paper).
            best: tuple[int, int] | None = None  # (parent w, witness a)
            for a in tree:
                for w in graph.neighbors(a):
                    if not levels.contains(w, level + 1):
                        continue
                    candidate = (w, a)
                    if best is None or candidate < best:
                        best = candidate
            if best is None:
                forest.mark_terminal(copy)
            else:
                w, a = best
                forest.attach(copy, w, (a, w))
    for vertex in levels.members(k - 1):
        forest.mark_terminal((vertex, k - 1))

    # Phase 2: witness edges plus one edge from every outside neighbor
    # into each terminal cluster.
    spanner = Graph(n)
    for a, b in forest.witness_edges():
        spanner.add_edge(a, b, graph.weight(a, b))
    terminals_per_level: dict[int, int] = {}
    for root, tree in forest.terminal_trees().items():
        terminals_per_level[root[1]] = terminals_per_level.get(root[1], 0) + 1
        outside: dict[int, int] = {}
        for a in tree:
            for v in graph.neighbors(a):
                if v in tree:
                    continue
                best = outside.get(v)
                if best is None or a < best:
                    outside[v] = a
        for v, w in outside.items():
            if not spanner.has_edge(w, v):
                spanner.add_edge(w, v, graph.weight(w, v))

    diagnostics = {f"terminals_level_{lvl}": count for lvl, count in sorted(terminals_per_level.items())}
    return SpannerOutput(spanner=spanner, forest=forest, diagnostics=diagnostics)
