"""The paper's algorithms: spanners and sparsifiers in dynamic streams.

* :class:`TwoPassSpannerBuilder` — Theorem 1 (two passes, stretch 2^k).
* :class:`WeightedTwoPassSpanner` — Remark 14 weight-class reduction.
* :func:`offline_two_phase_spanner` — Section 3.1 reference semantics.
* :class:`AdditiveSpannerBuilder` — Theorem 3 (one pass, +O(n/d)).
* :class:`SpectralSparsifier` pipeline — Corollary 2 / Section 6.
"""

from repro.core.additive_spanner import AdditiveSpannerBuilder
from repro.core.cluster_forest import ClusterForest, Copy
from repro.core.estimate import RobustConnectivityEstimator
from repro.core.levels import LevelSamples
from repro.core.offline_spanner import SpannerOutput, offline_two_phase_spanner
from repro.core.oracle import SpannerDistanceOracle, recommended_k
from repro.core.parameters import AdditiveParams, SpannerParams, SparsifierParams
from repro.core.sample_spanner import SpannerSampleLevels
from repro.core.sparsify import (
    SpectralSparsifier,
    StreamingSparsifier,
    StreamingWeightedSparsifier,
    sparsify_stream,
    sparsify_weighted_graph,
)
from repro.core.two_pass_spanner import TwoPassSpannerBuilder
from repro.core.weighted import WeightedTwoPassSpanner

__all__ = [
    "TwoPassSpannerBuilder",
    "WeightedTwoPassSpanner",
    "offline_two_phase_spanner",
    "SpannerOutput",
    "AdditiveSpannerBuilder",
    "SpannerDistanceOracle",
    "recommended_k",
    "RobustConnectivityEstimator",
    "SpannerSampleLevels",
    "SpectralSparsifier",
    "StreamingSparsifier",
    "StreamingWeightedSparsifier",
    "sparsify_stream",
    "sparsify_weighted_graph",
    "LevelSamples",
    "ClusterForest",
    "Copy",
    "SpannerParams",
    "AdditiveParams",
    "SparsifierParams",
]
