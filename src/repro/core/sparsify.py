"""Spectral sparsification via spanners (Corollary 2; Section 6).

AUGMENTED-SPANNER-SPARSIFY (Algorithm 6):

1. ``q̂ = ESTIMATE(G, λ, ε)`` — robust connectivities from ``J x T``
   subsampled distance oracles (:mod:`repro.core.estimate`);
2. ``Z = Θ(λ² log n / ((1-ε) ε³))`` invocations of
   SAMPLE-AUGMENTED-SPANNER (:mod:`repro.core.sample_spanner`), each
   holding ``H`` geometric edge-sample levels with an augmented spanner
   per level;
3. output ``(1/Z) Σ_s X_s`` — for each edge, ``2^{j(e)}`` per round that
   recovered it at its estimator level, averaged.

Every oracle and every sampler level is an instance of the paper's
two-pass spanner, so the entire pipeline runs in **two passes** over the
dynamic stream (all first passes share pass 1, all second passes share
pass 2) — that is Corollary 2.  Two drivers are provided:

* :class:`SpectralSparsifier` — *offline-oracle* mode: identical
  pipeline, but each sub-spanner is built by the offline two-phase
  construction on the hash-filtered subgraph.  Semantics match the
  streaming mode (same filters, same estimator, same assembly); only the
  sketch decoding is bypassed, which lets experiments reach larger
  ``n``/``Z`` (E2 reports which mode produced each row).
* :func:`sparsify_stream` — full streaming mode over a
  :class:`~repro.stream.stream.DynamicStream`.

Weighted inputs reduce to ``O(log(w_max/w_min)/ε)`` unweighted instances
by weight class (Section 6's rounding), via :func:`sparsify_weighted_graph`.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.estimate import RobustConnectivityEstimator
from repro.core.offline_spanner import offline_two_phase_spanner
from repro.core.parameters import SpannerParams, SparsifierParams
from repro.core.sample_spanner import SpannerSampleLevels
from repro.core.two_pass_spanner import TwoPassSpannerBuilder
from repro.graph.graph import Graph
from repro.graph.vertex_space import VertexSpace, as_vertex_space
from repro.stream.batching import aggregate_updates, updates_to_arrays
from repro.stream.pipeline import StreamingAlgorithm, run_passes
from repro.stream.space import SpaceReport
from repro.stream.stream import DynamicStream
from repro.stream.updates import EdgeUpdate
from repro.util.rng import derive_seed

__all__ = [
    "SpectralSparsifier",
    "StreamingSparsifier",
    "StreamingWeightedSparsifier",
    "sparsify_stream",
    "sparsify_weighted_graph",
]

#: Slimmed spanner constants for the pipeline's many sub-spanners: the
#: sampler tolerates occasional coverage misses (they only shave the
#: (1-2eps) output probability), so one Y-stack plus repair suffices.
_SUB_SPANNER_PARAMS = SpannerParams(table_stacks=1, table_capacity_factor=0.75)

#: Below this many chunk tokens the per-token filter loop beats the
#: vectorized membership machinery.
_SMALL_BATCH = 32


class _PipelineCore:
    """State and assembly shared by the offline and streaming drivers."""

    def __init__(
        self,
        num_vertices: int | VertexSpace,
        seed: int | str,
        k: int,
        params: SparsifierParams | None,
    ):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.space = as_vertex_space(num_vertices)
        num_vertices = self.space.universe_size
        self.num_vertices = num_vertices
        self.k = k
        self.stretch = 2 ** k
        self.params = params or SparsifierParams()
        self.seed = derive_seed(seed)
        self.estimator = RobustConnectivityEstimator(
            num_vertices, self.stretch, derive_seed(seed, "estimate"), self.params
        )
        self.rounds = self.params.sampling_rounds(self.stretch, num_vertices)
        self.levels = self.params.levels(num_vertices)
        self.samplers = [
            SpannerSampleLevels(num_vertices, self.levels, derive_seed(seed, "sampling"), s)
            for s in range(self.rounds)
        ]

    def clone(self) -> "_PipelineCore":
        """Independent copy (estimator and samplers cloned, params shared).

        Needed because :meth:`StreamingSparsifier.finalize` *writes into*
        the core (attaching oracles and level outputs); a snapshot clone
        must attach to its own core or it would pollute the live one.
        """
        clone = object.__new__(_PipelineCore)
        clone.space = self.space
        clone.num_vertices = self.num_vertices
        clone.k = self.k
        clone.stretch = self.stretch
        clone.params = self.params
        clone.seed = self.seed
        clone.estimator = self.estimator.clone()
        clone.rounds = self.rounds
        clone.levels = self.levels
        clone.samplers = [sampler.clone() for sampler in self.samplers]
        return clone

    def oracle_slots(self) -> list[tuple[int, int]]:
        """All (j, t) estimator-oracle indices."""
        return [
            (j, t)
            for j in range(self.estimator.reps)
            for t in range(1, self.estimator.depths + 1)
        ]

    def sample_slots(self) -> list[tuple[int, int]]:
        """All (s, j) sampler-level indices."""
        return [(s, j) for s in range(self.rounds) for j in range(1, self.levels + 1)]

    def assemble(self) -> Graph:
        """Lines 6-8 of Algorithm 6: average the weighted samples."""
        candidates: set[tuple[int, int]] = set()
        for sampler in self.samplers:
            candidates |= sampler.recovered_edges()
        level_cache: dict[tuple[int, int], int] = {}

        def level_of_edge(edge: tuple[int, int]) -> int:
            level = level_cache.get(edge)
            if level is None:
                level = self.estimator.sampling_level(edge[0], edge[1])
                level_cache[edge] = level
            return level

        accumulated: dict[tuple[int, int], float] = {}
        for sampler in self.samplers:
            for edge, weight in sampler.weighted_output(level_of_edge).items():
                accumulated[edge] = accumulated.get(edge, 0.0) + weight

        sparsifier = Graph(self.num_vertices)
        for (u, v), total in accumulated.items():
            weight = total / self.rounds
            if weight > 0:
                sparsifier.add_edge(u, v, weight)
        return sparsifier


class SpectralSparsifier:
    """Offline-oracle driver for the two-pass sparsification pipeline.

    Parameters
    ----------
    num_vertices, seed:
        Graph size and randomness name.
    k:
        Spanner depth; oracle stretch is ``λ = 2^k``.  The paper sets
        ``k = sqrt(log n)`` for the ``n^{1+o(1)}`` bound; at bench scale
        ``k = 2`` or ``3`` is the right regime.
    params:
        Pipeline constants (``J``, ``T``, ``Z``, ``H``, ``ε``); see
        :class:`~repro.core.parameters.SparsifierParams`.
    """

    def __init__(
        self,
        num_vertices: int,
        seed: int | str,
        k: int = 2,
        params: SparsifierParams | None = None,
    ):
        self.core = _PipelineCore(num_vertices, seed, k, params)

    def sparsify_graph(self, graph: Graph) -> Graph:
        """Run the full pipeline with offline-built sub-spanners."""
        if graph.num_vertices != self.core.num_vertices:
            raise ValueError("graph size mismatch")
        core = self.core
        for j, t in core.oracle_slots():
            filtered = _filtered_graph(graph, core.estimator.edge_filter(j, t))
            output = offline_two_phase_spanner(
                filtered, core.k, derive_seed(core.seed, "oracle-spanner", j, t)
            )
            core.estimator.attach_oracle(j, t, output.spanner)
        for s, j in core.sample_slots():
            filtered = _filtered_graph(graph, self.core.samplers[s].edge_filter(j))
            output = offline_two_phase_spanner(
                filtered, core.k, derive_seed(core.seed, "sample-spanner", s, j)
            )
            core.samplers[s].attach_level_output(j, output.spanner.edge_set())
        return core.assemble()


class StreamingSparsifier(StreamingAlgorithm):
    """Full streaming driver: every sub-spanner is sketch-based, and the
    whole pipeline performs exactly two passes over the stream."""

    def __init__(
        self,
        num_vertices: int | VertexSpace,
        seed: int | str,
        k: int = 2,
        params: SparsifierParams | None = None,
        spanner_params: SpannerParams | None = None,
    ):
        self.core = _PipelineCore(num_vertices, seed, k, params)
        sub_params = spanner_params or _SUB_SPANNER_PARAMS
        core = self.core
        self._oracle_builders = {
            (j, t): TwoPassSpannerBuilder(
                core.space,
                k,
                derive_seed(core.seed, "oracle-builder", j, t),
                params=sub_params,
                edge_filter=core.estimator.edge_filter(j, t),
            )
            for j, t in core.oracle_slots()
        }
        self._sample_builders = {
            (s, j): TwoPassSpannerBuilder(
                core.space,
                k,
                derive_seed(core.seed, "sample-builder", s, j),
                params=sub_params,
                augmented=True,
                edge_filter=core.samplers[s].edge_filter(j),
            )
            for s, j in core.sample_slots()
        }

    @property
    def passes_required(self) -> int:
        return 2

    def begin_pass(self, pass_index: int) -> None:
        for builder in self._all_builders():
            builder.begin_pass(pass_index)

    def process(self, update: EdgeUpdate, pass_index: int) -> None:
        for builder in self._all_builders():
            builder.process(update, pass_index)

    def process_batch(self, updates: Sequence[EdgeUpdate], pass_index: int) -> None:
        """Vectorized slot routing: one membership pass per chunk.

        The chunk is unpacked and collapsed to its distinct pairs once;
        every oracle slot's nested-sample filter and every sampler
        level's Bernoulli filter is then a vectorized comparison over
        those distinct pairs (one hash evaluation per (pair, hash
        family) instead of one Python predicate call per token per
        slot), and each sub-spanner receives its surviving pairs through
        :meth:`~repro.core.two_pass_spanner.TwoPassSpannerBuilder.process_pairs`.
        State is bit-identical to the per-token filter path.
        """
        if not updates:
            return
        if len(updates) <= _SMALL_BATCH:
            for builder in self._all_builders():
                builder.process_batch(updates, pass_index)
            return
        core = self.core
        us, vs, signs = updates_to_arrays(updates)
        # Pass 0 keeps zero-net pairs: they drive the sub-spanners' lazy
        # sketch-row allocation exactly as the token path would.
        lows, highs, pairs, net = aggregate_updates(
            us, vs, signs, core.num_vertices, keep_zero=(pass_index == 0)
        )
        if pairs.size == 0:
            return

        def route(builder, mask):
            if mask is None:  # every pair survives — skip the copies
                builder.process_pairs(lows, highs, pairs, net, pass_index)
            elif mask.any():
                builder.process_pairs(
                    lows[mask], highs[mask], pairs[mask], net[mask], pass_index
                )

        for j in range(core.estimator.reps):
            depth = core.estimator.member_level_array(j, pairs)
            for t in range(1, core.estimator.depths + 1):
                mask = None if t <= 1 else depth >= np.int64(t - 1)
                route(self._oracle_builders[(j, t)], mask)
        for (s, j), builder in self._sample_builders.items():
            route(builder, core.samplers[s].member_array(j, pairs))

    def end_pass(self, pass_index: int) -> None:
        for builder in self._all_builders():
            builder.end_pass(pass_index)

    def finalize(self) -> Graph:
        core = self.core
        for (j, t), builder in self._oracle_builders.items():
            core.estimator.attach_oracle(j, t, builder.finalize().spanner)
        for (s, j), builder in self._sample_builders.items():
            output = builder.finalize()
            recovered = output.spanner.edge_set() | output.observed_edges
            core.samplers[s].attach_level_output(j, recovered)
        return core.assemble()

    def _all_builders(self):
        yield from self._oracle_builders.values()
        yield from self._sample_builders.values()

    def clone(self) -> "StreamingSparsifier":
        """Cheap structural copy: every sub-spanner is cloned and the
        core is cloned with it.

        The cloned sub-builders keep their original edge-filter closures
        — those are pure functions of immutable hash families, so a
        filter bound to the original core accepts exactly the pairs the
        clone's core would.  The clone's ``finalize`` attaches oracles
        and sampler outputs to the *clone's* core only.
        """
        clone = object.__new__(StreamingSparsifier)
        clone.core = self.core.clone()
        clone._oracle_builders = {
            key: builder.clone() for key, builder in self._oracle_builders.items()
        }
        clone._sample_builders = {
            key: builder.clone() for key, builder in self._sample_builders.items()
        }
        return clone

    # -- sharded execution protocol (see repro.stream.distributed) -----
    #
    # The pipeline is a fixed, seed-determined array of sub-spanners
    # (oracle slots, then sampler slots — dict insertion order), so the
    # sharded protocol is the spanner protocol applied slot-wise.
    # Pass-0 blocks are variable-length (each shard allocates different
    # cluster-sketch keys), so every block travels length-prefixed.

    def shard_state_ints(self, pass_index: int) -> list[int]:
        """Length-prefixed concatenation of every sub-spanner's state."""
        flat: list[int] = []
        for builder in self._all_builders():
            block = builder.shard_state_ints(pass_index)
            flat.append(len(block))
            flat.extend(block)
        return flat

    def load_shard_state_ints(self, pass_index: int, values: list[int]) -> None:
        """Inverse of :meth:`shard_state_ints`, slot by slot."""
        cursor = 0
        for builder in self._all_builders():
            length = int(values[cursor])
            cursor += 1
            builder.load_shard_state_ints(
                pass_index, values[cursor : cursor + length]
            )
            cursor += length
        if cursor != len(values):
            raise ValueError(f"expected {cursor} state ints, got {len(values)}")

    def merge_shard(self, other: "StreamingSparsifier", pass_index: int) -> None:
        """Sum a shard pipeline's state into ours, slot by slot."""
        for mine, theirs in zip(self._all_builders(), other._all_builders()):
            mine.merge_shard(theirs, pass_index)

    def broadcast_state(self, pass_index: int) -> object:
        """Per-slot list of the sub-spanners' forest broadcasts."""
        if pass_index != 1:
            return None
        return [builder.broadcast_state(pass_index) for builder in self._all_builders()]

    def adopt_broadcast(self, state: object, pass_index: int) -> None:
        """Install the coordinator's per-slot forest broadcasts."""
        for builder, piece in zip(self._all_builders(), state):
            builder.adopt_broadcast(piece, pass_index)

    def space_report(self) -> SpaceReport:
        """Aggregated words over every sub-spanner's sketches."""
        report = SpaceReport()
        for builder in self._oracle_builders.values():
            report.add("estimate oracles", builder.space_words())
        for builder in self._sample_builders.values():
            report.add("sampler spanners", builder.space_words())
        return report

    def space_words(self) -> int:
        return self.space_report().total_words()


class StreamingWeightedSparsifier(StreamingAlgorithm):
    """Two-pass streaming sparsifier for *weighted* dynamic streams.

    Section 6's reduction: round weights to powers of ``class_ratio``,
    sparsify each class as an unweighted stream, rescale and union —
    costing the ``log(w_max/w_min)`` factor of Corollary 2's statement.
    Weight bounds are assumed known a priori (footnote 1 of the paper).
    """

    def __init__(
        self,
        num_vertices: int | VertexSpace,
        seed: int | str,
        w_min: float,
        w_max: float,
        k: int = 2,
        params: SparsifierParams | None = None,
        class_ratio: float = 2.0,
    ):
        if not 0 < w_min <= w_max:
            raise ValueError(f"need 0 < w_min <= w_max, got ({w_min}, {w_max})")
        if class_ratio <= 1.0:
            raise ValueError(f"class_ratio must exceed 1, got {class_ratio}")
        self.space = as_vertex_space(num_vertices)
        num_vertices = self.space.universe_size
        self.num_vertices = num_vertices
        self.w_min = w_min
        self.w_max = w_max
        self.class_ratio = class_ratio
        self.num_classes = (
            1 + math.floor(math.log(w_max / w_min) / math.log(class_ratio))
        )
        self._pipelines = [
            StreamingSparsifier(
                self.space, derive_seed(seed, "weighted-class", t), k=k, params=params
            )
            for t in range(self.num_classes)
        ]
        # Streams carry few distinct weights; memoizing the float-log
        # class computation turns the per-token split into a dict hit.
        self._class_memo: dict[float, int] = {}

    def weight_class(self, weight: float) -> int:
        """Index of the weight class containing ``weight``."""
        memoized = self._class_memo.get(weight)
        if memoized is not None:
            return memoized
        if not self.w_min <= weight <= self.w_max:
            raise ValueError(
                f"weight {weight} outside the declared range [{self.w_min}, {self.w_max}]"
            )
        t = math.floor(math.log(weight / self.w_min) / math.log(self.class_ratio))
        t = min(t, self.num_classes - 1)
        self._class_memo[weight] = t
        return t

    @property
    def passes_required(self) -> int:
        return 2

    def begin_pass(self, pass_index: int) -> None:
        for pipeline in self._pipelines:
            pipeline.begin_pass(pass_index)

    def process(self, update: EdgeUpdate, pass_index: int) -> None:
        self._pipelines[self.weight_class(update.weight)].process(update, pass_index)

    def process_batch(self, updates: Sequence[EdgeUpdate], pass_index: int) -> None:
        by_class: dict[int, list[EdgeUpdate]] = {}
        for update in updates:
            by_class.setdefault(self.weight_class(update.weight), []).append(update)
        for weight_class, chunk in by_class.items():
            self._pipelines[weight_class].process_batch(chunk, pass_index)

    def end_pass(self, pass_index: int) -> None:
        for pipeline in self._pipelines:
            pipeline.end_pass(pass_index)

    def finalize(self) -> Graph:
        result = Graph(self.num_vertices)
        for t, pipeline in enumerate(self._pipelines):
            class_sparsifier = pipeline.finalize()
            representative = self.w_min * self.class_ratio ** t * math.sqrt(self.class_ratio)
            representative = min(representative, self.w_max)
            for u, v, w in class_sparsifier.edges():
                weight = w * representative
                if result.has_edge(u, v):
                    weight += result.weight(u, v)
                result.add_edge(u, v, weight)
        return result

    def clone(self) -> "StreamingWeightedSparsifier":
        """Cheap structural copy: every weight-class pipeline is cloned."""
        clone = object.__new__(StreamingWeightedSparsifier)
        clone.space = self.space
        clone.num_vertices = self.num_vertices
        clone.w_min = self.w_min
        clone.w_max = self.w_max
        clone.class_ratio = self.class_ratio
        clone.num_classes = self.num_classes
        clone._pipelines = [pipeline.clone() for pipeline in self._pipelines]
        clone._class_memo = self._class_memo  # pure cache of a pure function
        return clone

    # -- sharded execution protocol (see repro.stream.distributed) -----
    #
    # The weight classes are a fixed, seed-determined array of
    # sub-pipelines, so the protocol is the pipeline protocol applied
    # class-wise, each block length-prefixed (mirroring
    # :class:`StreamingSparsifier`).

    def shard_state_ints(self, pass_index: int) -> list[int]:
        """Length-prefixed concatenation of every class pipeline's state."""
        flat: list[int] = []
        for pipeline in self._pipelines:
            block = pipeline.shard_state_ints(pass_index)
            flat.append(len(block))
            flat.extend(block)
        return flat

    def load_shard_state_ints(self, pass_index: int, values: list[int]) -> None:
        """Inverse of :meth:`shard_state_ints`, class by class."""
        cursor = 0
        for pipeline in self._pipelines:
            length = int(values[cursor])
            cursor += 1
            pipeline.load_shard_state_ints(pass_index, values[cursor : cursor + length])
            cursor += length
        if cursor != len(values):
            raise ValueError(f"expected {cursor} state ints, got {len(values)}")

    def merge_shard(self, other: "StreamingWeightedSparsifier", pass_index: int) -> None:
        """Sum a shard's state into ours, class by class."""
        for mine, theirs in zip(self._pipelines, other._pipelines):
            mine.merge_shard(theirs, pass_index)

    def broadcast_state(self, pass_index: int) -> object:
        """Per-class list of the pipelines' forest broadcasts."""
        if pass_index != 1:
            return None
        return [pipeline.broadcast_state(pass_index) for pipeline in self._pipelines]

    def adopt_broadcast(self, state: object, pass_index: int) -> None:
        """Install the coordinator's per-class forest broadcasts."""
        for pipeline, piece in zip(self._pipelines, state):
            pipeline.adopt_broadcast(piece, pass_index)

    def space_words(self) -> int:
        return sum(pipeline.space_words() for pipeline in self._pipelines)


def sparsify_stream(
    stream: DynamicStream,
    seed: int | str,
    k: int = 2,
    params: SparsifierParams | None = None,
    batch_size: int | None = None,
) -> Graph:
    """Two-pass streaming sparsification of ``stream`` (Corollary 2).

    ``batch_size`` chunks each pass through the batched sketch engine
    (identical output; see ``docs/performance.md``).
    """
    algorithm = StreamingSparsifier(stream.num_vertices, seed, k=k, params=params)
    return run_passes(stream, algorithm, batch_size=batch_size)


def sparsify_weighted_graph(
    graph: Graph,
    seed: int | str,
    k: int = 2,
    params: SparsifierParams | None = None,
    class_ratio: float = 2.0,
) -> Graph:
    """Weighted sparsification by weight classes (Section 6's rounding).

    Each class ``[w_0 r^t, w_0 r^{t+1})`` is sparsified as an unweighted
    graph and rescaled by its class weight; the union is the sparsifier.
    Costs a factor ``log_r(w_max/w_min)`` in space/time.
    """
    if class_ratio <= 1.0:
        raise ValueError(f"class_ratio must exceed 1, got {class_ratio}")
    weights = [w for _, _, w in graph.edges()]
    if not weights:
        return Graph(graph.num_vertices)
    w_min = min(weights)
    result = Graph(graph.num_vertices)
    num_classes = 1 + math.floor(math.log(max(weights) / w_min) / math.log(class_ratio))
    for t in range(num_classes):
        low = w_min * class_ratio ** t
        high = w_min * class_ratio ** (t + 1)
        class_graph = Graph(graph.num_vertices)
        for u, v, w in graph.edges():
            if low <= w < high or (t == num_classes - 1 and w == high):
                class_graph.add_edge(u, v)
        if class_graph.num_edges() == 0:
            continue
        pipeline = SpectralSparsifier(
            graph.num_vertices, derive_seed(seed, "weight-class", t), k=k, params=params
        )
        class_sparsifier = pipeline.sparsify_graph(class_graph)
        representative = low * math.sqrt(class_ratio)
        for u, v, w in class_sparsifier.edges():
            weight = w * representative
            if result.has_edge(u, v):
                weight += result.weight(u, v)
            result.add_edge(u, v, weight)
    return result


def _filtered_graph(graph: Graph, predicate) -> Graph:
    """Subgraph of ``graph`` on the pairs accepted by ``predicate``."""
    filtered = Graph(graph.num_vertices)
    for u, v, w in graph.edges():
        if predicate(u, v):
            filtered.add_edge(u, v, w)
    return filtered
