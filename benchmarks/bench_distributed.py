"""Distributed engine — sharded multi-process execution vs. one machine.

The distributed subsystem (:mod:`repro.stream.distributed`) exists so
that ``s`` servers can sketch disjoint shards of a dynamic stream and a
coordinator can reassemble the *exact* single-machine state from their
serialized messages.  This bench pins down both halves of that claim:

* **equivalence** — on a small stream, every backend x discipline
  combination must produce identical output *and* identical per-round
  message bytes (the protocol is deterministic, so the serial and mp
  backends are indistinguishable on the wire);
* **speedup** — on a ``10^6``-update dynamic stream, 4 worker processes
  (``backend="mp"``) must beat the single-stream batched run by >= 2x
  wall-clock.  The parallel section is the per-shard sketching; the
  serialized-state merge at the coordinator is sequential but its cost
  is fixed by the sketch size, not the stream length, which is exactly
  why the speedup materializes on long streams.

The speedup gate needs real cores: it is skipped (not failed) when the
host exposes fewer than 2 CPUs, and the 4-worker target is asserted
only when >= 4 CPUs are available (2 workers / >= 1.6x on 2-3 CPUs).
``docs/performance.md`` quotes the table.
"""

from __future__ import annotations

import os
import time
from functools import partial

import pytest

from repro.agm import ConnectivityChecker
from repro.stream import ShardedRunner, run_passes
from repro.stream.stream import DynamicStream
from repro.stream.updates import EdgeUpdate
from repro.util.rng import rng_from_seed

#: Stream length for the headline speedup measurement (the issue's 10^6).
STREAM_UPDATES = 1_000_000

#: Vertex-set size: small enough that per-shard chunks stay above the
#: batch engine's vectorization crossover, large enough to be a graph.
NUM_VERTICES = 24

#: Per-worker chunk length for the batched sketch engine.
BATCH_SIZE = 65_536

#: Workers for the headline measurement.
SERVERS = 4

#: Wall-clock gate: mp backend at 4 workers vs. the single-stream run.
SPEEDUP_FLOOR = 2.0

#: Fallback gate when only 2-3 cores are available (2 workers).
SMALL_HOST_SPEEDUP_FLOOR = 1.6


def _dynamic_stream(num_vertices: int, length: int, seed: int) -> DynamicStream:
    """A valid dynamic edge stream: inserts with interleaved deletions."""
    rng = rng_from_seed(seed, "bench-distributed")
    updates: list[EdgeUpdate] = []
    live: list[tuple[int, int]] = []
    while len(updates) < length:
        if live and rng.random() < 0.35:
            position = rng.randrange(len(live))
            live[position], live[-1] = live[-1], live[position]
            u, v = live.pop()
            updates.append(EdgeUpdate(u, v, -1))
        else:
            u = rng.randrange(num_vertices)
            v = rng.randrange(num_vertices)
            if u == v:
                continue
            live.append((min(u, v), max(u, v)))
            updates.append(EdgeUpdate(u, v, +1))
    return DynamicStream(num_vertices, updates)


def test_distributed_equivalence_and_wire_determinism(results):
    """Every backend/discipline combo: same components, same bytes."""
    stream = _dynamic_stream(NUM_VERTICES, 4_000, seed=23)
    factory = partial(ConnectivityChecker, NUM_VERTICES, 5)
    single = factory().run(stream, batch_size=512)
    reference = sorted(map(sorted, single))

    rows = ["sharded vs single-stream on a 4,000-update stream (3 servers):"]
    bytes_by_discipline: dict[str, int] = {}
    for backend in ("serial", "mp"):
        for discipline in ("round-robin", "by-edge"):
            runner = ShardedRunner(
                3, backend=backend, discipline=discipline, batch_size=512
            )
            result = runner.run(stream, factory)
            assert sorted(map(sorted, result.output)) == reference, (
                f"{backend}/{discipline} diverged from the single-stream run"
            )
            total = result.communication.total_bytes()
            expected = bytes_by_discipline.setdefault(discipline, total)
            assert total == expected, (
                f"{backend}/{discipline} message bytes differ between backends"
            )
            rows.append(
                f"  {backend:<7} {discipline:<12} output identical, "
                f"{total:,} B on the wire"
            )
    results("bench_distributed_equivalence", "\n".join(rows))


def test_distributed_speedup(results):
    """>= 2x wall-clock at 4 mp workers on a 10^6-update stream."""
    cores = os.cpu_count() or 1
    if cores < 2:
        pytest.skip(
            "multi-process speedup needs >= 2 CPUs; this host exposes "
            f"{cores} (the equivalence gate above still ran)"
        )
    servers = SERVERS if cores >= SERVERS else 2
    floor = SPEEDUP_FLOOR if cores >= SERVERS else SMALL_HOST_SPEEDUP_FLOOR

    stream = _dynamic_stream(NUM_VERTICES, STREAM_UPDATES, seed=29)
    factory = partial(ConnectivityChecker, NUM_VERTICES, 5)

    start = time.perf_counter()
    single = factory().run(stream, batch_size=BATCH_SIZE)
    single_seconds = time.perf_counter() - start

    runner = ShardedRunner(servers, backend="mp", batch_size=BATCH_SIZE)
    start = time.perf_counter()
    result = runner.run(stream, factory)
    mp_seconds = time.perf_counter() - start

    assert sorted(map(sorted, result.output)) == sorted(map(sorted, single)), (
        "distributed components diverged from the single-stream run"
    )
    speedup = single_seconds / mp_seconds
    table = "\n".join([
        f"distributed speedup on a {STREAM_UPDATES:,}-update stream "
        f"(n={NUM_VERTICES}, batch {BATCH_SIZE:,}, {cores} cores):",
        f"  single-stream batched run : {single_seconds:>8.1f} s",
        f"  mp backend, {servers} workers    : {mp_seconds:>8.1f} s",
        f"  speedup                   : {speedup:>8.2f}x (gate {floor}x)",
        f"  coordinator communication : "
        f"{result.communication.total_bytes():,} B",
    ])
    results("bench_distributed_speedup", table)
    assert speedup >= floor, (
        f"mp backend speedup {speedup:.2f}x below the {floor}x gate "
        f"at {servers} workers"
    )
