"""E1 — Theorem 1: two-pass 2^k-spanners, space and stretch.

Regenerates the claim table: for each (n, k), the streaming spanner's
size, worst observed stretch (must be <= 2^k), measured sketch words and
pass count.  The scaling column compares measured size growth across n
against the theory's ~n^{1+1/k}.
"""

from __future__ import annotations

import math

from repro.core import TwoPassSpannerBuilder
from repro.graph import connected_gnp, evaluate_multiplicative_stretch
from repro.stream import stream_from_graph

CONFIGS = [
    # (n, k); p scaled to keep average degree ~8.
    (32, 1),
    (32, 2),
    (64, 1),
    (64, 2),
    (64, 3),
    (128, 2),
    (128, 3),
]


def run_once(n: int, k: int, seed: int = 7):
    graph = connected_gnp(n, min(0.5, 8.0 / n), seed=seed)
    stream = stream_from_graph(graph, seed=seed, churn=0.3)
    builder = TwoPassSpannerBuilder(n, k, seed=seed + 1)
    output = builder.run(stream)
    sample = None if n <= 64 else 600
    report = evaluate_multiplicative_stretch(graph, output.spanner, sample_pairs=sample, seed=seed)
    return graph, builder, output, report


def test_e1_table(results, benchmark):
    rows = [
        f"{'n':>5} {'k':>2} {'m':>6} {'|H|':>6} {'stretch':>8} {'<=2^k':>6} "
        f"{'words':>9} {'passes':>6} {'n^(1+1/k)':>10}"
    ]
    sizes_by_k: dict[int, list[tuple[int, int]]] = {}
    for n, k in CONFIGS:
        graph, builder, output, report = run_once(n, k)
        words = builder.space_report().total_words()
        ok = "yes" if report.within(2 ** k) else "NO"
        rows.append(
            f"{n:>5} {k:>2} {graph.num_edges():>6} {output.spanner.num_edges():>6} "
            f"{report.max_stretch:>8.2f} {ok:>6} {words:>9} {builder.passes_required:>6} "
            f"{n ** (1 + 1 / k):>10.0f}"
        )
        sizes_by_k.setdefault(k, []).append((n, output.spanner.num_edges()))
        assert report.within(2 ** k), f"stretch violated at n={n}, k={k}"
        assert builder.passes_required == 2

    # Scaling shape: for k=2, |H| should grow clearly sub-quadratically
    # (near n^{1.5} within polylogs).
    points = sizes_by_k[2]
    (n0, s0), (n1, s1) = points[0], points[-1]
    slope = math.log(s1 / s0) / math.log(n1 / n0)
    rows.append(f"\nsize-scaling slope for k=2 across n: {slope:.2f} "
                f"(theory: <= 1 + 1/k + o(1) = 1.5 + o(1))")
    assert slope < 1.9, f"size grows too fast: slope {slope}"

    results("E1_multiplicative_spanner", "\n".join(rows))
    benchmark.pedantic(lambda: run_once(64, 2), rounds=1, iterations=1)
