"""E5 — the introduction's pass/space/stretch tradeoff table.

One fixed input graph; every spanner construction the paper discusses,
side by side: our two-pass dynamic-stream algorithm (2^k stretch),
Baswana–Sen offline (2k-1), the greedy yardstick, the Thorup–Zwick
oracle, and the one-pass additive spanner.  The shape the paper claims:
the offline/random-access algorithms achieve better stretch constants,
while the two-pass sketch is the only one that survives a dynamic stream
with a constant number of passes.
"""

from __future__ import annotations

from repro.baselines import ThorupZwickOracle, baswana_sen_spanner, greedy_spanner
from repro.core import AdditiveSpannerBuilder, TwoPassSpannerBuilder
from repro.graph import (
    connected_gnp,
    distance,
    evaluate_additive_error,
    evaluate_multiplicative_stretch,
)
from repro.stream import stream_from_graph

N = 64
SEED = 23


def test_e5_table(results, benchmark):
    graph = connected_gnp(N, 0.15, seed=SEED)
    stream = stream_from_graph(graph, seed=SEED, churn=0.3)
    rows = [
        f"input: G({N}, 0.15), m={graph.num_edges()}, dynamic stream with deletions",
        f"{'algorithm':<30} {'model':>14} {'passes':>6} {'size':>6} "
        f"{'stretch obs':>11} {'guarantee':>10}",
    ]

    def add_row(name, model, passes, size, observed, guarantee):
        rows.append(
            f"{name:<30} {model:>14} {passes:>6} {size:>6} "
            f"{observed:>11} {guarantee:>10}"
        )

    for k in (1, 2, 3):
        builder = TwoPassSpannerBuilder(N, k, seed=SEED + k)
        output = builder.run(stream)
        report = evaluate_multiplicative_stretch(graph, output.spanner)
        assert report.within(2 ** k)
        add_row(
            f"this paper, 2-pass (k={k})", "dyn. stream", 2,
            output.spanner.num_edges(), f"{report.max_stretch:.2f}", f"{2 ** k}x",
        )

    for k in (2, 3):
        spanner = baswana_sen_spanner(graph, k, seed=SEED + 10 + k)
        report = evaluate_multiplicative_stretch(graph, spanner)
        assert report.within(2 * k - 1)
        add_row(
            f"Baswana-Sen (k={k})", "offline", "-",
            spanner.num_edges(), f"{report.max_stretch:.2f}", f"{2 * k - 1}x",
        )

    greedy = greedy_spanner(graph, 3)
    report = evaluate_multiplicative_stretch(graph, greedy)
    assert report.within(3)
    add_row("greedy (t=3)", "offline", "-", greedy.num_edges(),
            f"{report.max_stretch:.2f}", "3x")

    oracle = ThorupZwickOracle(graph, 2, seed=SEED + 20)
    worst = 0.0
    for u in range(0, N, 7):
        for v in range(3, N, 11):
            if u == v:
                continue
            true = distance(graph, u, v)
            if true > 0:
                worst = max(worst, oracle.query(u, v) / true)
    assert worst <= 3 + 1e-9
    add_row("Thorup-Zwick oracle (k=2)", "offline", "-",
            oracle.space_entries(), f"{worst:.2f}", "3x")

    additive = AdditiveSpannerBuilder(N, 4, seed=SEED + 30)
    add_spanner = additive.run(stream)
    error, _ = evaluate_additive_error(graph, add_spanner)
    assert error <= 6 * N / 4
    add_row("this paper, additive (d=4)", "dyn. stream", 1,
            add_spanner.num_edges(), f"+{error:.0f}", f"+O({N // 4})")

    rows.append(
        "\nshape: offline algorithms buy sharper stretch constants with random"
        "\naccess; the paper's algorithms are the only dynamic-stream entries,"
        "\nat 2 (multiplicative) and 1 (additive) passes."
    )
    results("E5_tradeoff_table", "\n".join(rows))
    benchmark.pedantic(
        lambda: baswana_sen_spanner(graph, 2, seed=SEED), rounds=1, iterations=1
    )
