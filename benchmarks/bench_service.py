"""Service gates — the live sketch store at production stream lengths.

The sketch-store subsystem (:mod:`repro.service`) claims a
:class:`~repro.service.GraphSession` can (a) ingest a ``10^6``-update
dynamic stream incrementally, (b) answer connectivity/spanner/cut
queries mid-stream, (c) survive a kill/restore cycle through its
checkpoint with **bit-identical** final answers, and (d) serve repeated
queries between updates from the epoch cache at >= 10x below the first
finalize.  This bench runs that lifecycle once and gates every claim:

* **ingest throughput** — the full session (connectivity + spanner +
  slim sparsifier pipeline, all ingesting every token) must sustain
  ``INGEST_FLOOR`` updates/s.  The floor is deliberately conservative —
  about a third of what the 1-CPU reference container sustains — so the
  gate catches order-of-magnitude regressions, not scheduler noise.
* **epoch cache** — a repeated ``spanner_distance`` between updates must
  be >= ``CACHE_SPEEDUP_FLOOR`` cheaper than the cold snapshot.
* **checkpoint round trip** — the session is checkpointed at the
  midpoint, "killed", restored from disk, fed the remaining half; its
  final components/forest/spanner/sparsifier answers and its raw
  serialized sketch states must equal the uninterrupted session's.
* **phase attribution** — the lifecycle runs with a live tracer
  (:mod:`repro.obs`); its span-attributed ingest time must agree with
  the hand-timed loop to 10%, and the per-phase profile is written to
  ``benchmarks/results/BENCH_service_phases.json`` for the
  ``tools/perf_regress.py`` gate (suite ``service_phases``).
* **disabled-telemetry overhead** — with the noop tracer installed,
  real ingest must clear 97% of ``INGEST_FLOOR`` and the noop
  primitives must cost under 3% of an update at the floor.

No parallel-speedup gate here: the host may expose a single CPU (the
reference container does); see ``bench_distributed.py`` for the
multi-core story.  ``docs/performance.md`` quotes the tables.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro import obs
from repro.core import SparsifierParams
from repro.service import GraphSession, WorkloadDriver, load_session, scenario_ops
from repro.stream import mixed_workload_stream

#: The headline stream length (the issue's 10^6).
STREAM_UPDATES = 1_000_000

#: Vertex count: small enough that the slim sparsifier pipeline ingests
#: a million updates in bench time, large enough to exercise routing.
NUM_VERTICES = 16

#: Ingest chunk fed to the batched sketch engine.
BATCH_SIZE = 65_536

#: Conservative floor (updates/s) for the full three-algorithm session.
#: History: 4,000 when ingest was per-sketch batched (~17.7k measured on
#: the 1-CPU reference container); the columnar engine lifted the same
#: configuration past 400k, so the floor rises to 40,000 — still ~10x
#: headroom against scheduler noise, and > 2x the pre-columnar measured
#: rate, so a silent fallback to the old engine fails the gate.
INGEST_FLOOR = 40_000.0

#: Repeated queries between updates must beat the cold finalize by this.
CACHE_SPEEDUP_FLOOR = 10.0

#: Slim sparsifier constants (10 sub-spanner slots; E2 documents the
#: fidelity/scale trade of slimming these).
SLIM = SparsifierParams(estimate_levels=2, sampling_levels=2, sampling_rounds_factor=0.01)

SEED = "bench-service"

#: Phase-attributed measurement consumed by tools/perf_regress.py (the
#: committed twin under benchmarks/baselines/ gates the ingest rate).
RESULTS_JSON = pathlib.Path(__file__).parent / "results" / "BENCH_service_phases.json"

#: The disabled telemetry path may cost at most this fraction of an
#: update's time budget at the committed ingest floor.
OVERHEAD_CEILING = 0.03


def _final_answers(session: GraphSession) -> dict:
    answers = session.snapshot_answers()
    # The bench additionally compares raw serialized sketch state — a
    # strictly stronger probe than the decoded answers.
    answers["states"] = [list(a.shard_state_ints(0)) for a in session._algorithms()]
    return answers


def _make_session() -> GraphSession:
    return GraphSession(
        NUM_VERTICES, SEED, k=2, sparsifier_k=1, sparsifier_params=SLIM
    )


@pytest.fixture(scope="module")
def lifecycle(tmp_path_factory):
    """One full service lifecycle; every gate reads its measurements."""
    tokens = list(mixed_workload_stream(NUM_VERTICES, STREAM_UPDATES, SEED))
    checkpoint_path = tmp_path_factory.mktemp("service") / "midpoint.bin"
    midpoint_chunk = (len(tokens) // BATCH_SIZE) // 2
    session = _make_session()

    # Arm a tracer for the uninterrupted run so the instrumented seams
    # (session ingest/query, checkpoint bytes, sketch scatter) attribute
    # the wall-clock by phase; restored to the noop tracer before the
    # recovery replay, so "phases"/"counters" describe exactly the
    # hand-timed portion below.
    tracer = obs.Tracer()
    previous_tracer = obs.set_tracer(tracer)

    ingest_seconds = 0.0
    midstream: dict = {}
    for index, start in enumerate(range(0, len(tokens), BATCH_SIZE)):
        chunk = tokens[start : start + BATCH_SIZE]
        begin = time.perf_counter()
        session.ingest_batch(chunk)
        ingest_seconds += time.perf_counter() - begin

        if index == midpoint_chunk:
            # Mid-stream: checkpoint, then answer one query of each kind,
            # timing the cold snapshot vs. its epoch-cached repeat.
            begin = time.perf_counter()
            session.checkpoint(checkpoint_path)
            midstream["checkpoint_seconds"] = time.perf_counter() - begin
            midstream["checkpoint_bytes"] = checkpoint_path.stat().st_size
            midstream["checkpoint_updates"] = session.updates_ingested

            begin = time.perf_counter()
            midstream["connected"] = session.connected(0, 1)
            midstream["connected_seconds"] = time.perf_counter() - begin

            begin = time.perf_counter()
            midstream["distance"] = session.spanner_distance(0, 1)
            cold = time.perf_counter() - begin
            begin = time.perf_counter()
            repeat_distance = session.spanner_distance(0, 1)
            warm = time.perf_counter() - begin
            assert repeat_distance == midstream["distance"]
            midstream["cold_seconds"] = cold
            midstream["warm_seconds"] = warm

            begin = time.perf_counter()
            midstream["cut"] = session.cut_estimate(range(NUM_VERTICES // 2))
            midstream["cut_seconds"] = time.perf_counter() - begin

    reference = _final_answers(session)
    phases = tracer.phase_seconds()
    counters = dict(tracer.counters)
    obs.set_tracer(previous_tracer)

    # The kill: the session object is gone; only the checkpoint survives.
    del session
    restored = load_session(checkpoint_path)
    restore_begin = time.perf_counter()
    for start in range(restored.updates_ingested, len(tokens), BATCH_SIZE):
        restored.ingest_batch(tokens[start : start + BATCH_SIZE])
    restore_seconds = time.perf_counter() - restore_begin
    recovered = _final_answers(restored)

    return {
        "tokens": len(tokens),
        "ingest_seconds": ingest_seconds,
        "midstream": midstream,
        "reference": reference,
        "recovered": recovered,
        "restore_seconds": restore_seconds,
        "phases": phases,
        "counters": counters,
    }


def test_ingest_throughput_floor(lifecycle, results):
    """10^6 updates through all three live algorithms, incrementally."""
    rate = lifecycle["tokens"] / lifecycle["ingest_seconds"]
    midstream = lifecycle["midstream"]
    table = "\n".join([
        f"live session ingest, {lifecycle['tokens']:,} updates "
        f"(n={NUM_VERTICES}, batch {BATCH_SIZE:,}, "
        "connectivity + 2-pass spanner pass 1 + sparsifier pass 1):",
        f"  ingest wall-clock : {lifecycle['ingest_seconds']:>8.1f} s",
        f"  throughput        : {rate:>8,.0f} updates/s (gate {INGEST_FLOOR:,.0f})",
        f"  checkpoint        : {midstream['checkpoint_bytes']:,} B in "
        f"{midstream['checkpoint_seconds'] * 1e3:.0f} ms at update "
        f"{midstream['checkpoint_updates']:,}",
    ])
    results("bench_service_ingest", table)
    assert rate >= INGEST_FLOOR, (
        f"session ingest {rate:,.0f} updates/s under the {INGEST_FLOOR:,.0f} floor"
    )


def test_mid_stream_queries_answered(lifecycle, results):
    """Connectivity, spanner and cut queries all answered mid-stream."""
    midstream = lifecycle["midstream"]
    assert isinstance(midstream["connected"], bool)
    assert midstream["distance"] >= 1.0  # 0 and 1 are distinct vertices
    assert midstream["cut"] >= 0.0
    table = "\n".join([
        f"mid-stream snapshot queries at update {midstream['checkpoint_updates']:,}:",
        f"  connected(0,1)       = {midstream['connected']} "
        f"({midstream['connected_seconds'] * 1e3:8.1f} ms)",
        f"  spanner_distance(0,1)= {midstream['distance']} "
        f"({midstream['cold_seconds'] * 1e3:8.1f} ms cold)",
        f"  cut_estimate(V/2)    = {midstream['cut']:.1f} "
        f"({midstream['cut_seconds'] * 1e3:8.1f} ms)",
    ])
    results("bench_service_queries", table)


def test_epoch_cache_speedup(lifecycle, results):
    """Repeated queries between updates are >= 10x below first finalize."""
    midstream = lifecycle["midstream"]
    speedup = midstream["cold_seconds"] / max(midstream["warm_seconds"], 1e-9)
    table = "\n".join([
        "epoch-cached repeat of spanner_distance(0, 1):",
        f"  cold (clone + pass-2 replay + decode): "
        f"{midstream['cold_seconds'] * 1e3:>10.2f} ms",
        f"  warm (epoch cache hit)               : "
        f"{midstream['warm_seconds'] * 1e3:>10.4f} ms",
        f"  speedup                              : {speedup:>10,.0f}x "
        f"(gate {CACHE_SPEEDUP_FLOOR:.0f}x)",
    ])
    results("bench_service_cache", table)
    assert speedup >= CACHE_SPEEDUP_FLOOR, (
        f"epoch cache speedup {speedup:.1f}x under {CACHE_SPEEDUP_FLOOR}x"
    )


def test_checkpoint_restore_equivalence(lifecycle, results):
    """Kill/restore at the midpoint finishes bit-identical to no crash."""
    reference = lifecycle["reference"]
    recovered = lifecycle["recovered"]
    for key in reference:
        assert recovered[key] == reference[key], (
            f"restored session diverged from the uninterrupted run in {key!r}"
        )
    table = "\n".join([
        "kill/restore at the midpoint vs. uninterrupted session:",
        f"  tail replay after restore : {lifecycle['restore_seconds']:>8.1f} s",
        f"  components/forest/spanner/sparsifier answers: identical",
        f"  raw serialized sketch states               : identical",
    ])
    results("bench_service_checkpoint", table)


def test_phase_breakdown_json(lifecycle, results):
    """Span-attributed phase profile of the lifecycle, persisted for
    tools/perf_regress.py (suite ``service_phases``): the gated ingest
    rate plus where the seconds actually went."""
    phases = lifecycle["phases"]
    counters = lifecycle["counters"]
    rate = lifecycle["tokens"] / lifecycle["ingest_seconds"]
    # The span-attributed ingest time and the bench's hand-timed loop
    # measure the same region; they must agree to within 10%.
    assert phases.get("session.ingest", 0.0) > 0.0
    drift = abs(phases["session.ingest"] - lifecycle["ingest_seconds"])
    assert drift <= 0.10 * lifecycle["ingest_seconds"], (
        f"span-attributed ingest {phases['session.ingest']:.2f}s vs "
        f"hand-timed {lifecycle['ingest_seconds']:.2f}s"
    )
    assert phases.get("checkpoint.save", 0.0) > 0.0
    assert counters.get("session.epoch.advance", 0) > 0
    payload = {
        "stream_updates": STREAM_UPDATES,
        "batch_size": BATCH_SIZE,
        "updates_per_second": {"ingest": round(rate, 1)},
        "phase_seconds": {
            path: round(seconds, 4) for path, seconds in sorted(phases.items())
        },
    }
    RESULTS_JSON.parent.mkdir(exist_ok=True)
    RESULTS_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    width = max(len(path) for path in phases)
    table = "\n".join(
        [f"phase-attributed lifecycle profile ({lifecycle['tokens']:,} updates):"]
        + [
            f"  {path:<{width}} {seconds:>9.2f} s"
            for path, seconds in sorted(phases.items())
        ]
        + [f"written to {RESULTS_JSON.name} (gated by tools/perf_regress.py)"]
    )
    results("bench_service_phases", table)


def test_disabled_telemetry_overhead(results):
    """The disabled path is near-zero-cost: real ingest with the noop
    tracer clears 97% of the committed floor, and the noop primitives
    are cheap enough to cost <3% of an update at that floor."""
    # The lifecycle fixture restored the process-wide noop tracer, and
    # its span() contract is allocation-free (one shared singleton).
    assert not obs.TRACER.enabled
    assert obs.TRACER.span("a") is obs.TRACER.span("b")

    tokens = list(mixed_workload_stream(NUM_VERTICES, 4 * BATCH_SIZE, SEED))
    session = _make_session()
    begin = time.perf_counter()
    for start in range(0, len(tokens), BATCH_SIZE):
        session.ingest_batch(tokens[start : start + BATCH_SIZE])
    rate = len(tokens) / (time.perf_counter() - begin)
    floor = (1.0 - OVERHEAD_CEILING) * INGEST_FLOOR

    # Microbenchmark the three noop primitives; the instrumented seams
    # average under one obs call per ingested update (the scatter
    # histogram dominates at ~0.6/update), so one-call-per-update is a
    # conservative per-update overhead estimate.
    calls = 100_000
    noop = obs.TRACER
    begin = time.perf_counter()
    for _ in range(calls):
        with noop.span("x"):
            pass
        noop.count("c")
        noop.observe("h", 7)
    per_call = (time.perf_counter() - begin) / (3 * calls)
    overhead_fraction = per_call * INGEST_FLOOR  # per-call s / (1/floor) s budget

    table = "\n".join([
        f"disabled-telemetry overhead ({len(tokens):,} updates, noop tracer):",
        f"  ingest throughput : {rate:>12,.0f} updates/s "
        f"(gate {floor:,.0f} = 97% of the {INGEST_FLOOR:,.0f} floor)",
        f"  noop primitive    : {per_call * 1e9:>12,.0f} ns/call "
        f"({overhead_fraction:.2%} of an update at the floor; "
        f"gate {OVERHEAD_CEILING:.0%})",
    ])
    results("bench_service_overhead", table)
    assert rate >= floor, (
        f"disabled-telemetry ingest {rate:,.0f} updates/s fell below "
        f"{floor:,.0f} (97% of the committed floor)"
    )
    assert overhead_fraction <= OVERHEAD_CEILING, (
        f"noop telemetry primitive costs {overhead_fraction:.1%} of an "
        f"update at the floor (ceiling {OVERHEAD_CEILING:.0%})"
    )


def test_scenario_latency_table(results, tmp_path):
    """Short mixed scenario through the driver — the latency/cache table
    docs/performance.md quotes (reporting, plus basic sanity gates)."""
    session = _make_session()
    ops = scenario_ops("query-heavy", NUM_VERTICES, 30_000, SEED)
    report = WorkloadDriver(
        session, checkpoint_every=10_000, checkpoint_dir=tmp_path
    ).run(ops, scenario="query-heavy")
    results("bench_service_scenario", report.table())
    assert report.queries > 0
    assert report.cache_hits > 0
    assert report.checkpoints >= 2
    truth = sorted(map(sorted, session.live_graph().connected_components()))
    assert sorted(map(sorted, session.components())) == truth
