"""Service gates — the live sketch store at production stream lengths.

The sketch-store subsystem (:mod:`repro.service`) claims a
:class:`~repro.service.GraphSession` can (a) ingest a ``10^6``-update
dynamic stream incrementally, (b) answer connectivity/spanner/cut
queries mid-stream, (c) survive a kill/restore cycle through its
checkpoint with **bit-identical** final answers, and (d) serve repeated
queries between updates from the epoch cache at >= 10x below the first
finalize.  This bench runs that lifecycle once and gates every claim:

* **ingest throughput** — the full session (connectivity + spanner +
  slim sparsifier pipeline, all ingesting every token) must sustain
  ``INGEST_FLOOR`` updates/s.  The floor is deliberately conservative —
  about a third of what the 1-CPU reference container sustains — so the
  gate catches order-of-magnitude regressions, not scheduler noise.
* **epoch cache** — a repeated ``spanner_distance`` between updates must
  be >= ``CACHE_SPEEDUP_FLOOR`` cheaper than the cold snapshot.
* **checkpoint round trip** — the session is checkpointed at the
  midpoint, "killed", restored from disk, fed the remaining half; its
  final components/forest/spanner/sparsifier answers and its raw
  serialized sketch states must equal the uninterrupted session's.

No parallel-speedup gate here: the host may expose a single CPU (the
reference container does); see ``bench_distributed.py`` for the
multi-core story.  ``docs/performance.md`` quotes the tables.
"""

from __future__ import annotations

import time

import pytest

from repro.core import SparsifierParams
from repro.service import GraphSession, WorkloadDriver, load_session, scenario_ops
from repro.stream import mixed_workload_stream

#: The headline stream length (the issue's 10^6).
STREAM_UPDATES = 1_000_000

#: Vertex count: small enough that the slim sparsifier pipeline ingests
#: a million updates in bench time, large enough to exercise routing.
NUM_VERTICES = 16

#: Ingest chunk fed to the batched sketch engine.
BATCH_SIZE = 65_536

#: Conservative floor (updates/s) for the full three-algorithm session.
#: History: 4,000 when ingest was per-sketch batched (~17.7k measured on
#: the 1-CPU reference container); the columnar engine lifted the same
#: configuration past 400k, so the floor rises to 40,000 — still ~10x
#: headroom against scheduler noise, and > 2x the pre-columnar measured
#: rate, so a silent fallback to the old engine fails the gate.
INGEST_FLOOR = 40_000.0

#: Repeated queries between updates must beat the cold finalize by this.
CACHE_SPEEDUP_FLOOR = 10.0

#: Slim sparsifier constants (10 sub-spanner slots; E2 documents the
#: fidelity/scale trade of slimming these).
SLIM = SparsifierParams(estimate_levels=2, sampling_levels=2, sampling_rounds_factor=0.01)

SEED = "bench-service"


def _final_answers(session: GraphSession) -> dict:
    answers = session.snapshot_answers()
    # The bench additionally compares raw serialized sketch state — a
    # strictly stronger probe than the decoded answers.
    answers["states"] = [list(a.shard_state_ints(0)) for a in session._algorithms()]
    return answers


def _make_session() -> GraphSession:
    return GraphSession(
        NUM_VERTICES, SEED, k=2, sparsifier_k=1, sparsifier_params=SLIM
    )


@pytest.fixture(scope="module")
def lifecycle(tmp_path_factory):
    """One full service lifecycle; every gate reads its measurements."""
    tokens = list(mixed_workload_stream(NUM_VERTICES, STREAM_UPDATES, SEED))
    checkpoint_path = tmp_path_factory.mktemp("service") / "midpoint.bin"
    midpoint_chunk = (len(tokens) // BATCH_SIZE) // 2
    session = _make_session()

    ingest_seconds = 0.0
    midstream: dict = {}
    for index, start in enumerate(range(0, len(tokens), BATCH_SIZE)):
        chunk = tokens[start : start + BATCH_SIZE]
        begin = time.perf_counter()
        session.ingest_batch(chunk)
        ingest_seconds += time.perf_counter() - begin

        if index == midpoint_chunk:
            # Mid-stream: checkpoint, then answer one query of each kind,
            # timing the cold snapshot vs. its epoch-cached repeat.
            begin = time.perf_counter()
            session.checkpoint(checkpoint_path)
            midstream["checkpoint_seconds"] = time.perf_counter() - begin
            midstream["checkpoint_bytes"] = checkpoint_path.stat().st_size
            midstream["checkpoint_updates"] = session.updates_ingested

            begin = time.perf_counter()
            midstream["connected"] = session.connected(0, 1)
            midstream["connected_seconds"] = time.perf_counter() - begin

            begin = time.perf_counter()
            midstream["distance"] = session.spanner_distance(0, 1)
            cold = time.perf_counter() - begin
            begin = time.perf_counter()
            repeat_distance = session.spanner_distance(0, 1)
            warm = time.perf_counter() - begin
            assert repeat_distance == midstream["distance"]
            midstream["cold_seconds"] = cold
            midstream["warm_seconds"] = warm

            begin = time.perf_counter()
            midstream["cut"] = session.cut_estimate(range(NUM_VERTICES // 2))
            midstream["cut_seconds"] = time.perf_counter() - begin

    reference = _final_answers(session)

    # The kill: the session object is gone; only the checkpoint survives.
    del session
    restored = load_session(checkpoint_path)
    restore_begin = time.perf_counter()
    for start in range(restored.updates_ingested, len(tokens), BATCH_SIZE):
        restored.ingest_batch(tokens[start : start + BATCH_SIZE])
    restore_seconds = time.perf_counter() - restore_begin
    recovered = _final_answers(restored)

    return {
        "tokens": len(tokens),
        "ingest_seconds": ingest_seconds,
        "midstream": midstream,
        "reference": reference,
        "recovered": recovered,
        "restore_seconds": restore_seconds,
    }


def test_ingest_throughput_floor(lifecycle, results):
    """10^6 updates through all three live algorithms, incrementally."""
    rate = lifecycle["tokens"] / lifecycle["ingest_seconds"]
    midstream = lifecycle["midstream"]
    table = "\n".join([
        f"live session ingest, {lifecycle['tokens']:,} updates "
        f"(n={NUM_VERTICES}, batch {BATCH_SIZE:,}, "
        "connectivity + 2-pass spanner pass 1 + sparsifier pass 1):",
        f"  ingest wall-clock : {lifecycle['ingest_seconds']:>8.1f} s",
        f"  throughput        : {rate:>8,.0f} updates/s (gate {INGEST_FLOOR:,.0f})",
        f"  checkpoint        : {midstream['checkpoint_bytes']:,} B in "
        f"{midstream['checkpoint_seconds'] * 1e3:.0f} ms at update "
        f"{midstream['checkpoint_updates']:,}",
    ])
    results("bench_service_ingest", table)
    assert rate >= INGEST_FLOOR, (
        f"session ingest {rate:,.0f} updates/s under the {INGEST_FLOOR:,.0f} floor"
    )


def test_mid_stream_queries_answered(lifecycle, results):
    """Connectivity, spanner and cut queries all answered mid-stream."""
    midstream = lifecycle["midstream"]
    assert isinstance(midstream["connected"], bool)
    assert midstream["distance"] >= 1.0  # 0 and 1 are distinct vertices
    assert midstream["cut"] >= 0.0
    table = "\n".join([
        f"mid-stream snapshot queries at update {midstream['checkpoint_updates']:,}:",
        f"  connected(0,1)       = {midstream['connected']} "
        f"({midstream['connected_seconds'] * 1e3:8.1f} ms)",
        f"  spanner_distance(0,1)= {midstream['distance']} "
        f"({midstream['cold_seconds'] * 1e3:8.1f} ms cold)",
        f"  cut_estimate(V/2)    = {midstream['cut']:.1f} "
        f"({midstream['cut_seconds'] * 1e3:8.1f} ms)",
    ])
    results("bench_service_queries", table)


def test_epoch_cache_speedup(lifecycle, results):
    """Repeated queries between updates are >= 10x below first finalize."""
    midstream = lifecycle["midstream"]
    speedup = midstream["cold_seconds"] / max(midstream["warm_seconds"], 1e-9)
    table = "\n".join([
        "epoch-cached repeat of spanner_distance(0, 1):",
        f"  cold (clone + pass-2 replay + decode): "
        f"{midstream['cold_seconds'] * 1e3:>10.2f} ms",
        f"  warm (epoch cache hit)               : "
        f"{midstream['warm_seconds'] * 1e3:>10.4f} ms",
        f"  speedup                              : {speedup:>10,.0f}x "
        f"(gate {CACHE_SPEEDUP_FLOOR:.0f}x)",
    ])
    results("bench_service_cache", table)
    assert speedup >= CACHE_SPEEDUP_FLOOR, (
        f"epoch cache speedup {speedup:.1f}x under {CACHE_SPEEDUP_FLOOR}x"
    )


def test_checkpoint_restore_equivalence(lifecycle, results):
    """Kill/restore at the midpoint finishes bit-identical to no crash."""
    reference = lifecycle["reference"]
    recovered = lifecycle["recovered"]
    for key in reference:
        assert recovered[key] == reference[key], (
            f"restored session diverged from the uninterrupted run in {key!r}"
        )
    table = "\n".join([
        "kill/restore at the midpoint vs. uninterrupted session:",
        f"  tail replay after restore : {lifecycle['restore_seconds']:>8.1f} s",
        f"  components/forest/spanner/sparsifier answers: identical",
        f"  raw serialized sketch states               : identical",
    ])
    results("bench_service_checkpoint", table)


def test_scenario_latency_table(results, tmp_path):
    """Short mixed scenario through the driver — the latency/cache table
    docs/performance.md quotes (reporting, plus basic sanity gates)."""
    session = _make_session()
    ops = scenario_ops("query-heavy", NUM_VERTICES, 30_000, SEED)
    report = WorkloadDriver(
        session, checkpoint_every=10_000, checkpoint_dir=tmp_path
    ).run(ops, scenario="query-heavy")
    results("bench_service_scenario", report.table())
    assert report.queries > 0
    assert report.cache_hits > 0
    assert report.checkpoints >= 2
    truth = sorted(map(sorted, session.live_graph().connected_components()))
    assert sorted(map(sorted, session.components())) == truth
