"""E6 — substrate honesty: primitive throughput and reliability.

The paper's guarantees are "with high probability" statements about the
sketching primitives; this experiment calibrates the constants the
parameter defaults promise: decode success at budget, L0-sampler success, AGM forest
completeness, and the spanner's pass-2 coverage diagnostics — plus raw
update/decode throughput via pytest-benchmark.
"""

from __future__ import annotations

from repro.agm import AgmSketch
from repro.core import TwoPassSpannerBuilder
from repro.graph import connected_gnp
from repro.sketch import DistinctElementsSketch, L0Sampler, SparseRecoverySketch
from repro.stream import stream_from_graph


def test_e6_reliability_table(results, benchmark):
    rows = ["primitive reliability at calibrated constants:"]

    trials = 200
    failures = 0
    for trial in range(trials):
        sketch = SparseRecoverySketch(10_000, 8, seed=trial)
        for i in range(8):
            sketch.update((trial * 131 + i * 977) % 10_000, 1)
        if sketch.decode() is None:
            failures += 1
    rows.append(f"  sparse recovery at exact budget : {trials - failures}/{trials} decodes")
    assert failures <= 4

    sampler_failures = 0
    for trial in range(trials):
        sampler = L0Sampler(10_000, seed=1000 + trial)
        for i in range(64):
            sampler.update((trial * 97 + i * 389) % 10_000, 1)
        if sampler.sample() is None:
            sampler_failures += 1
    rows.append(f"  L0 sampling on 64-sparse vectors: {trials - sampler_failures}/{trials} samples")
    assert sampler_failures <= 4

    agm_trials = 30
    agm_failures = 0
    for trial in range(agm_trials):
        graph = connected_gnp(24, 0.12, seed=trial)
        sketch = AgmSketch(24, seed=2000 + trial)
        for u, v, _ in graph.edges():
            sketch.update(u, v, 1)
        if len(sketch.spanning_forest()) != 23:
            agm_failures += 1
    rows.append(f"  AGM spanning forest completeness: {agm_trials - agm_failures}/{agm_trials} connected")
    assert agm_failures <= 1

    distinct_ok = 0
    for trial in range(50):
        sketch = DistinctElementsSketch(10_000, seed=3000 + trial)
        for i in range(100):
            sketch.update(i * 7, 1)
        if 50 <= sketch.estimate() <= 200:
            distinct_ok += 1
    rows.append(f"  L0 estimate within factor 2     : {distinct_ok}/50")
    assert distinct_ok >= 46

    graph = connected_gnp(48, 0.2, seed=9)
    stream = stream_from_graph(graph, seed=9, churn=0.3)
    builder = TwoPassSpannerBuilder(48, 2, seed=10)
    output = builder.run(stream)
    diag = output.diagnostics
    rows.append(
        f"  spanner pass-2 coverage         : "
        f"{diag['pass2_uncovered_keys']} uncovered, "
        f"{diag['pass2_repaired_keys']} repaired, "
        f"{diag['pass2_table_overflows']} table overflows"
    )
    assert diag["pass2_uncovered_keys"] <= 2

    results("E6_substrate_reliability", "\n".join(rows))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_e6_sparse_recovery_update_throughput(benchmark):
    sketch = SparseRecoverySketch(100_000, 16, seed=1)

    def do_updates():
        for i in range(200):
            sketch.update(i * 37 % 100_000, 1)
        for i in range(200):
            sketch.update(i * 37 % 100_000, -1)

    benchmark(do_updates)


def test_e6_sparse_recovery_decode_throughput(benchmark):
    sketch = SparseRecoverySketch(100_000, 16, seed=2)
    for i in range(16):
        sketch.update(i * 613, 2)
    benchmark(sketch.decode)


def test_e6_l0_sampler_throughput(benchmark):
    sampler = L0Sampler(100_000, seed=3)

    def updates_and_sample():
        for i in range(100):
            sampler.update(i * 101 % 100_000, 1)
        return sampler.sample()

    benchmark(updates_and_sample)


def test_e6_agm_forest_throughput(benchmark):
    graph = connected_gnp(32, 0.15, seed=4)
    sketch = AgmSketch(32, seed=5)
    for u, v, _ in graph.edges():
        sketch.update(u, v, 1)
    benchmark(sketch.spanning_forest)
