"""E2 — Corollary 2: two-pass spectral sparsifiers.

Rows reproduce the claim's shape:

* the pipeline's spectral error shrinks as the paper's sampling-round
  count Z grows (Z is the Θ(λ² log n / ε³) knob);
* the offline gold standard (Spielman–Srivastava, full random access)
  achieves tighter ε — the paper's point is getting *close* to it in two
  dynamic-stream passes;
* the AGM-style single-pass baseline preserves cuts only coarsely;
* the full streaming mode works end-to-end at smoke scale with exactly
  two passes.
"""

from __future__ import annotations

from repro.baselines import AgmCutSparsifier, spielman_srivastava_sparsifier
from repro.core import SparsifierParams, SpectralSparsifier, StreamingSparsifier
from repro.graph import connected_gnp, max_cut_discrepancy, spectral_approximation
from repro.stream import stream_from_graph
from repro.stream.pipeline import run_passes

N = 36
P = 0.3


def test_e2_table(results, benchmark):
    graph = connected_gnp(N, P, seed=1)
    rows = [
        f"input: G({N}, {P}) with {graph.num_edges()} edges",
        f"{'method':<38} {'passes':>6} {'model':>8} {'edges':>6} "
        f"{'eps':>6} {'cut-disc':>8}",
    ]

    epsilons = []
    for factor in (0.05, 0.15, 0.3):
        params = SparsifierParams(sampling_rounds_factor=factor)
        pipeline = SpectralSparsifier(N, seed=2, k=2, params=params)
        sparsifier = pipeline.sparsify_graph(graph)
        bounds = spectral_approximation(graph, sparsifier)
        cut = max_cut_discrepancy(graph, sparsifier, trials=80, seed=3)
        epsilons.append(bounds.epsilon())
        rows.append(
            f"{'this paper (Z=' + str(pipeline.core.rounds) + ', oracle=offline)':<38} "
            f"{2:>6} {'stream':>8} {sparsifier.num_edges():>6} "
            f"{bounds.epsilon():>6.2f} {cut:>8.2f}"
        )

    ss = spielman_srivastava_sparsifier(graph, eps=0.5, seed=4)
    ss_bounds = spectral_approximation(graph, ss)
    ss_cut = max_cut_discrepancy(graph, ss, trials=80, seed=5)
    rows.append(
        f"{'Spielman-Srivastava [SS08]':<38} {'-':>6} {'offline':>8} "
        f"{ss.num_edges():>6} {ss_bounds.epsilon():>6.2f} {ss_cut:>8.2f}"
    )

    stream = stream_from_graph(graph, seed=6, churn=0.3)
    agm = AgmCutSparsifier(N, seed=7, certificate_size=5)
    agm_out = run_passes(stream, agm)
    agm_cut = max_cut_discrepancy(graph, agm_out, trials=80, seed=8)
    rows.append(
        f"{'AGM-style cut baseline [AGM12b]':<38} {1:>6} {'stream':>8} "
        f"{agm_out.num_edges():>6} {'-':>6} {agm_cut:>8.2f}"
    )

    # Full streaming smoke point (every oracle sketch-based).
    small_graph = connected_gnp(20, 0.35, seed=9)
    small_stream = stream_from_graph(small_graph, seed=10, churn=0.3)
    streaming = StreamingSparsifier(
        20, seed=11, k=2, params=SparsifierParams(sampling_rounds_factor=0.03)
    )
    streamed = run_passes(small_stream, streaming)
    streamed_bounds = spectral_approximation(small_graph, streamed)
    rows.append(
        f"{'this paper (full streaming, n=20)':<38} "
        f"{streaming.passes_required:>6} {'stream':>8} {streamed.num_edges():>6} "
        f"{streamed_bounds.epsilon():>6.2f} "
        f"{max_cut_discrepancy(small_graph, streamed, trials=40, seed=12):>8.2f}"
    )

    # Shape assertions from the paper's claims.
    assert epsilons[-1] < epsilons[0] + 0.05, "quality must improve with Z"
    assert ss_bounds.epsilon() <= epsilons[-1] + 0.15, "offline SS08 is the quality bar"
    assert streaming.passes_required == 2

    results("E2_spectral_sparsifier", "\n".join(rows))

    params = SparsifierParams(sampling_rounds_factor=0.05)
    benchmark.pedantic(
        lambda: SpectralSparsifier(N, seed=13, k=2, params=params).sparsify_graph(graph),
        rounds=1,
        iterations=1,
    )
