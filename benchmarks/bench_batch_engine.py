"""Batch engine — scalar vs. vectorized sketch update throughput.

The batched sketch engine (``update_batch`` across the sketch layer,
``process_batch`` across the algorithm layer) exists to strip the
per-update Python interpreter cost off the hot path of every
experiment.  This bench measures exactly that claim on a ``10^5``-update
dynamic (insert/delete) stream over the edge-pair domain:

* per-primitive updates/sec, scalar loop vs. one ``update_batch`` call
  per chunk, with the resulting sketch states asserted bit-identical;
* a perf smoke gate: the engine-level speedup (total scalar time over
  total batched time across the primitives) must be >= 5x, with a
  per-primitive floor of 3x.

``docs/performance.md`` quotes this table and explains when the batched
path wins (long streams, many updates per sketch) and when it cannot
(tiny sub-batches fall back to the scalar loop by design).
"""

from __future__ import annotations

import time

from repro.sketch import (
    CountSketch,
    DistinctElementsSketch,
    L0Sampler,
    OneSparseDetector,
    SparseRecoverySketch,
)
from repro.util.rng import rng_from_seed

#: Stream length for the headline measurement (the issue's 10^5).
STREAM_UPDATES = 100_000

#: Chunk length fed to each ``update_batch`` call.
BATCH_SIZE = 8_192

#: Engine-level speedup gate (scalar total time / batched total time).
ENGINE_SPEEDUP_FLOOR = 5.0

#: Per-primitive floor; L0 sampling pays an extra routing pass, so its
#: margin over scalar is structurally the smallest.
PRIMITIVE_SPEEDUP_FLOOR = 3.0


def _dynamic_stream(domain: int, length: int, seed: int) -> tuple[list[int], list[int]]:
    """A turnstile update sequence: inserts with interleaved deletions."""
    rng = rng_from_seed(seed, "bench-batch-engine")
    indices: list[int] = []
    deltas: list[int] = []
    live: list[int] = []
    for _ in range(length):
        if live and rng.random() < 0.35:
            position = rng.randrange(len(live))
            live[position], live[-1] = live[-1], live[position]
            indices.append(live.pop())
            deltas.append(-1)
        else:
            index = rng.randrange(domain)
            live.append(index)
            indices.append(index)
            deltas.append(+1)
    return indices, deltas


def _measure(factory, indices, deltas) -> tuple[float, float]:
    """(scalar seconds, batched seconds), states asserted bit-identical."""
    scalar = factory()
    start = time.perf_counter()
    for index, delta in zip(indices, deltas):
        scalar.update(index, delta)
    scalar_seconds = time.perf_counter() - start

    batched = factory()
    start = time.perf_counter()
    for chunk in range(0, len(indices), BATCH_SIZE):
        batched.update_batch(
            indices[chunk : chunk + BATCH_SIZE], deltas[chunk : chunk + BATCH_SIZE]
        )
    batched_seconds = time.perf_counter() - start

    assert scalar.state_ints() == batched.state_ints(), (
        "batched sketch state diverged from the scalar state"
    )
    return scalar_seconds, batched_seconds


def test_batch_engine_throughput(results):
    domain = 100_000
    indices, deltas = _dynamic_stream(domain, STREAM_UPDATES, seed=17)

    primitives = [
        ("CountSketch(B=8)", lambda: CountSketch(domain, 8, seed="bench")),
        ("SparseRecovery(B=8)", lambda: SparseRecoverySketch(domain, 8, seed="bench")),
        ("L0Sampler", lambda: L0Sampler(domain, seed="bench")),
        ("OneSparseDetector", lambda: OneSparseDetector(domain, seed="bench")),
        ("DistinctElements", lambda: DistinctElementsSketch(domain, seed="bench")),
    ]

    rows = [
        f"batch engine on a {STREAM_UPDATES:,}-update dynamic stream "
        f"(batch size {BATCH_SIZE:,}, states bit-identical):",
        f"  {'primitive':<22}{'scalar up/s':>14}{'batched up/s':>14}{'speedup':>9}",
    ]
    scalar_total = 0.0
    batched_total = 0.0
    speedups: dict[str, float] = {}
    for name, factory in primitives:
        scalar_seconds, batched_seconds = _measure(factory, indices, deltas)
        scalar_total += scalar_seconds
        batched_total += batched_seconds
        speedup = scalar_seconds / batched_seconds
        speedups[name] = speedup
        rows.append(
            f"  {name:<22}"
            f"{STREAM_UPDATES / scalar_seconds:>14,.0f}"
            f"{STREAM_UPDATES / batched_seconds:>14,.0f}"
            f"{speedup:>8.1f}x"
        )

    engine_speedup = scalar_total / batched_total
    rows.append(f"  {'engine total':<22}{'':>14}{'':>14}{engine_speedup:>8.1f}x")
    results("bench_batch_engine", "\n".join(rows))

    assert engine_speedup >= ENGINE_SPEEDUP_FLOOR, (
        f"batch engine speedup {engine_speedup:.2f}x below the "
        f"{ENGINE_SPEEDUP_FLOOR}x gate"
    )
    for name, speedup in speedups.items():
        assert speedup >= PRIMITIVE_SPEEDUP_FLOOR, (
            f"{name} batched speedup {speedup:.2f}x below the "
            f"{PRIMITIVE_SPEEDUP_FLOOR}x floor"
        )
