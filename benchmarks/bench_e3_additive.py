"""E3 — Theorem 3: one-pass O(n/d)-additive spanners in ~O(nd) space.

Rows: for each (n, d) the worst observed additive error against the
O(n/d) budget, the spanner size, and the measured words of the
neighborhood sketches — the component whose budget is the theory's
``~O(nd)`` term (the AGM/degree components are d-independent polylogs).

Shape to hold: growing d buys smaller distortion at the price of
linearly more neighborhood-sketch space; small d compresses dense
inputs while staying within the +O(n/d) budget.
"""

from __future__ import annotations

from repro.core import AdditiveSpannerBuilder
from repro.graph import connected_gnp, evaluate_additive_error
from repro.stream import stream_from_graph

CONFIGS = [
    (64, 1),
    (64, 2),
    (64, 4),
    (64, 8),
    (96, 2),
    (96, 4),
]


def run_once(n: int, d: int, seed: int = 17):
    graph = connected_gnp(n, 0.35, seed=seed)
    stream = stream_from_graph(graph, seed=seed, churn=0.3)
    builder = AdditiveSpannerBuilder(n, d, seed=seed + 1)
    spanner = builder.run(stream)
    sample = None if n <= 64 else 600
    error, _ = evaluate_additive_error(graph, spanner, sample_pairs=sample, seed=seed)
    return graph, builder, spanner, error


def test_e3_table(results, benchmark):
    rows = [
        f"{'n':>5} {'d':>2} {'m':>6} {'|H|':>6} {'add err':>8} {'budget 6n/d':>11} "
        f"{'nbhd words':>10} {'total words':>11} {'passes':>6}"
    ]
    nbhd_by_d = {}
    compressed = []
    for n, d in CONFIGS:
        graph, builder, spanner, error = run_once(n, d)
        report = builder.space_report()
        nbhd_words = report.components.get("neighborhood sketches", 0)
        rows.append(
            f"{n:>5} {d:>2} {graph.num_edges():>6} {spanner.num_edges():>6} "
            f"{error:>8.0f} {6 * n / d:>11.0f} {nbhd_words:>10} "
            f"{report.total_words():>11} {builder.passes_required:>6}"
        )
        assert error <= 6 * n / d, f"distortion budget violated at n={n}, d={d}"
        assert builder.passes_required == 1
        if n == 64:
            nbhd_by_d[d] = nbhd_words
            compressed.append(spanner.num_edges() < graph.num_edges())

    rows.append(
        f"\nneighborhood-sketch space at n=64 (the ~O(nd) axis): "
        + ", ".join(f"d={d}: {w}" for d, w in sorted(nbhd_by_d.items()))
    )
    # The ~O(nd) axis: the d-dependent component must scale ~linearly.
    assert nbhd_by_d[8] > 3 * nbhd_by_d[1]
    # Small d actually compresses a dense input.
    assert compressed[0] and compressed[1]

    results("E3_additive_spanner", "\n".join(rows))
    benchmark.pedantic(lambda: run_once(64, 2), rounds=1, iterations=1)
