"""Kernel-backend gates: limb speedup, cross-backend identity, ladder scale.

The pluggable Mersenne-field backends (:mod:`repro.sketch.kernels`)
claim the uint128-limb fast path buys real end-to-end throughput while
every backend stays bit-identical — the whole point of a dispatch seam
is that correctness never depends on which implementation is active.
This bench pins both claims, plus the adaptive sizing ladder's
grow-without-re-ingest contract at million-vertex scale:

* **primitive rates** — per-backend element throughput for the three
  hottest kernels (``mulmod61``, ``polyhash61_rows``,
  ``scatter_sum_mod61``), reported for the regression baseline.  The
  native backend is measured only when a C compiler produced a real
  table (its keys are deliberately absent from the committed baseline
  so compiler-less machines still pass the gate).
* **end-to-end limb floor** — AGM connectivity ingest under the limb
  backend must run >= ``LIMB_SPEEDUP_FLOOR`` times the *committed*
  ``agm_connectivity_columnar`` floor from ``BENCH_columnar.json``:
  the fast path has to show up at algorithm level, not just in
  microbenchmarks.
* **cross-backend identity** — every available backend lands in the
  same ``shard_state_ints`` / ``state_digest`` for dense and lazy
  connectivity and the weighted sparsifier, and a session checkpointed
  under ``limb`` then killed and restored under ``reference`` answers
  identically after further ingest.
* **ladder scale** — a connectivity session started at a 2^10 rung and
  grown past 10^6 touched vertices digests bit-identically to a
  session provisioned for the final rung up front (state equality is
  strictly stronger than answer equality: every query decodes from
  that state).  The moderate-scale four-query-family identity lives in
  ``tests/service/test_ladder.py``; this is the scale acceptance.

Every measured rate lands in ``benchmarks/results/BENCH_kernels.json``;
``tools/perf_regress.py`` (run by ``make bench-kernels``) compares that
file against the committed conservative baseline and fails the build on
a > 20% regression.  ``docs/performance.md`` quotes the tables.
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np
import pytest

from repro import obs
from repro.agm.connectivity import ConnectivityChecker
from repro.core.parameters import SparsifierParams
from repro.core.sparsify import StreamingWeightedSparsifier
from repro.graph import VertexSpace
from repro.service import GraphSession, SketchLadder, rounds_for_capacity
from repro.sketch import kernels
from repro.sketch.hashing import MERSENNE_61
from repro.stream.generators import mixed_workload_stream
from repro.stream.updates import EdgeUpdate

#: The end-to-end acceptance stream length: 10^5 seeded dynamic updates.
STREAM_UPDATES = 100_000

#: Limb end-to-end gate, as a multiple of the committed
#: ``agm_connectivity_columnar`` floor in ``BENCH_columnar.json``.
LIMB_SPEEDUP_FLOOR = 1.5

#: Chunk size for all batched runs (the bench_columnar configuration).
BATCH_SIZE = 8_192

#: Element count for the primitive microbenchmarks.
PRIMITIVE_ELEMENTS = 1_000_000

#: Stream length for the cross-backend identity probes.
IDENTITY_UPDATES = 20_000

#: The ladder scale acceptance: a perfect matching of this many edges
#: touches twice as many vertices (> 10^6), grown from a 2^10 rung.
LADDER_EDGES = 550_000
LADDER_START = 1 << 10
LADDER_UNIVERSE = 1 << 21

#: Slim sparsifier constants (the bench_service configuration).
SLIM = SparsifierParams(estimate_levels=2, sampling_levels=2, sampling_rounds_factor=0.01)

RESULTS_JSON = pathlib.Path(__file__).parent / "results" / "BENCH_kernels.json"
COLUMNAR_BASELINE = (
    pathlib.Path(__file__).parent / "baselines" / "BENCH_columnar.json"
)

_RATES: dict[str, float] = {}


@pytest.fixture(autouse=True)
def _restore_backend():
    """Every test selects backends freely; none leaks its choice."""
    before = kernels.active_backend()
    yield
    kernels.select_backend(before)


def _measured_backends() -> list[str]:
    """Backends worth timing: reference and limb always; native only
    when a compiler actually produced a table (selection would
    otherwise silently measure the limb fallback twice)."""
    names = ["reference", "limb"]
    if kernels.select_backend("native") == "native":
        names.append("native")
    return names


def _element_rate(func, *arrays) -> float:
    """Elements per second for ``func`` over ``arrays`` (>= 0.25 s)."""
    func(*arrays)  # warm up (native load, numpy allocator)
    reps = 0
    begin = time.perf_counter()
    while True:
        func(*arrays)
        reps += 1
        elapsed = time.perf_counter() - begin
        if elapsed >= 0.25 and reps >= 3:
            return reps * PRIMITIVE_ELEMENTS / elapsed


def _ingest(algorithm, stream) -> float:
    """Batched single-pass ingest; returns updates per second."""
    begin = time.perf_counter()
    algorithm.begin_pass(0)
    for chunk in stream.iter_batches(BATCH_SIZE):
        algorithm.process_batch(chunk, 0)
    algorithm.end_pass(0)
    return len(stream) / (time.perf_counter() - begin)


# -- primitive rates ---------------------------------------------------


def test_primitive_rates():
    rng = np.random.default_rng(7)
    a = rng.integers(0, MERSENNE_61, PRIMITIVE_ELEMENTS, dtype=np.uint64)
    b = rng.integers(0, MERSENNE_61, PRIMITIVE_ELEMENTS, dtype=np.uint64)
    coeffs = rng.integers(0, MERSENNE_61, (512, 4), dtype=np.uint64)
    row_ids = rng.integers(0, 512, PRIMITIVE_ELEMENTS, dtype=np.int64)
    positions = rng.integers(0, 4096, PRIMITIVE_ELEMENTS, dtype=np.int64)
    terms = rng.integers(0, MERSENNE_61, PRIMITIVE_ELEMENTS, dtype=np.uint64)
    for backend in _measured_backends():
        assert kernels.select_backend(backend) == backend
        _RATES[f"prim_mulmod61_{backend}"] = round(
            _element_rate(kernels.mulmod61, a, b), 1
        )
        _RATES[f"prim_polyhash61_rows_{backend}"] = round(
            _element_rate(kernels.polyhash61_rows, coeffs, row_ids, a), 1
        )
        _RATES[f"prim_scatter_sum_mod61_{backend}"] = round(
            _element_rate(kernels.scatter_sum_mod61, 4096, positions, terms), 1
        )


# -- end-to-end limb floor ---------------------------------------------


def _agm_rate(backend: str) -> float:
    assert kernels.select_backend(backend) == backend
    stream = mixed_workload_stream(64, STREAM_UPDATES, "kernel-agm")
    return _ingest(ConnectivityChecker(64, "kernel-agm"), stream)


def test_limb_end_to_end_floor():
    """The dispatch seam must pay for itself: limb-backed AGM ingest
    beats the committed columnar floor by ``LIMB_SPEEDUP_FLOOR``x."""
    floor = json.loads(COLUMNAR_BASELINE.read_text())["updates_per_second"][
        "agm_connectivity_columnar"
    ]
    limb_rate = _agm_rate("limb")
    reference_rate = _agm_rate("reference")
    _RATES["agm_connectivity_limb"] = round(limb_rate, 1)
    _RATES["agm_connectivity_reference"] = round(reference_rate, 1)
    assert limb_rate >= LIMB_SPEEDUP_FLOOR * floor, (
        f"limb end-to-end rate {limb_rate:,.0f} up/s is below "
        f"{LIMB_SPEEDUP_FLOOR}x the committed columnar floor {floor:,.0f}"
    )


# -- cross-backend identity --------------------------------------------


def test_backends_bit_identical_dense_and_lazy():
    """Dense and lazy connectivity state is invariant to the backend."""
    states: dict[str, tuple] = {}
    for backend in _measured_backends():
        assert kernels.select_backend(backend) == backend
        dense = ConnectivityChecker(64, "kernel-ident")
        _ingest(dense, mixed_workload_stream(64, IDENTITY_UPDATES, "kernel-ident"))
        lazy = ConnectivityChecker(VertexSpace.sparse(1 << 14), "kernel-ident")
        _ingest(
            lazy, mixed_workload_stream(1 << 14, IDENTITY_UPDATES, "kernel-ident")
        )
        states[backend] = (dense.shard_state_ints(0), lazy.state_digest())
    reference = states.pop("reference")
    for backend, state in states.items():
        assert state == reference, f"{backend} diverged from reference"


def test_backends_bit_identical_weighted():
    """The weighted sparsifier pipeline is invariant to the backend."""
    states = {}
    for backend in _measured_backends():
        assert kernels.select_backend(backend) == backend
        sparsifier = StreamingWeightedSparsifier(
            16, "kernel-weighted", 1.0, 4.0, k=1, params=SLIM
        )
        stream = mixed_workload_stream(
            16, IDENTITY_UPDATES, "kernel-weighted", weights=(1.0, 4.0)
        )
        begin = time.perf_counter()
        for pass_index in range(sparsifier.passes_required):
            sparsifier.begin_pass(pass_index)
            for chunk in stream.iter_batches(BATCH_SIZE):
                sparsifier.process_batch(chunk, pass_index)
            sparsifier.end_pass(pass_index)
        if backend == "limb":
            _RATES["weighted_sparsifier_limb"] = round(
                len(stream) / (time.perf_counter() - begin), 1
            )
        states[backend] = [
            sparsifier.shard_state_ints(p)
            for p in range(sparsifier.passes_required)
        ]
    reference = states.pop("reference")
    for backend, state in states.items():
        assert state == reference, f"{backend} diverged from reference"


def test_kill_restore_across_backends(tmp_path):
    """A session checkpointed under limb, killed, and restored under
    reference answers identically after further ingest — checkpoint
    bytes and kernel selection are fully orthogonal."""
    stream = list(mixed_workload_stream(64, 4_000, "kernel-restore"))
    half = len(stream) // 2
    assert kernels.select_backend("limb") == "limb"
    session = GraphSession(64, 7, sparsifier_params=SLIM)
    session.ingest_batch(stream[:half])
    path = tmp_path / "kernel-restore.bin"
    session.checkpoint(path)
    session.ingest_batch(stream[half:])
    limb_answers = session.snapshot_answers()

    assert kernels.select_backend("reference") == "reference"
    survivor = GraphSession.restore(path)
    survivor.ingest_batch(stream[half:])
    assert survivor.snapshot_answers() == limb_answers


# -- ladder scale acceptance -------------------------------------------


def test_ladder_grows_past_a_million_touched():
    """Start at a 2^10 rung, ingest a >10^6-vertex matching, and end in
    *exactly* the state of a session sized for the final rung up front.

    State-digest equality is the strongest identity probe available at
    this scale: every query family decodes deterministically from the
    sketch state, so equal digests mean equal answers for all of them
    without paying million-component forest extractions twice.
    """
    assert kernels.select_backend("limb") == "limb"
    updates = [EdgeUpdate(2 * i, 2 * i + 1, +1) for i in range(LADDER_EDGES)]
    deletes = [EdgeUpdate(u.u, u.v, -1) for u in updates[:20_000]]

    ladder = SketchLadder(start_capacity=LADDER_START)
    grown = GraphSession(
        VertexSpace.sparse(LADDER_UNIVERSE), 42,
        enable_spanner=False, enable_sparsifier=False, ladder=ladder,
    )
    tracer = obs.Tracer()
    previous = obs.set_tracer(tracer)
    try:
        begin = time.perf_counter()
        for start in range(0, len(updates), BATCH_SIZE):
            grown.ingest_batch(updates[start : start + BATCH_SIZE])
        elapsed = time.perf_counter() - begin
    finally:
        obs.set_tracer(previous)
    grown.ingest_batch(deletes)
    _RATES["ladder_growth_connectivity"] = round(LADDER_EDGES / elapsed, 1)

    touched = grown._connectivity._sketch.num_touched_vertices()
    assert touched >= 1_000_000
    assert ladder.rung >= 1 << 20 and ladder.promotions >= 6
    assert grown.stats().ladder_promotions == ladder.promotions
    assert tracer.counters.get("session.ladder.promote", 0) == ladder.promotions

    upfront = GraphSession(
        VertexSpace.sparse(LADDER_UNIVERSE), 42,
        enable_spanner=False, enable_sparsifier=False,
        agm_rounds=rounds_for_capacity(ladder.rung),
    )
    begin = time.perf_counter()
    for start in range(0, len(updates), BATCH_SIZE):
        upfront.ingest_batch(updates[start : start + BATCH_SIZE])
    _RATES["agm_million_upfront"] = round(
        LADDER_EDGES / (time.perf_counter() - begin), 1
    )
    upfront.ingest_batch(deletes)

    assert (
        grown._connectivity.state_digest() == upfront._connectivity.state_digest()
    )


# -- persist -----------------------------------------------------------


def test_write_rates_json(results):
    """Last: persist every measured rate for tools/perf_regress.py."""
    payload = {
        "stream_updates": STREAM_UPDATES,
        "batch_size": BATCH_SIZE,
        "updates_per_second": dict(sorted(_RATES.items())),
    }
    RESULTS_JSON.parent.mkdir(exist_ok=True)
    RESULTS_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    results(
        "bench_kernels_json",
        f"wrote {len(_RATES)} measured rates to {RESULTS_JSON.name} "
        "(regression-gated by tools/perf_regress.py)",
    )
    assert RESULTS_JSON.exists()
