"""E4 — Theorem 4: the Ω(nd) additive-spanner lower bound, measured.

The INDEX game on the paper's hard distribution: Bob's success rate as a
function of Alice's message (the 1-pass algorithm's state).  The shape
to reproduce: protocols whose state is far below the instance's ~nd-bit
information content cannot clear the 2/3 success bar; protocols that do
clear it carry state on the order of the INDEX length.
"""

from __future__ import annotations

from repro.core import AdditiveParams, AdditiveSpannerBuilder
from repro.graph.graph import Graph
from repro.lowerbound import run_spanner_protocol
from repro.stream.pipeline import StreamingAlgorithm
from repro.util.rng import derive_seed

NUM_BLOCKS = 4
BLOCK_SIZE = 16


class EmptyMessage(StreamingAlgorithm):
    def __init__(self, num_vertices):
        self.num_vertices = num_vertices

    @property
    def passes_required(self):
        return 1

    def process(self, update, pass_index):
        pass

    def finalize(self):
        return Graph(self.num_vertices)

    def space_words(self):
        return 0


class StoreEverything(StreamingAlgorithm):
    def __init__(self, num_vertices):
        self.graph = Graph(num_vertices)
        self.words = 0

    @property
    def passes_required(self):
        return 1

    def process(self, update, pass_index):
        if update.sign > 0:
            self.graph.add_edge(update.u, update.v)
        self.words += 2

    def finalize(self):
        return self.graph

    def space_words(self):
        return self.words


class TruncatedStore(StreamingAlgorithm):
    """Keep only the first ``capacity`` edges — a protocol whose message
    is exactly ``capacity`` edge slots.  Sweeping the capacity across the
    instance's INDEX length makes the bit threshold directly visible."""

    def __init__(self, num_vertices, capacity):
        self.graph = Graph(num_vertices)
        self.capacity = capacity

    @property
    def passes_required(self):
        return 1

    def process(self, update, pass_index):
        if update.sign > 0 and self.graph.num_edges() < self.capacity:
            self.graph.add_edge(update.u, update.v)

    def finalize(self):
        return self.graph

    def space_words(self):
        return 2 * self.capacity


def starved_factory(num_vertices, trial):
    params = AdditiveParams(degree_threshold_factor=0.1, neighborhood_budget_factor=0.3)
    return AdditiveSpannerBuilder(num_vertices, 1, seed=derive_seed("e4", trial), params=params)


def matched_factory(num_vertices, trial):
    return AdditiveSpannerBuilder(num_vertices, 8, seed=derive_seed("e4", trial))


def test_e4_table(results, benchmark):
    r = NUM_BLOCKS * BLOCK_SIZE * (BLOCK_SIZE - 1) // 2
    rows = [
        f"instance: {NUM_BLOCKS} x G({BLOCK_SIZE}, 1/2), "
        f"n={NUM_BLOCKS * BLOCK_SIZE}, INDEX length r={r} bits",
        f"{'protocol':<34} {'msg words':>10} {'msg bytes':>10} {'success':>8} {'>=2/3?':>7}",
    ]
    outcomes = {}
    for name, factory, trials in [
        ("empty message", lambda n, t: EmptyMessage(n), 400),
        ("truncated store, 32 edges", lambda n, t: TruncatedStore(n, 32), 200),
        ("truncated store, 120 edges", lambda n, t: TruncatedStore(n, 120), 200),
        ("truncated store, 480 edges (=r)", lambda n, t: TruncatedStore(n, 480), 200),
        ("starved additive spanner d'=1", starved_factory, 24),
        ("matched additive spanner d'=8", matched_factory, 24),
        ("store everything", lambda n, t: StoreEverything(n), 100),
    ]:
        report = run_spanner_protocol(NUM_BLOCKS, BLOCK_SIZE, factory, trials=trials, seed=5)
        clears = report.success_rate >= 2 / 3
        outcomes[name] = (report.success_rate, report.mean_message_words, clears)
        byte_column = f"{report.mean_message_bytes:.0f}" if report.mean_message_bytes else "-"
        rows.append(
            f"{name:<34} {report.mean_message_words:>10.0f} {byte_column:>10} "
            f"{report.success_rate:>8.2f} {'yes' if clears else 'no':>7}"
        )

    # Shape: zero state -> coin flip; matched/trivial state -> decodes;
    # the truncated-store sweep crosses 2/3 only near r bits of state.
    assert outcomes["empty message"][0] < 2 / 3
    assert outcomes["truncated store, 32 edges"][0] < 2 / 3
    assert outcomes["truncated store, 480 edges (=r)"][0] >= 6 / 7
    assert (
        outcomes["truncated store, 32 edges"][0]
        < outcomes["truncated store, 120 edges"][0]
        < outcomes["truncated store, 480 edges (=r)"][0]
    )
    assert outcomes["matched additive spanner d'=8"][0] >= 6 / 7
    assert outcomes["store everything"][0] == 1.0
    assert (
        outcomes["starved additive spanner d'=1"][0]
        < outcomes["matched additive spanner d'=8"][0]
    )

    rows.append(
        "\nreading: only protocols whose state carries ~r bits decode reliably —"
        "\nthe Ω(nd) tradeoff of Theorem 4."
    )
    results("E4_lower_bound_game", "\n".join(rows))
    benchmark.pedantic(
        lambda: run_spanner_protocol(
            NUM_BLOCKS, BLOCK_SIZE, lambda n, t: EmptyMessage(n), trials=10, seed=6
        ),
        rounds=1,
        iterations=1,
    )
