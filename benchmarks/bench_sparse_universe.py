"""Sparse vertex-universe gates: memory proportional to touched vertices.

The lazy :class:`~repro.graph.vertex_space.VertexSpace` engine claims
that a session over a huge id space (``10^7`` logical vertices) ingests
at columnar speed while holding sketch state proportional to the
vertices that actually appear in the stream — and that it is a pure
storage change, bit-identical to the dense engine on the same touched
subgraph.  This bench pins all three claims on seeded streams:

* **full-session gate** — a four-query (connected / forest /
  spanner-distance / cut) session over a ``10^7``-id universe ingests a
  sparse-touch stream, answers every query kind, matches the exact
  ledger's components, and keeps resident words under ``1/1000`` of the
  dense-universe allocation;
* **memory-proportionality gate** — connectivity sessions at touched
  counts ``T`` and ``2T`` (same universe) must scale resident words by
  ``~2x``, not by the universe, and ingest above a conservative
  throughput floor;
* **dense/lazy identity gate** — on a moderate universe the lazy
  engine's wire state must equal the dense engine's on a long stream.

Measured rates land in ``benchmarks/results/BENCH_sparse.json``;
``tools/perf_regress.py`` (run by ``make bench-sparse``) compares them
against the committed floors in ``benchmarks/baselines/BENCH_sparse.json``
and fails the build on a > 20% regression.  Single-core gates only (the
reference container has 1 CPU).
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro.agm.connectivity import ConnectivityChecker
from repro.core.parameters import SparsifierParams, SpannerParams
from repro.graph.vertex_space import VertexSpace
from repro.service import GraphSession, WorkloadDriver, components_match_ledger
from repro.stream.generators import sparse_session_ops, sparse_touch_stream

#: The headline universe: ten million logical vertex ids.
UNIVERSE = 10_000_000

#: Touched ids for the four-query full-session gate (spanner/sparsifier
#: table layouts scale ~touched^{1.5}, so the full pipeline runs smaller
#: than the connectivity-only proportionality probe).
SESSION_TOUCHED = 384

#: Touched ids for the connectivity-only proportionality probe.
PROPORTIONALITY_TOUCHED = 4_096

#: Conservative ingest floor for the connectivity-only huge-universe
#: session (measured ~8-12k updates/s on the reference container).
INGEST_FLOOR = 2_500

#: Resident state must stay under this fraction of the dense-universe
#: allocation at bench scale.
RESIDENT_FRACTION_CEILING = 1e-3

#: Resident words at 2T touched may be at most this multiple of the
#: words at T touched (perfect proportionality would be ~2.0).
PROPORTIONALITY_CEILING = 2.8

SLIM_SPARSIFIER = SparsifierParams(
    estimate_reps_factor=0.01, estimate_levels=1, sampling_levels=1,
    sampling_rounds_factor=0.001,
)
SLIM_SPANNER = SpannerParams(table_stacks=1, table_capacity_factor=0.75)

RESULTS_JSON = pathlib.Path(__file__).parent / "results" / "BENCH_sparse.json"

_RATES: dict[str, float] = {}


def _connectivity_session(touched: int) -> GraphSession:
    import math

    return GraphSession(
        VertexSpace.sparse(UNIVERSE),
        "bench-sparse-conn",
        enable_spanner=False,
        enable_sparsifier=False,
        agm_rounds=max(4, math.ceil(math.log2(touched))) + 2,
    )


def _ingest_stream(session: GraphSession, touched: int, updates: int, seed) -> float:
    tokens = list(sparse_touch_stream(UNIVERSE, touched, updates, seed))
    begin = time.perf_counter()
    for start in range(0, len(tokens), 8192):
        session.ingest_batch(tokens[start : start + 8192])
    return len(tokens) / (time.perf_counter() - begin)


@pytest.fixture(scope="module")
def proportionality_runs():
    runs = {}
    for label, touched in (("T", PROPORTIONALITY_TOUCHED), ("2T", 2 * PROPORTIONALITY_TOUCHED)):
        session = _connectivity_session(touched)
        rate = _ingest_stream(session, touched, 3 * touched, f"bench-prop-{label}")
        stats = session.stats()
        runs[label] = {
            "touched": stats.touched_vertices,
            "resident_words": stats.space_words,
            "universe_words": stats.universe_space_words,
            "rate": rate,
            "ledger_ok": components_match_ledger(session),
        }
    return runs


def test_full_session_gate(results):
    """10^7-id universe, four query kinds, resident << dense universe."""
    session = GraphSession(
        VertexSpace.sparse(UNIVERSE),
        "bench-sparse-session",
        k=2,
        sparsifier_k=1,
        sparsifier_params=SLIM_SPARSIFIER,
        spanner_params=SLIM_SPANNER,
        agm_rounds=12,
    )
    ops = sparse_session_ops(
        UNIVERSE,
        SESSION_TOUCHED,
        3_000,
        "bench-sparse-session",
        query_every=750,
        query_repeats=2,
    )
    begin = time.perf_counter()
    report = WorkloadDriver(session).run(ops, scenario="sparse-universe")
    elapsed = time.perf_counter() - begin
    stats = session.stats()
    answered = {kind for kind in report.latencies}
    fraction = stats.space_words / stats.universe_space_words
    _RATES["sparse_session_ingest"] = round(report.ingest_rate, 1)
    table = "\n".join([
        f"sparse-universe session: {UNIVERSE:,} ids, "
        f"{stats.touched_vertices} touched, {report.updates:,} updates "
        f"({elapsed:.1f} s total):",
        f"  ingest    : {report.ingest_rate:>10,.0f} updates/s",
        f"  queries   : {sorted(answered)} all answered "
        f"({report.queries} total, {report.cache_hits} cached)",
        f"  resident  : {stats.space_words:,} words vs "
        f"{stats.universe_space_words:,} dense-universe words "
        f"(fraction {fraction:.2e}, ceiling {RESIDENT_FRACTION_CEILING:.0e})",
        f"  verified  : components match the exact ledger",
    ])
    results("bench_sparse_session", table)
    assert answered == {"connected", "forest", "spanner_distance", "cut"}, (
        f"expected all four query kinds answered, got {sorted(answered)}"
    )
    assert report.skipped_queries == 0
    assert stats.touched_vertices <= SESSION_TOUCHED
    assert fraction < RESIDENT_FRACTION_CEILING, (
        f"resident fraction {fraction:.2e} above {RESIDENT_FRACTION_CEILING}"
    )
    assert components_match_ledger(session)


def test_memory_proportionality_gate(proportionality_runs, results):
    """Resident words scale with touched vertices, not the universe."""
    base = proportionality_runs["T"]
    double = proportionality_runs["2T"]
    growth = double["resident_words"] / base["resident_words"]
    _RATES["sparse_connectivity_ingest"] = round(base["rate"], 1)
    _RATES["sparse_connectivity_ingest_2x"] = round(double["rate"], 1)
    table = "\n".join([
        f"memory proportionality over a {UNIVERSE:,}-id universe "
        f"(connectivity-only sessions):",
        f"  touched {base['touched']:>6,}: {base['resident_words']:>14,} resident words, "
        f"{base['rate']:>9,.0f} updates/s",
        f"  touched {double['touched']:>6,}: {double['resident_words']:>14,} resident words, "
        f"{double['rate']:>9,.0f} updates/s",
        f"  growth    : {growth:.2f}x for 2x touched "
        f"(ceiling {PROPORTIONALITY_CEILING}x; universe-driven would be ~1x "
        f"at {base['universe_words']:,} words)",
    ])
    results("bench_sparse_proportionality", table)
    assert base["ledger_ok"] and double["ledger_ok"]
    assert 1.4 <= growth <= PROPORTIONALITY_CEILING, (
        f"resident growth {growth:.2f}x outside the touched-proportional band"
    )
    for run in (base, double):
        assert run["resident_words"] < run["universe_words"] * 1e-2
        assert run["rate"] >= INGEST_FLOOR, (
            f"huge-universe ingest {run['rate']:,.0f} updates/s under the "
            f"{INGEST_FLOOR:,} floor"
        )


def test_dense_lazy_identity_long_stream(results):
    """Moderate universe: lazy wire state equals dense on 3*10^4 tokens."""
    n, updates = 64, 30_000
    tokens = list(sparse_touch_stream(n, n, updates, "bench-sparse-ident"))
    dense = ConnectivityChecker(n, "bench-ident")
    lazy = ConnectivityChecker(VertexSpace.sparse(n), "bench-ident")
    begin = time.perf_counter()
    for start in range(0, updates, 8192):
        dense.process_batch(tokens[start : start + 8192], 0)
    dense_rate = updates / (time.perf_counter() - begin)
    begin = time.perf_counter()
    for start in range(0, updates, 8192):
        lazy.process_batch(tokens[start : start + 8192], 0)
    lazy_rate = updates / (time.perf_counter() - begin)
    _RATES["dense_engine_connectivity"] = round(dense_rate, 1)
    _RATES["lazy_engine_connectivity"] = round(lazy_rate, 1)
    identical = dense.shard_state_ints(0) == lazy.shard_state_ints(0)
    table = "\n".join([
        f"dense vs lazy engine on the same {n}-id universe "
        f"({updates:,} tokens, batch 8,192):",
        f"  dense : {dense_rate:>10,.0f} updates/s",
        f"  lazy  : {lazy_rate:>10,.0f} updates/s",
        f"  wire  : {'bit-identical' if identical else 'DIVERGED'}",
    ])
    results("bench_sparse_identity", table)
    assert identical, "lazy engine wire state diverged from the dense engine"


def test_write_rates_json(proportionality_runs, results):
    """Last: persist every measured rate for tools/perf_regress.py."""
    payload = {
        "universe": UNIVERSE,
        "updates_per_second": dict(sorted(_RATES.items())),
    }
    RESULTS_JSON.parent.mkdir(exist_ok=True)
    RESULTS_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    results(
        "bench_sparse_json",
        f"wrote {len(_RATES)} measured rates to {RESULTS_JSON.name} "
        "(regression-gated by tools/perf_regress.py)",
    )
    assert RESULTS_JSON.exists()
