"""Columnar-engine gates: algorithm-level speedup and long-stream identity.

The columnar sketch stacks (:mod:`repro.sketch.columnar`) claim to move
*algorithm-level* throughput toward the primitive-level ceiling by
sharing hash evaluations across same-seeded sketch rows.  This bench
pins the claim on a seeded 10^5-update dynamic stream per algorithm:

* **speedup gates** — the columnar ``process_batch`` path must run
  >= ``SPEEDUP_FLOOR`` times faster than the scalar one-token loop for
  AGM connectivity, the two-pass spanner, and the streaming sparsifier
  pipeline.  Single-core vectorization only: the gates hold on the 1-CPU
  reference container (no parallelism assumptions anywhere here).
* **bit-identity** — both paths must land in identical
  ``shard_state_ints`` for all three algorithms, weighted and
  unweighted (the scalar runs the speedup measurement needs double as
  the identity references, so the strongest probe is free).
* **primitive rates** — stack-level scatter throughput for the two
  columnar primitives, reported for the regression baseline.

Every measured rate lands in ``benchmarks/results/BENCH_columnar.json``;
``tools/perf_regress.py`` (run by ``make bench-columnar``) compares that
file against the committed conservative baseline and fails the build on
a > 20% regression.  ``docs/performance.md`` quotes the tables.
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np
import pytest

from repro.agm.connectivity import ConnectivityChecker
from repro.core.parameters import SparsifierParams
from repro.core.sparsify import StreamingSparsifier, StreamingWeightedSparsifier
from repro.core.two_pass_spanner import TwoPassSpannerBuilder
from repro.sketch.columnar import L0SamplerStack, SketchStack
from repro.stream.generators import mixed_workload_stream
from repro.util.rng import rng_from_seed

#: The acceptance stream length: 10^5 seeded dynamic updates.
STREAM_UPDATES = 100_000

#: Columnar vs. scalar algorithm-level gate (measured: 10-30x).
SPEEDUP_FLOOR = 3.0

#: Chunk size for the columnar runs.
BATCH_SIZE = 8_192

#: Slim sparsifier constants (the bench_service configuration).
SLIM = SparsifierParams(estimate_levels=2, sampling_levels=2, sampling_rounds_factor=0.01)

RESULTS_JSON = pathlib.Path(__file__).parent / "results" / "BENCH_columnar.json"

_RATES: dict[str, float] = {}


def _timed_passes(algorithm, stream, batch_size):
    begin = time.perf_counter()
    passes = algorithm.passes_required
    for pass_index in range(passes):
        algorithm.begin_pass(pass_index)
        if batch_size is None:
            for update in stream:
                algorithm.process(update, pass_index)
        else:
            for chunk in stream.iter_batches(batch_size):
                algorithm.process_batch(chunk, pass_index)
        algorithm.end_pass(pass_index)
    return time.perf_counter() - begin


def _states(algorithm) -> list[list[int]]:
    return [
        list(algorithm.shard_state_ints(p)) for p in range(algorithm.passes_required)
    ]


def _lifecycle(make_algorithm, stream):
    """Run scalar and columnar engines over ``stream``; return rates and
    the two state serializations (the identity probe rides the timing
    runs for free)."""
    scalar = make_algorithm()
    scalar_seconds = _timed_passes(scalar, stream, None)
    columnar = make_algorithm()
    columnar_seconds = _timed_passes(columnar, stream, BATCH_SIZE)
    return {
        "scalar_rate": len(stream) / scalar_seconds,
        "columnar_rate": len(stream) / columnar_seconds,
        "speedup": scalar_seconds / columnar_seconds,
        "scalar_states": _states(scalar),
        "columnar_states": _states(columnar),
    }


@pytest.fixture(scope="module")
def agm_run():
    stream = mixed_workload_stream(64, STREAM_UPDATES, "columnar-agm")
    return _lifecycle(lambda: ConnectivityChecker(64, "columnar-agm"), stream)


@pytest.fixture(scope="module")
def spanner_run():
    stream = mixed_workload_stream(64, STREAM_UPDATES, "columnar-spanner")
    return _lifecycle(lambda: TwoPassSpannerBuilder(64, 2, "columnar-spanner"), stream)


@pytest.fixture(scope="module")
def sparsifier_run():
    stream = mixed_workload_stream(32, STREAM_UPDATES, "columnar-sparsify")
    return _lifecycle(
        lambda: StreamingSparsifier(32, "columnar-sparsify", k=1, params=SLIM), stream
    )


@pytest.fixture(scope="module")
def weighted_run():
    stream = mixed_workload_stream(
        16, STREAM_UPDATES, "columnar-weighted", weights=(1.0, 4.0)
    )
    return _lifecycle(
        lambda: StreamingWeightedSparsifier(
            16, "columnar-weighted", 1.0, 4.0, k=1, params=SLIM
        ),
        stream,
    )


def _gate(name, run, results):
    _RATES[f"{name}_scalar"] = round(run["scalar_rate"], 1)
    _RATES[f"{name}_columnar"] = round(run["columnar_rate"], 1)
    table = "\n".join([
        f"{name}: columnar vs scalar on a {STREAM_UPDATES:,}-update stream "
        f"(batch {BATCH_SIZE:,}):",
        f"  scalar   : {run['scalar_rate']:>10,.0f} updates/s",
        f"  columnar : {run['columnar_rate']:>10,.0f} updates/s",
        f"  speedup  : {run['speedup']:>10.1f}x (gate {SPEEDUP_FLOOR:.0f}x)",
        f"  states   : bit-identical across both engines",
    ])
    results(f"bench_columnar_{name}", table)
    assert run["scalar_states"] == run["columnar_states"], (
        f"{name}: columnar state diverged from the scalar path"
    )
    assert run["speedup"] >= SPEEDUP_FLOOR, (
        f"{name}: columnar speedup {run['speedup']:.2f}x under {SPEEDUP_FLOOR}x"
    )


def test_agm_connectivity_gate(agm_run, results):
    """AGM connectivity: >= 3x columnar speedup, bit-identical state."""
    _gate("agm_connectivity", agm_run, results)


def test_two_pass_spanner_gate(spanner_run, results):
    """Two-pass spanner (both passes): >= 3x, bit-identical state."""
    _gate("two_pass_spanner", spanner_run, results)


def test_sparsifier_gate(sparsifier_run, results):
    """Streaming sparsifier pipeline: >= 3x, bit-identical state."""
    _gate("sparsifier", sparsifier_run, results)


def test_weighted_sparsifier_identity(weighted_run, results):
    """Weighted pipeline: long-stream bit-identity (no speedup gate —
    the weight-class split shares the unweighted pipeline's engine)."""
    _RATES["weighted_sparsifier_columnar"] = round(weighted_run["columnar_rate"], 1)
    table = "\n".join([
        f"weighted sparsifier on a {STREAM_UPDATES:,}-update weighted stream:",
        f"  scalar   : {weighted_run['scalar_rate']:>10,.0f} updates/s",
        f"  columnar : {weighted_run['columnar_rate']:>10,.0f} updates/s "
        f"({weighted_run['speedup']:.1f}x)",
        f"  states   : bit-identical across both engines",
    ])
    results("bench_columnar_weighted", table)
    assert weighted_run["scalar_states"] == weighted_run["columnar_states"], (
        "weighted sparsifier: columnar state diverged from the scalar path"
    )


def test_primitive_scatter_rates(results):
    """Stack-level scatter throughput (reported; part of the regression
    baseline, no per-run gate beyond perf_regress tolerances)."""
    rng = rng_from_seed("columnar-primitives", 0)
    count, num_rows, domain = 200_000, 64, 4096
    rows = np.array([rng.randrange(num_rows) for _ in range(count)], dtype=np.int64)
    idxs = np.array([rng.randrange(domain) for _ in range(count)], dtype=np.int64)
    deltas = np.array([rng.choice([-1, 1]) for _ in range(count)], dtype=np.int64)

    stack = SketchStack(num_rows, domain, 8, "prim-stack", rows=3)
    begin = time.perf_counter()
    for start in range(0, count, BATCH_SIZE):
        stop = start + BATCH_SIZE
        stack.scatter(rows[start:stop], idxs[start:stop], deltas[start:stop])
    stack_rate = count / (time.perf_counter() - begin)

    l0 = L0SamplerStack(num_rows, domain, "prim-l0")
    begin = time.perf_counter()
    for start in range(0, count, BATCH_SIZE):
        stop = start + BATCH_SIZE
        l0.scatter(rows[start:stop], idxs[start:stop], deltas[start:stop])
    l0_rate = count / (time.perf_counter() - begin)

    _RATES["sketch_stack_scatter"] = round(stack_rate, 1)
    _RATES["l0_stack_scatter"] = round(l0_rate, 1)
    table = "\n".join([
        f"columnar primitive scatter, {count:,} incidences across "
        f"{num_rows} rows (batch {BATCH_SIZE:,}):",
        f"  SketchStack(B=8)  : {stack_rate:>12,.0f} updates/s",
        f"  L0SamplerStack    : {l0_rate:>12,.0f} updates/s",
    ])
    results("bench_columnar_primitives", table)
    assert stack_rate > 0 and l0_rate > 0


def test_write_rates_json(agm_run, spanner_run, sparsifier_run, weighted_run, results):
    """Last: persist every measured rate for tools/perf_regress.py."""
    payload = {
        "stream_updates": STREAM_UPDATES,
        "batch_size": BATCH_SIZE,
        "updates_per_second": dict(sorted(_RATES.items())),
    }
    RESULTS_JSON.parent.mkdir(exist_ok=True)
    RESULTS_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    results(
        "bench_columnar_json",
        f"wrote {len(_RATES)} measured rates to {RESULTS_JSON.name} "
        "(regression-gated by tools/perf_regress.py)",
    )
    assert RESULTS_JSON.exists()
