"""E7 — ablations of the implementation's design choices.

The substrate makes three calibration claims (table stacks, repair
sketches, budget constants); this experiment measures
each knob's effect so the defaults are justified by data:

* pass-2 Y-stack count vs coverage (the 1-sparse-payload substitution);
* the repair sketch's contribution on top of starved stacks;
* pass-1 cluster-sketch budget vs decode failures;
* AGM Borůvka rounds vs forest completeness.
"""

from __future__ import annotations

from repro.agm import AgmSketch
from repro.core import SpannerParams, TwoPassSpannerBuilder
from repro.graph import connected_gnp, evaluate_multiplicative_stretch
from repro.stream import stream_from_graph

N = 48
SEED = 31


def spanner_run(params: SpannerParams, seed=SEED):
    graph = connected_gnp(N, 0.25, seed=seed)
    stream = stream_from_graph(graph, seed=seed, churn=0.3)
    builder = TwoPassSpannerBuilder(N, 2, seed=seed + 1, params=params)
    output = builder.run(stream)
    report = evaluate_multiplicative_stretch(graph, output.spanner)
    return output, report


def test_e7_stack_and_repair_ablation(results, benchmark):
    rows = [
        "pass-2 coverage vs Y-stack count (repair disabled):",
        f"{'stacks':>6} {'uncovered':>9} {'stretch ok':>10}",
    ]
    uncovered_by_stacks = {}
    for stacks in (1, 2, 4):
        params = SpannerParams(table_stacks=stacks, repair_budget_factor=0.0)
        output, report = spanner_run(params)
        uncovered = output.diagnostics["pass2_uncovered_keys"]
        uncovered_by_stacks[stacks] = uncovered
        rows.append(f"{stacks:>6} {uncovered:>9} {'yes' if report.within(4) else 'NO':>10}")
    assert uncovered_by_stacks[4] <= uncovered_by_stacks[1]

    rows.append("\nrepair sketch on top of a single stack:")
    rows.append(f"{'repair':>7} {'uncovered':>9} {'repaired':>9}")
    for repair in (0.0, 2.0):
        params = SpannerParams(table_stacks=1, repair_budget_factor=repair)
        output, _ = spanner_run(params)
        rows.append(
            f"{repair:>7.1f} {output.diagnostics['pass2_uncovered_keys']:>9} "
            f"{output.diagnostics['pass2_repaired_keys']:>9}"
        )

    rows.append("\npass-1 cluster-sketch budget:")
    rows.append(f"{'budget':>6} {'decode failures':>15} {'stretch ok':>10}")
    for budget in (2, 4, 8):
        params = SpannerParams(cluster_budget=budget)
        output, report = spanner_run(params)
        rows.append(
            f"{budget:>6} {output.diagnostics['pass1_decode_failures']:>15} "
            f"{'yes' if report.within(4) else 'NO':>10}"
        )

    results("E7_ablations_spanner", "\n".join(rows))
    benchmark.pedantic(lambda: spanner_run(SpannerParams()), rounds=1, iterations=1)


def test_e7_agm_rounds_ablation(results, benchmark):
    rows = [
        "AGM Borůvka rounds vs spanning-forest completeness "
        "(20 connected G(24, 0.12) trials):",
        f"{'rounds':>6} {'complete forests':>16}",
    ]
    complete_by_rounds = {}
    for rounds in (2, 4, 8):
        complete = 0
        for trial in range(20):
            graph = connected_gnp(24, 0.12, seed=100 + trial)
            sketch = AgmSketch(24, seed=200 + trial, rounds=rounds)
            for u, v, _ in graph.edges():
                sketch.update(u, v, 1)
            if len(sketch.spanning_forest()) == 23:
                complete += 1
        complete_by_rounds[rounds] = complete
        rows.append(f"{rounds:>6} {complete:>16}/20")
    assert complete_by_rounds[8] >= complete_by_rounds[2]
    assert complete_by_rounds[8] >= 19

    results("E7_ablations_agm", "\n".join(rows))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
