"""E8 — measured space scaling of the streaming structures.

Theorem 1's headline is a *space* bound, so this experiment tracks
measured sketch words across a geometric range of ``n`` at fixed ``k``.
At laptop ``n`` the ``polylog`` factors (``log n`` sample levels,
``C log n`` table capacities) are still growing fast, so the table shows
both raw words and words normalized by ``log2(n)^2``; the normalized
slope is the one compared against ``1 + 1/k``.

Also tracked: the additive spanner's words across ``n`` at fixed ``d``
(theory: ``~O(nd)``, i.e. slope ~1 in ``n`` up to polylogs).
"""

from __future__ import annotations

import math

from repro.core import AdditiveSpannerBuilder, TwoPassSpannerBuilder
from repro.graph import connected_gnp
from repro.stream import stream_from_graph


def spanner_words(n: int, k: int, seed: int = 41) -> int:
    graph = connected_gnp(n, min(0.5, 8.0 / n), seed=seed)
    stream = stream_from_graph(graph, seed=seed, churn=0.2)
    builder = TwoPassSpannerBuilder(n, k, seed=seed + 1)
    builder.run(stream)
    return builder.space_words()


def additive_words(n: int, d: int, seed: int = 43) -> int:
    graph = connected_gnp(n, min(0.5, 8.0 / n), seed=seed)
    stream = stream_from_graph(graph, seed=seed, churn=0.2)
    builder = AdditiveSpannerBuilder(n, d, seed=seed + 1)
    builder.run(stream)
    return builder.space_words()


def slope(points: list[tuple[int, float]]) -> float:
    (n0, w0), (n1, w1) = points[0], points[-1]
    return math.log(w1 / w0) / math.log(n1 / n0)


def test_e8_table(results, benchmark):
    rows = [
        "two-pass spanner, k=2 (theory: words ~ n^{1.5} * polylog):",
        f"{'n':>5} {'words':>10} {'words/log2(n)^2':>16}",
    ]
    raw_points = []
    normalized_points = []
    for n in (32, 64, 128):
        words = spanner_words(n, 2)
        normalized = words / math.log2(n) ** 2
        raw_points.append((n, float(words)))
        normalized_points.append((n, normalized))
        rows.append(f"{n:>5} {words:>10} {normalized:>16.0f}")
    raw_slope = slope(raw_points)
    norm_slope = slope(normalized_points)
    rows.append(
        f"raw slope {raw_slope:.2f}; polylog-normalized slope {norm_slope:.2f} "
        f"(target 1 + 1/k = 1.5, tolerance for residual logs)"
    )
    assert norm_slope < 2.0

    rows.append("\none-pass additive spanner, d=4 (theory: words ~ n d * polylog):")
    rows.append(f"{'n':>5} {'words':>10} {'words/log2(n)^2':>16}")
    additive_points = []
    for n in (32, 64, 128):
        words = additive_words(n, 4)
        normalized = words / math.log2(n) ** 2
        additive_points.append((n, normalized))
        rows.append(f"{n:>5} {words:>10} {normalized:>16.0f}")
    additive_slope = slope(additive_points)
    rows.append(f"polylog-normalized slope {additive_slope:.2f} (target ~1.0)")
    assert additive_slope < 1.6

    # Cross-structure sanity at n=64: the spanner's n^{1+1/k} words exceed
    # the additive structure's n*d words once n is past the constants.
    results("E8_space_scaling", "\n".join(rows))
    benchmark.pedantic(lambda: spanner_words(32, 2), rounds=1, iterations=1)
