"""Shared benchmark infrastructure.

Every experiment registers its result table here; the tables are printed
in pytest's terminal summary (visible even with output capture on, so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` records
them) and written to ``benchmarks/results/`` for the docs.
"""

from __future__ import annotations

import pathlib

import pytest

_RESULTS_DIR = pathlib.Path(__file__).parent / "results"
_TABLES: dict[str, str] = {}


def register_table(name: str, table: str) -> None:
    """Record an experiment table for the summary and the results dir."""
    _TABLES[name] = table
    _RESULTS_DIR.mkdir(exist_ok=True)
    (_RESULTS_DIR / f"{name}.txt").write_text(table + "\n")


@pytest.fixture
def results():
    """Fixture handing benches the registry function."""
    return register_table


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.write_sep("=", "experiment tables (paper-claim reproduction)")
    for name in sorted(_TABLES):
        terminalreporter.write_sep("-", name)
        terminalreporter.write_line(_TABLES[name])
