"""Inline suppression syntax: ``# sketchlint: disable=SLNNN <reason>``.

A finding the team has reviewed and accepted is silenced *at the
offending line*, never globally, and always with a reason::

    bits[key] = rng.random() < 0.5  # sketchlint: disable=SL301 seeded Theorem-4 instance rng

The comment may ride the flagged line itself or stand alone on the line
directly above it.  Several codes may be listed comma-separated.  The
reason is **mandatory** — a bare ``disable=SL301`` is itself reported as
``SL001`` (malformed suppression), so a blanket, unexplained disable can
never land.  Unknown code shapes (anything not ``SL`` + 3 digits) are
also ``SL001``.
"""

from __future__ import annotations

import re

__all__ = ["FileSuppressions", "MALFORMED_CODE"]

#: Code reported for a syntactically broken or reason-less suppression.
MALFORMED_CODE = "SL001"

_MARKER = re.compile(r"#\s*sketchlint:\s*(?P<body>.*)$")
_DISABLE = re.compile(r"disable=(?P<codes>[A-Za-z0-9,]+)\s*(?P<reason>.*)$")
_CODE = re.compile(r"^SL\d{3}$")


class FileSuppressions:
    """Parsed suppressions of one source file.

    ``match(line, code)`` answers whether a diagnostic at ``line`` with
    ``code`` is suppressed; ``malformed`` lists ``(line, problem)``
    pairs the runner reports as :data:`MALFORMED_CODE` diagnostics.
    """

    def __init__(self, lines: list[str]):
        #: line number -> set of suppressed codes *at that line*.
        self._at_line: dict[int, set[str]] = {}
        self.malformed: list[tuple[int, str]] = []
        for lineno, text in enumerate(lines, start=1):
            marker = _MARKER.search(text)
            if marker is None:
                continue
            body = marker.group("body").strip()
            disable = _DISABLE.match(body)
            if disable is None:
                self.malformed.append(
                    (lineno, f"unrecognized sketchlint directive {body!r}; "
                             f"expected 'disable=SLNNN <reason>'")
                )
                continue
            codes = [c for c in disable.group("codes").split(",") if c]
            bad = [c for c in codes if not _CODE.match(c)]
            if bad:
                self.malformed.append(
                    (lineno, f"malformed suppression code(s) {', '.join(bad)}")
                )
                continue
            if not disable.group("reason").strip():
                self.malformed.append(
                    (lineno,
                     f"suppression of {', '.join(codes)} lacks a reason — "
                     f"write '# sketchlint: disable={','.join(codes)} <why>'")
                )
                continue
            targets = {lineno}
            # A standalone suppression comment covers the next line.
            if text.lstrip().startswith("#"):
                targets.add(lineno + 1)
            for target in targets:
                self._at_line.setdefault(target, set()).update(codes)

    def match(self, line: int, code: str) -> bool:
        """Whether ``code`` is suppressed at ``line``."""
        return code in self._at_line.get(line, ())
