"""sketchlint — the repo-native static-analysis suite.

The correctness story of this reproduction — sketch linearity by the AGM
decomposition, exact mod-``(2^61 - 1)`` arithmetic, and bit-identical
checkpoint/restore — rests on invariants no generic linter knows about.
``sketchlint`` enforces them at the AST level (stdlib ``ast``, no new
dependencies) with five checker families:

* **protocol conformance** (``SL1xx``) — every sketch and
  ``StreamingAlgorithm`` class implements the full clone/wire/shard
  contract, so a new class can never silently ship shard-incompatible;
* **field/dtype discipline** (``SL2xx``) — mod-``p`` array arithmetic
  stays inside the audited kernel modules, with exact integer dtypes
  and guarded accumulations;
* **determinism** (``SL3xx``) — no unseeded randomness or wall-clock in
  any module reachable from the checkpoint/wire/state seams (the
  invariant behind every bit-identity test);
* **wire-format pairing** (``SL4xx``) — every ``*state_ints`` writer
  has a matching reader and self-delimiting or length-exposing framing;
* **telemetry discipline** (``SL5xx``) — no raw process-clock reads in
  ``repro.*`` outside the obs layer: all timing flows through
  ``obs.TRACER`` spans so reports and traces can never disagree.

Usage::

    python -m tools.sketchlint src/            # human-readable diagnostics
    python -m tools.sketchlint src/ --json     # machine-readable output
    python -m tools.sketchlint --list-checkers

Diagnostics print as ``file:line: SLNNN message``.  A true positive is
fixed; a reviewed false positive is silenced *in place, with a reason*::

    risky_line()  # sketchlint: disable=SL204 sums are bounded by the ledger

(see :mod:`tools.sketchlint.suppress`).  The catalogue of codes, the
invariant each enforces, and the bug that motivated it live in
``docs/invariants.md``.
"""

from tools.sketchlint.cli import main, run_paths
from tools.sketchlint.diagnostics import Diagnostic

__all__ = ["Diagnostic", "main", "run_paths"]
