"""The sketchlint front end: ``python -m tools.sketchlint src/``.

Human output is one ``file:line: SLNNN message`` per finding (paths
relative to the repo root); ``--json`` emits the pinned machine schema::

    {
      "version": 1,
      "diagnostics": [{"file", "line", "code", "message", "checker"}, ...],
      "counts": {"SL202": 3, ...},
      "checkers": [{"name", "codes", "description"}, ...],
      "inventory": {"sketch_classes": [...], "streaming_algorithms": [...]}
    }

Exit codes: ``0`` clean, ``1`` findings (or unparseable targets), ``2``
usage error.  :func:`run_paths` is the library entry point the test
suite drives with fixture-sized configurations.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from dataclasses import dataclass, field

if __package__ in (None, ""):  # pragma: no cover - script-mode fallback
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent.parent))

from tools import _repo
from tools.sketchlint.config import DEFAULT_CONFIG, Config
from tools.sketchlint.diagnostics import Diagnostic
from tools.sketchlint.model import RepoIndex, load_paths
from tools.sketchlint.registry import all_checkers
from tools.sketchlint.suppress import MALFORMED_CODE

__all__ = ["LintResult", "run_paths", "main"]


@dataclass
class LintResult:
    """Everything one lint run produced."""

    diagnostics: list[Diagnostic]
    errors: list[str] = field(default_factory=list)
    index: RepoIndex | None = None

    @property
    def clean(self) -> bool:
        """No findings and every target parsed."""
        return not self.diagnostics and not self.errors


def run_paths(
    paths: list[pathlib.Path | str], config: Config = DEFAULT_CONFIG
) -> LintResult:
    """Lint ``paths``: run every registered checker, apply suppressions.

    Suppressed findings are dropped; malformed suppression comments come
    back as :data:`~tools.sketchlint.suppress.MALFORMED_CODE`
    diagnostics (which cannot themselves be suppressed).
    """
    index, errors = load_paths(paths, config)
    raw: list[Diagnostic] = []
    for checker in all_checkers():
        raw.extend(checker.run(index))

    by_path = {source.display_path: source for source in index.files}
    kept: list[Diagnostic] = []
    for diagnostic in raw:
        source = by_path.get(diagnostic.path)
        if source is not None and source.suppressions.match(
            diagnostic.line, diagnostic.code
        ):
            continue
        kept.append(diagnostic)
    for source in index.files:
        for line, problem in source.suppressions.malformed:
            kept.append(
                Diagnostic(
                    path=source.display_path,
                    line=line,
                    code=MALFORMED_CODE,
                    message=problem,
                    checker="suppress",
                )
            )
    return LintResult(diagnostics=sorted(set(kept)), errors=errors, index=index)


def _relative(path: str) -> str:
    try:
        return str(pathlib.Path(path).resolve().relative_to(_repo.REPO_ROOT))
    except ValueError:
        return path


def _json_payload(result: LintResult) -> dict:
    from tools.sketchlint.checkers import protocol

    counts: dict[str, int] = {}
    for diagnostic in result.diagnostics:
        counts[diagnostic.code] = counts.get(diagnostic.code, 0) + 1
    inventory = {"sketch_classes": [], "streaming_algorithms": []}
    if result.index is not None:
        registry = protocol.discover(result.index)
        inventory = {
            "sketch_classes": sorted(c.name for c in registry["sketches"]),
            "streaming_algorithms": sorted(c.name for c in registry["algorithms"]),
        }
    diagnostics = [
        {**d.to_json(), "file": _relative(d.path)} for d in result.diagnostics
    ]
    return {
        "version": 1,
        "diagnostics": diagnostics,
        "counts": counts,
        "errors": result.errors,
        "checkers": [
            {"name": c.name, "codes": list(c.codes), "description": c.description}
            for c in all_checkers()
        ],
        "inventory": inventory,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="sketchlint",
        description="Repo-native static analysis for the sketch contract, "
        "field arithmetic, determinism, and wire-format invariants.",
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint (e.g. src/)"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the pinned JSON schema"
    )
    parser.add_argument(
        "--list-checkers", action="store_true",
        help="list registered checker families and exit",
    )
    options = parser.parse_args(argv)

    if options.list_checkers:
        for checker in all_checkers():
            print(f"{checker.name}: {', '.join(checker.codes)} — "
                  f"{checker.description}")
        return 0
    if not options.paths:
        parser.error("at least one path is required (e.g. src/)")

    result = run_paths(options.paths)
    if options.json:
        print(json.dumps(_json_payload(result), indent=2, sort_keys=True))
    else:
        for error in result.errors:
            print(error, file=sys.stderr)
        for diagnostic in result.diagnostics:
            print(diagnostic.format(root=_repo.REPO_ROOT))
        files = len(result.index.files) if result.index else 0
        classes = len(result.index.classes) if result.index else 0
        if result.clean:
            print(
                f"sketchlint: clean ({files} files, {classes} classes)",
                file=sys.stderr,
            )
        else:
            print(
                f"sketchlint: {len(result.diagnostics)} finding(s), "
                f"{len(result.errors)} error(s)",
                file=sys.stderr,
            )
    return 0 if result.clean else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
