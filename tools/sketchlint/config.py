"""Checker configuration: the seam lists and whitelists, in one place.

Every module set a checker keys off is *explicit* here — seam-listed,
not guessed — so a reviewer can see exactly what is enforced where, and
tests can substitute fixture-sized configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Config", "DEFAULT_CONFIG"]


@dataclass(frozen=True)
class Config:
    """Module lists the checkers consult (dotted module names)."""

    #: The audited field-arithmetic kernels: the ONLY modules allowed to
    #: hand-roll mod-(2^61-1) array arithmetic.  Everything else must go
    #: through their exported helpers (``as_field_array``, ``mulmod61``,
    #: ``scatter_sum_mod61``, ...).
    kernel_modules: frozenset[str] = frozenset(
        {
            "repro.sketch.batched",
            "repro.sketch.columnar",
            "repro.sketch.hashing",
            "repro.sketch.kernels",
            "repro.sketch.kernels.reference",
            "repro.sketch.kernels.limb",
            "repro.sketch.kernels.native",
        }
    )

    #: The dispatch facade for the pluggable kernel backends: the only
    #: module anyone outside the kernels package may import field-kernel
    #: entry points from.  Importing a backend module directly (or
    #: re-defining a kernel entry point) bypasses backend selection and
    #: the bit-identity oracle (SL205).
    kernel_dispatch_module: str = "repro.sketch.kernels"

    #: The dispatched kernel entry points guarded by SL205.
    kernel_dispatch_names: frozenset[str] = frozenset(
        {
            "addmod61",
            "submod61",
            "mulmod61",
            "polyhash61",
            "polyhash61_rows",
            "polyhash61_multi",
            "powmod61",
            "powmod61_bases",
            "powmod61_windowed",
            "build_pow_table",
            "sum_mod61",
            "scatter_sum_mod61",
            "stack_positions_terms",
        }
    )

    #: The module that *defines* the field constant; the one place the
    #: prime may appear as a literal.
    field_constant_module: str = "repro.sketch.hashing"

    #: Modules whose arrays hold field elements / exact counters, where
    #: dtype discipline (no float contamination, no unguarded narrowing,
    #: no unguarded int64 accumulation) applies.
    field_module_prefixes: tuple[str, ...] = ("repro.sketch", "repro.agm")

    #: The checkpoint/wire/state seams: bit-identity starts here.  The
    #: determinism checker bans unseeded randomness and wall-clock in
    #: these modules and everything they (transitively) import.
    seam_modules: frozenset[str] = frozenset(
        {
            "repro.service.checkpoint",
            "repro.service.session",
            "repro.sketch.serialize",
            "repro.stream.distributed",
        }
    )

    #: Repo-local import prefix (imports outside it are third-party and
    #: not followed when closing over the seams).
    local_prefix: str = "repro"

    #: Module prefixes allowed to touch the process clock directly.  The
    #: telemetry package owns the clock (it injects it into tracers so
    #: the determinism seams stay clean); everywhere else in ``repro.*``
    #: must time through ``obs.TRACER`` spans (SL501).
    wallclock_allowed_prefixes: tuple[str, ...] = ("repro.obs",)

    #: The self-healing recovery seams: modules whose ``except`` blocks
    #: are load-bearing (checkpoint fallback, shard retry, degraded
    #: queries).  The recovery checker (SL6xx) requires every handler
    #: here to re-raise or bump an observability counter — a silently
    #: swallowed exception in these modules is a recovery path that
    #: vanished from telemetry.
    recovery_module_prefixes: tuple[str, ...] = (
        "repro.service",
        "repro.stream.distributed",
        "repro.faults",
    )

    #: Names of classes that are abstract interface roots: they declare
    #: contract methods (possibly as raising defaults) and are exempt
    #: from the "concrete class implements the contract" checks.
    abstract_roots: frozenset[str] = frozenset({"StreamingAlgorithm"})

    #: Extra per-class method names counted as clone entry points.
    clone_names: tuple[str, ...] = ("clone", "copy")

    #: Writer -> accepted reader spellings, the wire-pairing table.
    wire_pairs: dict = field(
        default_factory=lambda: {
            "state_ints": ("from_state_ints", "load_state_ints"),
            "shard_state_ints": ("load_shard_state_ints",),
            "sparse_state_ints": ("load_sparse_state",),
            "row_state_ints": ("load_row_state",),
        }
    )

    #: Readers that consume a shared flat sequence and therefore must
    #: take a ``cursor`` and return the advanced cursor (self-delimiting
    #: framing).
    cursor_readers: frozenset[str] = frozenset(
        {"load_sparse_state", "load_state_ints"}
    )


DEFAULT_CONFIG = Config()
