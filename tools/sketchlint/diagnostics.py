"""Diagnostic records and their rendering.

A :class:`Diagnostic` is one finding: a file, a line, an ``SLNNN`` code,
and a message.  The ``file:line: SLNNN message`` rendering is the
grep-able, editor-clickable format every sketchlint front end emits.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass

__all__ = ["Diagnostic"]


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One sketchlint finding, sortable into stable output order."""

    path: str
    line: int
    code: str
    message: str
    checker: str = ""

    def format(self, root: pathlib.Path | None = None) -> str:
        """Render as ``file:line: SLNNN message`` (path relative to
        ``root`` when given and applicable)."""
        path = self.path
        if root is not None:
            try:
                path = str(pathlib.Path(path).resolve().relative_to(root))
            except ValueError:
                pass
        return f"{path}:{self.line}: {self.code} {self.message}"

    def to_json(self) -> dict:
        """The pinned machine-readable form (schema: see ``--json``)."""
        return {
            "file": self.path,
            "line": self.line,
            "code": self.code,
            "message": self.message,
            "checker": self.checker,
        }
