"""SL3xx — determinism on the checkpoint/wire/state seams.

Checkpoint/restore bit-identity — the property every crash-recovery and
shard-identity test pins down — holds only if nothing on a state path
consumes unseeded randomness or wall-clock.  The seam modules are listed
explicitly in :class:`tools.sketchlint.config.Config` (not guessed), and
the ban covers everything they transitively import:

* ``SL301`` — a ``random``-module call other than constructing a seeded
  ``random.Random(seed...)``: process-global randomness makes restored
  state diverge from the original run.  Derive randomness with
  ``repro.util.rng.derive_seed`` / ``rng_from_seed``.
* ``SL302`` — any ``np.random`` / ``numpy.random`` use: even "seeded"
  global numpy state is shared across the process and ordering-
  dependent.  Seeded per-component generators via ``derive_seed`` only.
* ``SL303`` — wall-clock reads (``time.time``/``monotonic``/
  ``perf_counter``/``time_ns``/``process_time``, ``datetime.now``/
  ``utcnow``/``today``): state derived from the clock can never
  round-trip a checkpoint bit-for-bit.
* ``SL304`` — the builtin ``hash()``: string hashing is salted per
  process (``PYTHONHASHSEED``), so anything it touches differs between
  the run that wrote a checkpoint and the run that restores it.
"""

from __future__ import annotations

import ast
from typing import Iterable

from tools.sketchlint.diagnostics import Diagnostic
from tools.sketchlint.model import RepoIndex, SourceFile
from tools.sketchlint.registry import register

__all__ = ["check_determinism"]

_CLOCK_ATTRS = {
    "time": {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
             "perf_counter_ns", "process_time", "process_time_ns"},
    "datetime": {"now", "utcnow", "today"},
    "date": {"today"},
}


def _diag(source: SourceFile, node: ast.AST, code: str, message: str) -> Diagnostic:
    return Diagnostic(
        path=source.display_path, line=node.lineno, code=code,
        message=message, checker="determinism",
    )


def _attr_root(node: ast.Attribute) -> str | None:
    """Leftmost name of a dotted attribute chain (``np.random.rand`` -> ``np``)."""
    current: ast.AST = node
    while isinstance(current, ast.Attribute):
        current = current.value
    return current.id if isinstance(current, ast.Name) else None


def _is_np_random(node: ast.Attribute) -> bool:
    # np.random.<x> / numpy.random.<x>, or bare np.random as a value.
    chain: list[str] = []
    current: ast.AST = node
    while isinstance(current, ast.Attribute):
        chain.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        chain.append(current.id)
    chain.reverse()
    return (
        len(chain) >= 2
        and chain[0] in ("np", "numpy", "_np")
        and chain[1] == "random"
    )


def _check_file(source: SourceFile) -> Iterable[Diagnostic]:
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Call):
            func = node.func
            # SL301 — random.<fn>(...), except a seeded random.Random(seed).
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"
            ):
                seeded_ctor = func.attr == "Random" and (node.args or node.keywords)
                if not seeded_ctor:
                    yield _diag(
                        source, node, "SL301",
                        f"random.{func.attr}(...) on a checkpoint/wire/state "
                        f"path; derive seeded randomness via "
                        f"repro.util.rng instead",
                    )
            # SL304 — builtin hash() (PYTHONHASHSEED-salted for strings).
            if isinstance(func, ast.Name) and func.id == "hash":
                yield _diag(
                    source, node, "SL304",
                    "builtin hash() is process-salted (PYTHONHASHSEED); "
                    "state derived from it cannot round-trip a checkpoint",
                )
            # SL303 — wall-clock reads.
            if isinstance(func, ast.Attribute):
                owner = func.value
                owner_name = (
                    owner.id if isinstance(owner, ast.Name)
                    else owner.attr if isinstance(owner, ast.Attribute)
                    else None
                )
                banned = _CLOCK_ATTRS.get(owner_name or "", ())
                if func.attr in banned:
                    yield _diag(
                        source, node, "SL303",
                        f"wall-clock read {owner_name}.{func.attr}() on a "
                        f"checkpoint/wire/state path breaks bit-identity",
                    )
        # SL302 — any np.random usage (call, attribute, alias).
        if isinstance(node, ast.Attribute) and node.attr != "random":
            if isinstance(node.value, ast.Attribute) and _is_np_random(node):
                yield _diag(
                    source, node, "SL302",
                    f"np.random.{node.attr} on a checkpoint/wire/state path; "
                    f"use per-component generators seeded via "
                    f"repro.util.rng.derive_seed",
                )


@register("determinism", codes=("SL301", "SL302", "SL303", "SL304"))
def check_determinism(index: RepoIndex) -> Iterable[Diagnostic]:
    """Seam-reachable randomness / wall-clock bans (SL3xx)."""
    closure = index.seam_closure()
    for source in index.files:
        if source.module in closure:
            yield from _check_file(source)
