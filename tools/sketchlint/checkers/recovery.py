"""SL6xx — recovery discipline: no silent exception swallowing on seams.

PR 9 made ``except`` blocks load-bearing: checkpoint restore falls back
past corrupt files, the sharded runner retries crashed/hung workers,
and the session degrades failed decodes into structured
:class:`~repro.service.session.QueryOutcome` values.  Each of those
paths announces itself through a ``repro.obs`` counter
(``checkpoint.corrupt_detected``, ``shard.retry``,
``session.degraded_query``), which is what lets ``repro chaos`` and the
ops surface prove recovery actually happened.  A handler that catches
and says nothing is the failure mode this family bans: the fault is
absorbed, telemetry shows a healthy run, and the next engineer debugs
a bit-identity divergence with no breadcrumb.

* ``SL601`` — a bare ``except:`` in a recovery module.  It catches
  ``KeyboardInterrupt``/``SystemExit`` too, turning ctrl-C into a
  "recovered" fault.  Name the exception; use ``BaseException``
  explicitly if interpreter-exit signals really must be intercepted
  (the mp round teardown does, and re-raises).

* ``SL602`` — a handler that *swallows*: its body neither re-raises
  (no ``raise`` statement on any branch) nor records the event through
  an observability counter (no ``.count(...)``/``.observe(...)``
  call).  Either escalate the error or count it; a handler the team
  has reviewed as genuinely fine to silence (e.g. a type-probe
  ``except TypeError: return None``) carries an inline
  ``# sketchlint: disable=SL602 <reason>``.

Scope is the explicit ``recovery_module_prefixes`` list in
:class:`tools.sketchlint.config.Config` — the checkpoint/session
service layer, the distributed runner, and the fault-injection package
itself.  ``raise`` inside a function *defined* within the handler does
not count as re-raising (it only runs if someone calls it), so the
scan skips nested function and class bodies.
"""

from __future__ import annotations

import ast
from typing import Iterable

from tools.sketchlint.diagnostics import Diagnostic
from tools.sketchlint.model import RepoIndex, SourceFile
from tools.sketchlint.registry import register

__all__ = ["check_recovery"]

#: Method names whose call inside a handler counts as "the event was
#: recorded": the tracer's counter and histogram entry points.
_COUNTER_ATTRS = {"count", "observe"}


def _in_scope(module: str, prefixes: tuple[str, ...]) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in prefixes
    )


def _handler_nodes(handler: ast.ExceptHandler) -> Iterable[ast.AST]:
    """Walk a handler body, skipping nested function/class scopes.

    A ``raise`` (or counter call) inside a ``def`` defined in the
    handler only executes if that function is later called — it is not
    the handler doing its duty.
    """
    stack: list[ast.AST] = list(handler.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue  # don't descend into a scope that runs later, if ever
        stack.extend(ast.iter_child_nodes(node))


def _escalates(handler: ast.ExceptHandler) -> bool:
    """Whether any branch of the handler re-raises or records a counter."""
    for node in _handler_nodes(handler):
        if isinstance(node, ast.Raise):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _COUNTER_ATTRS
        ):
            return True
    return False


def _check_file(source: SourceFile) -> Iterable[Diagnostic]:
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            yield Diagnostic(
                path=source.display_path, line=node.lineno, code="SL601",
                message=(
                    "bare 'except:' in a recovery module catches "
                    "KeyboardInterrupt/SystemExit too; name the exception "
                    "(or 'except BaseException' explicitly, and re-raise)"
                ),
                checker="recovery",
            )
            # A bare except that also swallows would double-report; the
            # SL601 fix (naming the type) re-exposes SL602 if it still
            # swallows, so one diagnostic per handler is enough.
            continue
        if not _escalates(node):
            yield Diagnostic(
                path=source.display_path, line=node.lineno, code="SL602",
                message=(
                    "exception swallowed on a recovery seam: handler "
                    "neither re-raises nor records the event "
                    "(obs.TRACER.count/.observe); escalate it, count it, "
                    "or suppress with a reviewed reason"
                ),
                checker="recovery",
            )


@register("recovery", codes=("SL601", "SL602"))
def check_recovery(index: RepoIndex) -> Iterable[Diagnostic]:
    """Silent exception swallowing on self-healing seams (SL6xx)."""
    prefixes = index.config.recovery_module_prefixes
    for source in index.files:
        if _in_scope(source.module, prefixes):
            yield from _check_file(source)
