"""SL2xx (cont.) — kernel-backend dispatch discipline.

The field kernels are pluggable (``repro.sketch.kernels`` selects a
backend once per process from ``REPRO_KERNEL``): the *only* supported
way to call a kernel entry point from outside the kernels package is
through that dispatch facade.  Importing a backend module directly
(``kernels.reference`` / ``kernels.limb`` / ``kernels.native``) pins a
caller to one implementation — it silently stops honoring the selected
backend and escapes the cross-backend bit-identity oracle.  Re-defining
a function with a kernel entry point's name shadows the dispatch surface
the same way.

* ``SL205`` — outside ``repro.sketch.kernels``: a kernel entry point
  (``mulmod61``, ``polyhash61``, ``scatter_sum_mod61``, ...) imported
  from any module other than the dispatch facade, a backend submodule
  imported at all, or a function *defined* with a kernel entry point's
  name.
"""

from __future__ import annotations

import ast
from typing import Iterable

from tools.sketchlint.diagnostics import Diagnostic
from tools.sketchlint.model import RepoIndex, SourceFile
from tools.sketchlint.registry import register

__all__ = ["check_dispatch"]


def _diag(source: SourceFile, node: ast.AST, message: str) -> Diagnostic:
    return Diagnostic(
        path=source.display_path, line=node.lineno, code="SL205",
        message=message, checker="dispatch",
    )


def _resolve_from(source: SourceFile, node: ast.ImportFrom) -> str | None:
    """Dotted module an ``ImportFrom`` targets (best-effort for relative
    imports; the repo convention is absolute imports everywhere)."""
    if node.level == 0:
        return node.module or None
    parts = source.module.split(".")
    if node.level > len(parts):
        return None
    base = parts[: len(parts) - node.level]
    if node.module:
        base.append(node.module)
    return ".".join(base) if base else None


def _check_file(index: RepoIndex, source: SourceFile) -> Iterable[Diagnostic]:
    config = index.config
    dispatch = config.kernel_dispatch_module
    backend_prefix = dispatch + "."
    if source.module == dispatch or source.module.startswith(backend_prefix):
        return  # inside the kernels package: backends import each other freely

    for node in ast.walk(source.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith(backend_prefix):
                    yield _diag(
                        source, node,
                        f"kernel backend module {alias.name} imported directly; "
                        f"call through the {dispatch} dispatch facade so the "
                        f"selected backend is honored",
                    )
        elif isinstance(node, ast.ImportFrom):
            module = _resolve_from(source, node)
            if module is None:
                continue
            if module.startswith(backend_prefix):
                yield _diag(
                    source, node,
                    f"kernel backend module {module} imported directly; "
                    f"call through the {dispatch} dispatch facade so the "
                    f"selected backend is honored",
                )
                continue
            if module == dispatch:
                for alias in node.names:
                    if alias.name in ("reference", "limb", "native"):
                        yield _diag(
                            source, node,
                            f"kernel backend module {dispatch}.{alias.name} "
                            f"imported directly; call through the dispatch "
                            f"facade's entry points instead",
                        )
                continue
            for alias in node.names:
                if alias.name in config.kernel_dispatch_names:
                    yield _diag(
                        source, node,
                        f"kernel entry point {alias.name} imported from "
                        f"{module}; import it from {dispatch} so backend "
                        f"selection applies",
                    )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name in config.kernel_dispatch_names:
                yield _diag(
                    source, node,
                    f"function {node.name} shadows a kernel dispatch entry "
                    f"point; kernel implementations live under {dispatch}",
                )


@register("dispatch", codes=("SL205",))
def check_dispatch(index: RepoIndex) -> Iterable[Diagnostic]:
    """Kernel-backend dispatch discipline (SL205)."""
    for source in index.files:
        yield from _check_file(index, source)
