"""SL5xx — telemetry discipline: one clock, behind the obs layer.

PR 8 centralized all timing in :mod:`repro.obs` (spans, counters,
histograms, with an injectable clock so the determinism seams stay
clean).  Scattered ``time.perf_counter()`` pairs defeat that: their
measurements bypass the tracer, never reach ``repro trace`` or the
phase-attributed benchmark baselines, and can silently disagree with
the span-derived numbers next to them.

* ``SL501`` — a raw process-clock reference (``time.time``/
  ``monotonic``/``perf_counter``/... , ``datetime.now``/``utcnow``/
  ``today``) in a ``repro.*`` module outside the telemetry package.
  Both *calls* and bare *attribute references* are flagged — storing
  ``time.perf_counter`` as a "clock" and calling it later is the same
  bypass one assignment removed.  Time an operation with
  ``obs.TRACER.span(...)`` (read ``span.elapsed`` if you need the
  number); inject ``obs.DEFAULT_CLOCK`` where a raw callable is
  genuinely required.

Scope is the ``repro`` package only: benchmarks, tools and tests sit
outside the ``repro.*`` module namespace and may time things however
they like.  The allowed prefixes are explicit in
:class:`tools.sketchlint.config.Config` (``wallclock_allowed_prefixes``).
"""

from __future__ import annotations

import ast
from typing import Iterable

from tools.sketchlint.diagnostics import Diagnostic
from tools.sketchlint.model import RepoIndex, SourceFile
from tools.sketchlint.registry import register

__all__ = ["check_wallclock"]

#: Owner name -> attribute names that read the process clock (mirrors
#: the determinism checker's SL303 table, plus nothing: the obs layer
#: wraps exactly these).
_CLOCK_ATTRS = {
    "time": {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
             "perf_counter_ns", "process_time", "process_time_ns"},
    "datetime": {"now", "utcnow", "today"},
    "date": {"today"},
}


def _allowed(module: str, prefixes: tuple[str, ...]) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in prefixes
    )


def _check_file(source: SourceFile) -> Iterable[Diagnostic]:
    for node in ast.walk(source.tree):
        # One check covers both forms: a call's func is itself an
        # Attribute node, so flagging attribute references catches
        # `time.perf_counter()` and the stored-reference bypass
        # `clock = time.perf_counter` with a single rule.
        if not isinstance(node, ast.Attribute):
            continue
        owner = node.value
        owner_name = (
            owner.id if isinstance(owner, ast.Name)
            else owner.attr if isinstance(owner, ast.Attribute)
            else None
        )
        if node.attr in _CLOCK_ATTRS.get(owner_name or "", ()):
            yield Diagnostic(
                path=source.display_path, line=node.lineno, code="SL501",
                message=(
                    f"raw clock {owner_name}.{node.attr} outside repro.obs; "
                    f"time through obs.TRACER.span(...) (span.elapsed) or "
                    f"inject obs.DEFAULT_CLOCK"
                ),
                checker="wallclock",
            )


@register("wallclock", codes=("SL501",))
def check_wallclock(index: RepoIndex) -> Iterable[Diagnostic]:
    """Raw process-clock bans outside the telemetry layer (SL5xx)."""
    config = index.config
    prefix = config.local_prefix + "."
    for source in index.files:
        if not (source.module == config.local_prefix
                or source.module.startswith(prefix)):
            continue  # benchmarks / tools / tests time themselves freely
        if _allowed(source.module, config.wallclock_allowed_prefixes):
            continue
        yield from _check_file(source)
