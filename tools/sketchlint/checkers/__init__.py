"""Checker families — importing this package registers them all.

* :mod:`tools.sketchlint.checkers.protocol` — ``SL1xx`` sketch/algorithm
  contract conformance;
* :mod:`tools.sketchlint.checkers.field` — ``SL2xx`` field-arithmetic and
  dtype discipline;
* :mod:`tools.sketchlint.checkers.dispatch` — ``SL205`` kernel-backend
  dispatch discipline;
* :mod:`tools.sketchlint.checkers.determinism` — ``SL3xx`` seam-reachable
  randomness/wall-clock bans;
* :mod:`tools.sketchlint.checkers.wire` — ``SL4xx`` wire-format
  writer/reader pairing and framing;
* :mod:`tools.sketchlint.checkers.wallclock` — ``SL5xx`` raw
  process-clock bans outside the telemetry layer;
* :mod:`tools.sketchlint.checkers.recovery` — ``SL6xx`` bare/silent
  ``except`` bans on the self-healing recovery seams.
"""

from tools.sketchlint.checkers import (
    determinism,
    dispatch,
    field,
    protocol,
    recovery,
    wallclock,
    wire,
)

__all__ = [
    "determinism",
    "dispatch",
    "field",
    "protocol",
    "recovery",
    "wallclock",
    "wire",
]
