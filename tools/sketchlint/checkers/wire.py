"""SL4xx — wire-format pairing and self-delimiting framing.

Every serialized form must be deserializable *by code in this repo*:
a writer with no reader is state that can be checkpointed but never
restored, which is exactly the failure mode crash-recovery tests exist
to prevent.  The writer -> accepted-reader table lives in
:class:`tools.sketchlint.config.Config.wire_pairs`.

* ``SL401`` — a class defines a wire writer (``state_ints``,
  ``shard_state_ints``, ``sparse_state_ints``, ``row_state_ints``) but
  no accepted reader anywhere along its concrete base chain.
* ``SL402`` — the mirror image: a reader with no corresponding writer,
  i.e. dead restore code that will drift out of sync with the format it
  claims to parse.
* ``SL403`` — a cursor-consuming reader (``load_sparse_state``,
  ``load_state_ints``) that does not take a ``cursor`` parameter or does
  not return a value on every path: these readers parse a shared flat
  int sequence, so the advanced cursor IS the framing — swallowing it
  desynchronizes every record that follows.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from tools.sketchlint.diagnostics import Diagnostic
from tools.sketchlint.model import ClassInfo, RepoIndex
from tools.sketchlint.registry import register

__all__ = ["check_wire"]


def _diag(info: ClassInfo, line: int, code: str, message: str) -> Diagnostic:
    return Diagnostic(
        path=info.path, line=line, code=code, message=message, checker="wire",
    )


def _concrete_defined(index: RepoIndex, info: ClassInfo) -> set[str]:
    """Method names defined along the chain, excluding abstract roots.

    The abstract root's raising defaults exist so the *call site* fails
    cleanly; they do not count as an implementation for pairing.
    """
    return {
        name
        for link in index.mro_chain(info)
        if link.name not in index.config.abstract_roots
        for name in link.methods
    }


def _walk_function(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested functions."""
    queue = list(ast.iter_child_nodes(fn))
    while queue:
        node = queue.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            queue.extend(ast.iter_child_nodes(node))


def _always_raises(fn: ast.FunctionDef) -> bool:
    """A raising stub: the body's last statement is a bare ``raise``."""
    body = [stmt for stmt in fn.body if not _is_docstring(stmt)]
    return bool(body) and isinstance(body[-1], ast.Raise)


def _is_docstring(stmt: ast.stmt) -> bool:
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Constant)
        and isinstance(stmt.value.value, str)
    )


def _check_pairing(index: RepoIndex, info: ClassInfo) -> Iterable[Diagnostic]:
    config = index.config
    defined = _concrete_defined(index, info)
    readers_of: dict[str, tuple[str, ...]] = config.wire_pairs
    for writer, readers in readers_of.items():
        if info.has_method(writer) and not any(r in defined for r in readers):
            yield _diag(
                info, info.methods[writer].lineno, "SL401",
                f"{info.name}.{writer}() has no reader "
                f"({' or '.join(readers)}): this state can be written but "
                f"never restored",
            )
    for writer, readers in readers_of.items():
        for reader in readers:
            if info.has_method(reader) and writer not in defined:
                yield _diag(
                    info, info.methods[reader].lineno, "SL402",
                    f"{info.name}.{reader}() has no writer ({writer}): dead "
                    f"restore code drifts out of sync with the format it "
                    f"claims to parse",
                )


def _check_cursor_reader(info: ClassInfo, fn: ast.FunctionDef) -> Iterable[Diagnostic]:
    args = fn.args
    names = [a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)]
    if "cursor" not in names:
        yield _diag(
            info, fn.lineno, "SL403",
            f"cursor reader {info.name}.{fn.name}() takes no 'cursor' "
            f"parameter: it cannot participate in self-delimiting framing",
        )
    if _always_raises(fn):
        return
    returns = [
        node for node in _walk_function(fn) if isinstance(node, ast.Return)
    ]
    bare = [node for node in returns if node.value is None]
    if bare or not returns:
        line = bare[0].lineno if bare else fn.lineno
        yield _diag(
            info, line, "SL403",
            f"cursor reader {info.name}.{fn.name}() does not return the "
            f"advanced cursor on every path: the cursor IS the framing; "
            f"swallowing it desynchronizes every record that follows",
        )


@register("wire", codes=("SL401", "SL402", "SL403"))
def check_wire(index: RepoIndex) -> Iterable[Diagnostic]:
    """Wire writer/reader pairing and cursor framing (SL4xx)."""
    for info in index.classes:
        if info.name.startswith("_") or info.name in index.config.abstract_roots:
            continue
        yield from _check_pairing(index, info)
        for name in index.config.cursor_readers:
            if info.has_method(name):
                yield from _check_cursor_reader(info, info.methods[name])
