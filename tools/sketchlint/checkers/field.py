"""SL2xx — field-arithmetic and dtype discipline.

All mod-``(2^61 - 1)`` *array* arithmetic must live in the audited
kernel modules (``sketch/batched.py``, ``sketch/hashing.py``,
``sketch/columnar.py``): raw ``%`` on a ``uint64`` product silently
wraps, a float intermediate silently rounds, and both produce sketches
that are subtly non-summable with their scalar twins.  Scalar Python-int
arithmetic is exact and is *not* flagged.

* ``SL201`` — the Mersenne prime appears as a literal
  (``2305843009213693951`` or ``(1 << 61) - 1``) outside the module
  that defines it: use ``repro.sketch.hashing.MERSENNE_61`` so grep and
  the type system see every field site.
* ``SL202`` — hand-rolled array field coercion
  (``np.remainder(x, MERSENNE_61)`` / ``np.mod(x, MERSENNE_61)``)
  outside the audited kernels: use
  ``repro.sketch.batched.as_field_array``, which also handles the
  arbitrary-precision fallback exactly.
* ``SL203`` — float or narrowing ``astype``/``dtype=`` on arrays inside
  the field modules (``float``, ``np.float32/64``, ``np.int32``,
  ``np.uint32``, ``np.int16``): field elements need all 61 bits and
  counters need exact 64-bit integers.
* ``SL204`` — an unguarded numpy accumulation (``.sum()`` / ``np.sum``
  without an explicit ``dtype=``) in a field module, in a function that
  never consults ``fits_int64_products``: int64 scatter sums are only
  exact *because* of that magnitude guard; bypassing it reintroduces
  the silent-overflow class of bug the batched engine was audited
  against.
"""

from __future__ import annotations

import ast
from typing import Iterable

from tools.sketchlint.diagnostics import Diagnostic
from tools.sketchlint.model import RepoIndex, SourceFile
from tools.sketchlint.registry import register

__all__ = ["check_field"]

#: The prime itself; its literal value may appear only where defined.
_PRIME = 2305843009213693951

_BAD_DTYPES = {"float", "float32", "float64", "int32", "uint32", "int16", "uint16"}

_GUARD = "fits_int64_products"


def _diag(source: SourceFile, node: ast.AST, code: str, message: str) -> Diagnostic:
    return Diagnostic(
        path=source.display_path, line=node.lineno, code=code,
        message=message, checker="field",
    )


def _is_prime_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and node.value == _PRIME:
        return True
    # (1 << 61) - 1, with or without parentheses.
    if (
        isinstance(node, ast.BinOp)
        and isinstance(node.op, ast.Sub)
        and isinstance(node.right, ast.Constant)
        and node.right.value == 1
        and isinstance(node.left, ast.BinOp)
        and isinstance(node.left.op, ast.LShift)
        and isinstance(node.left.left, ast.Constant)
        and node.left.left.value == 1
        and isinstance(node.left.right, ast.Constant)
        and node.left.right.value == 61
    ):
        return True
    return False


def _mentions_field_constant(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and child.id == "MERSENNE_61":
            return True
        if isinstance(child, ast.Attribute) and child.attr == "MERSENNE_61":
            return True
        if _is_prime_literal(child):
            return True
    return False


def _dtype_name(node: ast.AST) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _call_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _in_field_module(source: SourceFile, index: RepoIndex) -> bool:
    return source.module.startswith(index.config.field_module_prefixes)


def _function_calls_guard(fn: ast.AST) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Call) and _call_name(node) == _GUARD:
            return True
    return False


def _check_file(index: RepoIndex, source: SourceFile) -> Iterable[Diagnostic]:
    config = index.config
    in_kernel = source.module in config.kernel_modules
    in_field = _in_field_module(source, index)
    defines_constant = source.module == config.field_constant_module

    # Map every node to its enclosing function for the SL204 guard rule.
    functions = [
        node
        for node in ast.walk(source.tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    guard_ok: dict[int, bool] = {}
    for fn in functions:
        ok = _function_calls_guard(fn)
        for node in ast.walk(fn):
            guard_ok[id(node)] = guard_ok.get(id(node), False) or ok

    for node in ast.walk(source.tree):
        # SL201 — literal prime outside its defining module.
        if not defines_constant and _is_prime_literal(node):
            # Avoid double-reporting the inner (1 << 61) of the BinOp form.
            yield _diag(
                source, node, "SL201",
                "the Mersenne prime appears as a literal; use "
                "repro.sketch.hashing.MERSENNE_61",
            )
            continue

        if isinstance(node, ast.Call):
            name = _call_name(node)
            # SL202 — hand-rolled array coercion outside the kernels.
            if (
                not in_kernel
                and name in ("remainder", "mod")
                and isinstance(node.func, ast.Attribute)
                and any(_mentions_field_constant(arg) for arg in node.args)
            ):
                yield _diag(
                    source, node, "SL202",
                    f"hand-rolled field coercion np.{name}(..., MERSENNE_61) "
                    f"outside the audited kernels; use "
                    f"repro.sketch.batched.as_field_array",
                )
            # SL203 — float/narrowing astype or dtype= in field modules.
            if in_field:
                if name == "astype" and node.args:
                    target = _dtype_name(node.args[0])
                    if target in _BAD_DTYPES:
                        yield _diag(
                            source, node, "SL203",
                            f"astype({target}) narrows or floats field/counter "
                            f"state; field elements need exact 64-bit integers",
                        )
                for keyword in node.keywords:
                    if keyword.arg == "dtype":
                        target = _dtype_name(keyword.value)
                        if target in _BAD_DTYPES:
                            yield _diag(
                                source, node, "SL203",
                                f"dtype={target} floats or narrows an array in a "
                                f"field module; use exact 64-bit integer dtypes",
                            )
                # SL204 — unguarded numpy accumulation.
                if name == "sum" and isinstance(node.func, ast.Attribute):
                    has_dtype = any(k.arg == "dtype" for k in node.keywords)
                    if not has_dtype and not guard_ok.get(id(node), False):
                        yield _diag(
                            source, node, "SL204",
                            "numpy sum without an explicit dtype in a function "
                            "that never consults fits_int64_products: int64 "
                            "accumulations are only exact under the magnitude "
                            "guard",
                        )


@register("field", codes=("SL201", "SL202", "SL203", "SL204"))
def check_field(index: RepoIndex) -> Iterable[Diagnostic]:
    """Field-arithmetic / dtype discipline (SL2xx)."""
    for source in index.files:
        yield from _check_file(index, source)
