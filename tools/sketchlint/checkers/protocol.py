"""SL1xx — protocol conformance: the sketch / StreamingAlgorithm contract.

Discovers every sketch class (anything defining ``combine`` — linearity
is what makes something a sketch) and every repo-local
``StreamingAlgorithm`` subclass, then verifies the complete contract so
a new class can never silently ship clone-unsafe or shard-incompatible:

* ``SL101`` — a sketch class is missing a required contract member:
  a clone entry point (``clone``/``copy``), a complete wire protocol
  (``state_ints``+reader or ``sparse_state_ints``+reader), or space
  accounting (``space_words``, or resident+universe words for stacks).
* ``SL102`` — a ``StreamingAlgorithm`` subclass implements the sharded
  execution protocol *partially* (some of ``shard_state_ints`` /
  ``load_shard_state_ints`` / ``merge_shard``, or ``broadcast_state``
  without ``adopt_broadcast``): such a class dies only at runtime, on a
  coordinator, mid-merge.
* ``SL103`` — a concrete ``StreamingAlgorithm`` subclass never defines
  an abstract member (``passes_required``, ``process``, ``finalize``)
  anywhere along its repo-local base chain.
* ``SL104`` — a columnar stack (anything with ``row_state_ints``) is
  missing part of the stack wire contract (``load_row_state``,
  ``row_state_len``, ``sparse_state_ints``, ``load_sparse_state``,
  ``reset_state``) — the sparse-wire participation its dense twin has.
* ``SL105`` — a sketch class defines scalar ``update`` but no
  ``update_batch``: it silently drops off the batched engine and every
  pipeline built on it slows down by an order of magnitude.

PR 2 found two hash tables missing ``state_ints`` and PR 5 a clone that
aliased live state through a hash family — both by manual audit.  This
checker is that audit, run on every ``make check``.
"""

from __future__ import annotations

from typing import Iterable

from tools.sketchlint.diagnostics import Diagnostic
from tools.sketchlint.model import ClassInfo, RepoIndex
from tools.sketchlint.registry import register

__all__ = ["check_protocol", "discover"]

_STACK_CONTRACT = (
    "load_row_state",
    "row_state_len",
    "sparse_state_ints",
    "load_sparse_state",
    "reset_state",
)

_SHARD_TRIO = ("shard_state_ints", "load_shard_state_ints", "merge_shard")

_ABSTRACT_MEMBERS = ("passes_required", "process", "finalize")


def discover(index: RepoIndex) -> dict[str, list[ClassInfo]]:
    """The checker's registry: sketch classes and streaming algorithms.

    Returned dict has keys ``"sketches"`` and ``"algorithms"``; a class
    appearing in both lists (a sketch-backed algorithm) is checked under
    both contracts.  Private classes (``_Name``) are exempt — they are
    implementation details of their module, not contract surface.
    """
    sketches = [
        info
        for info in index.classes
        if info.has_method("combine") and not info.name.startswith("_")
    ]
    algorithms = [
        info
        for info in index.subclasses_of("StreamingAlgorithm")
        if not info.name.startswith("_")
        and info.name not in index.config.abstract_roots
    ]
    return {"sketches": sketches, "algorithms": algorithms}


def _diag(info: ClassInfo, code: str, message: str) -> Diagnostic:
    return Diagnostic(
        path=info.path, line=info.line, code=code, message=message,
        checker="protocol",
    )


def _check_sketch(index: RepoIndex, info: ClassInfo) -> Iterable[Diagnostic]:
    resolves = lambda name: index.resolves_method(info, name)  # noqa: E731
    if not any(resolves(name) for name in index.config.clone_names):
        yield _diag(
            info, "SL101",
            f"sketch class {info.name} has no clone()/copy(): snapshot "
            f"queries cannot take an independent copy of its dynamic state",
        )
    has_dense_wire = resolves("state_ints")
    has_sparse_wire = resolves("sparse_state_ints")
    if not has_dense_wire and not has_sparse_wire:
        yield _diag(
            info, "SL101",
            f"sketch class {info.name} exposes no wire protocol "
            f"(state_ints or sparse_state_ints): it cannot be "
            f"checkpointed or shipped to a shard coordinator",
        )
    has_flat_space = resolves("space_words")
    has_stack_space = resolves("resident_space_words") and resolves(
        "universe_space_words"
    )
    if not has_flat_space and not has_stack_space:
        yield _diag(
            info, "SL101",
            f"sketch class {info.name} has no space accounting "
            f"(space_words, or resident_space_words+universe_space_words): "
            f"the paper's space claims cannot be measured on it",
        )
    if resolves("update") and not resolves("update_batch"):
        yield _diag(
            info, "SL105",
            f"sketch class {info.name} defines update() but no "
            f"update_batch(): it falls off the batched engine (the "
            f"default driver loops scalar updates, ~10x slower)",
        )
    if info.has_method("row_state_ints"):
        missing = [
            name for name in _STACK_CONTRACT if not index.resolves_method(info, name)
        ]
        if missing:
            yield _diag(
                info, "SL104",
                f"columnar stack {info.name} is missing "
                f"{', '.join(missing)}: its wire format cannot round-trip "
                f"the way its dense twin's does",
            )


def _check_algorithm(index: RepoIndex, info: ClassInfo) -> Iterable[Diagnostic]:
    chain = index.mro_chain(info)
    concrete = [
        link for link in chain if link.name not in index.config.abstract_roots
    ]
    defined = {name for link in concrete for name in link.methods}
    shard_present = [name for name in _SHARD_TRIO if name in defined]
    if shard_present and len(shard_present) != len(_SHARD_TRIO):
        missing = [name for name in _SHARD_TRIO if name not in defined]
        yield _diag(
            info, "SL102",
            f"{info.name} implements {', '.join(shard_present)} but not "
            f"{', '.join(missing)}: a partial shard protocol fails at "
            f"runtime on the coordinator, mid-merge",
        )
    if "broadcast_state" in defined and "adopt_broadcast" not in defined:
        yield _diag(
            info, "SL102",
            f"{info.name} overrides broadcast_state but not "
            f"adopt_broadcast: workers cannot receive what the "
            f"coordinator publishes",
        )
    missing_abstract = [
        name for name in _ABSTRACT_MEMBERS if name not in defined
    ]
    if missing_abstract:
        yield _diag(
            info, "SL103",
            f"{info.name} never implements abstract "
            f"{', '.join(missing_abstract)} (required by "
            f"StreamingAlgorithm)",
        )


@register("protocol", codes=("SL101", "SL102", "SL103", "SL104", "SL105"))
def check_protocol(index: RepoIndex) -> Iterable[Diagnostic]:
    """Sketch/StreamingAlgorithm contract conformance (SL1xx)."""
    registry = discover(index)
    for info in registry["sketches"]:
        yield from _check_sketch(index, info)
    for info in registry["algorithms"]:
        yield from _check_algorithm(index, info)
