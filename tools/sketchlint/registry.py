"""The pluggable checker registry.

A checker is a function ``(RepoIndex) -> Iterable[Diagnostic]``
registered under a family name with the codes it may emit::

    @register("field", codes=("SL201", "SL202"))
    def check_field(index):
        ...

Importing :mod:`tools.sketchlint.checkers` populates the registry; the
CLI runs every registered checker and merges the diagnostics.  New
invariants plug in by adding a module under ``checkers/`` and importing
it from the package ``__init__`` — no runner changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from tools.sketchlint.diagnostics import Diagnostic
from tools.sketchlint.model import RepoIndex

__all__ = ["Checker", "register", "all_checkers"]

CheckFn = Callable[[RepoIndex], Iterable[Diagnostic]]


@dataclass(frozen=True)
class Checker:
    """A registered checker: its family name, codes, and entry point."""

    name: str
    codes: tuple[str, ...]
    run: CheckFn
    description: str


_REGISTRY: dict[str, Checker] = {}


def register(name: str, codes: tuple[str, ...]) -> Callable[[CheckFn], CheckFn]:
    """Class-decorator factory: add a checker function to the registry."""

    def wrap(fn: CheckFn) -> CheckFn:
        if name in _REGISTRY:
            raise ValueError(f"duplicate checker name {name!r}")
        description = (fn.__doc__ or "").strip().splitlines()[0] if fn.__doc__ else ""
        _REGISTRY[name] = Checker(name=name, codes=codes, run=fn, description=description)
        return fn

    return wrap


def all_checkers() -> list[Checker]:
    """Every registered checker, in registration order."""
    import tools.sketchlint.checkers  # noqa: F401  (side effect: registration)

    return list(_REGISTRY.values())
