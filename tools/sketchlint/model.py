"""Source loading and the cross-file index the checkers consume.

:func:`load_paths` parses every target file once; :class:`RepoIndex`
exposes the parsed modules, a class index with repo-local base
resolution, and the repo-local import graph (for seam-closure
computations).  Checkers never re-read or re-parse files.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field

from tools import _repo
from tools.sketchlint.config import Config
from tools.sketchlint.suppress import FileSuppressions

__all__ = ["ClassInfo", "SourceFile", "RepoIndex", "load_paths"]


@dataclass
class ClassInfo:
    """One class definition: its AST, methods, and resolved repo bases."""

    name: str
    module: str
    path: str
    node: ast.ClassDef
    base_names: list[str]
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)

    @property
    def line(self) -> int:
        """Definition line of the class."""
        return self.node.lineno

    def has_method(self, name: str) -> bool:
        """Whether the class body defines ``name`` (directly)."""
        return name in self.methods


@dataclass
class SourceFile:
    """One parsed module: text, AST, suppressions, dotted name."""

    path: pathlib.Path
    module: str
    text: str
    tree: ast.Module
    suppressions: FileSuppressions

    @property
    def display_path(self) -> str:
        """Path string used in diagnostics."""
        return str(self.path)


class RepoIndex:
    """Everything the checkers need, computed once per run."""

    def __init__(self, files: list[SourceFile], config: Config):
        self.files = files
        self.config = config
        self.by_module: dict[str, SourceFile] = {f.module: f for f in files}
        #: Every class across the analyzed files, in definition order.
        self.classes: list[ClassInfo] = []
        for source in files:
            for node in ast.walk(source.tree):
                if isinstance(node, ast.ClassDef):
                    self.classes.append(_class_info(node, source))
        self._by_class_name: dict[str, ClassInfo] = {}
        for info in self.classes:
            # Last definition wins (class names are unique in this repo;
            # fixtures may shadow, which is fine for base resolution).
            self._by_class_name[info.name] = info
        self._imports: dict[str, set[str]] | None = None

    def class_named(self, name: str) -> ClassInfo | None:
        """Repo-local class by bare name (best effort)."""
        return self._by_class_name.get(name)

    def mro_chain(self, info: ClassInfo) -> list[ClassInfo]:
        """``info`` plus every transitively reachable repo-local base."""
        chain: list[ClassInfo] = []
        queue = [info]
        seen: set[str] = set()
        while queue:
            current = queue.pop()
            if current.name in seen:
                continue
            seen.add(current.name)
            chain.append(current)
            for base in current.base_names:
                resolved = self.class_named(base)
                if resolved is not None:
                    queue.append(resolved)
        return chain

    def resolves_method(self, info: ClassInfo, name: str) -> bool:
        """Whether ``name`` is defined anywhere along the repo-local chain."""
        return any(link.has_method(name) for link in self.mro_chain(info))

    def subclasses_of(self, root_name: str) -> list[ClassInfo]:
        """Classes transitively deriving from ``root_name`` (excluded)."""
        return [
            info
            for info in self.classes
            if info.name != root_name
            and any(
                link.name == root_name or root_name in link.base_names
                for link in self.mro_chain(info)
            )
        ]

    # -- repo-local import graph ---------------------------------------

    def local_imports(self, module: str) -> set[str]:
        """Repo-local modules ``module`` imports directly."""
        if self._imports is None:
            self._imports = {
                source.module: _local_imports(source.tree, self.config.local_prefix)
                for source in self.files
            }
        return self._imports.get(module, set())

    def seam_closure(self) -> set[str]:
        """The seam modules plus everything they transitively import.

        Only analyzed modules are expanded (imports of files outside the
        run's target set still appear in the closure by name, they just
        have no edges of their own).
        """
        closure: set[str] = set()
        queue = list(self.config.seam_modules)
        while queue:
            module = queue.pop()
            if module in closure:
                continue
            closure.add(module)
            queue.extend(self.local_imports(module))
        return closure


def _class_info(node: ast.ClassDef, source: SourceFile) -> ClassInfo:
    bases: list[str] = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            bases.append(base.id)
        elif isinstance(base, ast.Attribute):
            bases.append(base.attr)
    methods = {
        item.name: item
        for item in node.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    return ClassInfo(
        name=node.name,
        module=source.module,
        path=source.display_path,
        node=node,
        base_names=bases,
        methods=methods,
    )


def _local_imports(tree: ast.Module, prefix: str) -> set[str]:
    found: set[str] = set()
    dotted = prefix + "."
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == prefix or alias.name.startswith(dotted):
                    found.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == prefix or module.startswith(dotted):
                found.add(module)
    return found


def load_paths(
    paths: list[pathlib.Path | str], config: Config
) -> tuple[RepoIndex, list[str]]:
    """Parse every ``.py`` under ``paths`` into a :class:`RepoIndex`.

    Returns ``(index, errors)`` where ``errors`` are human-readable
    strings for unparseable targets (syntax errors, missing files).
    """
    files: list[SourceFile] = []
    errors: list[str] = []
    seen: set[pathlib.Path] = set()
    for target in paths:
        target = pathlib.Path(target)
        if not target.exists():
            errors.append(f"{target}: no such file or directory")
            continue
        for path in _repo.iter_source_files(target):
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            text = path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(text, filename=str(path))
            except SyntaxError as error:
                errors.append(f"{path}:{error.lineno}: syntax error: {error.msg}")
                continue
            files.append(
                SourceFile(
                    path=path,
                    module=_repo.module_name(path),
                    text=text,
                    tree=tree,
                    suppressions=FileSuppressions(text.splitlines()),
                )
            )
    return RepoIndex(files, config), errors
