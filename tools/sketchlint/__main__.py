"""``python -m tools.sketchlint`` entry point."""

from tools.sketchlint.cli import main

raise SystemExit(main())
