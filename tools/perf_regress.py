#!/usr/bin/env python
"""Fail the build when a measured engine rate regresses past tolerance.

Each performance bench writes its measured throughputs to
``benchmarks/results/BENCH_<name>.json``; this tool compares every fresh
measurement against its committed conservative baseline under
``benchmarks/baselines/`` and exits nonzero when any rate falls more
than ``TOLERANCE`` below its floor — a machine-readable perf gate.
Gated benches:

* ``BENCH_columnar`` — the columnar stacked-sketch engine
  (``make bench-columnar``);
* ``BENCH_sparse`` — the sparse vertex-universe engine
  (``make bench-sparse``).

The committed baselines are deliberately set well *below* the reference
container's measured rates (about half), so the gate trips on genuine
order-of-magnitude regressions — a vectorized path silently falling back
to scalar loops, a lazy engine accidentally walking its universe —
rather than on scheduler noise or modest hardware differences.
Regenerate them with ``--update-baseline`` after an intentional
performance change (and commit the result).

Usage::

    python tools/perf_regress.py                    # compare all, exit 1 on regression
    python tools/perf_regress.py columnar           # compare one suite
    python tools/perf_regress.py --update-baseline  # rewrite baselines at 50%
                                                    # of the fresh rates
"""

from __future__ import annotations

import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = REPO_ROOT / "benchmarks" / "results"
BASELINES = REPO_ROOT / "benchmarks" / "baselines"

#: Suite name -> (fresh results file, committed baseline file, bench target).
SUITES: dict[str, tuple[pathlib.Path, pathlib.Path, str]] = {
    "columnar": (
        RESULTS / "BENCH_columnar.json",
        BASELINES / "BENCH_columnar.json",
        "make bench-columnar",
    ),
    "sparse": (
        RESULTS / "BENCH_sparse.json",
        BASELINES / "BENCH_sparse.json",
        "make bench-sparse",
    ),
}

#: A fresh rate may fall at most this fraction below its baseline.
TOLERANCE = 0.20

#: ``--update-baseline`` records this fraction of the fresh rates.
BASELINE_FRACTION = 0.50


def load(path: pathlib.Path, target: str) -> dict:
    """Parse one measurement file, failing with a pointed message."""
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        sys.exit(
            f"perf_regress: {path} is missing — run "
            f"`{target}` (or commit the baseline) first"
        )
    except ValueError as error:
        sys.exit(f"perf_regress: {path} is not valid JSON: {error}")


def update_baseline(suite: str) -> None:
    fresh_path, baseline_path, target = SUITES[suite]
    fresh = load(fresh_path, target)
    baseline = {
        "note": (
            f"Conservative {suite}-engine throughput floors: "
            f"{BASELINE_FRACTION:.0%} of a reference-container run of "
            f"`{target}`.  Compared by tools/perf_regress.py with "
            f"{TOLERANCE:.0%} tolerance; regenerate with "
            "`python tools/perf_regress.py --update-baseline`."
        ),
        "updates_per_second": {
            name: round(rate * BASELINE_FRACTION, 1)
            for name, rate in fresh["updates_per_second"].items()
        },
    }
    for key in ("stream_updates", "batch_size", "universe"):
        if key in fresh:
            baseline[key] = fresh[key]
    BASELINES.mkdir(exist_ok=True)
    baseline_path.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    print(f"perf_regress: {suite} baseline rewritten at {baseline_path}")


def compare(suite: str) -> list[str]:
    fresh_path, baseline_path, target = SUITES[suite]
    fresh = load(fresh_path, target)["updates_per_second"]
    baseline = load(baseline_path, target)["updates_per_second"]
    failures: list[str] = []
    width = max(len(name) for name in baseline)
    print(
        f"perf_regress[{suite}]: fresh rates vs committed floors "
        f"({TOLERANCE:.0%} tolerance)"
    )
    for name, floor in sorted(baseline.items()):
        rate = fresh.get(name)
        if rate is None:
            failures.append(f"{suite}/{name}: missing from the fresh measurement")
            continue
        allowed = floor * (1.0 - TOLERANCE)
        verdict = "ok" if rate >= allowed else "REGRESSION"
        print(
            f"  {name:<{width}} {rate:>12,.0f} up/s  "
            f"(floor {floor:>12,.0f}, min {allowed:>12,.0f})  {verdict}"
        )
        if rate < allowed:
            failures.append(
                f"{suite}/{name}: {rate:,.0f} updates/s is more than "
                f"{TOLERANCE:.0%} below the baseline floor {floor:,.0f}"
            )
    for name in sorted(set(fresh) - set(baseline)):
        print(f"  {name:<{width}} {fresh[name]:>12,.0f} up/s  (no baseline yet)")
    return failures


def main(argv: list[str]) -> int:
    """CLI entry: compare (default) or ``--update-baseline``; an optional
    suite name restricts the run to one bench."""
    update = "--update-baseline" in argv
    names = [arg for arg in argv if not arg.startswith("--")]
    unknown = [name for name in names if name not in SUITES]
    if unknown:
        sys.exit(f"perf_regress: unknown suite(s) {unknown}; choose from {sorted(SUITES)}")
    suites = names or sorted(SUITES)
    if update:
        for suite in suites:
            update_baseline(suite)
        return 0
    failures: list[str] = []
    for suite in suites:
        failures.extend(compare(suite))
    if failures:
        print("perf_regress: FAILED")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("perf_regress: all rates within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
