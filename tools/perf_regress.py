#!/usr/bin/env python
"""Fail the build when a measured engine rate regresses past tolerance.

Each performance bench writes its measured throughputs to
``benchmarks/results/BENCH_<name>.json``; this tool compares every fresh
measurement against its committed conservative baseline under
``benchmarks/baselines/`` and exits nonzero when any rate falls more
than ``TOLERANCE`` below its floor — a machine-readable perf gate.  The
gated suites are *derived* from the committed baselines (see
:func:`tools._repo.bench_suites`): committing a new
``benchmarks/baselines/BENCH_<name>.json`` automatically gates
``make bench-<name>``.

The committed baselines are deliberately set well *below* the reference
container's measured rates (about half), so the gate trips on genuine
order-of-magnitude regressions — a vectorized path silently falling back
to scalar loops, a lazy engine accidentally walking its universe —
rather than on scheduler noise or modest hardware differences.
Regenerate them with ``--update-baseline`` after an intentional
performance change (and commit the result).

Exit codes (distinct so CI and scripts can tell the failure modes
apart):

* ``0`` — every fresh rate is within tolerance of its floor;
* ``1`` — at least one rate **regressed** past tolerance;
* ``2`` — usage error or a measurement file that is not valid JSON;
* ``3`` — a measurement or baseline file is **missing** (run the bench
  target first — nothing regressed, nothing was compared).

Usage::

    python tools/perf_regress.py                    # compare all, exit 1 on regression
    python tools/perf_regress.py columnar           # compare one suite
    python tools/perf_regress.py --update-baseline  # rewrite baselines at 50%
                                                    # of the fresh rates
"""

from __future__ import annotations

import json
import pathlib
import sys

if __package__ in (None, ""):  # run as a script: put the repo root on sys.path
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from tools import _repo

#: A fresh rate may fall at most this fraction below its baseline.
TOLERANCE = 0.20

#: ``--update-baseline`` records this fraction of the fresh rates.
BASELINE_FRACTION = 0.50

#: Exit codes (see the module docstring).
EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_INVALID = 2
EXIT_MISSING = 3


class _Missing(Exception):
    """A measurement/baseline file does not exist."""


class _Invalid(Exception):
    """A measurement/baseline file is not valid JSON."""


def load(path: pathlib.Path, target: str) -> dict:
    """Parse one measurement file, raising a typed, pointed error."""
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        raise _Missing(
            f"perf_regress: {path} is missing — run "
            f"`{target}` (or commit the baseline) first"
        ) from None
    except ValueError as error:
        raise _Invalid(f"perf_regress: {path} is not valid JSON: {error}") from None


def update_baseline(suite: _repo.BenchSuite) -> None:
    """Rewrite one suite's committed floors from its fresh measurement."""
    fresh = load(suite.results_path, suite.target)
    baseline = {
        "note": (
            f"Conservative {suite.name}-engine throughput floors: "
            f"{BASELINE_FRACTION:.0%} of a reference-container run of "
            f"`{suite.target}`.  Compared by tools/perf_regress.py with "
            f"{TOLERANCE:.0%} tolerance; regenerate with "
            "`python tools/perf_regress.py --update-baseline`."
        ),
        "updates_per_second": {
            name: round(rate * BASELINE_FRACTION, 1)
            for name, rate in fresh["updates_per_second"].items()
        },
    }
    for key in ("stream_updates", "batch_size", "universe", "phase_seconds"):
        if key in fresh:
            baseline[key] = fresh[key]
    suite.baseline_path.parent.mkdir(exist_ok=True)
    suite.baseline_path.write_text(
        json.dumps(baseline, indent=2, sort_keys=True) + "\n"
    )
    print(f"perf_regress: {suite.name} baseline rewritten at {suite.baseline_path}")


def compare(suite: _repo.BenchSuite) -> list[str]:
    """Compare one suite's fresh rates against its floors; return failures."""
    fresh = load(suite.results_path, suite.target)["updates_per_second"]
    baseline = load(suite.baseline_path, suite.target)["updates_per_second"]
    failures: list[str] = []
    width = max(len(name) for name in baseline)
    print(
        f"perf_regress[{suite.name}]: fresh rates vs committed floors "
        f"({TOLERANCE:.0%} tolerance)"
    )
    for name, floor in sorted(baseline.items()):
        rate = fresh.get(name)
        if rate is None:
            failures.append(
                f"{suite.name}/{name}: missing from the fresh measurement"
            )
            continue
        allowed = floor * (1.0 - TOLERANCE)
        verdict = "ok" if rate >= allowed else "REGRESSION"
        print(
            f"  {name:<{width}} {rate:>12,.0f} up/s  "
            f"(floor {floor:>12,.0f}, min {allowed:>12,.0f})  {verdict}"
        )
        if rate < allowed:
            failures.append(
                f"{suite.name}/{name}: {rate:,.0f} updates/s is more than "
                f"{TOLERANCE:.0%} below the baseline floor {floor:,.0f}"
            )
    for name in sorted(set(fresh) - set(baseline)):
        print(f"  {name:<{width}} {fresh[name]:>12,.0f} up/s  (no baseline yet)")
    return failures


def main(argv: list[str]) -> int:
    """CLI entry: compare (default) or ``--update-baseline``; an optional
    suite name restricts the run to one bench.  Returns one of the
    ``EXIT_*`` codes documented in the module docstring."""
    all_suites = _repo.bench_suites()
    update = "--update-baseline" in argv
    names = [arg for arg in argv if not arg.startswith("--")]
    unknown = [name for name in names if name not in all_suites]
    if unknown:
        print(
            f"perf_regress: unknown suite(s) {unknown}; "
            f"choose from {sorted(all_suites)}",
            file=sys.stderr,
        )
        return EXIT_INVALID
    suites = [all_suites[name] for name in (names or sorted(all_suites))]
    try:
        if update:
            for suite in suites:
                update_baseline(suite)
            return EXIT_OK
        failures: list[str] = []
        for suite in suites:
            failures.extend(compare(suite))
    except _Missing as error:
        print(error, file=sys.stderr)
        return EXIT_MISSING
    except _Invalid as error:
        print(error, file=sys.stderr)
        return EXIT_INVALID
    if failures:
        print("perf_regress: FAILED")
        for failure in failures:
            print(f"  - {failure}")
        return EXIT_REGRESSION
    print("perf_regress: all rates within tolerance")
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
