#!/usr/bin/env python
"""Fail the build when the columnar engine regresses past tolerance.

``benchmarks/bench_columnar.py`` writes every measured throughput to
``benchmarks/results/BENCH_columnar.json``; this tool compares that
fresh measurement against the committed conservative baseline
(``benchmarks/baselines/BENCH_columnar.json``) and exits nonzero when
any rate falls more than ``TOLERANCE`` below its baseline — a
machine-readable perf gate, wired into ``make bench-columnar`` (and so
``make check``).

The committed baseline is deliberately set well *below* the reference
container's measured rates (about half), so the gate trips on genuine
order-of-magnitude regressions — a vectorized path silently falling back
to scalar loops — rather than on scheduler noise or modest hardware
differences.  Regenerate it with ``--update-baseline`` after an
intentional performance change (and commit the result).

Usage::

    python tools/perf_regress.py                  # compare, exit 1 on regression
    python tools/perf_regress.py --update-baseline  # rewrite the baseline at
                                                    # 50% of the fresh rates
"""

from __future__ import annotations

import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
FRESH = REPO_ROOT / "benchmarks" / "results" / "BENCH_columnar.json"
BASELINE = REPO_ROOT / "benchmarks" / "baselines" / "BENCH_columnar.json"

#: A fresh rate may fall at most this fraction below its baseline.
TOLERANCE = 0.20

#: ``--update-baseline`` records this fraction of the fresh rates.
BASELINE_FRACTION = 0.50


def load(path: pathlib.Path) -> dict:
    """Parse one measurement file, failing with a pointed message."""
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        sys.exit(
            f"perf_regress: {path} is missing — run "
            "`make bench-columnar` (or commit the baseline) first"
        )
    except ValueError as error:
        sys.exit(f"perf_regress: {path} is not valid JSON: {error}")


def update_baseline() -> int:
    fresh = load(FRESH)
    baseline = {
        "note": (
            "Conservative columnar-throughput floors: "
            f"{BASELINE_FRACTION:.0%} of a reference-container run of "
            "benchmarks/bench_columnar.py.  Compared by tools/perf_regress.py "
            f"with {TOLERANCE:.0%} tolerance; regenerate with "
            "`python tools/perf_regress.py --update-baseline`."
        ),
        "stream_updates": fresh["stream_updates"],
        "batch_size": fresh["batch_size"],
        "updates_per_second": {
            name: round(rate * BASELINE_FRACTION, 1)
            for name, rate in fresh["updates_per_second"].items()
        },
    }
    BASELINE.parent.mkdir(exist_ok=True)
    BASELINE.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    print(f"perf_regress: baseline rewritten at {BASELINE}")
    return 0


def compare() -> int:
    fresh = load(FRESH)["updates_per_second"]
    baseline = load(BASELINE)["updates_per_second"]
    failures: list[str] = []
    width = max(len(name) for name in baseline)
    print(f"perf_regress: fresh rates vs committed floors ({TOLERANCE:.0%} tolerance)")
    for name, floor in sorted(baseline.items()):
        rate = fresh.get(name)
        if rate is None:
            failures.append(f"{name}: missing from the fresh measurement")
            continue
        allowed = floor * (1.0 - TOLERANCE)
        verdict = "ok" if rate >= allowed else "REGRESSION"
        print(
            f"  {name:<{width}} {rate:>12,.0f} up/s  "
            f"(floor {floor:>12,.0f}, min {allowed:>12,.0f})  {verdict}"
        )
        if rate < allowed:
            failures.append(
                f"{name}: {rate:,.0f} updates/s is more than {TOLERANCE:.0%} "
                f"below the baseline floor {floor:,.0f}"
            )
    for name in sorted(set(fresh) - set(baseline)):
        print(f"  {name:<{width}} {fresh[name]:>12,.0f} up/s  (no baseline yet)")
    if failures:
        print("perf_regress: FAILED")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("perf_regress: all rates within tolerance")
    return 0


def main(argv: list[str]) -> int:
    """CLI entry: compare (default) or ``--update-baseline``."""
    if "--update-baseline" in argv:
        return update_baseline()
    return compare()


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
