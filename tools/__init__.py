"""Repo-native developer tooling.

Stdlib-only scripts and packages that gate the build:

* :mod:`tools.check_docstrings` — public-API docstring coverage
  (``make docs-check``);
* :mod:`tools.perf_regress` — machine-readable throughput floors
  (``make bench-columnar`` / ``bench-sparse``);
* :mod:`tools.sketchlint` — the sketch-contract / field-arithmetic /
  determinism static analyzer (``make lint``);
* :mod:`tools._repo` — the shared repo-layout helper the above build on
  (single source of truth for "what counts as source / a bench suite").

Everything runs from the repo root with no installation:
``python -m tools.sketchlint src/``, ``python tools/check_docstrings.py``.
"""
